"""Tunnel-oxide scaling study: paper Figures 7/9 and the ITRS discussion.

The paper observes that J_FN "increases significantly when XTO is less
than 7nm" and connects this to the ITRS roadmap (6 nm tunnel oxide at
18-22 nm nodes, 5 nm predicted for 8-14 nm nodes). This example
quantifies that statement: current density, programming speed, oxide
stress and endurance across the 4-8 nm thickness range.

Run with:  python examples/oxide_scaling_study.py
"""

import numpy as np

from repro.experiments import fn_density_vs_gate_voltage
from repro.optimization import DesignPoint, evaluate_design
from repro.reporting import PlotSeries, ascii_plot, format_table


def render_figure7() -> None:
    vgs = np.linspace(10.0, 17.0, 30)
    series = [
        PlotSeries(
            f"XTO={x:g}nm", vgs, fn_density_vs_gate_voltage(vgs, 0.6, x)
        )
        for x in (8.0, 7.0, 6.0, 5.0, 4.0)
    ]
    print(
        ascii_plot(
            series,
            log_y=True,
            title="J_FN vs V_GS for five tunnel-oxide thicknesses "
            "(paper Figure 7)",
            x_label="V_GS [V]",
            y_label="J_FN [A/m^2]",
        )
    )


def itrs_node_table() -> None:
    """Per-thickness figures of merit at the paper's VGS = 15 V."""
    rows = []
    for xto, node in (
        (8.0, "legacy"),
        (7.0, "legacy"),
        (6.0, "18-22 nm (ITRS 2011)"),
        (5.0, "8-14 nm (predicted)"),
        (4.0, "beyond roadmap"),
    ):
        metrics = evaluate_design(
            DesignPoint(tunnel_oxide_nm=xto, control_oxide_nm=xto + 4.0),
            pulse_duration_s=10.0,
        )
        rows.append(
            (
                xto,
                node,
                metrics.initial_current_density_a_m2,
                metrics.program_time_s
                if metrics.program_time_s
                else float("nan"),
                metrics.peak_tunnel_field_v_per_m,
                metrics.cycles_to_breakdown,
            )
        )
    print(
        format_table(
            (
                "XTO [nm]",
                "technology node",
                "J0 [A/m^2]",
                "t_sat [s]",
                "E_peak [V/m]",
                "cycles to BD",
            ),
            rows,
            float_format="{:.3g}",
        )
    )


def knee_analysis() -> None:
    """Quantify the paper's 'significant increase below 7 nm'."""
    vgs = np.array([13.5])
    print("\nCurrent gain per nanometre removed (at V_GS = 13.5 V):")
    thicknesses = [8.0, 7.0, 6.0, 5.0, 4.0]
    currents = [
        fn_density_vs_gate_voltage(vgs, 0.6, x)[0] for x in thicknesses
    ]
    for (x1, j1), (x2, j2) in zip(
        zip(thicknesses, currents), zip(thicknesses[1:], currents[1:])
    ):
        gain = np.log10(j2 / j1)
        print(f"  {x1:.0f} nm -> {x2:.0f} nm : x10^{gain:.2f}")
    print(
        "\nEach removed nanometre buys more than the last: the scaling "
        "cliff\nthe paper's reliability warning is about."
    )


def main() -> None:
    render_figure7()
    print()
    itrs_node_table()
    knee_analysis()


if __name__ == "__main__":
    main()
