"""Quickstart: build the paper's reference cell and program it.

Walks the core API end-to-end in ~40 lines: device construction, the
eq. (3) electrostatics, the FN currents of Figure 4, the programming
transient of Figure 5, and the resulting threshold shift.

Run with:  python examples/quickstart.py
"""

from repro.device import (
    PROGRAM_BIAS,
    FloatingGateTransistor,
    ThresholdModel,
    simulate_transient,
)


def main() -> None:
    # The default device is the paper's operating point: GCR = 0.6,
    # 5 nm SiO2 tunnel oxide, 8 nm SiO2 control oxide, MLGNR channel
    # and floating gate, CNT control gate.
    cell = FloatingGateTransistor()
    print("== MLGNR-CNT floating-gate cell (paper reference design) ==")
    print(f"gate coupling ratio : {cell.gate_coupling_ratio:.3f}")
    tunnel_phi, control_phi = cell.barrier_heights_ev()
    print(f"tunnel barrier      : {tunnel_phi:.2f} eV (graphene/SiO2)")
    print(f"control barrier     : {control_phi:.2f} eV")

    # Paper Section III: VGS = 15 V with GCR 0.6 puts the floating gate
    # at 9 V, which drops entirely across the 5 nm tunnel oxide.
    vfg = cell.floating_gate_voltage(PROGRAM_BIAS)
    print(f"\nV_FG at VGS = +15 V : {vfg:.2f} V  (paper: 9 V)")

    state = cell.tunneling_state(PROGRAM_BIAS)
    print(f"Jin  (tunnel oxide) : {state.jin_a_m2:.3e} A/m^2")
    print(f"Jout (control oxide): {state.jout_a_m2:.3e} A/m^2")
    print(f"Jin/Jout            : {state.jin_a_m2 / state.jout_a_m2:.1e}")

    # Integrate the programming transient until Jin meets Jout.
    result = simulate_transient(cell, PROGRAM_BIAS, duration_s=1e-2)
    print(f"\nprogramming t_sat   : {result.t_sat_s:.3e} s")
    print(f"stored charge       : {result.final_charge_c:.3e} C")
    print(f"stored electrons    : {result.stored_electrons:.0f}")

    # The stored electrons shift the threshold: the logic '0' state.
    threshold = ThresholdModel(cell)
    vt0 = threshold.neutral_threshold_v
    vt_programmed = threshold.threshold_v(result.final_charge_c)
    print(f"\nthreshold neutral   : {vt0:.2f} V")
    print(f"threshold programmed: {vt_programmed:.2f} V")
    print(f"threshold shift     : {vt_programmed - vt0:.2f} V")


if __name__ == "__main__":
    main()
