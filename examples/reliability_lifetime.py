"""Reliability lifetime study: the cost of fast programming.

The paper's conclusion: "higher tunneling current will severely damage
the oxide's reliability. Therefore, an optimization among these crucial
parameters is recommended." This example walks the full wear story of
one cell:

1. per-pulse oxide stress (injected fluence) at several voltages,
2. endurance: trap build-up, Q_BD budget and window closure vs cycles,
3. retention of the cycled cell, with the Arrhenius bake equivalence
   used to qualify it.

Run with:  python examples/reliability_lifetime.py
"""

from repro.device import PROGRAM_BIAS, FloatingGateTransistor, RetentionModel
from repro.device.transient import equilibrium_charge
from repro.reliability import (
    ArrheniusAcceleration,
    EnduranceModel,
    stress_of_pulse,
)
from repro.reporting import format_table


def stress_per_pulse(cell) -> None:
    print("== Oxide stress per 100 us programming pulse ==")
    rows = []
    for vgs in (13.0, 15.0, 17.0):
        record = stress_of_pulse(
            cell, PROGRAM_BIAS.with_gate_voltage(vgs), 1e-4
        )
        rows.append(
            (
                vgs,
                record.injected_charge_c_per_m2,
                record.peak_field_v_per_m,
            )
        )
    print(
        format_table(
            ("V_GS [V]", "fluence [C/m^2]", "peak field [V/m]"),
            rows,
            float_format="{:.3e}",
        )
    )


def endurance_story(cell) -> None:
    print("\n== Endurance: cycling wear ==")
    model = EnduranceModel(cell, pulse_duration_s=1e-4)
    result = model.simulate(1_000_000, n_samples=30)
    print(f"cycles to Q_BD exhaustion : {result.cycles_to_breakdown:.3e}")
    n = result.cycle_counts.size
    rows = []
    for idx in (0, n // 3, 2 * n // 3, n - 1):
        rows.append(
            (
                result.cycle_counts[idx],
                result.trap_density_m2[idx],
                result.life_consumed[idx],
                result.window_closure_v[idx],
            )
        )
    print(
        format_table(
            (
                "cycles",
                "traps [1/m^2]",
                "Q_BD used",
                "window closure [V]",
            ),
            rows,
            float_format="{:.3e}",
        )
    )


def retention_story(cell) -> None:
    print("\n== Retention: fresh vs cycled oxide ==")
    q = equilibrium_charge(cell, PROGRAM_BIAS)
    fresh = RetentionModel(cell).simulate(q, n_samples=60)
    cycled = RetentionModel(cell, trap_density_m2=5e16).simulate(
        q, n_samples=60
    )
    print(
        f"charge left after 10 years: fresh "
        f"{fresh.charge_after_10y_fraction * 100:.1f}%  |  "
        f"heavily cycled {cycled.charge_after_10y_fraction * 100:.1f}%"
    )

    bake = ArrheniusAcceleration()
    print("\nEquivalent qualification bakes for the 10-year target:")
    for celsius in (125.0, 150.0, 200.0, 250.0):
        hours = bake.ten_year_bake_hours(celsius + 273.15)
        print(f"  {celsius:5.0f} C : {hours:10.1f} h")


def main() -> None:
    cell = FloatingGateTransistor()
    stress_per_pulse(cell)
    endurance_story(cell)
    retention_story(cell)
    print(
        "\nFaster programming (higher V_GS) injects more fluence per "
        "pulse and\nburns the Q_BD budget sooner -- the optimisation "
        "knot the paper's\nconclusion points at (see "
        "examples/design_optimization.py)."
    )


if __name__ == "__main__":
    main()
