"""Band-diagram tour: the triangular FN barrier of paper Figure 2.

Renders the conduction-band edge across the whole
channel / tunnel-oxide / floating-gate / control-oxide / control-gate
stack for three moments of the cell's life -- rest, the start of
programming, and the programmed rest state -- making the paper's
"apparent thinning of the barrier" directly visible.

Run with:  python examples/band_diagram_tour.py
"""

from repro.device import PROGRAM_BIAS, FloatingGateTransistor, equilibrium_charge
from repro.electrostatics import build_band_diagram
from repro.materials import SIO2
from repro.reporting import PlotSeries, ascii_plot


def diagram_for(cell, vfg, vgs, label):
    g = cell.geometry
    diagram = build_band_diagram(
        tunnel_dielectric=SIO2,
        control_dielectric=SIO2,
        tunnel_thickness_m=g.tunnel_oxide_thickness_m,
        control_thickness_m=g.control_oxide_thickness_m,
        floating_gate_thickness_m=g.floating_gate_thickness_m,
        channel_barrier_ev=cell.barrier_heights_ev()[0],
        gate_barrier_ev=cell.barrier_heights_ev()[1],
        floating_gate_voltage_v=vfg,
        control_gate_voltage_v=vgs,
    )
    return diagram, PlotSeries(
        label, diagram.x_m * 1e9, diagram.conduction_band_ev
    )


def main() -> None:
    cell = FloatingGateTransistor()

    # Rest, fresh: flat bands at the barrier heights.
    rest, series_rest = diagram_for(cell, 0.0, 0.0, "rest (fresh)")

    # Start of programming: V_FG = 9 V tilts the tunnel oxide hard.
    vfg_program = cell.floating_gate_voltage(PROGRAM_BIAS)
    programming, series_prog = diagram_for(
        cell, vfg_program, 15.0, "programming (VGS=15V)"
    )

    # Programmed, terminals grounded: the stored electrons hold the
    # floating gate slightly negative.
    q_programmed = equilibrium_charge(cell, PROGRAM_BIAS)
    from repro.device.bias import BiasCondition
    from repro.electrostatics import TerminalVoltages

    rest_bias = BiasCondition("rest", TerminalVoltages())
    vfg_stored = cell.floating_gate_voltage(rest_bias, q_programmed)
    stored, series_stored = diagram_for(
        cell, vfg_stored, 0.0, "programmed, at rest"
    )

    print(
        ascii_plot(
            [series_rest, series_prog, series_stored],
            log_y=False,
            title="Conduction band across the gate stack (paper Figure 2)",
            x_label="position [nm]  (channel -> tunnel ox -> FG -> "
            "control ox -> CG)",
            y_label="E_c [eV]",
            height=22,
        )
    )

    print("\nBarrier seen by a channel electron at the Fermi level:")
    for name, diagram in (
        ("rest (fresh)     ", rest),
        ("programming      ", programming),
        ("programmed, rest ", stored),
    ):
        thinning = diagram.tunnel_distance_at_fermi_m() * 1e9
        print(
            f"  {name}: forbidden distance = {thinning:5.2f} nm "
            f"(peak {diagram.barrier_peak_ev():.2f} eV)"
        )
    print(
        "\nAt VGS = 15 V the 5 nm oxide presents only ~2 nm of barrier "
        "-- the\n'apparent thinning' that makes Fowler-Nordheim "
        "programming possible."
    )
    print(
        f"\nStored charge {q_programmed:.2e} C holds the floating gate at "
        f"{vfg_stored:.2f} V\nwhen idle: the self-field that drives "
        "retention leakage."
    )


if __name__ == "__main__":
    main()
