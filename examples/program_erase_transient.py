"""Program/erase transients: the dynamics of paper Figures 4 and 5.

Simulates a full program -> erase -> re-program cycle of the reference
cell, renders the Jin/Jout transient as an ASCII figure, and reports
t_sat and the maximum storable charge for several programming voltages.

Run with:  python examples/program_erase_transient.py
"""

import numpy as np

from repro.device import (
    ERASE_BIAS,
    PROGRAM_BIAS,
    FloatingGateTransistor,
    equilibrium_charge,
    simulate_transient,
)
from repro.reporting import PlotSeries, ascii_plot, format_table


def render_figure5(cell: FloatingGateTransistor) -> None:
    result = simulate_transient(
        cell, PROGRAM_BIAS, duration_s=1e-2, n_samples=250
    )
    print(
        ascii_plot(
            [
                PlotSeries(
                    "Jin (tunnel oxide)",
                    result.t_s[1:],
                    np.abs(result.jin_a_m2[1:]),
                ),
                PlotSeries(
                    "Jout (control oxide)",
                    result.t_s[1:],
                    np.abs(result.jout_a_m2[1:]),
                ),
            ],
            log_y=True,
            title="Programming transient (paper Figure 5)",
            x_label="time [s]",
            y_label="|J| [A/m^2]",
        )
    )
    print(f"\nJin and Jout converge; t_sat = {result.t_sat_s:.3e} s")
    print(f"maximum stored charge = {result.q_equilibrium_c:.3e} C\n")


def voltage_study(cell: FloatingGateTransistor) -> None:
    rows = []
    for vgs in (12.0, 13.0, 14.0, 15.0, 16.0, 17.0):
        bias = PROGRAM_BIAS.with_gate_voltage(vgs)
        result = simulate_transient(cell, bias, duration_s=1.0)
        q_max = equilibrium_charge(cell, bias)
        rows.append(
            (
                vgs,
                result.t_sat_s if result.t_sat_s else float("nan"),
                q_max,
                abs(q_max) / 1.602176634e-19,
            )
        )
    print(
        format_table(
            ("V_GS [V]", "t_sat [s]", "Q_max [C]", "electrons"),
            rows,
            float_format="{:.3e}",
        )
    )
    print(
        "\nHigher programming voltage: faster saturation AND more stored "
        "charge\n(the paper's conclusion, before reliability limits)."
    )


def full_cycle(cell: FloatingGateTransistor) -> None:
    program = simulate_transient(cell, PROGRAM_BIAS, duration_s=1e-2)
    erase = simulate_transient(
        cell,
        ERASE_BIAS,
        initial_charge_c=program.final_charge_c,
        duration_s=1e-2,
    )
    print("\n== One full logic cycle ==")
    print(f"after program (logic '0'): Q = {program.final_charge_c:+.3e} C")
    print(f"after erase   (logic '1'): Q = {erase.final_charge_c:+.3e} C")


def main() -> None:
    cell = FloatingGateTransistor()
    render_figure5(cell)
    voltage_study(cell)
    full_cycle(cell)


if __name__ == "__main__":
    main()
