"""Design optimisation: the paper's proposed future work, implemented.

"Our future work will involve optimizing the supply voltage, tunneling
current density and oxide thickness for optimum performance."

This example sweeps the (programming voltage, tunnel-oxide thickness)
design space with full device transients, extracts the Pareto front of
programming speed versus endurance, and then runs the constrained
optimiser to pick the fastest design meeting flash-grade reliability.

Run with:  python examples/design_optimization.py
"""

from repro.optimization import (
    ConstraintSet,
    evaluate_design,
    grid,
    optimise_program_time,
    pareto_front,
)
from repro.reporting import format_table


def sweep_and_report():
    print("Sweeping the design grid (full transients per point)...\n")
    points = list(
        grid(
            program_voltages_v=(13.0, 15.0, 17.0),
            tunnel_oxides_nm=(4.5, 5.0, 6.0, 7.0),
            control_oxides_nm=(9.0,),
        )
    )
    evaluated = [evaluate_design(p, pulse_duration_s=1e-1) for p in points]
    rows = [
        (
            m.point.program_voltage_v,
            m.point.tunnel_oxide_nm,
            m.initial_current_density_a_m2,
            m.program_time_s if m.program_time_s else float("nan"),
            m.peak_tunnel_field_v_per_m,
            m.cycles_to_breakdown,
        )
        for m in evaluated
    ]
    print(
        format_table(
            (
                "V_GS [V]",
                "XTO [nm]",
                "J0 [A/m^2]",
                "t_sat [s]",
                "E_peak [V/m]",
                "endurance",
            ),
            rows,
            float_format="{:.3g}",
        )
    )
    return evaluated


def report_pareto(evaluated):
    front = pareto_front(
        evaluated,
        [
            (lambda m: m.program_time_s, "min"),
            (lambda m: m.cycles_to_breakdown, "max"),
        ],
    )
    print("\nPareto front (speed vs endurance):")
    for m in sorted(
        front, key=lambda m: m.program_time_s or float("inf")
    ):
        t = f"{m.program_time_s:.2e}" if m.program_time_s else "unsaturated"
        print(
            f"  V={m.point.program_voltage_v:4.1f} V, "
            f"XTO={m.point.tunnel_oxide_nm:3.1f} nm : "
            f"t_sat={t:>12s} s, endurance={m.cycles_to_breakdown:.2e}"
        )


def constrained_optimum():
    constraints = ConstraintSet(
        max_tunnel_field_v_per_m=2.6e9,
        max_program_time_s=1e-2,
        min_memory_window_v=4.0,
        min_cycles=3e4,
    )
    print("\nConstrained optimum (Nelder-Mead over the continuous box):")
    print(
        "  constraints: E <= 2.6e9 V/m, t_sat <= 10 ms, "
        "window >= 4 V, endurance >= 3e4"
    )
    result = optimise_program_time(
        constraints=constraints, max_evaluations=30
    )
    best = result.best
    print(
        f"  best design: V = {best.point.program_voltage_v:.2f} V, "
        f"XTO = {best.point.tunnel_oxide_nm:.2f} nm"
    )
    print(
        f"  t_sat = {best.program_time_s:.2e} s, "
        f"endurance = {best.cycles_to_breakdown:.2e} cycles, "
        f"window = {best.memory_window_v:.1f} V"
    )
    print(f"  ({result.evaluations} device evaluations)")


def main() -> None:
    evaluated = sweep_and_report()
    report_pareto(evaluated)
    constrained_optimum()


if __name__ == "__main__":
    main()
