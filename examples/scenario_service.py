"""The session API end to end: sessions, overrides, plans, exports.

Runs a small thermal/geometry study through one SimulationSession,
shows cross-scenario cache reuse, and round-trips the plan through
JSON — the workflow `docs/API.md` documents.

Run with:  PYTHONPATH=src python examples/scenario_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import RunPlan, Scenario, SimulationSession


def main() -> None:
    session = SimulationSession(seed=7)

    # One-off parameterized runs: same experiment, different worlds.
    cold = session.run("fig6")
    hot = session.run("fig6", temperature_k=400.0)
    ratio = float(hot.series[0].y[0] / cold.series[0].y[0])
    print(f"fig6 at 400 K vs 0 K: J(8V, GCR=40%) grows x{ratio:.2f}")

    # A declarative plan: a sweep family plus a fixed scenario.
    plan = RunPlan(
        name="thermal-oxide-study",
        scenarios=(
            Scenario(
                "fig7",
                overrides={"n_points": 18},
                sweep={"temperature_k": [0.0, 300.0, 400.0]},
            ),
            Scenario("fig9", overrides={"n_points": 18}),
        ),
    )

    # Plans are reviewable JSON artifacts.
    with tempfile.TemporaryDirectory() as tmp:
        path = plan.save(Path(tmp) / "plan.json")
        plan = RunPlan.load(path)

    outcome = session.run_plan(plan)
    print(f"\nplan {outcome.plan.name!r}:")
    for sr in outcome.scenario_results:
        verdict = "ok" if sr.all_checks_pass else "FAILED"
        print(
            f"  {sr.scenario.name:40s} {sr.elapsed_s * 1e3:6.1f} ms  "
            f"{sr.cache_stats.hits} hits/{sr.cache_stats.misses} misses  "
            f"[{verdict}]"
        )
    print(f"cross-scenario cache hits: {outcome.cross_scenario_hits}")

    stats = session.cache_stats()
    print(
        f"session totals: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate)"
    )

    # The same plan through the sharded parallel executor: worker
    # sessions with derived seeds, results bit-identical to the serial
    # run above (threads here so the demo stays single-process; real
    # sweeps use the default process pool).
    parallel = session.run_plan_parallel(
        plan, workers=2, shard_by="by-cost", executor="thread"
    )
    print(f"\nparallel rerun on {parallel.worker_count} workers:")
    for report in parallel.shard_reports:
        print(
            f"  shard {report.index}: scenarios {report.positions} in "
            f"{report.elapsed_s * 1e3:.1f} ms (seed {report.seed})"
        )


if __name__ == "__main__":
    main()
