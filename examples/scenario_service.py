"""The simulation service end to end: submit, cache, restart, verify.

Boots the real HTTP service (:mod:`repro.service`) on an ephemeral
port with a persistent result store, then walks the full workflow the
service exists for:

1. submit a small plan through :class:`SimulationServiceClient` and
   fetch its results (everything freshly computed);
2. resubmit the identical plan -- served 100% from the store, zero
   recomputes;
3. kill the server, restart it on the same store directory, resubmit
   -- still zero recomputes (the store is durable, not process state),
   and the *old* job ids still answer ``GET /jobs/{id}``: the
   write-ahead journal replayed them at boot (``recovery`` mode
   ``clean``, because the previous stop drained and marked shutdown);
4. check the fetched results are bit-identical to a plain serial
   ``SimulationSession.run_plan`` of the same plan;
5. exercise the lifecycle surface: cancel a submitted job (idempotent
   on finished ones), integrity-sweep the store through
   ``client.verify`` (every object checksummed, nothing quarantined),
   and garbage-collect it through ``client.prune`` -- which pins every
   hash the retained jobs still reference, so nothing a live job needs
   ever vanishes.

Run with:  PYTHONPATH=src python examples/scenario_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.api import RunPlan, Scenario, SimulationSession
from repro.service import ResultStore, ServiceApp, ServiceThread
from repro.service import SimulationServiceClient


def make_app(store_dir: Path) -> ServiceApp:
    """A service over `store_dir`, sized for a small single-CPU demo."""
    return ServiceApp(
        ResultStore(store_dir),
        executor="thread",
        workers=1,
        seed=7,
    )


def main() -> None:
    plan = RunPlan(
        name="service-demo",
        scenarios=(
            Scenario("fig6", overrides={"n_points": 10}),
            Scenario(
                "fig7",
                overrides={"n_points": 10},
                sweep={"temperature_k": [0.0, 300.0]},
            ),
        ),
    )
    n = len(plan.expanded())

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"

        # --- 1. first submission: everything computes -----------------
        with ServiceThread(make_app(store_dir)) as server:
            print(f"service up at {server.url}, store at {store_dir}")
            client = SimulationServiceClient(server.url)
            results, record = client.run_plan(plan)
            print(
                f"job {record.id}: {record.status}, "
                f"{record.computed}/{n} computed, "
                f"{record.store_hits} store hits "
                f"({record.elapsed_s * 1e3:.0f} ms)"
            )
            assert record.computed == n

            # --- 2. identical resubmission: 100% store hits -----------
            _, rerun = client.run_plan(plan)
            print(
                f"job {rerun.id}: {rerun.status}, "
                f"{rerun.store_hits}/{n} store hits, "
                f"{rerun.computed} computed "
                f"({rerun.elapsed_s * 1e3:.0f} ms)"
            )
            assert rerun.store_hits == n and rerun.computed == 0

        # --- 3. restart on the same store: still zero recomputes ------
        print("\nserver stopped; restarting on the same store directory")
        with ServiceThread(make_app(store_dir)) as server:
            client = SimulationServiceClient(server.url)
            # The journal replayed the previous life's jobs at boot:
            # the old id answers across the restart, no 404.
            recovery = client.stats()["recovery"]
            print(
                f"recovery mode {recovery['mode']!r}: "
                f"{recovery['restored']} jobs restored from the journal"
            )
            assert recovery["mode"] == "clean"
            restored = client.job(record.id)
            print(
                f"job {restored.id} from the previous life still "
                f"answers: {restored.status}"
            )
            assert restored.status == "done"
            after_restart, revived = client.run_plan(plan)
            print(
                f"job {revived.id} after restart: "
                f"{revived.store_hits}/{n} store hits, "
                f"{revived.computed} computed"
            )
            assert revived.computed == 0
            stats = client.stats()
            print(
                f"store holds {stats['store']['entries']} results; "
                f"service computed {stats['jobs']['computed']} this life"
            )

            # --- 3b. lifecycle surface: cancel + prune ----------------
            cancelled = client.cancel(revived.id)
            print(
                f"cancel of finished {revived.id} is idempotent: "
                f"status stays {cancelled.status!r}"
            )
            assert cancelled.status == "done"
            sweep = client.verify()
            print(
                f"verify: {sweep['intact']}/{sweep['scanned']} objects "
                f"intact, {len(sweep['quarantined'])} quarantined"
            )
            assert sweep["ok"] and sweep["scanned"] == n
            report = client.prune(max_entries=0)
            print(
                f"prune(max_entries=0): {report['pruned']} pruned, "
                f"{report['protected']} pinned by live jobs, "
                f"{report['entries']} entries remain"
            )
            # Every store entry is referenced by a retained job record,
            # so even the harshest budget removes nothing.
            assert report["pruned"] == 0 and report["entries"] == n

        # --- 4. bit-identity against a plain serial run ----------------
        serial = SimulationSession(seed=7).run_plan(plan)
        for got, ref in zip(after_restart, serial.scenario_results):
            for a, b in zip(got.result.series, ref.result.series):
                assert np.array_equal(a.x, b.x)
                assert np.array_equal(a.y, b.y)
        print(
            f"\nall {n} service results are bit-identical to the "
            "serial run"
        )


if __name__ == "__main__":
    main()
