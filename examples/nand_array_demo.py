"""NAND array demo: from the paper's single cell to a managed memory.

Builds a small NAND array whose cells are calibrated from the
MLGNR-CNT device transients, then runs the whole memory stack on it:
ISPP page programming, sensing, a Zipf write workload through the FTL
(garbage collection, wear levelling) and ECC-protected host I/O.

Run with:  python examples/nand_array_demo.py
"""

import numpy as np

from repro.device import FloatingGateTransistor
from repro.memory import (
    ArrayConfig,
    HammingCode,
    MemoryController,
    PageMappedFtl,
    build_array,
    calibrate_kernel,
    zipf_workload,
)
from repro.reporting import format_table


def main() -> None:
    print("Calibrating the array cell from device transients...")
    device = FloatingGateTransistor()
    kernel = calibrate_kernel(device)
    print(
        f"  erased Vt = {kernel.erased_vt_v:+.2f} V, "
        f"programmed Vt = {kernel.programmed_vt_v:+.2f} V, "
        f"window = {kernel.window_v:.2f} V\n"
    )

    config = ArrayConfig(n_blocks=6, wordlines_per_block=8, bitlines=64)
    array = build_array(kernel, config)
    ftl = PageMappedFtl(array, overprovision_blocks=1)

    print(
        f"Array: {config.n_blocks} blocks x "
        f"{config.wordlines_per_block} pages x {config.bitlines} cells "
        f"({ftl.logical_capacity_pages} logical pages)\n"
    )

    # Drive a skewed host workload through the FTL.
    print("Running 150 Zipf-skewed page writes through the FTL...")
    reference = {}
    for request in zipf_workload(
        150, ftl.logical_capacity_pages, config.bitlines
    ):
        ftl.write(request.logical_page, request.bits)
        reference[request.logical_page] = request.bits

    corrupted = sum(
        1
        for page, bits in reference.items()
        if not (ftl.read(page) == bits).all()
    )
    print(
        format_table(
            ("metric", "value"),
            [
                ("host writes", ftl.stats.host_writes),
                ("physical writes", ftl.stats.physical_writes),
                ("write amplification", ftl.stats.write_amplification),
                ("GC invocations", ftl.stats.gc_invocations),
                ("GC relocations", ftl.stats.gc_relocations),
                ("block erases", ftl.stats.block_erases),
                ("wear spread (erases)", ftl.wear_spread()),
                ("corrupted pages", corrupted),
            ],
        )
    )

    # ECC-protected host interface on a fresh array.
    print("\nECC-protected controller (Hamming SECDED over 32-bit pages):")
    fresh = build_array(
        kernel, ArrayConfig(n_blocks=4, wordlines_per_block=8, bitlines=64)
    )
    controller = MemoryController(
        PageMappedFtl(fresh, overprovision_blocks=1),
        HammingCode(32),
        host_page_bits=32,
    )
    rng = np.random.default_rng(42)
    payloads = {i: rng.integers(0, 2, 32).astype(np.uint8) for i in range(12)}
    for page, bits in payloads.items():
        controller.write(page, bits)
    errors = sum(
        1
        for page, bits in payloads.items()
        if not (controller.read(page) == bits).all()
    )
    code = controller.code
    print(f"  pages written/read : {controller.stats.pages_written}/12")
    print(f"  payload errors     : {errors}")
    print(f"  bits corrected     : {controller.stats.bits_corrected}")
    print(
        f"  code overhead      : {code.overhead_fraction() * 100:.1f}% "
        f"({code.data_bits}->{code.codeword_bits} bits)"
    )


if __name__ == "__main__":
    main()
