"""Setuptools shim.

This environment is offline and has no ``wheel`` package, so PEP 517/660
isolated builds cannot work; a classic ``setup.py`` lets
``pip install -e .`` use the legacy develop path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
