"""Charge retention of the programmed cell.

With all terminals grounded the stored electrons see only their own
self-field across the two oxides, far below the FN regime; the residual
loss channels are direct tunneling and (after cycling) trap-assisted
tunneling. This module integrates the slow leakage ODE and extrapolates
the classic 10-year retention figure of merit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..electrostatics.gcr import TerminalVoltages
from ..errors import ConfigurationError
from ..solver.ode import integrate_ivp
from ..tunneling.direct import DirectTunnelingModel
from ..tunneling.trap_assisted import TrapAssistedModel
from .bias import BiasCondition
from .floating_gate import FloatingGateTransistor

#: Ten years in seconds -- the industry retention target.
TEN_YEARS_S = 10.0 * 365.25 * 24.0 * 3600.0


@dataclass(frozen=True)
class RetentionResult:
    """Outcome of a retention simulation.

    Attributes
    ----------
    t_s:
        Sample times [s].
    charge_c:
        Remaining stored charge [C].
    charge_after_10y_fraction:
        Remaining fraction of the initial charge after ten years.
    time_to_half_s:
        Extrapolated time for the charge to halve [s] (None if no decay
        was resolved).
    """

    t_s: np.ndarray = field(repr=False)
    charge_c: np.ndarray = field(repr=False)
    charge_after_10y_fraction: float
    time_to_half_s: "float | None"


@dataclass(frozen=True)
class RetentionModel:
    """Leakage model of an idle (grounded) programmed cell.

    Attributes
    ----------
    device:
        The cell.
    trap_density_m2:
        Tunnel-oxide trap density [1/m^2]; grows with P/E cycling (the
        reliability package supplies post-cycling values).
    """

    device: FloatingGateTransistor
    trap_density_m2: float = 0.0

    def leakage_current_a(self, charge_c: float) -> float:
        """Total charge-loss current [A] at a stored charge.

        Self-field only: V_FG = Q/C_T with all terminals grounded.
        Electrons leak back to the channel through the tunnel oxide
        (direct tunneling at the low self-field, plus TAT if the oxide
        is trapped) and toward the control gate through the control
        oxide.
        """
        rest_bias = BiasCondition(name="rest", voltages=TerminalVoltages())
        vfg = self.device.floating_gate_voltage(rest_bias, charge_c)
        area = self.device.geometry.channel_area_m2
        cg_area = area * self.device.geometry.control_gate_area_multiplier

        dt_tunnel = DirectTunnelingModel(self.device.tunnel_barrier)
        dt_control = DirectTunnelingModel(self.device.control_barrier)
        # Stored electrons make V_FG negative; the leakage discharges it.
        j_tunnel = dt_tunnel.current_density_from_voltage(vfg)
        j_control = dt_control.current_density_from_voltage(vfg)
        current = abs(j_tunnel) * area + abs(j_control) * cg_area

        if self.trap_density_m2 > 0.0:
            tat = TrapAssistedModel(
                self.device.tunnel_barrier,
                trap_density_m2=self.trap_density_m2,
            )
            field_mag = abs(vfg) / self.device.geometry.tunnel_oxide_thickness_m
            current += tat.current_density(field_mag) * area
        return current

    def simulate(
        self,
        initial_charge_c: float,
        duration_s: float = TEN_YEARS_S,
        n_samples: int = 200,
    ) -> RetentionResult:
        """Integrate the leakage ODE over ``duration_s``."""
        if initial_charge_c == 0.0:
            raise ConfigurationError("retention needs a programmed charge")
        if duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        sign = math.copysign(1.0, initial_charge_c)

        def rhs(_t: float, y: np.ndarray) -> np.ndarray:
            q = float(y[0])
            if q * sign <= 0.0:
                return np.array([0.0])
            # Leakage always reduces the charge magnitude.
            return np.array([-sign * self.leakage_current_a(q)])

        result = integrate_ivp(
            rhs,
            (0.0, duration_s),
            [initial_charge_c],
            method="LSODA",
            rtol=1e-6,
            atol=abs(initial_charge_c) * 1e-9,
        )
        t_out = np.geomspace(1.0, duration_s, n_samples)
        charge = np.interp(t_out, result.t, result.y[0])

        fraction_10y = float(
            np.interp(min(TEN_YEARS_S, duration_s), t_out, charge)
            / initial_charge_c
        )
        time_to_half = None
        ratio = charge / initial_charge_c
        below = np.nonzero(ratio <= 0.5)[0]
        if below.size:
            time_to_half = float(t_out[below[0]])
        elif ratio[-1] < 1.0 and ratio[-1] > 0.0:
            # Exponential extrapolation from the resolved decay.
            decay = -math.log(max(ratio[-1], 1e-12)) / t_out[-1]
            if decay > 0.0:
                time_to_half = math.log(2.0) / decay
        return RetentionResult(
            t_s=t_out,
            charge_c=charge,
            charge_after_10y_fraction=fraction_10y,
            time_to_half_s=time_to_half,
        )
