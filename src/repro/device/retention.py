"""Charge retention of the programmed cell.

With all terminals grounded the stored electrons see only their own
self-field across the two oxides, far below the FN regime; the residual
loss channels are direct tunneling and (after cycling) trap-assisted
tunneling. This module integrates the slow leakage ODE and extrapolates
the classic 10-year retention figure of merit.

Like the program/erase transients, retention runs on the array-valued
integrator: :meth:`RetentionModel.simulate_batch` advances many
initial charges (e.g. the levels of an MLC cell, or a trap-density
family after cycling) as one vector ODE state -- an adaptive
``solve_ivp`` over the whole batch with a declared diagonal Jacobian,
restarted at most once per lane zero crossing (each fully-discharged
lane ends the segment via a terminal event and is frozen), with the
leakage of every lane evaluated by one fused
:meth:`RetentionModel.leakage_current_batch` expression. The scalar
:meth:`RetentionModel.simulate` is the single-lane case and remains
bit-identical to its historical behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..electrostatics.gcr import TerminalVoltages
from ..errors import ConfigurationError
from ..solver.ode import integrate_ivp
from ..tunneling.direct import DirectTunnelingModel
from ..tunneling.trap_assisted import TrapAssistedModel
from .bias import BiasCondition
from .floating_gate import FloatingGateTransistor

#: Ten years in seconds -- the industry retention target.
TEN_YEARS_S = 10.0 * 365.25 * 24.0 * 3600.0


@dataclass(frozen=True)
class RetentionResult:
    """Outcome of a retention simulation.

    Attributes
    ----------
    t_s:
        Sample times [s].
    charge_c:
        Remaining stored charge [C].
    charge_after_10y_fraction:
        Remaining fraction of the initial charge after ten years.
    time_to_half_s:
        Extrapolated time for the charge to halve [s] (None if no decay
        was resolved).
    """

    t_s: np.ndarray = field(repr=False)
    charge_c: np.ndarray = field(repr=False)
    charge_after_10y_fraction: float
    time_to_half_s: "float | None"


@dataclass(frozen=True)
class RetentionModel:
    """Leakage model of an idle (grounded) programmed cell.

    Attributes
    ----------
    device:
        The cell.
    trap_density_m2:
        Tunnel-oxide trap density [1/m^2]; grows with P/E cycling (the
        reliability package supplies post-cycling values).
    """

    device: FloatingGateTransistor
    trap_density_m2: float = 0.0

    def leakage_current_a(self, charge_c: float) -> float:
        """Total charge-loss current [A] at a stored charge.

        Self-field only: V_FG = Q/C_T with all terminals grounded.
        Electrons leak back to the channel through the tunnel oxide
        (direct tunneling at the low self-field, plus TAT if the oxide
        is trapped) and toward the control gate through the control
        oxide.
        """
        rest_bias = BiasCondition(name="rest", voltages=TerminalVoltages())
        vfg = self.device.floating_gate_voltage(rest_bias, charge_c)
        area = self.device.geometry.channel_area_m2
        cg_area = area * self.device.geometry.control_gate_area_multiplier

        dt_tunnel = DirectTunnelingModel(self.device.tunnel_barrier)
        dt_control = DirectTunnelingModel(self.device.control_barrier)
        # Stored electrons make V_FG negative; the leakage discharges it.
        j_tunnel = dt_tunnel.current_density_from_voltage(vfg)
        j_control = dt_control.current_density_from_voltage(vfg)
        current = abs(j_tunnel) * area + abs(j_control) * cg_area

        if self.trap_density_m2 > 0.0:
            tat = TrapAssistedModel(
                self.device.tunnel_barrier,
                trap_density_m2=self.trap_density_m2,
            )
            field_mag = abs(vfg) / self.device.geometry.tunnel_oxide_thickness_m
            current += tat.current_density(field_mag) * area
        return current

    def _leakage_batch_fn(self):
        """Build the fused ``charges -> leakage current`` array kernel.

        Hoists everything that depends only on the model -- the rest
        bias, both direct-tunneling models, the TAT model and the areas
        -- out of the returned closure, so an ODE right-hand side can
        call it thousands of times without rebuilding a single
        dataclass per step.
        """
        rest_bias = BiasCondition(name="rest", voltages=TerminalVoltages())
        area = self.device.geometry.channel_area_m2
        cg_area = area * self.device.geometry.control_gate_area_multiplier
        oxide_thickness = self.device.geometry.tunnel_oxide_thickness_m
        dt_tunnel = DirectTunnelingModel(self.device.tunnel_barrier)
        dt_control = DirectTunnelingModel(self.device.control_barrier)
        tat = None
        if self.trap_density_m2 > 0.0:
            tat = TrapAssistedModel(
                self.device.tunnel_barrier,
                trap_density_m2=self.trap_density_m2,
            )
        device = self.device

        def leakage(charges_c) -> np.ndarray:
            charges = np.asarray(charges_c, dtype=float)
            vfg = np.asarray(
                device.floating_gate_voltage(rest_bias, charges)
            )
            j_tunnel = np.asarray(
                dt_tunnel.current_density_from_voltage(vfg)
            )
            j_control = np.asarray(
                dt_control.current_density_from_voltage(vfg)
            )
            current = np.abs(j_tunnel) * area + np.abs(j_control) * cg_area
            if tat is not None:
                fields = np.abs(vfg) / oxide_thickness
                current = current + tat.current_density_batch(fields) * area
            return current

        return leakage

    def leakage_current_batch(self, charges_c) -> np.ndarray:
        """Vectorized :meth:`leakage_current_a` over a charge array.

        One fused evaluation of the direct-tunneling closed forms (and
        the batched trap-assisted kernel when the oxide is trapped) for
        every lane; element ``i`` matches the scalar path at
        ``charges_c[i]`` to ~1e-12 relative. Repeated callers (ODE
        right-hand sides) should hoist :meth:`_leakage_batch_fn` once
        instead.
        """
        return self._leakage_batch_fn()(charges_c)

    def _integrate_leakage_lanes(
        self, initial: np.ndarray, signs: np.ndarray, duration_s: float
    ):
        """Advance the leakage ODE lanes; returns ``(t, y)`` lane-major.

        One lane runs the historical scalar closure verbatim (the
        golden-parity path); many lanes run as one vector state through
        a single ``solve_ivp`` call with a diagonal Jacobian band and a
        per-lane absolute tolerance.
        """
        if initial.size == 1:
            sign = float(signs[0])

            def rhs(_t: float, y: np.ndarray) -> np.ndarray:
                q = float(y[0])
                if q * sign <= 0.0:
                    return np.array([0.0])
                # Leakage always reduces the charge magnitude.
                return np.array([-sign * self.leakage_current_a(q)])

            result = integrate_ivp(
                rhs,
                (0.0, duration_s),
                [float(initial[0])],
                method="LSODA",
                rtol=1e-6,
                atol=abs(float(initial[0])) * 1e-9,
            )
            return result.t, result.y

        leakage = self._leakage_batch_fn()
        # Joint integration, segmented at the zero crossings. A lane
        # that fully discharges has a *discontinuous* right-hand side
        # (the leakage snaps to zero at the crossing); left inside a
        # multistep solve, that jump poisons the shared step-size
        # control long after the crossing. Instead each crossing is a
        # terminal event: the solver stops exactly there, the lane is
        # frozen, and integration restarts with a clean history. At
        # most ``n_lanes`` restarts, each one adaptive LSODA over the
        # whole vector state with a diagonal Jacobian band.
        frozen = np.zeros(initial.size, dtype=bool)
        t_parts = [np.array([0.0])]
        y_parts = [initial.reshape(-1, 1).copy()]
        t_now = 0.0
        y_now = initial.copy()
        while t_now < duration_s:

            def rhs_vec(_t: float, y: np.ndarray) -> np.ndarray:
                # No zero-crossing guard here: the leakage expression is
                # smooth through q = 0, and a discontinuous clamp would
                # sabotage the step control of the solver's *trial*
                # steps before the terminal event can truncate the
                # accepted one. Only event-frozen lanes are held.
                return np.where(frozen, 0.0, -signs * leakage(y))

            active = np.nonzero(~frozen)[0]
            events = []
            for lane in active:

                def crossing(_t: float, y: np.ndarray, lane=int(lane)):
                    return y[lane]

                crossing.terminal = True
                crossing.direction = float(-signs[lane])
                events.append(crossing)

            result = integrate_ivp(
                rhs_vec,
                (t_now, duration_s),
                y_now,
                method="LSODA",
                rtol=1e-6,
                atol=np.abs(initial) * 1e-9,
                lband=0,
                uband=0,
                events=events or None,
            )
            t_parts.append(result.t[1:])
            y_parts.append(result.y[:, 1:])
            t_now = result.final_time
            y_now = result.y[:, -1].copy()
            if not result.terminated_by_event:
                break
            fired = [
                lane
                for lane, times in zip(active, result.event_times)
                if times.size
            ]
            if not fired:  # defensive: never spin without progress
                break
            frozen[fired] = True
        return np.concatenate(t_parts), np.concatenate(y_parts, axis=1)

    def simulate_batch(
        self,
        initial_charges_c,
        duration_s: float = TEN_YEARS_S,
        n_samples: int = 200,
    ) -> "tuple[RetentionResult, ...]":
        """Integrate many retention lanes as one vector ODE state.

        ``initial_charges_c`` holds one programmed charge per lane (MLC
        levels, post-cycling trap-density studies, corner sweeps); the
        whole batch costs one adaptive joint solve, segmented at zero
        crossings (at most one ``solve_ivp`` restart per lane that
        fully discharges). Returns one :class:`RetentionResult` per
        lane, each the same shape as a scalar :meth:`simulate` call.
        """
        initial = np.atleast_1d(np.asarray(initial_charges_c, dtype=float))
        if initial.ndim != 1:
            raise ConfigurationError("initial charges must be a 1-D array")
        if np.any(initial == 0.0):
            raise ConfigurationError("retention needs a programmed charge")
        if duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        signs = np.sign(initial)

        t_solver, y_solver = self._integrate_leakage_lanes(
            initial, signs, duration_s
        )
        t_out = np.geomspace(1.0, duration_s, n_samples)
        results = []
        for i in range(initial.size):
            charge = np.interp(t_out, t_solver, y_solver[i])
            q0 = float(initial[i])
            fraction_10y = float(
                np.interp(min(TEN_YEARS_S, duration_s), t_out, charge) / q0
            )
            time_to_half = None
            ratio = charge / q0
            below = np.nonzero(ratio <= 0.5)[0]
            if below.size:
                time_to_half = float(t_out[below[0]])
            elif ratio[-1] < 1.0 and ratio[-1] > 0.0:
                # Exponential extrapolation from the resolved decay.
                decay = -math.log(max(ratio[-1], 1e-12)) / t_out[-1]
                if decay > 0.0:
                    time_to_half = math.log(2.0) / decay
            results.append(
                RetentionResult(
                    t_s=t_out,
                    charge_c=charge,
                    charge_after_10y_fraction=fraction_10y,
                    time_to_half_s=time_to_half,
                )
            )
        return tuple(results)

    def simulate(
        self,
        initial_charge_c: float,
        duration_s: float = TEN_YEARS_S,
        n_samples: int = 200,
    ) -> RetentionResult:
        """Integrate the leakage ODE over ``duration_s``.

        The single-lane case of :meth:`simulate_batch`; runs through the
        integrator's golden-parity path and stays bit-identical to the
        historical scalar implementation.
        """
        return self.simulate_batch(
            np.asarray([initial_charge_c]),
            duration_s=duration_s,
            n_samples=n_samples,
        )[0]
