"""The MLGNR-CNT floating-gate transistor model (paper Figures 1 and 3).

:class:`FloatingGateTransistor` assembles the full lumped device: the
MLGNR channel and floating gate, the CNT control gate, the two oxides,
the capacitive network of eq. (2), the floating-gate potential of
eq. (3), and the two Fowler-Nordheim junctions whose competition
(Jin through the tunnel oxide vs Jout through the control oxide) defines
the programming dynamics of Section III.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..electrostatics.gcr import TerminalVoltages, floating_gate_voltage
from ..electrostatics.stack import FloatingGateCapacitances, build_capacitances
from ..errors import ConfigurationError
from ..materials.base import DielectricMaterial, barrier_height_ev
from ..materials.cnt import CNT_WORK_FUNCTION_EV
from ..materials.graphene import GRAPHENE_WORK_FUNCTION_EV
from ..materials.oxides import SIO2
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.fowler_nordheim import FowlerNordheimModel
from ..tunneling.regimes import RegimeAssessment, classify_regime
from .bias import BiasCondition
from .geometry import DeviceGeometry


@dataclass(frozen=True)
class TunnelingState:
    """Instantaneous tunneling currents of the biased cell.

    Attributes
    ----------
    vfg_v:
        Floating-gate potential (eq. (3)) [V].
    jin_a_m2:
        Signed electron current density through the *tunnel* oxide
        [A/m^2]; positive = electrons flowing channel -> floating gate.
    jout_a_m2:
        Signed electron current density through the *control* oxide
        [A/m^2]; positive = electrons flowing floating gate -> control
        gate.
    net_current_a:
        Net charging current of the floating gate [A]; negative values
        accumulate electrons (programming).
    """

    vfg_v: float
    jin_a_m2: float
    jout_a_m2: float
    net_current_a: float


@dataclass(frozen=True)
class FloatingGateTransistor:
    """Lumped MLGNR-CNT floating-gate transistor.

    Attributes
    ----------
    geometry:
        Stack dimensions.
    tunnel_dielectric, control_dielectric:
        Oxide materials (SiO2 by default on both sides).
    channel_work_function_ev:
        Work function of the MLGNR channel [eV].
    floating_gate_work_function_ev:
        Work function of the MLGNR floating gate [eV].
    control_gate_work_function_ev:
        Work function of the CNT control gate [eV].
    """

    geometry: DeviceGeometry = field(default_factory=DeviceGeometry)
    tunnel_dielectric: DielectricMaterial = SIO2
    control_dielectric: DielectricMaterial = SIO2
    channel_work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV
    floating_gate_work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV
    control_gate_work_function_ev: float = CNT_WORK_FUNCTION_EV

    # ----- capacitive network -------------------------------------------

    @property
    def capacitances(self) -> FloatingGateCapacitances:
        """The eq. (2) network built from the geometry."""
        g = self.geometry
        return build_capacitances(
            control_dielectric=self.control_dielectric,
            tunnel_dielectric=self.tunnel_dielectric,
            control_oxide_thickness_m=g.control_oxide_thickness_m,
            tunnel_oxide_thickness_m=g.tunnel_oxide_thickness_m,
            channel_area_m2=g.channel_area_m2,
            control_gate_area_multiplier=g.control_gate_area_multiplier,
            source_overlap_fraction=g.source_overlap_fraction,
            drain_overlap_fraction=g.drain_overlap_fraction,
        )

    @property
    def gate_coupling_ratio(self) -> float:
        """GCR = C_FC / C_T."""
        return self.capacitances.gate_coupling_ratio

    def with_gate_coupling_ratio(self, gcr: float) -> "FloatingGateTransistor":
        """Copy of the device with the control-gate wrap resized for a GCR.

        Solves for the ``control_gate_area_multiplier`` that produces the
        requested coupling with everything else unchanged -- the physical
        realisation of the paper's GCR sweeps.
        """
        if not 0.0 < gcr < 1.0:
            raise ConfigurationError("GCR must lie strictly inside (0, 1)")
        base = self.capacitances
        target = base.scaled_to_gcr(gcr)
        multiplier = (
            self.geometry.control_gate_area_multiplier * target.cfc / base.cfc
        )
        return replace(
            self,
            geometry=replace(
                self.geometry, control_gate_area_multiplier=multiplier
            ),
        )

    # ----- tunnel junctions ---------------------------------------------

    @property
    def tunnel_barrier(self) -> TunnelBarrier:
        """Channel / tunnel-oxide junction (carries Jin)."""
        return TunnelBarrier.from_materials(
            self.channel_work_function_ev,
            self.tunnel_dielectric,
            self.geometry.tunnel_oxide_thickness_m,
        )

    @property
    def control_barrier(self) -> TunnelBarrier:
        """Floating-gate / control-oxide junction (carries Jout)."""
        return TunnelBarrier.from_materials(
            self.floating_gate_work_function_ev,
            self.control_dielectric,
            self.geometry.control_oxide_thickness_m,
        )

    @property
    def tunnel_fn_model(self) -> FowlerNordheimModel:
        """FN model of the tunnel oxide."""
        return FowlerNordheimModel(self.tunnel_barrier)

    @property
    def control_fn_model(self) -> FowlerNordheimModel:
        """FN model of the control oxide."""
        return FowlerNordheimModel(self.control_barrier)

    # ----- electrostatics -----------------------------------------------

    def floating_gate_voltage(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> float:
        """V_FG from eq. (3) under a bias with stored charge [V]."""
        return floating_gate_voltage(
            self.capacitances, bias.effective_voltages, charge_c
        )

    # ----- tunneling state ----------------------------------------------

    def tunneling_state(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> TunnelingState:
        """Instantaneous Jin/Jout/net current at a bias and stored charge.

        Sign conventions match paper Figures 4-5: during programming
        (positive V_GS) both Jin and Jout are positive, Jin charging the
        gate and Jout leaking toward the control gate; during erase both
        reverse sign.
        """
        voltages = bias.effective_voltages
        vfg = self.floating_gate_voltage(bias, charge_c)

        v_tunnel = vfg - voltages.vs
        jin = self.tunnel_fn_model.current_density_from_voltage(v_tunnel)

        v_control = voltages.vgs - vfg
        jout = self.control_fn_model.current_density_from_voltage(v_control)

        area = self.geometry.channel_area_m2
        cg_area = area * self.geometry.control_gate_area_multiplier
        # Electrons in through the tunnel oxide add -q each; electrons
        # out through the control oxide remove them.
        net = -(jin * area - jout * cg_area)
        return TunnelingState(
            vfg_v=vfg, jin_a_m2=jin, jout_a_m2=jout, net_current_a=net
        )

    def charge_derivative(self, bias: BiasCondition, charge_c: float) -> float:
        """dQ_FG/dt [C/s] -- the right-hand side of the transient ODE."""
        return self.tunneling_state(bias, charge_c).net_current_a

    def assess_regime(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> RegimeAssessment:
        """Conduction-regime classification of the tunnel oxide."""
        vfg = self.floating_gate_voltage(bias, charge_c)
        return classify_regime(
            self.tunnel_barrier, vfg - bias.effective_voltages.vs
        )

    # ----- derived quantities ---------------------------------------------

    def barrier_heights_ev(self) -> "tuple[float, float]":
        """(channel/tunnel-oxide, FG/control-oxide) barriers [eV]."""
        return (
            barrier_height_ev(
                self.channel_work_function_ev, self.tunnel_dielectric
            ),
            barrier_height_ev(
                self.floating_gate_work_function_ev, self.control_dielectric
            ),
        )
