"""The MLGNR-CNT floating-gate transistor model (paper Figures 1 and 3).

:class:`FloatingGateTransistor` assembles the full lumped device: the
MLGNR channel and floating gate, the CNT control gate, the two oxides,
the capacitive network of eq. (2), the floating-gate potential of
eq. (3), and the two Fowler-Nordheim junctions whose competition
(Jin through the tunnel oxide vs Jout through the control oxide) defines
the programming dynamics of Section III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..electrostatics.gcr import TerminalVoltages, floating_gate_voltage
from ..electrostatics.stack import FloatingGateCapacitances, build_capacitances
from ..errors import ConfigurationError
from ..materials.base import DielectricMaterial, barrier_height_ev
from ..materials.cnt import CNT_WORK_FUNCTION_EV
from ..materials.graphene import GRAPHENE_WORK_FUNCTION_EV
from ..materials.oxides import SIO2
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.fowler_nordheim import FowlerNordheimModel
from ..tunneling.regimes import RegimeAssessment, classify_regime
from .bias import BiasCondition
from .geometry import DeviceGeometry


@dataclass(frozen=True)
class TunnelingState:
    """Instantaneous tunneling currents of the biased cell.

    Attributes
    ----------
    vfg_v:
        Floating-gate potential (eq. (3)) [V].
    jin_a_m2:
        Signed electron current density through the *tunnel* oxide
        [A/m^2]; positive = electrons flowing channel -> floating gate.
    jout_a_m2:
        Signed electron current density through the *control* oxide
        [A/m^2]; positive = electrons flowing floating gate -> control
        gate.
    net_current_a:
        Net charging current of the floating gate [A]; negative values
        accumulate electrons (programming).
    """

    vfg_v: float
    jin_a_m2: float
    jout_a_m2: float
    net_current_a: float


@dataclass(frozen=True)
class BatchTunnelingState:
    """Vectorized :class:`TunnelingState`: one entry per batch lane.

    Every attribute is an ndarray with the (broadcast) shape of the
    charge array the batch was evaluated at; lane ``i`` holds exactly
    what ``tunneling_state`` would return for ``charges[i]``.
    """

    vfg_v: np.ndarray
    jin_a_m2: np.ndarray
    jout_a_m2: np.ndarray
    net_current_a: np.ndarray


@dataclass(frozen=True)
class CompiledCell:
    """Precomputed (device, bias) invariants of the transient hot path.

    Building :class:`FloatingGateTransistor` state lazily is convenient
    but expensive inside an ODE right-hand side: every call re-derives
    the eq. (2) network and both FN coefficient pairs from scratch. A
    compiled cell hoists all of that out once, leaving the per-step work
    as a handful of scalar flops (or one fused NumPy expression on the
    batch path). Produced by :meth:`FloatingGateTransistor.compiled`.

    Attributes
    ----------
    bias_term_vf:
        ``C_FC V_GS + C_FD V_DS + C_FS V_S + C_FB V_B`` [V*F] -- the
        charge-independent numerator of eq. (3).
    c_total_f:
        ``C_T`` [F].
    vgs_v, vs_v:
        Effective control-gate and source potentials [V].
    a_in, b_in, x_in_m:
        FN coefficients and thickness of the tunnel oxide.
    a_out, b_out, x_out_m:
        FN coefficients and thickness of the control oxide.
    area_m2, cg_area_m2:
        Channel and control-gate wrap areas [m^2].
    """

    bias_term_vf: float
    c_total_f: float
    vgs_v: float
    vs_v: float
    a_in: float
    b_in: float
    x_in_m: float
    a_out: float
    b_out: float
    x_out_m: float
    area_m2: float
    cg_area_m2: float

    def floating_gate_voltage(self, charge_c):
        """Eq. (3) potential for a scalar or ndarray of charges [V]."""
        return (self.bias_term_vf + charge_c) / self.c_total_f

    def _signed_fn_scalar(self, voltage_v: float, a: float, b: float, x: float) -> float:
        if voltage_v == 0.0:
            return 0.0
        field = abs(voltage_v) / x
        j = a * field * field * math.exp(-b / field)
        return j if voltage_v > 0.0 else -j

    def charge_derivative(self, charge_c: float) -> float:
        """dQ_FG/dt [C/s] with zero per-step allocation (ODE hot path)."""
        vfg = (self.bias_term_vf + charge_c) / self.c_total_f
        jin = self._signed_fn_scalar(
            vfg - self.vs_v, self.a_in, self.b_in, self.x_in_m
        )
        jout = self._signed_fn_scalar(
            self.vgs_v - vfg, self.a_out, self.b_out, self.x_out_m
        )
        return -(jin * self.area_m2 - jout * self.cg_area_m2)

    def net_current_at_vfg(self, vfg_v: float) -> float:
        """``Jin * A - Jout * A_CG`` at a floating-gate potential [A].

        The bisection objective of the equilibrium solve.
        """
        jin = self._signed_fn_scalar(
            vfg_v - self.vs_v, self.a_in, self.b_in, self.x_in_m
        )
        jout = self._signed_fn_scalar(
            self.vgs_v - vfg_v, self.a_out, self.b_out, self.x_out_m
        )
        return jin * self.area_m2 - jout * self.cg_area_m2

    def tunneling_state_batch(self, charges_c) -> BatchTunnelingState:
        """Vectorized Jin/Jout/net for an ndarray of stored charges.

        One fused NumPy evaluation replaces a Python loop of
        ``tunneling_state`` calls; element ``i`` matches the scalar path
        for ``charges_c[i]`` to floating-point round-off.
        """
        charges = np.asarray(charges_c, dtype=float)
        vfg = (self.bias_term_vf + charges) / self.c_total_f
        jin = _signed_fn_array(
            vfg - self.vs_v, self.a_in, self.b_in, self.x_in_m
        )
        jout = _signed_fn_array(
            self.vgs_v - vfg, self.a_out, self.b_out, self.x_out_m
        )
        net = -(jin * self.area_m2 - jout * self.cg_area_m2)
        return BatchTunnelingState(
            vfg_v=vfg, jin_a_m2=jin, jout_a_m2=jout, net_current_a=net
        )


def _signed_fn_array(voltage_v: np.ndarray, a: float, b: float, x: float) -> np.ndarray:
    """Signed FN density ``sign(V) * J(|V|/x)`` for an ndarray of voltages."""
    from ..tunneling.fowler_nordheim import fn_current_density

    field = np.abs(voltage_v) / x
    return np.sign(voltage_v) * fn_current_density(field, a, b)


def _signed_fn_lanes(
    voltage_v: np.ndarray, a: np.ndarray, b: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Signed FN density with *per-lane* coefficient arrays, warning-free.

    The ODE right-hand-side form of :func:`_signed_fn_array`: every
    argument is an array over the batch lanes and zero-field lanes are
    masked with ``np.divide(..., where=...)`` instead of an
    ``errstate`` context (entering one per RHS call costs more than the
    arithmetic itself at small lane counts).
    """
    field = np.abs(voltage_v) / x
    exponent = np.divide(
        b, field, out=np.full(field.shape, np.inf), where=field > 0.0
    )
    return np.sign(voltage_v) * (a * field * field * np.exp(-exponent))


@dataclass(frozen=True)
class CompiledCellBank:
    """Stacked :class:`CompiledCell` constants for a batch of lanes.

    The array-valued transient integrator advances many (device, bias)
    lanes as one vector ODE state; the bank hoists every per-lane
    invariant (eq. (2) network term, FN coefficient pairs, areas) into
    parallel ``(n_lanes,)`` arrays so the vector right-hand side is a
    single fused NumPy expression. The lanes are mutually independent:
    ``d(dQ_i/dt)/dQ_j = 0`` for ``i != j``, which is why the integrator
    may declare a diagonal Jacobian to the implicit solver.

    Attributes mirror :class:`CompiledCell` lane-wise; build one with
    :meth:`from_cells`.
    """

    bias_term_vf: np.ndarray = field(repr=False)
    c_total_f: np.ndarray = field(repr=False)
    vgs_v: np.ndarray = field(repr=False)
    vs_v: np.ndarray = field(repr=False)
    a_in: np.ndarray = field(repr=False)
    b_in: np.ndarray = field(repr=False)
    x_in_m: np.ndarray = field(repr=False)
    a_out: np.ndarray = field(repr=False)
    b_out: np.ndarray = field(repr=False)
    x_out_m: np.ndarray = field(repr=False)
    area_m2: np.ndarray = field(repr=False)
    cg_area_m2: np.ndarray = field(repr=False)

    @staticmethod
    def from_cells(cells: "Sequence[CompiledCell]") -> "CompiledCellBank":
        """Stack compiled cells into one bank (lane ``i`` = ``cells[i]``)."""
        if not cells:
            raise ConfigurationError("bank needs at least one compiled cell")

        def stack(name: str) -> np.ndarray:
            return np.array([getattr(cell, name) for cell in cells], dtype=float)

        return CompiledCellBank(
            bias_term_vf=stack("bias_term_vf"),
            c_total_f=stack("c_total_f"),
            vgs_v=stack("vgs_v"),
            vs_v=stack("vs_v"),
            a_in=stack("a_in"),
            b_in=stack("b_in"),
            x_in_m=stack("x_in_m"),
            a_out=stack("a_out"),
            b_out=stack("b_out"),
            x_out_m=stack("x_out_m"),
            area_m2=stack("area_m2"),
            cg_area_m2=stack("cg_area_m2"),
        )

    @property
    def n_lanes(self) -> int:
        """Number of stacked lanes."""
        return int(self.bias_term_vf.size)

    def floating_gate_voltage(self, charges_c: np.ndarray) -> np.ndarray:
        """Eq. (3) potential of every lane at its stored charge [V]."""
        return (self.bias_term_vf + charges_c) / self.c_total_f

    def charge_derivative(self, charges_c: np.ndarray) -> np.ndarray:
        """Vector ``dQ_i/dt`` [C/s] -- the batched transient ODE RHS.

        Lane ``i`` evaluates exactly the arithmetic of
        :meth:`CompiledCell.charge_derivative` for ``charges_c[i]``
        (agreement to floating-point round-off); the whole batch is one
        fused expression with no Python-level per-lane work.
        """
        vfg = (self.bias_term_vf + charges_c) / self.c_total_f
        jin = _signed_fn_lanes(vfg - self.vs_v, self.a_in, self.b_in, self.x_in_m)
        jout = _signed_fn_lanes(
            self.vgs_v - vfg, self.a_out, self.b_out, self.x_out_m
        )
        return -(jin * self.area_m2 - jout * self.cg_area_m2)

    def tunneling_state_batch(self, charges_c) -> BatchTunnelingState:
        """Lane-wise Jin/Jout/net for charges broadcastable to the lanes.

        ``charges_c`` may be ``(n_lanes,)`` (one charge per lane) or any
        shape broadcastable against it, e.g. ``(n_samples, n_lanes)``
        for a whole sampled trajectory.
        """
        charges = np.asarray(charges_c, dtype=float)
        vfg = (self.bias_term_vf + charges) / self.c_total_f
        jin = _signed_fn_lanes(vfg - self.vs_v, self.a_in, self.b_in, self.x_in_m)
        jout = _signed_fn_lanes(
            self.vgs_v - vfg, self.a_out, self.b_out, self.x_out_m
        )
        net = -(jin * self.area_m2 - jout * self.cg_area_m2)
        return BatchTunnelingState(
            vfg_v=vfg, jin_a_m2=jin, jout_a_m2=jout, net_current_a=net
        )


@dataclass(frozen=True)
class FloatingGateTransistor:
    """Lumped MLGNR-CNT floating-gate transistor.

    Attributes
    ----------
    geometry:
        Stack dimensions.
    tunnel_dielectric, control_dielectric:
        Oxide materials (SiO2 by default on both sides).
    channel_work_function_ev:
        Work function of the MLGNR channel [eV].
    floating_gate_work_function_ev:
        Work function of the MLGNR floating gate [eV].
    control_gate_work_function_ev:
        Work function of the CNT control gate [eV].
    """

    geometry: DeviceGeometry = field(default_factory=DeviceGeometry)
    tunnel_dielectric: DielectricMaterial = SIO2
    control_dielectric: DielectricMaterial = SIO2
    channel_work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV
    floating_gate_work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV
    control_gate_work_function_ev: float = CNT_WORK_FUNCTION_EV

    # ----- capacitive network -------------------------------------------

    @property
    def capacitances(self) -> FloatingGateCapacitances:
        """The eq. (2) network built from the geometry."""
        g = self.geometry
        return build_capacitances(
            control_dielectric=self.control_dielectric,
            tunnel_dielectric=self.tunnel_dielectric,
            control_oxide_thickness_m=g.control_oxide_thickness_m,
            tunnel_oxide_thickness_m=g.tunnel_oxide_thickness_m,
            channel_area_m2=g.channel_area_m2,
            control_gate_area_multiplier=g.control_gate_area_multiplier,
            source_overlap_fraction=g.source_overlap_fraction,
            drain_overlap_fraction=g.drain_overlap_fraction,
        )

    @property
    def gate_coupling_ratio(self) -> float:
        """GCR = C_FC / C_T."""
        return self.capacitances.gate_coupling_ratio

    def with_gate_coupling_ratio(self, gcr: float) -> "FloatingGateTransistor":
        """Copy of the device with the control-gate wrap resized for a GCR.

        Solves for the ``control_gate_area_multiplier`` that produces the
        requested coupling with everything else unchanged -- the physical
        realisation of the paper's GCR sweeps.
        """
        if not 0.0 < gcr < 1.0:
            raise ConfigurationError("GCR must lie strictly inside (0, 1)")
        base = self.capacitances
        target = base.scaled_to_gcr(gcr)
        multiplier = (
            self.geometry.control_gate_area_multiplier * target.cfc / base.cfc
        )
        return replace(
            self,
            geometry=replace(
                self.geometry, control_gate_area_multiplier=multiplier
            ),
        )

    # ----- tunnel junctions ---------------------------------------------

    @property
    def tunnel_barrier(self) -> TunnelBarrier:
        """Channel / tunnel-oxide junction (carries Jin)."""
        return TunnelBarrier.from_materials(
            self.channel_work_function_ev,
            self.tunnel_dielectric,
            self.geometry.tunnel_oxide_thickness_m,
        )

    @property
    def control_barrier(self) -> TunnelBarrier:
        """Floating-gate / control-oxide junction (carries Jout)."""
        return TunnelBarrier.from_materials(
            self.floating_gate_work_function_ev,
            self.control_dielectric,
            self.geometry.control_oxide_thickness_m,
        )

    @property
    def tunnel_fn_model(self) -> FowlerNordheimModel:
        """FN model of the tunnel oxide."""
        return FowlerNordheimModel(self.tunnel_barrier)

    @property
    def control_fn_model(self) -> FowlerNordheimModel:
        """FN model of the control oxide."""
        return FowlerNordheimModel(self.control_barrier)

    # ----- electrostatics -----------------------------------------------

    def floating_gate_voltage(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> float:
        """V_FG from eq. (3) under a bias with stored charge [V]."""
        return floating_gate_voltage(
            self.capacitances, bias.effective_voltages, charge_c
        )

    # ----- tunneling state ----------------------------------------------

    def tunneling_state(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> TunnelingState:
        """Instantaneous Jin/Jout/net current at a bias and stored charge.

        Sign conventions match paper Figures 4-5: during programming
        (positive V_GS) both Jin and Jout are positive, Jin charging the
        gate and Jout leaking toward the control gate; during erase both
        reverse sign.
        """
        voltages = bias.effective_voltages
        vfg = self.floating_gate_voltage(bias, charge_c)

        v_tunnel = vfg - voltages.vs
        jin = self.tunnel_fn_model.current_density_from_voltage(v_tunnel)

        v_control = voltages.vgs - vfg
        jout = self.control_fn_model.current_density_from_voltage(v_control)

        area = self.geometry.channel_area_m2
        cg_area = area * self.geometry.control_gate_area_multiplier
        # Electrons in through the tunnel oxide add -q each; electrons
        # out through the control oxide remove them.
        net = -(jin * area - jout * cg_area)
        return TunnelingState(
            vfg_v=vfg, jin_a_m2=jin, jout_a_m2=jout, net_current_a=net
        )

    def charge_derivative(self, bias: BiasCondition, charge_c: float) -> float:
        """dQ_FG/dt [C/s] -- the right-hand side of the transient ODE."""
        return self.tunneling_state(bias, charge_c).net_current_a

    def compiled(self, bias: BiasCondition) -> CompiledCell:
        """Hoist every (device, bias) invariant into a :class:`CompiledCell`.

        The compiled form evaluates the same eq. (3) + FN arithmetic as
        :meth:`tunneling_state` but with the capacitive network, FN
        coefficients and areas computed once instead of per call -- the
        fast path used by the transient integrator and the batch engine.
        """
        voltages = bias.effective_voltages
        caps = self.capacitances
        tunnel = self.tunnel_fn_model
        control = self.control_fn_model
        area = self.geometry.channel_area_m2
        return CompiledCell(
            bias_term_vf=(
                caps.cfc * voltages.vgs
                + caps.cfd * voltages.vds
                + caps.cfs * voltages.vs
                + caps.cfb * voltages.vb
            ),
            c_total_f=caps.total,
            vgs_v=voltages.vgs,
            vs_v=voltages.vs,
            a_in=tunnel.coefficient_a,
            b_in=tunnel.coefficient_b,
            x_in_m=tunnel.barrier.thickness_m,
            a_out=control.coefficient_a,
            b_out=control.coefficient_b,
            x_out_m=control.barrier.thickness_m,
            area_m2=area,
            cg_area_m2=area * self.geometry.control_gate_area_multiplier,
        )

    def tunneling_state_batch(
        self, bias: BiasCondition, charges_c
    ) -> BatchTunnelingState:
        """Vectorized :meth:`tunneling_state` over an array of charges.

        Compiles the cell once and evaluates every lane with fused NumPy
        arithmetic; lane ``i`` matches ``tunneling_state(bias,
        charges_c[i])`` to floating-point round-off.
        """
        return self.compiled(bias).tunneling_state_batch(charges_c)

    def assess_regime(
        self, bias: BiasCondition, charge_c: float = 0.0
    ) -> RegimeAssessment:
        """Conduction-regime classification of the tunnel oxide."""
        vfg = self.floating_gate_voltage(bias, charge_c)
        return classify_regime(
            self.tunnel_barrier, vfg - bias.effective_voltages.vs
        )

    # ----- derived quantities ---------------------------------------------

    def barrier_heights_ev(self) -> "tuple[float, float]":
        """(channel/tunnel-oxide, FG/control-oxide) barriers [eV]."""
        return (
            barrier_height_ev(
                self.channel_work_function_ev, self.tunnel_dielectric
            ),
            barrier_height_ev(
                self.floating_gate_work_function_ev, self.control_dielectric
            ),
        )
