"""Bias conditions for programming, erasing and reading.

The paper's conditions (Section III): programming applies +15 V at the
control gate with source and body grounded and a minimal 50 mV drain
voltage (to raise the electron density in the graphene channel; treated
as 0 V inside the electrostatic equations). Erase applies a negative
control-gate voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..electrostatics.gcr import TerminalVoltages


@dataclass(frozen=True)
class BiasCondition:
    """Named terminal-voltage set.

    Attributes
    ----------
    name:
        Human-readable label (``"program"``, ``"erase"``, ``"read"``).
    voltages:
        The four terminal voltages.
    drain_treated_as_ground:
        True when the small drain bias should be dropped inside the
        electrostatics (the paper's simplification for its 50 mV).
    """

    name: str
    voltages: TerminalVoltages
    drain_treated_as_ground: bool = True

    @property
    def effective_voltages(self) -> TerminalVoltages:
        """Voltages as used by the lumped model."""
        if self.drain_treated_as_ground:
            return replace(self.voltages, vds=0.0)
        return self.voltages

    def with_gate_voltage(self, vgs: float) -> "BiasCondition":
        """Copy with a different control-gate voltage (for sweeps)."""
        return replace(self, voltages=replace(self.voltages, vgs=vgs))


#: The paper's programming condition: V_GS = +15 V, V_DS = 50 mV.
PROGRAM_BIAS = BiasCondition(
    name="program",
    voltages=TerminalVoltages(vgs=15.0, vds=0.05, vs=0.0, vb=0.0),
)

#: The paper's erase condition: V_GS = -15 V.
ERASE_BIAS = BiasCondition(
    name="erase",
    voltages=TerminalVoltages(vgs=-15.0, vds=0.0, vs=0.0, vb=0.0),
)

#: A low-disturb read condition.
READ_BIAS = BiasCondition(
    name="read",
    voltages=TerminalVoltages(vgs=3.0, vds=0.5, vs=0.0, vb=0.0),
    drain_treated_as_ground=False,
)
