"""Landauer transport through the actual GNR band structure.

The simple :class:`repro.device.iv.ChannelIVModel` approximates the
mode count as linear in overdrive. This module computes the ballistic
drain current from the ribbon's tight-binding bands directly:

.. math::

    I_D = \\frac{2q}{h} \\int M(E)\\, T
          \\left[f(E - \\mu_s) - f(E - \\mu_d)\\right] dE

with the mode count ``M(E)`` from :class:`repro.bandstructure` and the
gate moving the band edges through the floating-gate stack's coupling.
The conductance staircase of a quantum wire -- plateaus at multiples of
``2q^2/h`` as subbands open -- is the signature behaviour the tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    PLANCK,
)
from ..errors import ConfigurationError
from ..materials.gnr import GrapheneNanoribbon

#: Spin-degenerate conductance quantum [S].
G0 = 2.0 * ELEMENTARY_CHARGE**2 / PLANCK


@dataclass(frozen=True)
class LandauerChannel:
    """Ballistic GNR channel with band-structure-derived modes.

    Attributes
    ----------
    ribbon:
        The channel ribbon (its TB bands supply M(E)).
    transmission:
        Energy-independent mode transmission (1 = ballistic).
    temperature_k:
        Contact temperature [K].
    gate_efficiency:
        How much the local band edge moves per volt of effective gate
        bias (the series capacitive divider through the FG stack).
    """

    ribbon: GrapheneNanoribbon
    transmission: float = 1.0
    temperature_k: float = 300.0
    gate_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.transmission <= 1.0:
            raise ConfigurationError("transmission must be in (0, 1]")
        if self.temperature_k <= 0.0:
            raise ConfigurationError("temperature must be positive")
        if not 0.0 < self.gate_efficiency <= 1.0:
            raise ConfigurationError("gate efficiency must be in (0, 1]")

    @cached_property
    def _band_extrema(self) -> "tuple[np.ndarray, np.ndarray]":
        """Cached per-band (min, max) energies [eV]."""
        bands = self.ribbon.band_structure.bands_ev
        return bands.min(axis=0), bands.max(axis=0)

    def _modes_at(self, energies_ev: np.ndarray) -> np.ndarray:
        """Vectorised mode count M(E) from the cached band extrema."""
        band_min, band_max = self._band_extrema
        e = np.asarray(energies_ev, dtype=float)[:, None]
        return np.sum((band_min <= e) & (e <= band_max), axis=1).astype(
            float
        )

    def mode_count(self, energy_ev: float) -> int:
        """Conduction modes at an energy (midgap = 0) [dimensionless]."""
        return self.ribbon.mode_count(energy_ev)

    def _fermi(self, energy_ev: np.ndarray, mu_ev: float) -> np.ndarray:
        kt_ev = BOLTZMANN * self.temperature_k / ELEMENTARY_CHARGE
        x = np.clip((energy_ev - mu_ev) / kt_ev, -400.0, 400.0)
        return 1.0 / (1.0 + np.exp(x))

    def drain_current_a(self, gate_overdrive_v: float, vds_v: float) -> float:
        """Ballistic drain current [A].

        ``gate_overdrive_v`` is the gate voltage beyond the flat-band
        point; the gate shifts the channel bands down by
        ``gate_efficiency * overdrive`` so positive overdrive pulls the
        conduction subbands toward the contact Fermi level (taken at
        midgap + 0 for a charge-neutral source).
        """
        if vds_v < 0.0:
            raise ConfigurationError("forward drain bias only")
        if vds_v == 0.0:
            return 0.0
        shift = self.gate_efficiency * gate_overdrive_v
        mu_source = 0.0
        mu_drain = -vds_v
        # Integrate on a grid localised to the bias window, resolved
        # well below kT so millivolt drain biases are captured.
        kt_ev = BOLTZMANN * self.temperature_k / ELEMENTARY_CHARGE
        e_lo = mu_drain + shift - 12.0 * kt_ev
        e_hi = mu_source + shift + 12.0 * kt_ev
        n_points = max(600, int((e_hi - e_lo) / (kt_ev / 6.0)))
        energies = np.linspace(e_lo, e_hi, min(n_points, 20000))
        modes = self._modes_at(energies)
        # Shifting the bands down by `shift` == raising mu by `shift`.
        occupancy = self._fermi(energies, mu_source + shift) - self._fermi(
            energies, mu_drain + shift
        )
        integral_ev = float(np.trapezoid(modes * occupancy, energies))
        return (
            2.0
            * ELEMENTARY_CHARGE
            / PLANCK
            * self.transmission
            * integral_ev
            * ELEMENTARY_CHARGE
        )

    def conductance_s(
        self, gate_overdrive_v: float, vds_v: float = 1e-3
    ) -> float:
        """Small-signal conductance ``I/V`` at small drain bias [S]."""
        return self.drain_current_a(gate_overdrive_v, vds_v) / vds_v

    def conductance_staircase(
        self, overdrives_v: np.ndarray
    ) -> np.ndarray:
        """Conductance (in units of G0) over a gate sweep.

        For a ballistic wire at low temperature this is the quantised
        staircase; thermal smearing rounds the steps.
        """
        return np.array(
            [
                self.conductance_s(float(v)) / G0
                for v in np.asarray(overdrives_v, dtype=float)
            ]
        )

    def subband_onsets_ev(self, max_energy_ev: float = 3.0) -> "list[float]":
        """Energies where new conduction modes open (subband edges)."""
        band_min, _ = self._band_extrema
        onsets = sorted(
            float(b) for b in band_min if 0.0 <= b <= max_energy_ev
        )
        return onsets
