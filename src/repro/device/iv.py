"""Drain-current model of the MLGNR-channel transistor (read path).

A ballistic Landauer model: the GNR channel carries

    I_D = (2 q^2 / h) * M(E) * V_DS_eff

per conduction mode, with thermal smearing of the mode count and a
simple saturation on V_DS. This is deliberately first-order -- the paper
does not model the channel I-V -- but it closes the loop for the memory
package: the sense amplifier needs an on-current that depends on the
overdrive, which depends on the stored charge through the threshold
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELEMENTARY_CHARGE, PLANCK, thermal_voltage
from ..electrostatics.gcr import threshold_shift_v
from ..errors import ConfigurationError
from .floating_gate import FloatingGateTransistor
from .threshold import ThresholdModel

#: Conductance quantum (spin-degenerate) [S].
G0 = 2.0 * ELEMENTARY_CHARGE**2 / PLANCK


@dataclass(frozen=True)
class ChannelIVModel:
    """Ballistic read-current model of one cell.

    Attributes
    ----------
    threshold:
        Threshold model providing V_T(Q).
    modes_per_volt:
        Conduction modes opened per volt of gate overdrive; a ribbon
        few nm wide opens its first handful of subbands within ~1 V.
    transmission:
        Average mode transmission (1 = fully ballistic).
    temperature_k:
        Lattice temperature for subthreshold smearing [K].
    """

    threshold: ThresholdModel
    modes_per_volt: float = 2.0
    transmission: float = 0.8
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.modes_per_volt <= 0.0:
            raise ConfigurationError("modes_per_volt must be positive")
        if not 0.0 < self.transmission <= 1.0:
            raise ConfigurationError("transmission must be in (0, 1]")

    @property
    def device(self) -> FloatingGateTransistor:
        return self.threshold.device

    def effective_modes(self, vgs: float, charge_c: float) -> float:
        """Thermally smeared number of open modes at a gate voltage."""
        vt = self.threshold.threshold_v(charge_c)
        overdrive = vgs - vt
        v_therm = thermal_voltage(self.temperature_k)
        # Softplus turn-on: linear above threshold, exponential below.
        x = overdrive / v_therm
        if x > 35.0:
            smoothed = overdrive
        else:
            smoothed = v_therm * math.log1p(math.exp(x))
        return self.modes_per_volt * smoothed

    def drain_current_a(
        self, vgs: float, vds: float, charge_c: float = 0.0
    ) -> float:
        """Drain current [A] of the cell at (V_GS, V_DS) and charge.

        Linear in V_DS up to the overdrive (charge-control saturation),
        constant beyond it.
        """
        if vds < 0.0:
            raise ConfigurationError(
                "model covers forward drain bias only (V_DS >= 0)"
            )
        modes = self.effective_modes(vgs, charge_c)
        vt = self.threshold.threshold_v(charge_c)
        overdrive = max(vgs - vt, thermal_voltage(self.temperature_k))
        vds_eff = min(vds, overdrive)
        return G0 * self.transmission * modes * vds_eff

    def drain_current_batch(self, vgs, vds, charges_c=0.0) -> np.ndarray:
        """Vectorized :meth:`drain_current_a` over broadcastable arrays.

        ``vgs``, ``vds`` and ``charges_c`` broadcast together (a read
        staircase against a column of stored charges evaluates the whole
        sense grid in one shot); element-wise results match the scalar
        path to floating-point round-off.
        """
        vgs_arr = np.asarray(vgs, dtype=float)
        vds_arr = np.asarray(vds, dtype=float)
        charges = np.asarray(charges_c, dtype=float)
        if np.any(vds_arr < 0.0):
            raise ConfigurationError(
                "model covers forward drain bias only (V_DS >= 0)"
            )
        vt = self.threshold.neutral_threshold_v + threshold_shift_v(
            charges, self.device.capacitances.cfc
        )
        overdrive = vgs_arr - vt
        v_therm = thermal_voltage(self.temperature_k)
        x = overdrive / v_therm
        # Softplus turn-on, saturated exactly like the scalar path.
        smoothed = np.where(
            x > 35.0,
            overdrive,
            v_therm * np.log1p(np.exp(np.minimum(x, 35.0))),
        )
        modes = self.modes_per_volt * smoothed
        vds_eff = np.minimum(vds_arr, np.maximum(overdrive, v_therm))
        return G0 * self.transmission * modes * vds_eff

    def on_off_ratio(
        self,
        read_vgs: float,
        read_vds: float,
        programmed_charge_c: float,
        erased_charge_c: float = 0.0,
    ) -> float:
        """Read-current ratio between erased ('1') and programmed ('0').

        The sense margin of the memory cell; large ratios make sensing
        robust to Vt-distribution spread.
        """
        i_erased = self.drain_current_a(read_vgs, read_vds, erased_charge_c)
        i_programmed = self.drain_current_a(
            read_vgs, read_vds, programmed_charge_c
        )
        if i_programmed <= 0.0:
            return math.inf
        return i_erased / i_programmed
