"""The MLGNR-CNT floating-gate transistor and its dynamics.

The paper's device (Figures 1 and 3): geometry, bias conditions, the
lumped transistor model with its two FN junctions, program/erase
transients (Figures 4-5), threshold/readout models, retention, memory
window and pulse waveforms.
"""

from .baselines import (
    barrier_advantage_ev,
    mlgnr_reference_fgt,
    silicon_baseline_fgt,
)
from .bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS, READ_BIAS
from .floating_gate import (
    BatchTunnelingState,
    CompiledCell,
    CompiledCellBank,
    FloatingGateTransistor,
    TunnelingState,
)
from .geometry import DeviceGeometry
from .iv import G0, ChannelIVModel
from .landauer import LandauerChannel
from .memory_window import (
    MemoryWindow,
    pulsed_memory_window,
    saturated_memory_window,
)
from .retention import TEN_YEARS_S, RetentionModel, RetentionResult
from .threshold import ThresholdModel
from .transient import (
    TransientBatchResult,
    TransientResult,
    equilibrium_charge,
    equilibrium_floating_gate_voltage,
    simulate_transient,
    simulate_transient_batch,
)
from .waveforms import (
    PulseStep,
    PulseTrain,
    WaveformResult,
    apply_pulse_train,
)

__all__ = [
    "DeviceGeometry",
    "BiasCondition",
    "PROGRAM_BIAS",
    "ERASE_BIAS",
    "READ_BIAS",
    "FloatingGateTransistor",
    "TunnelingState",
    "BatchTunnelingState",
    "CompiledCell",
    "CompiledCellBank",
    "silicon_baseline_fgt",
    "mlgnr_reference_fgt",
    "barrier_advantage_ev",
    "TransientResult",
    "TransientBatchResult",
    "simulate_transient",
    "simulate_transient_batch",
    "equilibrium_charge",
    "equilibrium_floating_gate_voltage",
    "ThresholdModel",
    "ChannelIVModel",
    "LandauerChannel",
    "G0",
    "MemoryWindow",
    "saturated_memory_window",
    "pulsed_memory_window",
    "RetentionModel",
    "RetentionResult",
    "TEN_YEARS_S",
    "PulseStep",
    "PulseTrain",
    "WaveformResult",
    "apply_pulse_train",
]
