"""Programming / erasing transients (paper Section III, Figures 4-5).

Integrates the floating-gate charge ODE

    dQ_FG/dt = -(Jin * A_tunnel - Jout * A_control)

with both current densities re-evaluated from eq. (3) at every step:
as electrons accumulate, V_FG falls, Jin decays and Jout grows. The two
densities converge to a common value; the stored charge at that point is
the maximum programmable charge (the paper's Q at t_sat).

Because Jin and Jout approach each other *asymptotically* (the net
charging current vanishes smoothly at equilibrium), the implementation
defines ``t_sat`` operationally as the time at which the stored charge
reaches a fraction ``1 - saturation_epsilon`` of its equilibrium value;
the paper's Figure 5 draws the same event schematically as a crossing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..solver.ode import integrate_ivp, integrate_rk4
from ..solver.rootfind import bisect
from .bias import BiasCondition
from .floating_gate import CompiledCellBank, FloatingGateTransistor


@dataclass(frozen=True)
class TransientResult:
    """Sampled trajectory of one program or erase transient.

    Attributes
    ----------
    t_s:
        Sample times [s].
    charge_c:
        Stored floating-gate charge [C] (negative = electrons).
    vfg_v:
        Floating-gate potential [V].
    jin_a_m2, jout_a_m2:
        Signed tunnel- and control-oxide current densities [A/m^2].
    q_equilibrium_c:
        Charge at which Jin and Jout balance [C].
    t_sat_s:
        Time at which the charge reached ``1 - epsilon`` of equilibrium
        [s]; None if the integration window was too short.
    """

    t_s: np.ndarray = field(repr=False)
    charge_c: np.ndarray = field(repr=False)
    vfg_v: np.ndarray = field(repr=False)
    jin_a_m2: np.ndarray = field(repr=False)
    jout_a_m2: np.ndarray = field(repr=False)
    q_equilibrium_c: float = 0.0
    t_sat_s: "float | None" = None

    @property
    def final_charge_c(self) -> float:
        return float(self.charge_c[-1])

    @property
    def stored_electrons(self) -> float:
        """Magnitude of stored charge in electron counts."""
        from ..constants import ELEMENTARY_CHARGE

        return abs(self.final_charge_c) / ELEMENTARY_CHARGE

    def saturation_fraction(self) -> float:
        """How far the transient got toward equilibrium (0..1)."""
        if self.q_equilibrium_c == 0.0:
            return 1.0
        return float(
            np.clip(self.final_charge_c / self.q_equilibrium_c, 0.0, 1.0)
        )


def equilibrium_floating_gate_voltage(
    device: FloatingGateTransistor, bias: BiasCondition
) -> float:
    """V_FG at which Jin and Jout balance (net charging current zero) [V].

    Jin rises monotonically with V_FG while Jout falls, so the balance
    point is unique; it is bracketed between the source potential and
    the control-gate voltage and found by bisection (robust across the
    ~30 decades the FN characteristics span).
    """
    voltages = bias.effective_voltages
    vgs = voltages.vgs
    vs = voltages.vs
    if vgs == vs:
        raise ConfigurationError(
            "equilibrium is undefined with no gate-to-source voltage"
        )

    from ..engine.cache import compiled_cell

    cell = compiled_cell(device, bias)
    lo, hi = (vs, vgs) if vgs > vs else (vgs, vs)
    span = hi - lo
    return bisect(
        cell.net_current_at_vfg, lo + 1e-9 * span, hi - 1e-9 * span,
        tol=1e-12 * span,
    )


def equilibrium_charge(
    device: FloatingGateTransistor, bias: BiasCondition
) -> float:
    """Stored charge at the Jin = Jout balance point [C].

    Inverts eq. (3): ``Q = (V_FG* - GCR' V_GS - ...) * C_T`` via the full
    capacitive divider. During programming this is the paper's maximum
    accumulable charge (Section III).
    """
    from ..electrostatics.gcr import charge_for_floating_gate_voltage

    vfg_star = equilibrium_floating_gate_voltage(device, bias)
    return charge_for_floating_gate_voltage(
        device.capacitances, bias.effective_voltages, vfg_star
    )


@dataclass(frozen=True)
class TransientBatchResult:
    """Many program/erase transients advanced as one vector ODE state.

    Attributes
    ----------
    t_s:
        Shared (geometric) sample grid [s], shape ``(n_samples,)``.
    charge_c, vfg_v, jin_a_m2, jout_a_m2:
        Lane-major trajectories, shape ``(n_lanes, n_samples)``.
    q_equilibrium_c:
        Per-lane Jin = Jout balance charge [C], shape ``(n_lanes,)``.
    t_sat_s:
        Per-lane saturation times [s]; NaN where the pulse ended first.
    results:
        Per-lane :class:`TransientResult` views over the same arrays --
        the scalar-API form sweep consumers already understand.
    """

    t_s: np.ndarray = field(repr=False)
    charge_c: np.ndarray = field(repr=False)
    vfg_v: np.ndarray = field(repr=False)
    jin_a_m2: np.ndarray = field(repr=False)
    jout_a_m2: np.ndarray = field(repr=False)
    q_equilibrium_c: np.ndarray = field(repr=False)
    t_sat_s: np.ndarray = field(repr=False)
    results: "tuple[TransientResult, ...]" = field(repr=False)

    @property
    def n_lanes(self) -> int:
        """Number of integrated lanes."""
        return int(self.charge_c.shape[0])


def _integrate_charge_lanes(
    cells,
    initial_charges_c: np.ndarray,
    duration_s: float,
    t_first_sample_s: float,
    method: str,
    rk4_steps: int,
):
    """Advance the stacked charge ODE lanes; returns ``(t, y)``.

    Three regimes, one contract (``y`` has shape ``(n_lanes, n_t)``):

    * one lane with ``method="lsoda"`` -- the **golden-parity path**: the
      historical scalar closure and solver settings, reproduced verbatim
      so single-cell callers (every figure experiment) stay bit-stable;
    * many lanes with ``method="lsoda"`` -- one adaptive ``solve_ivp``
      over the vector state with a declared diagonal Jacobian band
      (``lband=uband=0``), so the implicit solver's finite-difference
      Jacobian costs one extra RHS call instead of one per lane;
    * ``method="rk4"`` -- fixed-step RK4 on a geometric grid: slightly
      more RHS work, but bit-stable against batch composition (lane
      arithmetic is elementwise), the property the parity suite pins.
    """
    if method == "rk4":
        grid = np.concatenate(
            [[0.0], np.geomspace(t_first_sample_s, duration_s, rk4_steps)]
        )
        bank = CompiledCellBank.from_cells(cells)

        def rhs_vec(_t: float, y: np.ndarray) -> np.ndarray:
            return bank.charge_derivative(y)

        result = integrate_rk4(rhs_vec, grid, initial_charges_c)
        return result.t, result.y
    if method != "lsoda":
        raise ConfigurationError(
            f"unknown transient integration method {method!r}; "
            "use 'lsoda' or 'rk4'"
        )
    if len(cells) == 1:
        cell = cells[0]

        def rhs(_t: float, y: np.ndarray) -> np.ndarray:
            return np.array([cell.charge_derivative(float(y[0]))])

        result = integrate_ivp(
            rhs,
            (0.0, duration_s),
            [float(initial_charges_c[0])],
            method="LSODA",
            rtol=1e-8,
            atol=1e-24,
        )
        return result.t, result.y
    bank = CompiledCellBank.from_cells(cells)

    def rhs_vec(_t: float, y: np.ndarray) -> np.ndarray:
        return bank.charge_derivative(y)

    result = integrate_ivp(
        rhs_vec,
        (0.0, duration_s),
        initial_charges_c,
        method="LSODA",
        rtol=1e-8,
        atol=1e-24,
        lband=0,
        uband=0,
    )
    return result.t, result.y


def simulate_transient_batch(
    device: FloatingGateTransistor,
    biases: "Sequence[BiasCondition]",
    initial_charges_c=0.0,
    duration_s: float = 1e-3,
    n_samples: int = 400,
    saturation_epsilon: float = 0.01,
    t_first_sample_s: float = 1e-12,
    method: str = "lsoda",
    rk4_steps: int = 2000,
) -> TransientBatchResult:
    """Integrate a batch of transients as one vector ODE state.

    The array-valued core of the transient layer: one ``solve_ivp``
    call (or one fixed-step RK4 pass, ``method="rk4"``) advances every
    (device, bias) lane together instead of paying the adaptive
    solver's Python overhead once per lane. The scalar
    :func:`simulate_transient` is the single-lane case and remains
    bit-identical to its historical behaviour.

    Parameters
    ----------
    device:
        The cell, shared by every lane.
    biases:
        One applied bias per lane.
    initial_charges_c:
        Stored charge at t = 0; scalar (shared) or one value per lane.
    duration_s, n_samples, saturation_epsilon, t_first_sample_s:
        As :func:`simulate_transient`; the geometric output grid is
        shared by all lanes.
    method:
        ``"lsoda"`` (adaptive, default) or ``"rk4"`` (fixed geometric
        steps; bit-stable against batch composition).
    rk4_steps:
        Number of geometric RK4 steps when ``method="rk4"``.
    """
    biases = tuple(biases)
    if not biases:
        raise ConfigurationError("need at least one bias lane")
    if duration_s <= 0.0:
        raise ConfigurationError("duration must be positive")
    if n_samples < 8:
        raise ConfigurationError("need at least 8 samples")
    if not 0.0 < saturation_epsilon < 1.0:
        raise ConfigurationError("saturation epsilon must be in (0, 1)")
    if rk4_steps < 8:
        raise ConfigurationError("need at least 8 RK4 steps")

    n_lanes = len(biases)
    try:
        initial = np.broadcast_to(
            np.asarray(initial_charges_c, dtype=float), (n_lanes,)
        ).astype(float)
    except ValueError:
        raise ConfigurationError(
            f"initial charges (shape "
            f"{np.shape(initial_charges_c)}) do not broadcast against "
            f"{n_lanes} bias lanes"
        ) from None

    # The engine cache shares one compiled cell per lane between this
    # ODE, the equilibrium solves below, and any surrounding sweep
    # (imported lazily: the engine layers above the device package).
    from ..engine.cache import compiled_cell

    cells = [compiled_cell(device, bias) for bias in biases]
    t_solver, y_solver = _integrate_charge_lanes(
        cells, initial, duration_s, t_first_sample_s, method, rk4_steps
    )

    # Resample every lane on a shared geometric time grid (the solver's
    # own steps are kept as the interpolation support).
    t_geo = np.geomspace(t_first_sample_s, duration_s, n_samples - 1)
    t_out = np.concatenate([[0.0], t_geo])
    charge = np.empty((n_lanes, t_out.size))
    for i in range(n_lanes):
        charge[i] = np.interp(t_out, t_solver, y_solver[i])

    # One fused batch evaluation per lane replaces the former
    # per-sample loop of scalar tunneling_state calls.
    vfg = np.empty_like(charge)
    jin = np.empty_like(charge)
    jout = np.empty_like(charge)
    for i, cell in enumerate(cells):
        states = cell.tunneling_state_batch(charge[i])
        vfg[i] = states.vfg_v
        jin[i] = states.jin_a_m2
        jout[i] = states.jout_a_m2

    q_eq = np.array(
        [equilibrium_charge(device, bias) for bias in biases]
    )
    t_sat = np.full(n_lanes, np.nan)
    for i in range(n_lanes):
        delta_total = q_eq[i] - initial[i]
        if delta_total != 0.0:
            progress = (charge[i] - initial[i]) / delta_total
            reached = np.nonzero(progress >= 1.0 - saturation_epsilon)[0]
            if reached.size:
                t_sat[i] = float(t_out[reached[0]])

    results = tuple(
        TransientResult(
            t_s=t_out,
            charge_c=charge[i],
            vfg_v=vfg[i],
            jin_a_m2=jin[i],
            jout_a_m2=jout[i],
            q_equilibrium_c=float(q_eq[i]),
            t_sat_s=None if np.isnan(t_sat[i]) else float(t_sat[i]),
        )
        for i in range(n_lanes)
    )
    return TransientBatchResult(
        t_s=t_out,
        charge_c=charge,
        vfg_v=vfg,
        jin_a_m2=jin,
        jout_a_m2=jout,
        q_equilibrium_c=q_eq,
        t_sat_s=t_sat,
        results=results,
    )


def simulate_transient(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    initial_charge_c: float = 0.0,
    duration_s: float = 1e-3,
    n_samples: int = 400,
    saturation_epsilon: float = 0.01,
    t_first_sample_s: float = 1e-12,
) -> TransientResult:
    """Integrate one programming or erase transient.

    The single-lane case of :func:`simulate_transient_batch`; the
    adaptive integration runs through the batch integrator's
    golden-parity path, so results are bit-identical to the historical
    scalar implementation.

    Parameters
    ----------
    device, bias:
        The cell and the applied bias.
    initial_charge_c:
        Stored charge at t = 0 (0 for a fresh program; the programmed
        charge for an erase).
    duration_s:
        Pulse length [s].
    n_samples:
        Number of (geometrically spaced) output samples; tunneling
        transients span many decades in time.
    saturation_epsilon:
        Fraction of the equilibrium charge defining ``t_sat``.
    """
    batch = simulate_transient_batch(
        device,
        (bias,),
        initial_charges_c=initial_charge_c,
        duration_s=duration_s,
        n_samples=n_samples,
        saturation_epsilon=saturation_epsilon,
        t_first_sample_s=t_first_sample_s,
    )
    return batch.results[0]
