"""Programming / erasing transients (paper Section III, Figures 4-5).

Integrates the floating-gate charge ODE

    dQ_FG/dt = -(Jin * A_tunnel - Jout * A_control)

with both current densities re-evaluated from eq. (3) at every step:
as electrons accumulate, V_FG falls, Jin decays and Jout grows. The two
densities converge to a common value; the stored charge at that point is
the maximum programmable charge (the paper's Q at t_sat).

Because Jin and Jout approach each other *asymptotically* (the net
charging current vanishes smoothly at equilibrium), the implementation
defines ``t_sat`` operationally as the time at which the stored charge
reaches a fraction ``1 - saturation_epsilon`` of its equilibrium value;
the paper's Figure 5 draws the same event schematically as a crossing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..solver.ode import integrate_ivp
from ..solver.rootfind import bisect
from .bias import BiasCondition
from .floating_gate import FloatingGateTransistor


@dataclass(frozen=True)
class TransientResult:
    """Sampled trajectory of one program or erase transient.

    Attributes
    ----------
    t_s:
        Sample times [s].
    charge_c:
        Stored floating-gate charge [C] (negative = electrons).
    vfg_v:
        Floating-gate potential [V].
    jin_a_m2, jout_a_m2:
        Signed tunnel- and control-oxide current densities [A/m^2].
    q_equilibrium_c:
        Charge at which Jin and Jout balance [C].
    t_sat_s:
        Time at which the charge reached ``1 - epsilon`` of equilibrium
        [s]; None if the integration window was too short.
    """

    t_s: np.ndarray = field(repr=False)
    charge_c: np.ndarray = field(repr=False)
    vfg_v: np.ndarray = field(repr=False)
    jin_a_m2: np.ndarray = field(repr=False)
    jout_a_m2: np.ndarray = field(repr=False)
    q_equilibrium_c: float = 0.0
    t_sat_s: "float | None" = None

    @property
    def final_charge_c(self) -> float:
        return float(self.charge_c[-1])

    @property
    def stored_electrons(self) -> float:
        """Magnitude of stored charge in electron counts."""
        from ..constants import ELEMENTARY_CHARGE

        return abs(self.final_charge_c) / ELEMENTARY_CHARGE

    def saturation_fraction(self) -> float:
        """How far the transient got toward equilibrium (0..1)."""
        if self.q_equilibrium_c == 0.0:
            return 1.0
        return float(
            np.clip(self.final_charge_c / self.q_equilibrium_c, 0.0, 1.0)
        )


def equilibrium_floating_gate_voltage(
    device: FloatingGateTransistor, bias: BiasCondition
) -> float:
    """V_FG at which Jin and Jout balance (net charging current zero) [V].

    Jin rises monotonically with V_FG while Jout falls, so the balance
    point is unique; it is bracketed between the source potential and
    the control-gate voltage and found by bisection (robust across the
    ~30 decades the FN characteristics span).
    """
    voltages = bias.effective_voltages
    vgs = voltages.vgs
    vs = voltages.vs
    if vgs == vs:
        raise ConfigurationError(
            "equilibrium is undefined with no gate-to-source voltage"
        )

    from ..engine.cache import compiled_cell

    cell = compiled_cell(device, bias)
    lo, hi = (vs, vgs) if vgs > vs else (vgs, vs)
    span = hi - lo
    return bisect(
        cell.net_current_at_vfg, lo + 1e-9 * span, hi - 1e-9 * span,
        tol=1e-12 * span,
    )


def equilibrium_charge(
    device: FloatingGateTransistor, bias: BiasCondition
) -> float:
    """Stored charge at the Jin = Jout balance point [C].

    Inverts eq. (3): ``Q = (V_FG* - GCR' V_GS - ...) * C_T`` via the full
    capacitive divider. During programming this is the paper's maximum
    accumulable charge (Section III).
    """
    from ..electrostatics.gcr import charge_for_floating_gate_voltage

    vfg_star = equilibrium_floating_gate_voltage(device, bias)
    return charge_for_floating_gate_voltage(
        device.capacitances, bias.effective_voltages, vfg_star
    )


def simulate_transient(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    initial_charge_c: float = 0.0,
    duration_s: float = 1e-3,
    n_samples: int = 400,
    saturation_epsilon: float = 0.01,
    t_first_sample_s: float = 1e-12,
) -> TransientResult:
    """Integrate one programming or erase transient.

    Parameters
    ----------
    device, bias:
        The cell and the applied bias.
    initial_charge_c:
        Stored charge at t = 0 (0 for a fresh program; the programmed
        charge for an erase).
    duration_s:
        Pulse length [s].
    n_samples:
        Number of (geometrically spaced) output samples; tunneling
        transients span many decades in time.
    saturation_epsilon:
        Fraction of the equilibrium charge defining ``t_sat``.
    """
    if duration_s <= 0.0:
        raise ConfigurationError("duration must be positive")
    if n_samples < 8:
        raise ConfigurationError("need at least 8 samples")
    if not 0.0 < saturation_epsilon < 1.0:
        raise ConfigurationError("saturation epsilon must be in (0, 1)")

    # The engine cache shares one compiled cell between this ODE, the
    # equilibrium solve below, and any surrounding sweep (imported
    # lazily: the engine layers above the device package).
    from ..engine.cache import compiled_cell

    cell = compiled_cell(device, bias)

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        return np.array([cell.charge_derivative(float(y[0]))])

    result = integrate_ivp(
        rhs,
        (0.0, duration_s),
        [initial_charge_c],
        method="LSODA",
        rtol=1e-8,
        atol=1e-24,
    )

    # Resample on a geometric time grid (the solver's own steps are kept
    # as the interpolation support).
    t_geo = np.geomspace(t_first_sample_s, duration_s, n_samples - 1)
    t_out = np.concatenate([[0.0], t_geo])
    charge = np.interp(t_out, result.t, result.y[0])

    # One fused batch evaluation replaces the former per-sample loop of
    # scalar tunneling_state calls (the n_samples x dataclass-rebuild
    # cost dominated the whole simulation for long sample grids).
    states = cell.tunneling_state_batch(charge)
    vfg = states.vfg_v
    jin = states.jin_a_m2
    jout = states.jout_a_m2

    q_eq = equilibrium_charge(device, bias)
    t_sat = None
    delta_total = q_eq - initial_charge_c
    if delta_total != 0.0:
        progress = (charge - initial_charge_c) / delta_total
        reached = np.nonzero(progress >= 1.0 - saturation_epsilon)[0]
        if reached.size:
            t_sat = float(t_out[reached[0]])

    return TransientResult(
        t_s=t_out,
        charge_c=charge,
        vfg_v=vfg,
        jin_a_m2=jin,
        jout_a_m2=jout,
        q_equilibrium_c=q_eq,
        t_sat_s=t_sat,
    )
