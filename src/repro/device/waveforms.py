"""Gate-voltage waveforms: single pulses and ISPP staircases.

Array-level programming uses pulse trains rather than one long DC
stress. A :class:`PulseTrain` applies a sequence of (voltage, duration)
steps to a device, chaining the transients so each pulse starts from the
charge the previous one left behind -- exactly how incremental step
pulse programming (ISPP) walks the threshold to its target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .bias import BiasCondition
from .floating_gate import FloatingGateTransistor
from .transient import TransientResult, simulate_transient


@dataclass(frozen=True)
class PulseStep:
    """One constant-voltage segment of a waveform."""

    gate_voltage_v: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("pulse duration must be positive")


@dataclass(frozen=True)
class PulseTrain:
    """A sequence of gate pulses applied back-to-back."""

    steps: "tuple[PulseStep, ...]"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("a pulse train needs at least one step")

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s for s in self.steps)

    @staticmethod
    def square(voltage_v: float, duration_s: float) -> "PulseTrain":
        """Single square pulse."""
        return PulseTrain(steps=(PulseStep(voltage_v, duration_s),))

    @staticmethod
    def ispp(
        start_v: float,
        step_v: float,
        n_pulses: int,
        pulse_duration_s: float,
    ) -> "PulseTrain":
        """Incremental step pulse programming staircase.

        Each pulse is ``step_v`` higher than the last; NAND programming
        uses this to converge the threshold with tight distribution.
        """
        if n_pulses < 1:
            raise ConfigurationError("need at least one pulse")
        if step_v <= 0.0:
            raise ConfigurationError("ISPP step must be positive")
        return PulseTrain(
            steps=tuple(
                PulseStep(start_v + i * step_v, pulse_duration_s)
                for i in range(n_pulses)
            )
        )


@dataclass(frozen=True)
class WaveformResult:
    """Concatenated transient across all pulses of a train.

    Attributes
    ----------
    per_pulse:
        The individual transients, in order.
    charge_after_each_c:
        Stored charge after each pulse [C].
    """

    per_pulse: "tuple[TransientResult, ...]" = field(repr=False)
    charge_after_each_c: np.ndarray = field(repr=False)

    @property
    def final_charge_c(self) -> float:
        return float(self.charge_after_each_c[-1])


def apply_pulse_train(
    device: FloatingGateTransistor,
    base_bias: BiasCondition,
    train: PulseTrain,
    initial_charge_c: float = 0.0,
    samples_per_pulse: int = 60,
) -> WaveformResult:
    """Run a pulse train, chaining stored charge between pulses."""
    charge = initial_charge_c
    transients = []
    after = []
    for step in train.steps:
        bias = base_bias.with_gate_voltage(step.gate_voltage_v)
        result = simulate_transient(
            device,
            bias,
            initial_charge_c=charge,
            duration_s=step.duration_s,
            n_samples=samples_per_pulse,
        )
        charge = result.final_charge_c
        transients.append(result)
        after.append(charge)
    return WaveformResult(
        per_pulse=tuple(transients),
        charge_after_each_c=np.array(after),
    )
