"""Baseline devices the paper compares against.

Section II of the paper frames the proposal against the conventional
silicon floating-gate transistor ("around 15-20V for conventional CMOS
FGT", the Si/SiO2 system of refs [6]-[9]). This module builds that
baseline with the same lumped machinery, so the benchmarks can put the
MLGNR-CNT device and the silicon incumbent side by side.
"""

from __future__ import annotations

from dataclasses import replace

from ..materials.oxides import SIO2
from ..materials.silicon import POLYSILICON_N_WORK_FUNCTION_EV
from .floating_gate import FloatingGateTransistor
from .geometry import DeviceGeometry


def silicon_baseline_fgt(
    geometry: "DeviceGeometry | None" = None,
) -> FloatingGateTransistor:
    """Conventional n+ poly-Si / SiO2 floating-gate transistor.

    Same stack dimensions as the MLGNR-CNT reference (so differences
    come from the electrode physics, not geometry): silicon channel,
    n+ poly-silicon floating and control gates, SiO2 both sides. The
    Si/SiO2 electron barrier comes out at 4.05 - 0.95 = 3.10 eV via the
    same affinity rule used for graphene, matching the canonical
    3.1-3.2 eV of the silicon literature (paper ref [6]).
    """
    return FloatingGateTransistor(
        geometry=geometry or DeviceGeometry(),
        tunnel_dielectric=SIO2,
        control_dielectric=SIO2,
        channel_work_function_ev=POLYSILICON_N_WORK_FUNCTION_EV,
        floating_gate_work_function_ev=POLYSILICON_N_WORK_FUNCTION_EV,
        control_gate_work_function_ev=POLYSILICON_N_WORK_FUNCTION_EV,
    )


def mlgnr_reference_fgt(
    geometry: "DeviceGeometry | None" = None,
) -> FloatingGateTransistor:
    """The paper's MLGNR-CNT device (explicit-name alias of the default)."""
    device = FloatingGateTransistor()
    if geometry is not None:
        device = replace(device, geometry=geometry)
    return device


def barrier_advantage_ev() -> float:
    """Barrier difference between the MLGNR and silicon baselines [eV].

    Graphene's larger work function (4.56 vs 4.05 eV) gives the proposed
    device a ~0.5 eV *taller* tunnel barrier than silicon -- better
    retention, at the cost of needing somewhat higher programming
    fields for the same current. The comparison benchmark quantifies
    both sides of that trade.
    """
    mlgnr = mlgnr_reference_fgt().barrier_heights_ev()[0]
    silicon = silicon_baseline_fgt().barrier_heights_ev()[0]
    return mlgnr - silicon
