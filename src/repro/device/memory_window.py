"""Memory window analysis: the gap between the two logic states.

The paper's logic states: programmed (electrons on the FG, logic '0',
high threshold) and erased (electrons depleted, logic '1', low
threshold). The window is the threshold separation; a cell is usable as
nonvolatile memory when the window comfortably exceeds the sensing
resolution plus distribution spread plus retention loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS
from .floating_gate import FloatingGateTransistor
from .threshold import ThresholdModel
from .transient import equilibrium_charge, simulate_transient


@dataclass(frozen=True)
class MemoryWindow:
    """Threshold window between the programmed and erased states.

    Attributes
    ----------
    programmed_vt_v, erased_vt_v:
        Thresholds of the two states [V].
    programmed_charge_c, erased_charge_c:
        Stored charges of the two states [C].
    """

    programmed_vt_v: float
    erased_vt_v: float
    programmed_charge_c: float
    erased_charge_c: float

    @property
    def window_v(self) -> float:
        """Threshold separation [V]."""
        return self.programmed_vt_v - self.erased_vt_v

    def is_usable(self, min_window_v: float = 1.0) -> bool:
        """True when the window exceeds a sensing requirement."""
        return self.window_v >= min_window_v


def saturated_memory_window(
    threshold: ThresholdModel,
    program_bias: BiasCondition = PROGRAM_BIAS,
    erase_bias: BiasCondition = ERASE_BIAS,
) -> MemoryWindow:
    """Window when both operations run to their Jin = Jout saturation.

    The paper's maximum-stored-charge argument (Section III) applied to
    both states: the biggest window the chosen voltages can deliver.
    """
    device = threshold.device
    q_prog = equilibrium_charge(device, program_bias)
    q_erase = equilibrium_charge(device, erase_bias)
    return MemoryWindow(
        programmed_vt_v=threshold.threshold_v(q_prog),
        erased_vt_v=threshold.threshold_v(q_erase),
        programmed_charge_c=q_prog,
        erased_charge_c=q_erase,
    )


def pulsed_memory_window(
    threshold: ThresholdModel,
    pulse_duration_s: float,
    program_bias: BiasCondition = PROGRAM_BIAS,
    erase_bias: BiasCondition = ERASE_BIAS,
) -> MemoryWindow:
    """Window after finite program/erase pulses of a given duration.

    Shorter pulses leave the transients short of saturation; this is the
    speed-vs-window tradeoff the optimization package explores.
    """
    if pulse_duration_s <= 0.0:
        raise ConfigurationError("pulse duration must be positive")
    device = threshold.device
    prog = simulate_transient(
        device, program_bias, duration_s=pulse_duration_s
    )
    erase = simulate_transient(
        device,
        erase_bias,
        initial_charge_c=prog.final_charge_c,
        duration_s=pulse_duration_s,
    )
    return MemoryWindow(
        programmed_vt_v=threshold.threshold_v(prog.final_charge_c),
        erased_vt_v=threshold.threshold_v(erase.final_charge_c),
        programmed_charge_c=prog.final_charge_c,
        erased_charge_c=erase.final_charge_c,
    )
