"""Threshold voltage of the cell and its charge-induced shift.

The readout mechanism of the flash cell: stored electrons shift the
threshold seen from the control gate by ``Delta V_T = -Q_FG / C_FC``.
The neutral threshold of the MLGNR-channel FET is estimated from the
work-function difference between control gate and channel plus the
half-gap of the semiconducting nanoribbon, all divided by the coupling
ratio (the control gate acts on the channel only through the FG stack).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..electrostatics.gcr import threshold_shift_v
from ..errors import ConfigurationError
from .floating_gate import FloatingGateTransistor


@dataclass(frozen=True)
class ThresholdModel:
    """Threshold-voltage model of one cell.

    Attributes
    ----------
    device:
        The transistor.
    channel_band_gap_ev:
        Band gap of the GNR channel [eV]; a ~12-dimer-line armchair
        ribbon (0.7 eV) by default.
    neutral_threshold_offset_v:
        Additive calibration term for interface charge etc.
    """

    device: FloatingGateTransistor
    channel_band_gap_ev: float = 0.7
    neutral_threshold_offset_v: float = 0.0

    def __post_init__(self) -> None:
        if self.channel_band_gap_ev < 0.0:
            raise ConfigurationError("band gap cannot be negative")

    @property
    def neutral_threshold_v(self) -> float:
        """Threshold with zero stored charge [V].

        ``V_T0 = (phi_gate - phi_channel + Eg/2) / GCR + offset``: the
        gate must move the channel Fermi level by the half-gap through
        the capacitive divider before the channel conducts.
        """
        wf_diff = (
            self.device.control_gate_work_function_ev
            - self.device.channel_work_function_ev
        )
        gcr = self.device.gate_coupling_ratio
        return (
            wf_diff + 0.5 * self.channel_band_gap_ev
        ) / gcr + self.neutral_threshold_offset_v

    def threshold_v(self, charge_c: float) -> float:
        """Threshold at a stored charge [V]: ``V_T0 + (-Q/C_FC)``."""
        shift = threshold_shift_v(charge_c, self.device.capacitances.cfc)
        return self.neutral_threshold_v + shift

    def charge_for_threshold(self, target_vt: float) -> float:
        """Invert: stored charge that produces a target threshold [C]."""
        shift = target_vt - self.neutral_threshold_v
        return -shift * self.device.capacitances.cfc

    def state_thresholds(
        self, programmed_charge_c: float, erased_charge_c: float = 0.0
    ) -> "tuple[float, float]":
        """(programmed V_T, erased V_T): logic '0' and '1' of the paper."""
        return (
            self.threshold_v(programmed_charge_c),
            self.threshold_v(erased_charge_c),
        )
