"""Physical geometry of the MLGNR-CNT floating-gate transistor.

Default dimensions follow the paper's operating point: a 5 nm tunnel
oxide (the ITRS 8-14 nm-node value the paper quotes), a thicker 8 nm
control oxide (Section III requires X_CO > X_TO), and a control-gate
wrap ratio of 3.0 which, with SiO2 on both sides, yields the paper's
reference GCR of 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import nm_to_m


@dataclass(frozen=True)
class DeviceGeometry:
    """Stack and layout dimensions of one floating-gate transistor.

    Attributes
    ----------
    channel_length_m, channel_width_m:
        Active channel footprint [m]; the product is the tunneling area.
    tunnel_oxide_thickness_m:
        X_TO [m].
    control_oxide_thickness_m:
        X_CO [m]; must exceed X_TO.
    floating_gate_thickness_m:
        MLGNR floating-gate stack thickness [m].
    control_gate_area_multiplier:
        Control-gate wrap area over channel area (sets the GCR).
    source_overlap_fraction, drain_overlap_fraction:
        FG-source/drain overlap areas as channel-area fractions.
    """

    channel_length_m: float = nm_to_m(60.0)
    channel_width_m: float = nm_to_m(45.0)
    tunnel_oxide_thickness_m: float = nm_to_m(5.0)
    control_oxide_thickness_m: float = nm_to_m(8.0)
    floating_gate_thickness_m: float = nm_to_m(2.0)
    control_gate_area_multiplier: float = 3.0
    source_overlap_fraction: float = 0.125
    drain_overlap_fraction: float = 0.125

    def __post_init__(self) -> None:
        positive = (
            ("channel_length_m", self.channel_length_m),
            ("channel_width_m", self.channel_width_m),
            ("tunnel_oxide_thickness_m", self.tunnel_oxide_thickness_m),
            ("control_oxide_thickness_m", self.control_oxide_thickness_m),
            ("floating_gate_thickness_m", self.floating_gate_thickness_m),
            ("control_gate_area_multiplier", self.control_gate_area_multiplier),
        )
        for name, value in positive:
            if value <= 0.0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.control_oxide_thickness_m <= self.tunnel_oxide_thickness_m:
            raise ConfigurationError(
                "control oxide must be thicker than the tunnel oxide "
                "(paper Section III)"
            )
        if self.source_overlap_fraction < 0 or self.drain_overlap_fraction < 0:
            raise ConfigurationError("overlap fractions cannot be negative")

    @property
    def channel_area_m2(self) -> float:
        """Tunneling (FG-to-channel) area [m^2]."""
        return self.channel_length_m * self.channel_width_m

    def with_tunnel_oxide_nm(self, thickness_nm: float) -> "DeviceGeometry":
        """Copy with a different tunnel-oxide thickness (X_TO sweeps)."""
        return replace(self, tunnel_oxide_thickness_m=nm_to_m(thickness_nm))

    def with_control_oxide_nm(self, thickness_nm: float) -> "DeviceGeometry":
        """Copy with a different control-oxide thickness."""
        return replace(self, control_oxide_thickness_m=nm_to_m(thickness_nm))
