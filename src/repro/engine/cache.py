"""Memoization of barrier and coupling-ratio intermediates.

The quantities the batch engine needs per sweep point -- FN coefficient
pairs and compiled (device, bias) cells -- depend only on a handful of
hashable inputs and are reused across thousands of lanes. This module
centralises their memoization as :class:`CacheSet` objects so callers
can either share the process-wide default set (the behaviour of the
original global caches) or own an isolated set per
:class:`~repro.api.session.SimulationSession`, with hit/miss counters
reported per set for the runner's ``--cache-stats`` report.

All cached inputs are frozen dataclasses (devices, biases), so
``functools.lru_cache`` keys them directly. The module-level
:func:`fn_coefficients` / :func:`compiled_cell` entry points delegate to
whichever set is *active* (see :func:`use_caches`), so the device and
batch layers stay oblivious to session ownership; ``clear_caches``
resets the active set (used by tests and long-running sweep services).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from ..device.bias import BiasCondition
from ..device.floating_gate import CompiledCell, FloatingGateTransistor
from ..tunneling.fowler_nordheim import fn_coefficient_a, fn_coefficient_b


def _fn_coefficients_impl(
    barrier_height_ev: float, mass_ratio: float
) -> "tuple[float, float]":
    """Uncached ``(A, B)`` FN coefficient pair for one barrier."""
    return (
        fn_coefficient_a(barrier_height_ev),
        fn_coefficient_b(barrier_height_ev, mass_ratio),
    )


def _compiled_cell_impl(
    device: FloatingGateTransistor, bias: BiasCondition
) -> CompiledCell:
    """Uncached :meth:`FloatingGateTransistor.compiled` form."""
    return device.compiled(bias)


@dataclass(frozen=True)
class CacheStats:
    """Aggregated hit/miss counters of every cache in one set.

    Attributes
    ----------
    hits, misses:
        Totals across all caches of the set.
    currsize:
        Number of entries currently held.
    per_cache:
        ``{cache_name: (hits, misses, currsize)}`` breakdown.
    """

    hits: int
    misses: int
    currsize: int
    per_cache: "tuple[tuple[str, tuple[int, int, int]], ...]"

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after an earlier snapshot of the same set.

        Every field is a difference against the snapshot -- ``currsize``
        (and the per-cache sizes) become *entries added* over the
        interval. Used by :class:`~repro.api.plan.PlanResult` to
        attribute hits, misses and growth to individual scenarios of a
        multi-scenario run.
        """
        earlier = dict(since.per_cache)
        per_cache = tuple(
            (
                name,
                (
                    hits - earlier.get(name, (0, 0, 0))[0],
                    misses - earlier.get(name, (0, 0, 0))[1],
                    size - earlier.get(name, (0, 0, 0))[2],
                ),
            )
            for name, (hits, misses, size) in self.per_cache
        )
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            currsize=self.currsize - since.currsize,
            per_cache=per_cache,
        )

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Counters of this snapshot plus another, summed per cache.

        The combination used by the parallel plan executor: each shard
        reports the delta its worker session accumulated, and the merged
        snapshot is the plan-wide total (``currsize`` becomes the sum of
        entries held across the worker sets -- the sets are disjoint, so
        nothing is double-counted). Caches missing from one side count
        as zero; the ordering of this snapshot's caches is preserved,
        with caches only the other side saw appended in its order.
        """
        mine = dict(self.per_cache)
        theirs = dict(other.per_cache)
        names = [name for name, _ in self.per_cache]
        names += [n for n, _ in other.per_cache if n not in mine]
        per_cache = tuple(
            (
                name,
                tuple(
                    a + b
                    for a, b in zip(
                        mine.get(name, (0, 0, 0)), theirs.get(name, (0, 0, 0))
                    )
                ),
            )
            for name in names
        )
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            currsize=self.currsize + other.currsize,
            per_cache=per_cache,
        )


class CacheSet:
    """One independent set of the engine's memoized intermediates.

    Each instance owns its own ``lru_cache`` wrappers, so two sets never
    share entries or counters -- the isolation unit behind
    :class:`~repro.api.session.SimulationSession`. The process-wide
    default set (:func:`default_caches`) backs the module-level
    functions when no session is active.

    Beyond the ``lru_cache`` hit/miss counters the set tracks which
    *keys* it has seen, so :meth:`mark` / :meth:`reused_hits_since_mark`
    can report how many lookups were served by entries that already
    existed at the mark -- the honest "reuse of earlier work" metric the
    run-plan reports need (a plain hit count would also include a
    scenario re-hitting an entry it created itself).
    """

    def __init__(self, maxsize: int = 512) -> None:
        """Create an empty set; ``maxsize`` bounds each inner cache."""
        self._maxsize = maxsize
        self._keys: "dict[str, OrderedDict]" = {}
        self._marked: "dict[str, frozenset]" = {}
        self._reused_hits = 0
        self.fn_coefficients = self._tracked(
            "fn_coefficients",
            lru_cache(maxsize=maxsize)(_fn_coefficients_impl),
        )
        self.compiled_cell = self._tracked(
            "compiled_cell", lru_cache(maxsize=maxsize)(_compiled_cell_impl)
        )
        self._caches = {
            "fn_coefficients": self.fn_coefficients,
            "compiled_cell": self.compiled_cell,
        }

    def _tracked(self, name: str, cached):
        """Wrap one lru cache with key tracking for reuse attribution.

        The tracker mirrors the inner LRU's recency order and capacity,
        so it stays bounded and a key the LRU has evicted is neither
        remembered nor miscounted as a reused hit when it is recomputed.
        """
        keys = self._keys.setdefault(name, OrderedDict())

        def lookup(*args):
            # Reuse = this lookup will be served by an entry that both
            # still exists (not evicted) and predates the last mark().
            if args in keys and args in self._marked.get(name, frozenset()):
                self._reused_hits += 1
            result = cached(*args)
            keys[args] = None
            keys.move_to_end(args)
            if len(keys) > self._maxsize:
                keys.popitem(last=False)
            return result

        lookup.cache_info = cached.cache_info
        lookup.cache_clear = cached.cache_clear
        lookup.__doc__ = cached.__doc__
        lookup.__wrapped__ = cached
        return lookup

    def mark(self) -> None:
        """Snapshot the keys held now; resets the reused-hit counter."""
        self._marked = {
            name: frozenset(keys) for name, keys in self._keys.items()
        }
        self._reused_hits = 0

    def reused_hits_since_mark(self) -> int:
        """Lookups since :meth:`mark` served by entries that predate it."""
        return self._reused_hits

    def stats(self) -> CacheStats:
        """Snapshot the hit/miss counters of this set."""
        per_cache = []
        hits = misses = currsize = 0
        for name, cached in self._caches.items():
            info = cached.cache_info()
            per_cache.append((name, (info.hits, info.misses, info.currsize)))
            hits += info.hits
            misses += info.misses
            currsize += info.currsize
        return CacheStats(
            hits=hits,
            misses=misses,
            currsize=currsize,
            per_cache=tuple(per_cache),
        )

    def clear(self) -> None:
        """Drop every memoized entry and reset every counter."""
        for cached in self._caches.values():
            cached.cache_clear()
        for keys in self._keys.values():
            keys.clear()
        self._marked = {}
        self._reused_hits = 0


_DEFAULT_CACHES = CacheSet()

#: The active set, carried in a ContextVar so concurrent sessions on
#: different threads (or asyncio tasks) never see each other's
#: activation -- swapping a plain module global would leak one thread's
#: set into another mid-run.
_ACTIVE_CACHES: "ContextVar[CacheSet | None]" = ContextVar(
    "repro_engine_active_caches", default=None
)


def default_caches() -> CacheSet:
    """The process-wide cache set used outside any session."""
    return _DEFAULT_CACHES


def active_caches() -> CacheSet:
    """The cache set currently serving this context's lookups."""
    return _ACTIVE_CACHES.get() or _DEFAULT_CACHES


@contextmanager
def use_caches(caches: CacheSet) -> "Iterator[CacheSet]":
    """Route the engine's memoized lookups through a given set.

    :class:`~repro.api.session.SimulationSession` activates its own set
    for the duration of each run, so everything reached from the session
    (figure sweeps, transients, the optimizer) shares that session's
    entries and counters without touching other sessions or the default
    set. Reentrant and context-local (thread/task safe); restores the
    previous set on exit.
    """
    token = _ACTIVE_CACHES.set(caches)
    try:
        yield caches
    finally:
        _ACTIVE_CACHES.reset(token)


def fn_coefficients(
    barrier_height_ev: float, mass_ratio: float
) -> "tuple[float, float]":
    """Memoized ``(A, B)`` FN coefficient pair for one barrier.

    ``A`` [A/V^2] and ``B`` [V/m] depend only on the barrier height and
    tunneling mass; a GCR or oxide-thickness sweep reuses one pair for
    every lane. Served by the active :class:`CacheSet`.
    """
    return active_caches().fn_coefficients(barrier_height_ev, mass_ratio)


def compiled_cell(
    device: FloatingGateTransistor, bias: BiasCondition
) -> CompiledCell:
    """Memoized :meth:`FloatingGateTransistor.compiled` form.

    The compiled cell is the engine's unit of work: one cache entry per
    (device, bias) pair serves every ODE step, batch lane, equilibrium
    bisection and transient resampling performed under that bias --
    ``simulate_transient`` and its equilibrium solve both resolve their
    cell here, so one programming simulation compiles the device once.
    Served by the active :class:`CacheSet`.
    """
    return active_caches().compiled_cell(device, bias)


def cache_stats() -> CacheStats:
    """Snapshot the hit/miss counters of the active cache set."""
    return active_caches().stats()


def clear_caches() -> None:
    """Drop every memoized intermediate of the active cache set."""
    active_caches().clear()
