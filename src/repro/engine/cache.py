"""Memoization of barrier and coupling-ratio intermediates.

The quantities the batch engine needs per sweep point -- FN coefficient
pairs and compiled (device, bias) cells -- depend only on a handful of
hashable inputs and are reused across thousands of lanes. This module
centralises their memoization so every caller (sweeps, transients, the
optimizer screen) shares one cache, and exposes the hit/miss counters
for the experiment runner's ``--cache-stats`` report.

All cached inputs are frozen dataclasses (devices, biases), so
``functools.lru_cache`` keys them directly; ``clear_caches`` resets
everything (used by tests and long-running sweep services).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..device.bias import BiasCondition
from ..device.floating_gate import CompiledCell, FloatingGateTransistor
from ..tunneling.fowler_nordheim import fn_coefficient_a, fn_coefficient_b


@lru_cache(maxsize=512)
def fn_coefficients(
    barrier_height_ev: float, mass_ratio: float
) -> "tuple[float, float]":
    """Memoized ``(A, B)`` FN coefficient pair for one barrier.

    ``A`` [A/V^2] and ``B`` [V/m] depend only on the barrier height and
    tunneling mass; a GCR or oxide-thickness sweep reuses one pair for
    every lane.
    """
    return (
        fn_coefficient_a(barrier_height_ev),
        fn_coefficient_b(barrier_height_ev, mass_ratio),
    )


@lru_cache(maxsize=512)
def compiled_cell(
    device: FloatingGateTransistor, bias: BiasCondition
) -> CompiledCell:
    """Memoized :meth:`FloatingGateTransistor.compiled` form.

    The compiled cell is the engine's unit of work: one cache entry per
    (device, bias) pair serves every ODE step, batch lane, equilibrium
    bisection and transient resampling performed under that bias --
    ``simulate_transient`` and its equilibrium solve both resolve their
    cell here, so one programming simulation compiles the device once.
    """
    return device.compiled(bias)


@dataclass(frozen=True)
class CacheStats:
    """Aggregated hit/miss counters of every engine cache.

    Attributes
    ----------
    hits, misses:
        Totals across all engine caches.
    currsize:
        Number of entries currently held.
    per_cache:
        ``{cache_name: (hits, misses, currsize)}`` breakdown.
    """

    hits: int
    misses: int
    currsize: int
    per_cache: "tuple[tuple[str, tuple[int, int, int]], ...]"

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_CACHES = {
    "fn_coefficients": fn_coefficients,
    "compiled_cell": compiled_cell,
}


def cache_stats() -> CacheStats:
    """Snapshot the hit/miss counters of every engine cache."""
    per_cache = []
    hits = misses = currsize = 0
    for name, cache in _CACHES.items():
        info = cache.cache_info()
        per_cache.append((name, (info.hits, info.misses, info.currsize)))
        hits += info.hits
        misses += info.misses
        currsize += info.currsize
    return CacheStats(
        hits=hits,
        misses=misses,
        currsize=currsize,
        per_cache=tuple(per_cache),
    )


def clear_caches() -> None:
    """Drop every memoized intermediate (tests, long-running services)."""
    for cache in _CACHES.values():
        cache.cache_clear()
