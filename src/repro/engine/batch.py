"""NumPy-vectorized batch evaluation of the paper's hot path.

The seed simulator evaluated everything one cell at a time: a figure
sweep called :func:`repro.electrostatics.gcr.floating_gate_voltage_simple`
and the FN closed form once per voltage point, the transient sampler
called ``tunneling_state`` once per time sample, and the optimizer paid
the full device-construction cost per candidate. This module replaces
those loops with array programs over **batches** of (voltage, GCR,
oxide-thickness, charge) lanes:

* :class:`BatchSpec` describes a broadcastable batch of eq. (3) + (7)
  evaluation points; :func:`fn_batch` evaluates the whole batch in one
  fused NumPy expression, with the FN coefficient pair and the
  coupling-ratio electrostatics memoized in :mod:`repro.engine.cache`.
* :func:`tunneling_states` evaluates Jin/Jout/net for an array of
  stored charges through a cached compiled cell -- the vectorized form
  of the transient sampler.
* :func:`transient_sweep` runs program/erase transients for an array of
  gate voltages; the lanes advance together as one vector ODE state
  through the array-valued integrator of
  :func:`repro.device.transient.simulate_transient_batch` (one
  ``solve_ivp`` call for the whole sweep, with a fixed-step RK4 mode
  and the historical per-lane adaptive path selectable).
* :func:`design_screen` is the optimizer's closed-form pre-screen: the
  zero-charge current density and oxide field of a whole design grid in
  one shot.

Every kernel reuses the exact scalar formulas of the device layer, so
batch lanes match the scalar path to floating-point round-off -- the
batch engine is a faster route through the same physics, not a second
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.bias import BiasCondition
from ..device.floating_gate import BatchTunnelingState, FloatingGateTransistor
from ..device.transient import (
    TransientResult,
    simulate_transient,
    simulate_transient_batch,
)
from ..electrostatics.gcr import floating_gate_voltage_batch
from ..errors import ConfigurationError
from ..materials.graphene import GRAPHENE_WORK_FUNCTION_EV
from ..materials.oxides import SIO2
from ..tunneling.fowler_nordheim import fn_current_density
from ..tunneling.temperature import temperature_correction_factor_batch
from ..units import nm_to_m
from . import cache

#: Default tunnel barrier: graphene emitter on SiO2 (the paper's stack).
DEFAULT_BARRIER_HEIGHT_EV = GRAPHENE_WORK_FUNCTION_EV - SIO2.electron_affinity_ev
DEFAULT_MASS_RATIO = SIO2.tunneling_mass_ratio


@dataclass(frozen=True)
class BatchSpec:
    """A broadcastable batch of eq. (3) + (7) evaluation points.

    Attributes
    ----------
    gate_voltages_v:
        Control-gate voltages [V]; any shape.
    gcrs:
        Gate coupling ratios; must broadcast against the voltages.
    tunnel_oxides_nm:
        Tunnel-oxide thicknesses X_TO [nm]; must broadcast likewise.
    charges_over_ct_v:
        Stored charge pre-divided by C_T (the ``Q_FG / C_T`` term of
        eq. (3)) [V]; defaults to the fresh-cell value of zero.
    barrier_height_ev, mass_ratio:
        FN barrier parameters shared by the whole batch (scalar:
        figure sweeps vary bias and geometry, not the material system).
    temperature_k:
        Lattice temperature [K] shared by the batch. Zero (the default)
        reproduces the paper's zero-temperature FN closed form; positive
        values apply the Good-Mueller thermal-broadening factor of
        :func:`repro.tunneling.temperature.temperature_correction_factor`
        to every lane.

    The evaluated batch has the NumPy broadcast shape of the first four
    fields, so family sweeps are expressed with orthogonal axes: a
    column of GCRs against a row of voltages yields a (n_gcr, n_vgs)
    result grid. :meth:`family_grid` builds exactly that layout.
    """

    gate_voltages_v: np.ndarray
    gcrs: np.ndarray = field(default_factory=lambda: np.asarray(0.6))
    tunnel_oxides_nm: np.ndarray = field(default_factory=lambda: np.asarray(5.0))
    charges_over_ct_v: np.ndarray = field(default_factory=lambda: np.asarray(0.0))
    barrier_height_ev: float = DEFAULT_BARRIER_HEIGHT_EV
    mass_ratio: float = DEFAULT_MASS_RATIO
    temperature_k: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "gate_voltages_v",
            "gcrs",
            "tunnel_oxides_nm",
            "charges_over_ct_v",
        ):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=float)
            )
        if self.barrier_height_ev <= 0.0:
            raise ConfigurationError("barrier height must be positive")
        if self.mass_ratio <= 0.0:
            raise ConfigurationError("mass ratio must be positive")
        if np.any(self.tunnel_oxides_nm <= 0.0):
            raise ConfigurationError("tunnel oxide must be positive")
        if np.any(self.gcrs <= 0.0) or np.any(self.gcrs >= 1.0):
            raise ConfigurationError("GCR must lie strictly inside (0, 1)")
        if self.temperature_k < 0.0:
            raise ConfigurationError("temperature cannot be negative")
        self.shape  # raises now if the lanes cannot broadcast

    @property
    def shape(self) -> "tuple[int, ...]":
        """Broadcast shape of the evaluated batch."""
        return np.broadcast_shapes(
            self.gate_voltages_v.shape,
            self.gcrs.shape,
            self.tunnel_oxides_nm.shape,
            self.charges_over_ct_v.shape,
        )

    @property
    def size(self) -> int:
        """Number of lanes in the batch."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @staticmethod
    def family_grid(
        gate_voltages_v,
        gcrs=(0.6,),
        tunnel_oxides_nm=(5.0,),
        **kwargs,
    ) -> "BatchSpec":
        """Spec for a (family x voltage) result grid.

        Voltages run along the last axis; the family parameters (GCR
        and/or oxide thickness) are lifted onto leading axes so one
        :func:`fn_batch` call evaluates every figure series at once.
        With both families of length > 1 the grid is
        (n_oxide, n_gcr, n_vgs).
        """
        vgs = np.asarray(gate_voltages_v, dtype=float).reshape(-1)
        gcr = np.asarray(gcrs, dtype=float).reshape(-1, 1)
        xto = np.asarray(tunnel_oxides_nm, dtype=float).reshape(-1, 1, 1)
        if xto.size == 1:
            xto = xto.reshape(())
        if gcr.size == 1:
            gcr = gcr.reshape(())
        return BatchSpec(
            gate_voltages_v=vgs,
            gcrs=gcr,
            tunnel_oxides_nm=xto,
            **kwargs,
        )


@dataclass(frozen=True)
class BatchResult:
    """Evaluated batch: one lane per broadcast element of the spec.

    Attributes
    ----------
    spec:
        The evaluated :class:`BatchSpec`.
    vfg_v:
        Floating-gate potentials, eq. (3) [V].
    field_v_per_m:
        Tunnel-oxide field magnitudes ``|V_FG| / X_TO`` [V/m].
    j_a_m2:
        Signed FN current densities, eq. (7) [A/m^2].
    """

    spec: BatchSpec
    vfg_v: np.ndarray = field(repr=False)
    field_v_per_m: np.ndarray = field(repr=False)
    j_a_m2: np.ndarray = field(repr=False)

    @property
    def j_magnitude_a_m2(self) -> np.ndarray:
        """|J_FN| [A/m^2], the quantity the paper's figures plot."""
        return np.abs(self.j_a_m2)


def fn_batch(spec: BatchSpec) -> BatchResult:
    """Evaluate eq. (3) + (7) for every lane of a batch in one shot.

    The FN coefficient pair is fetched from the engine cache (one entry
    per material system); the electrostatics and the FN kernel are
    single fused NumPy expressions over the broadcast lanes.
    """
    a, b = cache.fn_coefficients(spec.barrier_height_ev, spec.mass_ratio)
    vfg = floating_gate_voltage_batch(
        spec.gcrs, spec.gate_voltages_v, spec.charges_over_ct_v
    )
    vfg = np.broadcast_to(np.asarray(vfg, dtype=float), spec.shape)
    thickness_m = nm_to_m(spec.tunnel_oxides_nm)
    field_mag = np.abs(vfg) / thickness_m
    j = np.sign(vfg) * fn_current_density(field_mag, a, b)
    if spec.temperature_k > 0.0:
        j = j * temperature_correction_factor_batch(
            spec.barrier_height_ev,
            spec.mass_ratio,
            field_mag,
            spec.temperature_k,
        )
    return BatchResult(
        spec=spec,
        vfg_v=vfg,
        field_v_per_m=np.broadcast_to(field_mag, spec.shape),
        j_a_m2=np.broadcast_to(j, spec.shape),
    )


def tunneling_states(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    charges_c,
) -> BatchTunnelingState:
    """Vectorized tunneling states for an array of stored charges.

    The engine-cached form of
    :meth:`FloatingGateTransistor.tunneling_state_batch`: the compiled
    (device, bias) cell is memoized, so repeated sweeps over the same
    cell (transient resampling, ISPP staircases, retention traces) pay
    the device-construction cost once.
    """
    return cache.compiled_cell(device, bias).tunneling_state_batch(charges_c)


@dataclass(frozen=True)
class TransientSweepResult:
    """Program/erase transients for an array of gate voltages.

    Attributes
    ----------
    gate_voltages_v:
        Swept control-gate voltages [V].
    results:
        One :class:`~repro.device.transient.TransientResult` per voltage.
    t_sat_s:
        Saturation times [s]; NaN where the pulse did not saturate.
    final_charge_c:
        Stored charge at the end of each pulse [C].
    q_equilibrium_c:
        Equilibrium charge of each lane [C].
    """

    gate_voltages_v: np.ndarray = field(repr=False)
    results: "tuple[TransientResult, ...]" = field(repr=False)
    t_sat_s: np.ndarray = field(repr=False)
    final_charge_c: np.ndarray = field(repr=False)
    q_equilibrium_c: np.ndarray = field(repr=False)


def transient_sweep(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    gate_voltages_v,
    duration_s: float = 1e-3,
    n_samples: int = 200,
    initial_charge_c: float = 0.0,
    integrator: str = "vector",
) -> TransientSweepResult:
    """Run one program/erase transient per gate voltage.

    By default (``integrator="vector"``) every lane advances together
    as one vector ODE state through
    :func:`~repro.device.transient.simulate_transient_batch`: a single
    adaptive ``solve_ivp`` call with a declared diagonal Jacobian
    replaces one Python-driven solve per voltage (the benchmarked
    erase-transient path). ``integrator="rk4"`` uses the fixed-step
    geometric RK4 fallback (bit-stable against batch composition), and
    ``integrator="per-lane"`` retains the historical one-adaptive-solve-
    per-lane reference the vector results are regression-tested against.
    """
    voltages = np.asarray(gate_voltages_v, dtype=float).reshape(-1)
    if voltages.size == 0:
        raise ConfigurationError("need at least one gate voltage")
    if integrator == "per-lane":
        results = tuple(
            simulate_transient(
                device,
                bias.with_gate_voltage(float(vgs)),
                initial_charge_c=initial_charge_c,
                duration_s=duration_s,
                n_samples=n_samples,
            )
            for vgs in voltages
        )
    elif integrator in ("vector", "rk4"):
        batch = simulate_transient_batch(
            device,
            tuple(bias.with_gate_voltage(float(vgs)) for vgs in voltages),
            initial_charges_c=initial_charge_c,
            duration_s=duration_s,
            n_samples=n_samples,
            method="rk4" if integrator == "rk4" else "lsoda",
        )
        results = batch.results
    else:
        raise ConfigurationError(
            f"unknown integrator {integrator!r}; "
            "use 'vector', 'rk4' or 'per-lane'"
        )
    t_sat = np.array(
        [r.t_sat_s if r.t_sat_s is not None else np.nan for r in results]
    )
    return TransientSweepResult(
        gate_voltages_v=voltages,
        results=results,
        t_sat_s=t_sat,
        final_charge_c=np.array([r.final_charge_c for r in results]),
        q_equilibrium_c=np.array([r.q_equilibrium_c for r in results]),
    )


@dataclass(frozen=True)
class DesignScreen:
    """Closed-form screen of a design grid (the optimizer's first pass).

    Attributes
    ----------
    program_voltages_v:
        Screened voltages, shape (n_v,) [V].
    tunnel_oxides_nm:
        Screened oxide thicknesses, shape (n_x,) [nm].
    j0_a_m2:
        Zero-charge programming current density, shape (n_v, n_x)
        [A/m^2] -- the paper's Figures 6-7 quantity.
    field_v_per_m:
        Zero-charge tunnel-oxide field, shape (n_v, n_x) [V/m]; the
        programming transient's peak field (V_FG only falls as electrons
        accumulate).
    """

    program_voltages_v: np.ndarray = field(repr=False)
    tunnel_oxides_nm: np.ndarray = field(repr=False)
    j0_a_m2: np.ndarray = field(repr=False)
    field_v_per_m: np.ndarray = field(repr=False)

    def best_point(
        self, max_field_v_per_m: float = np.inf
    ) -> "tuple[float, float] | None":
        """(voltage, oxide) of the fastest lane under a field ceiling.

        Programming speed rises monotonically with J0, so the screened
        optimum is the admissible lane with the highest zero-charge
        current density; None when the whole grid violates the ceiling.
        """
        admissible = self.field_v_per_m <= max_field_v_per_m
        if not np.any(admissible):
            return None
        j = np.where(admissible, self.j0_a_m2, -np.inf)
        iv, ix = np.unravel_index(int(np.argmax(j)), j.shape)
        return (
            float(self.program_voltages_v[iv]),
            float(self.tunnel_oxides_nm[ix]),
        )


def channel_well_sweep(
    surface_fields_v_per_m,
    sheet_density_m2,
    **solver_options,
):
    """Self-consistent channel-well solutions for a whole bias sweep.

    The engine entry point of the batched Poisson-Schrodinger backend:
    forwards to
    :func:`~repro.electrostatics.poisson_schrodinger.solve_channel_well_batch`,
    which advances every surface-field lane through one vectorized
    damped self-consistency loop (batched eigenlevel kernel, vectorized
    Fermi bisection, stacked-RHS Poisson solves, per-lane convergence
    masks). ``solver_options`` are the scalar solver's keyword
    parameters (``n_nodes``, ``n_subbands``, ``temperature_k``, ...);
    each lane matches ``solve_channel_well`` at <= 1e-9. See
    ``benchmarks/test_bench_poisson_schrodinger.py`` for the gated
    speedup.
    """
    from ..electrostatics.poisson_schrodinger import solve_channel_well_batch

    return solve_channel_well_batch(
        surface_fields_v_per_m, sheet_density_m2, **solver_options
    )


def endurance_sweep(
    device: FloatingGateTransistor,
    n_cycles: int,
    n_samples: int = 60,
    pulse_duration_s: float = 1e-4,
    **corner_lanes,
):
    """Endurance wear trajectories for a whole corner sweep at once.

    The engine entry point of the recurrence-based endurance kernel:
    builds one :class:`~repro.reliability.endurance.EnduranceModel`
    for ``device``, runs the two representative stress transients once,
    and evaluates every wear-law corner lane (``corner_lanes`` are the
    per-lane arrays of
    :meth:`~repro.reliability.endurance.EnduranceModel.simulate_batch`,
    e.g. ``trapped_charge_fractions=...`` or
    ``peak_fields_v_per_m=...``) through the closed-form kernel in one
    vectorized evaluation. Each lane matches a scalar
    ``simulate_scalar_reference`` run at <= 1e-9; see
    ``benchmarks/test_bench_endurance.py`` for the gated speedup.
    """
    from ..reliability.endurance import EnduranceModel

    model = EnduranceModel(device, pulse_duration_s=pulse_duration_s)
    return model.simulate_batch(
        n_cycles, n_samples=n_samples, **corner_lanes
    )


def design_screen(
    program_voltages_v,
    tunnel_oxides_nm,
    gcr: float = 0.6,
    barrier_height_ev: float = DEFAULT_BARRIER_HEIGHT_EV,
    mass_ratio: float = DEFAULT_MASS_RATIO,
) -> DesignScreen:
    """Screen a (voltage x oxide) design grid in one vectorized shot.

    Evaluates the zero-charge eq. (3) + (7) state of every grid point --
    the dominant figures of merit at t = 0 -- without building a single
    device object or running a transient. The optimizer uses the result
    to seed its simplex inside the admissible region.
    """
    voltages = np.asarray(program_voltages_v, dtype=float).reshape(-1)
    oxides = np.asarray(tunnel_oxides_nm, dtype=float).reshape(-1)
    spec = BatchSpec(
        gate_voltages_v=voltages[:, np.newaxis],
        gcrs=np.asarray(gcr),
        tunnel_oxides_nm=oxides[np.newaxis, :],
        barrier_height_ev=barrier_height_ev,
        mass_ratio=mass_ratio,
    )
    result = fn_batch(spec)
    return DesignScreen(
        program_voltages_v=voltages,
        tunnel_oxides_nm=oxides,
        j0_a_m2=result.j_magnitude_a_m2,
        field_v_per_m=result.field_v_per_m,
    )


@dataclass(frozen=True)
class ArraySweepResult:
    """Result of programming a batch of page patterns through an array.

    Attributes
    ----------
    pulses_per_page:
        ISPP pulses each page consumed.
    read_bits:
        Sensed read-back of every page (1 = erased), ``(pages, bitlines)``.
    thresholds_v:
        Post-program cell thresholds of every page [V].
    """

    pulses_per_page: np.ndarray
    read_bits: np.ndarray
    thresholds_v: np.ndarray


def array_program_sweep(
    kernel,
    patterns,
    config=None,
    seed: int = 7,
    scalar_reference: bool = False,
) -> ArraySweepResult:
    """Program a ``(pages, bitlines)`` pattern batch through the array backend.

    The engine entry point of the matrix-backed NAND array: builds one
    :class:`~repro.memory.array.VectorMemoryArray` from the calibrated
    cell kernel, programs each pattern row into consecutive pages, and
    senses every page back. With ``scalar_reference=True`` the identical
    sequence routes through the per-cell reference loops on the same RNG
    stream -- the bit-exact twin the gated
    ``benchmarks/test_bench_nand_array.py`` comparison relies on.
    """
    from ..memory.array import ArrayConfig, build_vector_array

    patterns = np.asarray(patterns)
    if patterns.ndim != 2 or patterns.size == 0:
        raise ConfigurationError(
            "patterns must be a non-empty (pages, bitlines) matrix"
        )
    n_pages, bitlines = patterns.shape
    if config is None:
        config = ArrayConfig(
            n_blocks=1, wordlines_per_block=n_pages, bitlines=bitlines
        )
    capacity = config.n_blocks * config.wordlines_per_block
    if n_pages > capacity or bitlines != config.bitlines:
        raise ConfigurationError(
            f"{n_pages} pages of {bitlines} bits do not fit an array of "
            f"{capacity} pages x {config.bitlines} bits"
        )
    array = build_vector_array(
        kernel, config, seed=seed, scalar_reference=scalar_reference
    )
    pulses = np.empty(n_pages, dtype=np.int64)
    read_bits = np.empty((n_pages, bitlines), dtype=np.uint8)
    thresholds = np.empty((n_pages, bitlines))
    for i in range(n_pages):
        block = i // config.wordlines_per_block
        wordline = i % config.wordlines_per_block
        outcome = array.program_page(block, wordline, patterns[i])
        pulses[i] = int(outcome.pulses_used[0])
        read_bits[i] = array.read_page(block, wordline)
        thresholds[i] = array.page_thresholds(block, wordline)
    return ArraySweepResult(
        pulses_per_page=pulses,
        read_bits=read_bits,
        thresholds_v=thresholds,
    )


@dataclass(frozen=True)
class MlcSweepResult:
    """Result of an MLC program/read sweep over a page batch.

    Attributes
    ----------
    thresholds_v:
        Post-staircase cell thresholds, ``(pages, cells)`` [V].
    pulses_per_page:
        Total ISPP pulses each page consumed across the staircase.
    msb_bits, lsb_bits:
        Gray-coded read-back bit planes of every page.
    """

    thresholds_v: np.ndarray
    pulses_per_page: np.ndarray
    msb_bits: np.ndarray
    lsb_bits: np.ndarray


def mlc_program_sweep(
    kernel,
    target_levels,
    guard_fraction: float = 0.1,
    ispp_step_v: float = 0.15,
    noise_sigma_v: float = 0.02,
    seed: int = 31,
    scalar_reference: bool = False,
) -> MlcSweepResult:
    """Run the MLC staircase over a ``(pages, cells)`` target-level batch.

    The engine entry point of the vectorized MLC kernel: derives the
    four levels from the calibrated cell kernel, programs the whole
    matrix of erased cells to the requested levels through
    :func:`~repro.memory.mlc.program_mlc_page_batch` (or its bit-exact
    per-cell twin under ``scalar_reference=True``), and reads every page
    back through the three-reference batch classifier.
    """
    from ..memory.mlc import (
        MlcLevels,
        program_mlc_page_batch,
        program_mlc_page_scalar_reference,
        read_mlc_page_batch,
    )

    levels = MlcLevels.from_kernel(kernel, guard_fraction)
    targets = np.asarray(target_levels)
    if targets.ndim != 2 or targets.size == 0:
        raise ConfigurationError(
            "target_levels must be a non-empty (pages, cells) matrix"
        )
    vt0 = np.full(targets.shape, kernel.erased_vt_v, dtype=float)
    program = (
        program_mlc_page_scalar_reference
        if scalar_reference
        else program_mlc_page_batch
    )
    final_vt, pulses = program(
        vt0,
        levels,
        targets,
        ispp_step_v=ispp_step_v,
        noise_sigma_v=noise_sigma_v,
        rng=np.random.default_rng(seed),
    )
    msb, lsb = read_mlc_page_batch(final_vt, levels)
    return MlcSweepResult(
        thresholds_v=final_vt,
        pulses_per_page=pulses,
        msb_bits=msb,
        lsb_bits=lsb,
    )
