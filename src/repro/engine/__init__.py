"""Vectorized batch simulation engine.

The per-cell Python loops of the seed simulator are replaced here by
NumPy array programs: :mod:`repro.engine.batch` evaluates whole
(voltage, GCR, oxide, charge) batches of the paper's eq. (3) + (7) hot
path in fused expressions, and :mod:`repro.engine.cache` memoizes the
barrier and coupling-ratio intermediates (FN coefficient pairs, eq. (2)
networks, compiled cells) that those batches share.

The engine is the routing layer for everything throughput-sensitive:
figure sweeps (:mod:`repro.experiments.sweeps`), transient sampling
(:mod:`repro.device.transient`) and the optimizer's design screen
(:mod:`repro.optimization.optimizer`) all run through it. Batch lanes
reproduce the scalar device-layer results to floating-point round-off;
see ``benchmarks/test_bench_engine.py`` for the measured speedups.
"""

from .batch import (
    ArraySweepResult,
    BatchResult,
    BatchSpec,
    DesignScreen,
    MlcSweepResult,
    TransientSweepResult,
    array_program_sweep,
    channel_well_sweep,
    design_screen,
    endurance_sweep,
    fn_batch,
    mlc_program_sweep,
    transient_sweep,
    tunneling_states,
)
from .cache import (
    CacheSet,
    CacheStats,
    active_caches,
    cache_stats,
    clear_caches,
    default_caches,
    use_caches,
)

__all__ = [
    "BatchSpec",
    "BatchResult",
    "fn_batch",
    "tunneling_states",
    "TransientSweepResult",
    "transient_sweep",
    "DesignScreen",
    "design_screen",
    "channel_well_sweep",
    "endurance_sweep",
    "ArraySweepResult",
    "array_program_sweep",
    "MlcSweepResult",
    "mlc_program_sweep",
    "CacheSet",
    "CacheStats",
    "active_caches",
    "cache_stats",
    "clear_caches",
    "default_caches",
    "use_caches",
]
