"""Configuration serialization: reproducible experiment records.

Devices, design points, scenarios, run plans and experiment results
serialise to plain JSON so a published run can be re-instantiated
exactly -- the :mod:`repro.api` scenario layer round-trips through
here. Only configuration travels through JSON -- materials are
referenced by registry name, not embedded -- keeping the files small
and human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from .device.floating_gate import FloatingGateTransistor
from .device.geometry import DeviceGeometry
from .errors import ConfigurationError
from .experiments.base import ExperimentResult, ShapeCheck
from .materials.registry import get_dielectric
from .optimization.design_space import DesignPoint
from .reporting.ascii_plot import PlotSeries

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .api.plan import PlanResult, RunPlan, ScenarioResult, ShardReport
    from .api.scenario import Scenario
    from .engine.cache import CacheStats
    from .service.jobs import JobRecord
    from .service.journal import JournalEntry, LeaseRecord
    from .service.store import StoreRecord


def geometry_to_dict(geometry: DeviceGeometry) -> "dict[str, float]":
    """DeviceGeometry -> plain dict (SI units)."""
    return {
        "channel_length_m": geometry.channel_length_m,
        "channel_width_m": geometry.channel_width_m,
        "tunnel_oxide_thickness_m": geometry.tunnel_oxide_thickness_m,
        "control_oxide_thickness_m": geometry.control_oxide_thickness_m,
        "floating_gate_thickness_m": geometry.floating_gate_thickness_m,
        "control_gate_area_multiplier": geometry.control_gate_area_multiplier,
        "source_overlap_fraction": geometry.source_overlap_fraction,
        "drain_overlap_fraction": geometry.drain_overlap_fraction,
    }


def geometry_from_dict(data: Mapping[str, Any]) -> DeviceGeometry:
    """Plain dict -> DeviceGeometry (validation re-applied)."""
    try:
        return DeviceGeometry(**{k: float(v) for k, v in data.items()})
    except TypeError as exc:
        raise ConfigurationError(f"bad geometry record: {exc}") from exc


def device_to_dict(device: FloatingGateTransistor) -> "dict[str, Any]":
    """FloatingGateTransistor -> plain dict (materials by name)."""
    return {
        "geometry": geometry_to_dict(device.geometry),
        "tunnel_dielectric": device.tunnel_dielectric.name,
        "control_dielectric": device.control_dielectric.name,
        "channel_work_function_ev": device.channel_work_function_ev,
        "floating_gate_work_function_ev": (
            device.floating_gate_work_function_ev
        ),
        "control_gate_work_function_ev": (
            device.control_gate_work_function_ev
        ),
    }


def device_from_dict(data: Mapping[str, Any]) -> FloatingGateTransistor:
    """Plain dict -> FloatingGateTransistor.

    Dielectrics are resolved through the material registry, so custom
    materials must be registered before loading.
    """
    required = {
        "geometry",
        "tunnel_dielectric",
        "control_dielectric",
        "channel_work_function_ev",
        "floating_gate_work_function_ev",
        "control_gate_work_function_ev",
    }
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"device record missing fields: {sorted(missing)}"
        )
    return FloatingGateTransistor(
        geometry=geometry_from_dict(data["geometry"]),
        tunnel_dielectric=get_dielectric(data["tunnel_dielectric"]),
        control_dielectric=get_dielectric(data["control_dielectric"]),
        channel_work_function_ev=float(data["channel_work_function_ev"]),
        floating_gate_work_function_ev=float(
            data["floating_gate_work_function_ev"]
        ),
        control_gate_work_function_ev=float(
            data["control_gate_work_function_ev"]
        ),
    )


def design_point_to_dict(point: DesignPoint) -> "dict[str, float]":
    """DesignPoint -> plain dict."""
    return {
        "program_voltage_v": point.program_voltage_v,
        "tunnel_oxide_nm": point.tunnel_oxide_nm,
        "control_oxide_nm": point.control_oxide_nm,
        "gate_coupling_ratio": point.gate_coupling_ratio,
    }


def design_point_from_dict(data: Mapping[str, Any]) -> DesignPoint:
    """Plain dict -> DesignPoint."""
    try:
        return DesignPoint(**{k: float(v) for k, v in data.items()})
    except TypeError as exc:
        raise ConfigurationError(f"bad design-point record: {exc}") from exc


def experiment_result_to_dict(result: ExperimentResult) -> "dict[str, Any]":
    """ExperimentResult -> JSON-safe dict (series included)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "parameters": {k: _jsonable(v) for k, v in result.parameters.items()},
        "series": [
            {
                "label": s.label,
                "x": [float(v) for v in s.x],
                "y": [float(v) for v in s.y],
            }
            for s in result.series
        ],
        "checks": [
            # bool() strips the np.bool_ some checks produce.
            {"claim": c.claim, "passed": bool(c.passed), "detail": c.detail}
            for c in result.checks
        ],
        "log_y": bool(result.log_y),
    }


def _jsonable(value: Any) -> Any:
    """Normalise one value to builtin JSON types (the canonical form).

    NumPy scalars are checked *before* the builtin numeric branch:
    ``np.float64`` subclasses :class:`float`, so testing ``float``
    first would let it through unconverted and the same scenario
    would serialise (and therefore content-hash, see
    :mod:`repro.api.hashing`) differently depending on whether a
    value arrived as ``1.5`` or ``np.float64(1.5)``.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def experiment_result_from_dict(data: Mapping[str, Any]) -> ExperimentResult:
    """JSON record -> ExperimentResult (inverse of the exporter).

    Series come back as float ndarrays and checks as
    :class:`~repro.experiments.base.ShapeCheck` tuples, so an exported
    figure can be re-rendered or re-validated without recomputation.
    ``parameters`` round-trip as their JSON-safe forms.
    """
    required = {"experiment_id", "title", "x_label", "y_label", "series"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"experiment record missing fields: {sorted(missing)}"
        )
    series = tuple(
        PlotSeries(
            label=str(s["label"]),
            x=np.asarray(s["x"], dtype=float),
            y=np.asarray(s["y"], dtype=float),
        )
        for s in data["series"]
    )
    checks = tuple(
        ShapeCheck(
            claim=str(c["claim"]),
            passed=bool(c["passed"]),
            detail=str(c.get("detail", "")),
        )
        for c in data.get("checks", ())
    )
    return ExperimentResult(
        experiment_id=str(data["experiment_id"]),
        title=str(data["title"]),
        x_label=str(data["x_label"]),
        y_label=str(data["y_label"]),
        series=series,
        parameters=dict(data.get("parameters", {})),
        checks=checks,
        log_y=bool(data.get("log_y", True)),
    )


# ----- scenarios and run plans (the repro.api layer) ---------------------


def scenario_to_dict(scenario: "Scenario") -> "dict[str, Any]":
    """Scenario -> JSON-safe dict; inverse of :func:`scenario_from_dict`."""
    record: "dict[str, Any]" = {
        "experiment_id": scenario.experiment_id,
        "overrides": {
            k: _jsonable(v) for k, v in scenario.overrides.items()
        },
        "sweep": {
            k: [_jsonable(v) for v in values]
            for k, values in scenario.sweep.items()
        },
    }
    if scenario.label is not None:
        record["label"] = scenario.label
    return record


def scenario_from_dict(data: Mapping[str, Any]) -> "Scenario":
    """Plain dict -> Scenario (validation re-applied on load)."""
    from .api.scenario import Scenario

    if "experiment_id" not in data:
        raise ConfigurationError("scenario record needs an experiment_id")
    unknown = set(data) - {"experiment_id", "overrides", "sweep", "label"}
    if unknown:
        raise ConfigurationError(
            f"scenario record has unknown fields: {sorted(unknown)}"
        )
    return Scenario(
        experiment_id=str(data["experiment_id"]),
        overrides=dict(data.get("overrides", {})),
        sweep=dict(data.get("sweep", {})),
        label=data.get("label"),
    )


def run_plan_to_dict(plan: "RunPlan") -> "dict[str, Any]":
    """RunPlan -> JSON-safe dict; inverse of :func:`run_plan_from_dict`."""
    return {
        "name": plan.name,
        "scenarios": [scenario_to_dict(s) for s in plan.scenarios],
    }


def run_plan_from_dict(data: Mapping[str, Any]) -> "RunPlan":
    """Plain dict -> RunPlan (each scenario validated on load)."""
    from .api.plan import RunPlan

    if "scenarios" not in data:
        raise ConfigurationError("run-plan record needs a scenarios list")
    return RunPlan(
        name=str(data.get("name", "plan")),
        scenarios=tuple(
            scenario_from_dict(s) for s in data["scenarios"]
        ),
    )


def cache_stats_to_dict(stats: "CacheStats") -> "dict[str, Any]":
    """CacheStats -> JSON-safe dict; inverse of :func:`cache_stats_from_dict`."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "currsize": stats.currsize,
        "per_cache": {
            name: list(counters) for name, counters in stats.per_cache
        },
    }


def cache_stats_from_dict(data: Mapping[str, Any]) -> "CacheStats":
    """Plain dict -> CacheStats (missing per-cache breakdown tolerated).

    Accepts both the full record :func:`cache_stats_to_dict` writes and
    the abbreviated ``{"hits": ..., "misses": ...}`` summaries older
    exports carried; absent fields come back as zero / empty.
    """
    from .engine.cache import CacheStats

    return CacheStats(
        hits=int(data.get("hits", 0)),
        misses=int(data.get("misses", 0)),
        currsize=int(data.get("currsize", 0)),
        per_cache=tuple(
            (str(name), tuple(int(c) for c in counters))
            for name, counters in dict(data.get("per_cache", {})).items()
        ),
    )


def scenario_result_to_dict(result: "ScenarioResult") -> "dict[str, Any]":
    """ScenarioResult -> JSON-safe dict (scenario + result + counters)."""
    return {
        "scenario": scenario_to_dict(result.scenario),
        "elapsed_s": result.elapsed_s,
        "cache": {
            **cache_stats_to_dict(result.cache_stats),
            "reused_hits": result.reused_hits,
        },
        "result": experiment_result_to_dict(result.result),
    }


def scenario_result_from_dict(data: Mapping[str, Any]) -> "ScenarioResult":
    """JSON record -> ScenarioResult (inverse of the exporter).

    Rebuilds the scenario, the experiment result and the cache
    attribution, so an exported plan run can be reloaded and
    re-aggregated without re-simulating anything.
    """
    from .api.plan import ScenarioResult

    required = {"scenario", "result"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"scenario-result record missing fields: {sorted(missing)}"
        )
    cache = dict(data.get("cache", {}))
    return ScenarioResult(
        scenario=scenario_from_dict(data["scenario"]),
        result=experiment_result_from_dict(data["result"]),
        elapsed_s=float(data.get("elapsed_s", 0.0)),
        cache_stats=cache_stats_from_dict(cache),
        reused_hits=int(cache.get("reused_hits", 0)),
    )


def plan_result_to_dict(result: "PlanResult") -> "dict[str, Any]":
    """PlanResult -> JSON-safe dict (plan, scenarios, cache counters).

    A :class:`~repro.api.plan.ParallelPlanResult` additionally gets a
    ``"shards"`` list (one :func:`shard_report_to_dict` record per
    shard), so the parallel structure of a run survives export -- and,
    when the run was partial, a ``"failures"`` list (one
    :func:`shard_failure_to_dict` record per exhausted shard unit).
    """
    record = {
        "plan": run_plan_to_dict(result.plan),
        "scenario_results": [
            scenario_result_to_dict(s) for s in result.scenario_results
        ],
        "cache": {
            "hits": result.cache_stats.hits,
            "misses": result.cache_stats.misses,
            "cross_scenario_hits": result.cross_scenario_hits,
        },
    }
    shard_reports = getattr(result, "shard_reports", ())
    if shard_reports:
        record["shards"] = [shard_report_to_dict(r) for r in shard_reports]
    failures = getattr(result, "failures", ())
    if failures:
        record["failures"] = [shard_failure_to_dict(f) for f in failures]
    return record


def shard_report_to_dict(report: "ShardReport") -> "dict[str, Any]":
    """ShardReport -> JSON-safe dict; inverse of :func:`shard_report_from_dict`."""
    return {
        "index": report.index,
        "positions": list(report.positions),
        "seed": report.seed,
        "elapsed_s": report.elapsed_s,
        "cache": cache_stats_to_dict(report.cache_stats),
    }


def shard_report_from_dict(data: Mapping[str, Any]) -> "ShardReport":
    """Plain dict -> ShardReport (inverse of the exporter)."""
    from .api.plan import ShardReport

    required = {"index", "positions", "seed"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"shard-report record missing fields: {sorted(missing)}"
        )
    return ShardReport(
        index=int(data["index"]),
        positions=tuple(int(p) for p in data["positions"]),
        seed=int(data["seed"]),
        elapsed_s=float(data.get("elapsed_s", 0.0)),
        cache_stats=cache_stats_from_dict(dict(data.get("cache", {}))),
    )


def shard_failure_to_dict(failure: "ShardFailure") -> "dict[str, Any]":
    """ShardFailure -> JSON-safe dict; inverse of :func:`shard_failure_from_dict`."""
    return {
        "index": failure.index,
        "positions": list(failure.positions),
        "scenario_ids": list(failure.scenario_ids),
        "attempts": failure.attempts,
        "cause": failure.cause,
        "message": failure.message,
        "elapsed_s": failure.elapsed_s,
    }


def shard_failure_from_dict(data: Mapping[str, Any]) -> "ShardFailure":
    """Plain dict -> ShardFailure (inverse of the exporter).

    The typed record a partial parallel run (and a failed service job)
    reports for every shard unit that exhausted its retries; see
    :class:`~repro.api.plan.ShardFailure`.
    """
    from .api.plan import ShardFailure

    required = {"index", "positions", "cause"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"shard-failure record missing fields: {sorted(missing)}"
        )
    return ShardFailure(
        index=int(data["index"]),
        positions=tuple(int(p) for p in data["positions"]),
        scenario_ids=tuple(
            str(s) for s in data.get("scenario_ids", ())
        ),
        attempts=int(data.get("attempts", 0)),
        cause=str(data["cause"]),
        message=str(data.get("message", "")),
        elapsed_s=float(data.get("elapsed_s", 0.0)),
    )


# ----- service records (the repro.service layer) --------------------------


def store_record_to_dict(record: "StoreRecord") -> "dict[str, Any]":
    """StoreRecord -> JSON-safe dict; inverse of :func:`store_record_from_dict`.

    This is the on-disk object format of the content-addressed result
    store (:class:`~repro.service.store.ResultStore`): the scenario
    hash the record is filed under, the code-version salt it was
    computed with, a creation timestamp, and the full
    :func:`scenario_result_to_dict` payload.
    """
    payload: "dict[str, Any]" = {
        "hash": record.hash,
        "code_version": record.code_version,
        "created_at": record.created_at,
        "scenario_result": scenario_result_to_dict(record.scenario_result),
    }
    if record.checksum:
        payload["checksum"] = record.checksum
    return payload


def store_record_from_dict(data: Mapping[str, Any]) -> "StoreRecord":
    """JSON record -> StoreRecord (inverse of the exporter).

    Rebuilds the embedded :class:`~repro.api.plan.ScenarioResult`
    bit-exactly through :func:`scenario_result_from_dict`, so a store
    hit round-trips to arrays identical to the original computation.
    """
    from .service.store import StoreRecord

    required = {"hash", "scenario_result"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"store record missing fields: {sorted(missing)}"
        )
    return StoreRecord(
        hash=str(data["hash"]),
        code_version=str(data.get("code_version", "")),
        created_at=float(data.get("created_at", 0.0)),
        scenario_result=scenario_result_from_dict(data["scenario_result"]),
        checksum=str(data.get("checksum", "")),
    )


def job_record_to_dict(record: "JobRecord") -> "dict[str, Any]":
    """JobRecord -> JSON-safe dict; inverse of :func:`job_record_from_dict`.

    The wire form of a job's status (what ``GET /jobs/{id}`` returns):
    identity, lifecycle state, the plan's content hash, the ordered
    per-scenario hashes with the source each result came from
    (``store`` / ``computed`` / ``inflight`` / ``pending``), and
    counters summarising how much work the store and the single-flight
    dedupe saved.
    """
    return {
        "id": record.id,
        "status": record.status,
        "plan_name": record.plan_name,
        "plan_hash": record.plan_hash,
        "scenario_hashes": list(record.scenario_hashes),
        "sources": list(record.sources),
        "store_hits": record.store_hits,
        "computed": record.computed,
        "deduped": record.deduped,
        "elapsed_s": record.elapsed_s,
        "error": record.error,
        "priority": record.priority,
        "timeout_s": record.timeout_s,
    }


def job_record_from_dict(data: Mapping[str, Any]) -> "JobRecord":
    """JSON record -> JobRecord (inverse of the exporter).

    Used by the service client to rebuild typed job statuses from the
    HTTP responses; absent counters come back as zero and an absent
    error as ``None``.
    """
    from .service.jobs import JobRecord

    required = {"id", "status"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"job record missing fields: {sorted(missing)}"
        )
    error = data.get("error")
    timeout_s = data.get("timeout_s")
    return JobRecord(
        id=str(data["id"]),
        status=str(data["status"]),
        plan_name=str(data.get("plan_name", "plan")),
        plan_hash=str(data.get("plan_hash", "")),
        scenario_hashes=tuple(
            str(h) for h in data.get("scenario_hashes", ())
        ),
        sources=tuple(str(s) for s in data.get("sources", ())),
        store_hits=int(data.get("store_hits", 0)),
        computed=int(data.get("computed", 0)),
        deduped=int(data.get("deduped", 0)),
        elapsed_s=float(data.get("elapsed_s", 0.0)),
        error=None if error is None else str(error),
        priority=int(data.get("priority", 1)),
        timeout_s=None if timeout_s is None else float(timeout_s),
    )


def journal_entry_to_dict(entry: "JournalEntry") -> "dict[str, Any]":
    """JournalEntry -> JSON-safe dict; inverse of :func:`journal_entry_from_dict`.

    The on-disk line format of the write-ahead job journal
    (:class:`~repro.service.journal.JobJournal`): the entry kind, its
    timestamp, the job id it belongs to (empty for lease and marker
    entries) and the kind-specific payload. Values pass through
    :func:`_jsonable` so NumPy scalars in plan overrides serialise as
    builtins, matching the hashing canonicalisation.
    """
    return {
        "kind": entry.kind,
        "at": entry.at,
        "job_id": entry.job_id,
        "data": {key: _jsonable(value) for key, value in entry.data.items()},
    }


def journal_entry_from_dict(data: Mapping[str, Any]) -> "JournalEntry":
    """JSON record -> JournalEntry (inverse of the exporter)."""
    from .service.journal import JournalEntry

    if "kind" not in data:
        raise ConfigurationError(
            f"journal entry needs a 'kind': {dict(data)!r}"
        )
    payload = data.get("data") or {}
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"journal entry 'data' must be an object, got {payload!r}"
        )
    return JournalEntry(
        kind=str(data["kind"]),
        at=float(data.get("at", 0.0)),
        job_id=str(data.get("job_id", "")),
        data=dict(payload),
    )


def lease_record_to_dict(lease: "LeaseRecord") -> "dict[str, Any]":
    """LeaseRecord -> JSON-safe dict; inverse of :func:`lease_record_from_dict`.

    The wire form of one plan-level compute claim: which owner may run
    which plan hash for which job, and until when (the TTL heartbeat
    keeps pushing ``expires_at`` forward while the compute runs).
    """
    return {
        "plan_hash": lease.plan_hash,
        "owner_id": lease.owner_id,
        "job_id": lease.job_id,
        "acquired_at": lease.acquired_at,
        "expires_at": lease.expires_at,
    }


def lease_record_from_dict(data: Mapping[str, Any]) -> "LeaseRecord":
    """JSON record -> LeaseRecord (inverse of the exporter)."""
    from .service.journal import LeaseRecord

    required = {"plan_hash", "owner_id"}
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"lease record missing fields: {sorted(missing)}"
        )
    return LeaseRecord(
        plan_hash=str(data["plan_hash"]),
        owner_id=str(data["owner_id"]),
        job_id=str(data.get("job_id", "")),
        acquired_at=float(data.get("acquired_at", 0.0)),
        expires_at=float(data.get("expires_at", 0.0)),
    )


def save_json(data: Mapping[str, Any], path: "str | Path") -> Path:
    """Write a record to disk with stable formatting; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: "str | Path") -> "dict[str, Any]":
    """Read a record back; malformed JSON is a ConfigurationError."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such record: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed JSON in {path}: {exc}") from exc
