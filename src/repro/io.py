"""Configuration serialization: reproducible experiment records.

Devices, design points and experiment results serialise to plain JSON
so a published run can be re-instantiated exactly. Only configuration
travels through JSON -- materials are referenced by registry name, not
embedded -- keeping the files small and human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .device.floating_gate import FloatingGateTransistor
from .device.geometry import DeviceGeometry
from .errors import ConfigurationError
from .experiments.base import ExperimentResult
from .materials.registry import get_dielectric
from .optimization.design_space import DesignPoint


def geometry_to_dict(geometry: DeviceGeometry) -> "dict[str, float]":
    """DeviceGeometry -> plain dict (SI units)."""
    return {
        "channel_length_m": geometry.channel_length_m,
        "channel_width_m": geometry.channel_width_m,
        "tunnel_oxide_thickness_m": geometry.tunnel_oxide_thickness_m,
        "control_oxide_thickness_m": geometry.control_oxide_thickness_m,
        "floating_gate_thickness_m": geometry.floating_gate_thickness_m,
        "control_gate_area_multiplier": geometry.control_gate_area_multiplier,
        "source_overlap_fraction": geometry.source_overlap_fraction,
        "drain_overlap_fraction": geometry.drain_overlap_fraction,
    }


def geometry_from_dict(data: Mapping[str, Any]) -> DeviceGeometry:
    """Plain dict -> DeviceGeometry (validation re-applied)."""
    try:
        return DeviceGeometry(**{k: float(v) for k, v in data.items()})
    except TypeError as exc:
        raise ConfigurationError(f"bad geometry record: {exc}") from exc


def device_to_dict(device: FloatingGateTransistor) -> "dict[str, Any]":
    """FloatingGateTransistor -> plain dict (materials by name)."""
    return {
        "geometry": geometry_to_dict(device.geometry),
        "tunnel_dielectric": device.tunnel_dielectric.name,
        "control_dielectric": device.control_dielectric.name,
        "channel_work_function_ev": device.channel_work_function_ev,
        "floating_gate_work_function_ev": (
            device.floating_gate_work_function_ev
        ),
        "control_gate_work_function_ev": (
            device.control_gate_work_function_ev
        ),
    }


def device_from_dict(data: Mapping[str, Any]) -> FloatingGateTransistor:
    """Plain dict -> FloatingGateTransistor.

    Dielectrics are resolved through the material registry, so custom
    materials must be registered before loading.
    """
    required = {
        "geometry",
        "tunnel_dielectric",
        "control_dielectric",
        "channel_work_function_ev",
        "floating_gate_work_function_ev",
        "control_gate_work_function_ev",
    }
    missing = required - set(data)
    if missing:
        raise ConfigurationError(
            f"device record missing fields: {sorted(missing)}"
        )
    return FloatingGateTransistor(
        geometry=geometry_from_dict(data["geometry"]),
        tunnel_dielectric=get_dielectric(data["tunnel_dielectric"]),
        control_dielectric=get_dielectric(data["control_dielectric"]),
        channel_work_function_ev=float(data["channel_work_function_ev"]),
        floating_gate_work_function_ev=float(
            data["floating_gate_work_function_ev"]
        ),
        control_gate_work_function_ev=float(
            data["control_gate_work_function_ev"]
        ),
    )


def design_point_to_dict(point: DesignPoint) -> "dict[str, float]":
    """DesignPoint -> plain dict."""
    return {
        "program_voltage_v": point.program_voltage_v,
        "tunnel_oxide_nm": point.tunnel_oxide_nm,
        "control_oxide_nm": point.control_oxide_nm,
        "gate_coupling_ratio": point.gate_coupling_ratio,
    }


def design_point_from_dict(data: Mapping[str, Any]) -> DesignPoint:
    """Plain dict -> DesignPoint."""
    try:
        return DesignPoint(**{k: float(v) for k, v in data.items()})
    except TypeError as exc:
        raise ConfigurationError(f"bad design-point record: {exc}") from exc


def experiment_result_to_dict(result: ExperimentResult) -> "dict[str, Any]":
    """ExperimentResult -> JSON-safe dict (series included)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "parameters": {k: _jsonable(v) for k, v in result.parameters.items()},
        "series": [
            {
                "label": s.label,
                "x": [float(v) for v in s.x],
                "y": [float(v) for v in s.y],
            }
            for s in result.series
        ],
        "checks": [
            {"claim": c.claim, "passed": c.passed, "detail": c.detail}
            for c in result.checks
        ],
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


def save_json(data: Mapping[str, Any], path: "str | Path") -> Path:
    """Write a record to disk with stable formatting; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: "str | Path") -> "dict[str, Any]":
    """Read a record back."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such record: {path}")
    return json.loads(path.read_text())
