"""Dielectric material database.

Parameter sources are the standard gate-stack literature values: SiO2
tunneling mass 0.42 m0 and affinity ~0.95 eV (Lenzlinger-Snow tradition,
paper refs [6], [9]); high-k values from the usual ITRS-era tables. The
paper itself leaves the oxide unspecified; SiO2 is the default because
the paper's ITRS discussion (6 nm tunnel oxide at 18-22 nm nodes) is an
SiO2 roadmap.
"""

from __future__ import annotations

from .base import DielectricMaterial

#: Thermal silicon dioxide -- the default tunnel and control oxide.
SIO2 = DielectricMaterial(
    name="SiO2",
    relative_permittivity=3.9,
    band_gap_ev=9.0,
    electron_affinity_ev=0.95,
    tunneling_mass_ratio=0.42,
    breakdown_field_v_per_m=1.0e9,  # ~10 MV/cm intrinsic
)

#: Hafnium dioxide (high-k control-oxide option).
HFO2 = DielectricMaterial(
    name="HfO2",
    relative_permittivity=25.0,
    band_gap_ev=5.8,
    electron_affinity_ev=2.4,
    tunneling_mass_ratio=0.11,
    breakdown_field_v_per_m=4.0e8,
)

#: Aluminium oxide (inter-poly dielectric option).
AL2O3 = DielectricMaterial(
    name="Al2O3",
    relative_permittivity=9.0,
    band_gap_ev=6.8,
    electron_affinity_ev=1.4,
    tunneling_mass_ratio=0.23,
    breakdown_field_v_per_m=7.0e8,
)

#: Silicon nitride (charge-trap layer / ONO component).
SI3N4 = DielectricMaterial(
    name="Si3N4",
    relative_permittivity=7.5,
    band_gap_ev=5.3,
    electron_affinity_ev=2.1,
    tunneling_mass_ratio=0.26,
    breakdown_field_v_per_m=6.0e8,
)

#: Hexagonal boron nitride (2-D insulator; natural partner for graphene).
HBN = DielectricMaterial(
    name="hBN",
    relative_permittivity=4.0,
    band_gap_ev=5.97,
    electron_affinity_ev=2.0,
    tunneling_mass_ratio=0.5,
    breakdown_field_v_per_m=8.0e8,
)

ALL_OXIDES = (SIO2, HFO2, AL2O3, SI3N4, HBN)
