"""Monolayer and multilayer graphene models.

The proposed device uses multilayer graphene nanoribbon (MLGNR) stacks
for both the channel and the floating gate. The floating gate's ability
to store charge depends on its density of states: unlike a metal, a
graphene layer's Fermi level moves appreciably when charge is added,
which appears electrically as a *quantum capacitance* in series with the
geometric oxide capacitances. Multilayer stacks recover a more
metal-like behaviour because interlayer screening multiplies the
available states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GRAPHENE_FERMI_VELOCITY,
    GRAPHENE_INTERLAYER_SPACING,
    HBAR,
)
from ..errors import ConfigurationError

#: Work function of undoped graphene [eV] (Kelvin-probe consensus value).
GRAPHENE_WORK_FUNCTION_EV = 4.56


def graphene_dos_per_j_m2(energy_j: float) -> float:
    """Density of states of monolayer graphene [states / (J m^2)].

    ``DOS(E) = 2 |E| / (pi (hbar v_F)^2)``, measured from the Dirac point,
    including spin and valley degeneracy.
    """
    return 2.0 * abs(energy_j) / (math.pi * (HBAR * GRAPHENE_FERMI_VELOCITY) ** 2)


def graphene_sheet_density_m2(fermi_level_j: float) -> float:
    """Carrier sheet density at T = 0 for a Fermi level E_F [J].

    ``n = E_F^2 / (pi (hbar v_F)^2)``; sign follows the Fermi level
    (positive = electrons, negative = holes).
    """
    magnitude = fermi_level_j**2 / (math.pi * (HBAR * GRAPHENE_FERMI_VELOCITY) ** 2)
    return math.copysign(magnitude, fermi_level_j)


def graphene_quantum_capacitance_f_m2(
    channel_potential_v: float, temperature_k: float = 300.0
) -> float:
    """Quantum capacitance of a graphene sheet [F/m^2].

    Finite-temperature expression (Fang et al., APL 91, 092109 (2007)):

    ``C_Q = (2 q^2 kT / (pi (hbar v_F)^2)) * ln(2 (1 + cosh(q V_ch / kT)))``

    where ``V_ch`` is the local channel potential (Fermi level over q).
    """
    if temperature_k <= 0.0:
        raise ConfigurationError("temperature must be positive")
    kt = BOLTZMANN * temperature_k
    x = ELEMENTARY_CHARGE * channel_potential_v / kt
    # log(2(1+cosh x)) == 2*log(2*cosh(x/2)); the second form avoids overflow.
    log_term = 2.0 * (np.logaddexp(x / 2.0, -x / 2.0))
    prefactor = (
        2.0
        * ELEMENTARY_CHARGE**2
        * kt
        / (math.pi * (HBAR * GRAPHENE_FERMI_VELOCITY) ** 2)
    )
    return float(prefactor * log_term)


def multilayer_quantum_capacitance_batch(
    layer_counts,
    channel_potential_v: float,
    temperature_k: float = 300.0,
    screening_length_layers: float = 1.2,
) -> np.ndarray:
    """Quantum capacitance of a whole layer-count sweep [F/m^2].

    The batched form of
    :meth:`MultilayerGraphene.quantum_capacitance_f_m2`: the monolayer
    capacitance is evaluated once and scaled by the screening-weighted
    effective layer count of every requested stack, with the weight
    sums read off one cumulative sum instead of one Python-level
    object construction and reduction per layer count. Element ``i``
    matches the scalar path for ``layer_counts[i]`` at <= 1e-9.
    """
    counts = np.asarray(layer_counts, dtype=int).reshape(-1)
    if counts.size == 0:
        raise ConfigurationError("need at least one layer count")
    if np.any(counts < 1):
        raise ConfigurationError("need at least one graphene layer")
    if screening_length_layers <= 0.0:
        raise ConfigurationError("screening length must be positive")
    mono = graphene_quantum_capacitance_f_m2(
        channel_potential_v, temperature_k
    )
    weights = np.exp(
        -np.arange(int(counts.max())) / screening_length_layers
    )
    effective = np.cumsum(weights)[counts - 1]
    return mono * effective


@dataclass(frozen=True)
class MultilayerGraphene:
    """A stack of ``n_layers`` graphene sheets used as gate or channel.

    Attributes
    ----------
    n_layers:
        Number of layers; 1 is monolayer graphene.
    work_function_ev:
        Work function of the stack [eV].
    interlayer_spacing_m:
        Layer-to-layer distance [m]; graphite spacing by default.
    screening_length_layers:
        Interlayer screening length in units of layers (~1.2 for
        graphite); controls how quickly added layers stop contributing
        states at the surface.
    """

    n_layers: int
    work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV
    interlayer_spacing_m: float = GRAPHENE_INTERLAYER_SPACING
    screening_length_layers: float = 1.2

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ConfigurationError("need at least one graphene layer")
        if self.interlayer_spacing_m <= 0.0:
            raise ConfigurationError("interlayer spacing must be positive")
        if self.screening_length_layers <= 0.0:
            raise ConfigurationError("screening length must be positive")

    @property
    def thickness_m(self) -> float:
        """Physical thickness of the stack [m]."""
        return self.n_layers * self.interlayer_spacing_m

    @property
    def effective_layer_count(self) -> float:
        """Number of layers that effectively contribute surface states.

        Interlayer screening makes layer ``i`` (0-indexed from the
        surface) contribute with weight ``exp(-i / lambda)``; the sum
        saturates for thick stacks, capturing why MLGNR floating gates
        behave nearly metallically beyond a few layers.
        """
        lam = self.screening_length_layers
        weights = np.exp(-np.arange(self.n_layers) / lam)
        return float(np.sum(weights))

    def quantum_capacitance_f_m2(
        self, channel_potential_v: float, temperature_k: float = 300.0
    ) -> float:
        """Quantum capacitance of the stack [F/m^2].

        Modelled as the monolayer quantum capacitance scaled by the
        effective (screening-weighted) layer count.
        """
        mono = graphene_quantum_capacitance_f_m2(
            channel_potential_v, temperature_k
        )
        return mono * self.effective_layer_count

    def storable_charge_per_area(
        self, fermi_shift_v: float
    ) -> float:
        """Sheet charge [C/m^2] stored when the Fermi level shifts [V].

        T = 0 estimate based on the layer-weighted graphene DOS; used by
        the floating-gate model to sanity-check that the gate can hold
        the charge the transient delivers.
        """
        energy_j = ELEMENTARY_CHARGE * abs(fermi_shift_v)
        density = graphene_sheet_density_m2(energy_j) * self.effective_layer_count
        return ELEMENTARY_CHARGE * density
