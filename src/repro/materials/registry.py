"""Name-keyed registry of built-in and user-registered materials."""

from __future__ import annotations

from typing import Dict, Union

from ..errors import ConfigurationError, MaterialNotFoundError
from .base import ConductorMaterial, DielectricMaterial, SemiconductorMaterial
from .metals import ALL_METALS
from .oxides import ALL_OXIDES
from .silicon import SILICON

Material = Union[DielectricMaterial, ConductorMaterial, SemiconductorMaterial]

_REGISTRY: "Dict[str, Material]" = {}


def register_material(material: Material, overwrite: bool = False) -> None:
    """Add a material to the global registry.

    Raises
    ------
    ConfigurationError
        If the name is already taken and ``overwrite`` is False.
    """
    key = material.name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"material {material.name!r} already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[key] = material


def get_material(name: str) -> Material:
    """Look up a material by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(m.name for m in _REGISTRY.values()))
        raise MaterialNotFoundError(
            f"unknown material {name!r}; known materials: {known}"
        ) from None


def get_dielectric(name: str) -> DielectricMaterial:
    """Look up a material and require it to be a dielectric."""
    material = get_material(name)
    if not isinstance(material, DielectricMaterial):
        raise ConfigurationError(f"{name!r} is not a dielectric")
    return material


def list_materials() -> "list[str]":
    """Sorted names of every registered material."""
    return sorted(m.name for m in _REGISTRY.values())


def _register_builtins() -> None:
    for oxide in ALL_OXIDES:
        register_material(oxide, overwrite=True)
    for metal in ALL_METALS:
        register_material(metal, overwrite=True)
    register_material(SILICON, overwrite=True)


_register_builtins()
