"""Material database for the MLGNR-CNT floating-gate device.

Dielectrics (tunnel/control oxides), graphene and multilayer graphene,
graphene nanoribbons, carbon nanotubes, silicon and metal gates, plus a
name-keyed registry. Barrier heights follow the electron-affinity rule
(:func:`repro.materials.base.barrier_height_ev`).
"""

from .base import (
    ConductorMaterial,
    DielectricMaterial,
    SemiconductorMaterial,
    barrier_height_ev,
)
from .cnt import CNT_WORK_FUNCTION_EV, CarbonNanotube, good_gate_chiralities
from .gnr import GrapheneNanoribbon, semiconducting_ribbon
from .graphene import (
    GRAPHENE_WORK_FUNCTION_EV,
    MultilayerGraphene,
    graphene_dos_per_j_m2,
    graphene_quantum_capacitance_f_m2,
    graphene_sheet_density_m2,
    multilayer_quantum_capacitance_batch,
)
from .metals import (
    ALL_METALS,
    ALUMINIUM,
    COPPER,
    GOLD,
    POLYSILICON_N,
    TITANIUM_NITRIDE,
    TUNGSTEN,
)
from .oxides import AL2O3, ALL_OXIDES, HBN, HFO2, SI3N4, SIO2
from .registry import (
    get_dielectric,
    get_material,
    list_materials,
    register_material,
)
from .silicon import SI_SIO2_BARRIER_EV, SILICON, DopedSilicon
from .stacks import (
    DielectricLayer,
    LayeredDielectric,
    compare_control_dielectrics,
)

__all__ = [
    "DielectricMaterial",
    "ConductorMaterial",
    "SemiconductorMaterial",
    "barrier_height_ev",
    "SIO2",
    "HFO2",
    "AL2O3",
    "SI3N4",
    "HBN",
    "ALL_OXIDES",
    "MultilayerGraphene",
    "GRAPHENE_WORK_FUNCTION_EV",
    "graphene_dos_per_j_m2",
    "graphene_sheet_density_m2",
    "graphene_quantum_capacitance_f_m2",
    "multilayer_quantum_capacitance_batch",
    "GrapheneNanoribbon",
    "semiconducting_ribbon",
    "CarbonNanotube",
    "CNT_WORK_FUNCTION_EV",
    "good_gate_chiralities",
    "SILICON",
    "SI_SIO2_BARRIER_EV",
    "DopedSilicon",
    "ALUMINIUM",
    "COPPER",
    "GOLD",
    "TUNGSTEN",
    "TITANIUM_NITRIDE",
    "POLYSILICON_N",
    "ALL_METALS",
    "DielectricLayer",
    "LayeredDielectric",
    "compare_control_dielectrics",
    "register_material",
    "get_material",
    "get_dielectric",
    "list_materials",
]
