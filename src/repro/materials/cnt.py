"""Carbon nanotube control-gate material model.

The proposed FGT uses CNTs as the control gate. For the lumped device
model the CNT enters through its work function and metallicity; the
zone-folding relations included here (diameter, chiral angle, band gap)
let the examples and tests reason about which chiralities make good gate
electrodes (metallic tubes) versus which would add a series resistance
(semiconducting tubes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import CARBON_CC_DISTANCE, GRAPHENE_HOPPING_EV
from ..errors import ConfigurationError

#: Work function of a typical CNT bundle [eV].
CNT_WORK_FUNCTION_EV = 4.8


@dataclass(frozen=True)
class CarbonNanotube:
    """A single-walled carbon nanotube identified by its chirality (n, m)."""

    n: int
    m: int
    work_function_ev: float = CNT_WORK_FUNCTION_EV

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 0:
            raise ConfigurationError("chirality requires n >= 1 and m >= 0")
        if self.m > self.n:
            raise ConfigurationError(
                "chirality convention requires m <= n (swap the indices)"
            )

    @property
    def diameter_m(self) -> float:
        """Tube diameter ``d = a sqrt(n^2 + n m + m^2) / pi`` [m]."""
        a = math.sqrt(3.0) * CARBON_CC_DISTANCE
        return a * math.sqrt(self.n**2 + self.n * self.m + self.m**2) / math.pi

    @property
    def chiral_angle_rad(self) -> float:
        """Chiral angle in radians (0 = zigzag, pi/6 = armchair)."""
        return math.atan2(
            math.sqrt(3.0) * self.m, 2.0 * self.n + self.m
        )

    @property
    def is_metallic(self) -> bool:
        """Zone-folding metallicity rule: metallic iff ``(n - m) % 3 == 0``."""
        return (self.n - self.m) % 3 == 0

    @property
    def band_gap_ev(self) -> float:
        """Zone-folding band gap [eV]; zero for metallic tubes.

        Semiconducting tubes: ``E_g = 2 gamma_0 a_cc / d``.
        """
        if self.is_metallic:
            return 0.0
        return (
            2.0
            * GRAPHENE_HOPPING_EV
            * CARBON_CC_DISTANCE
            / self.diameter_m
        )

    def subband_gap_ev(self, index: int) -> float:
        """Energy of the ``index``-th van Hove subband pair [eV].

        Zone folding gives subband onsets at multiples of
        ``2 gamma_0 a_cc / (3 d)``; for semiconducting tubes the allowed
        indices skip multiples of 3 (those lines pass through K).
        """
        if index < 1:
            raise ConfigurationError("subband index starts at 1")
        base = 2.0 * GRAPHENE_HOPPING_EV * CARBON_CC_DISTANCE / (3.0 * self.diameter_m)
        if self.is_metallic:
            return 3.0 * base * index
        effective = index + (index - 1) // 2  # skip every third line
        return base * effective


def good_gate_chiralities(max_n: int = 12) -> "list[CarbonNanotube]":
    """Enumerate metallic chiralities up to ``max_n`` (gate candidates)."""
    tubes = []
    for n in range(1, max_n + 1):
        for m in range(0, n + 1):
            tube = CarbonNanotube(n, m)
            if tube.is_metallic:
                tubes.append(tube)
    return tubes
