"""Metal gate electrode materials."""

from __future__ import annotations

from .base import ConductorMaterial

ALUMINIUM = ConductorMaterial(name="Al", work_function_ev=4.1)
COPPER = ConductorMaterial(name="Cu", work_function_ev=4.65)
TITANIUM_NITRIDE = ConductorMaterial(name="TiN", work_function_ev=4.5)
TUNGSTEN = ConductorMaterial(name="W", work_function_ev=4.55)
GOLD = ConductorMaterial(name="Au", work_function_ev=5.1)
POLYSILICON_N = ConductorMaterial(name="n+ poly-Si", work_function_ev=4.05)

ALL_METALS = (
    ALUMINIUM,
    COPPER,
    TITANIUM_NITRIDE,
    TUNGSTEN,
    GOLD,
    POLYSILICON_N,
)
