"""Graphene nanoribbon (GNR) channel/gate material model.

Bridges the atomistic band-structure package and the lumped device
model: a :class:`GrapheneNanoribbon` owns its tight-binding model and
exposes the device-relevant quantities (width, band gap, work function,
number of conduction modes, quantum capacitance).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..bandstructure import (
    BandStructure,
    DensityOfStates,
    compute_band_structure,
    histogram_dos,
    quantum_capacitance_per_area,
)
from ..bandstructure.tightbinding import (
    EdgeType,
    TightBindingModel,
    build_tight_binding,
)
from ..constants import GRAPHENE_HOPPING_EV
from ..errors import ConfigurationError
from .graphene import GRAPHENE_WORK_FUNCTION_EV


@dataclass(frozen=True)
class GrapheneNanoribbon:
    """A single GNR described by edge type and line count.

    Attributes
    ----------
    edge:
        ``"armchair"`` or ``"zigzag"``.
    n_lines:
        Dimer lines (armchair) or zigzag chains (zigzag) across the width.
    hopping_ev:
        Tight-binding hopping parameter [eV].
    work_function_ev:
        Charge-neutral work function [eV]; graphene's value by default.
    """

    edge: EdgeType = "armchair"
    n_lines: int = 12
    hopping_ev: float = GRAPHENE_HOPPING_EV
    work_function_ev: float = GRAPHENE_WORK_FUNCTION_EV

    def __post_init__(self) -> None:
        if self.n_lines < 2:
            raise ConfigurationError("a ribbon needs at least two lines")

    @cached_property
    def tight_binding(self) -> TightBindingModel:
        """The nearest-neighbour TB model of this ribbon."""
        return build_tight_binding(self.edge, self.n_lines, self.hopping_ev)

    @cached_property
    def band_structure(self) -> BandStructure:
        """Band structure sampled on a 301-point Brillouin zone grid."""
        return compute_band_structure(self.tight_binding, n_k=301)

    @cached_property
    def density_of_states(self) -> DensityOfStates:
        """Histogram DOS per unit ribbon length."""
        return histogram_dos(
            self.band_structure, self.tight_binding.cell.period_m
        )

    @property
    def width_m(self) -> float:
        """Ribbon width [m]."""
        return self.tight_binding.cell.width_m

    @property
    def band_gap_ev(self) -> float:
        """Band gap at charge neutrality [eV]."""
        return self.band_structure.band_gap_ev()

    @property
    def is_semiconducting(self) -> bool:
        """True when the gap exceeds a transport-relevant 0.1 eV."""
        return self.band_gap_ev > 0.1

    def mode_count(self, energy_ev: float) -> int:
        """Landauer conduction-mode count at an energy [eV vs midgap]."""
        return self.band_structure.mode_count(energy_ev)

    def quantum_capacitance_f_m2(
        self, fermi_ev: float = 0.05, temperature_k: float = 300.0
    ) -> float:
        """Quantum capacitance per area of a dense ribbon array [F/m^2]."""
        return quantum_capacitance_per_area(
            self.density_of_states, self.width_m, fermi_ev, temperature_k
        )


def semiconducting_ribbon(approx_width_nm: float) -> GrapheneNanoribbon:
    """Pick the semiconducting armchair ribbon nearest a target width.

    Armchair ribbons with ``N = 3m`` or ``N = 3m + 1`` dimer lines are
    semiconducting; this helper selects the closest such N for a target
    width, which is how a designer would choose a channel ribbon.
    """
    if approx_width_nm <= 0.0:
        raise ConfigurationError("width must be positive")
    # Width of an N-aGNR is (N - 1) * sqrt(3)/2 * a_cc.
    import math

    from ..constants import CARBON_CC_DISTANCE

    step_m = math.sqrt(3.0) / 2.0 * CARBON_CC_DISTANCE
    n_est = int(round(approx_width_nm * 1e-9 / step_m)) + 1
    candidates = [n for n in range(max(3, n_est - 3), n_est + 4) if n % 3 != 2]
    best = min(candidates, key=lambda n: abs(n - n_est))
    return GrapheneNanoribbon(edge="armchair", n_lines=best)
