"""Silicon reference material (the conventional-FGT baseline).

The paper contrasts its MLGNR-CNT device against conventional silicon
floating-gate transistors (Section II quotes CMOS FGT programming
voltages and currents). This module provides the silicon parameters used
by the baseline device in the comparison benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import SemiconductorMaterial
from ..constants import thermal_voltage
from ..errors import ConfigurationError

#: Intrinsic carrier concentration of silicon at 300 K [1/m^3].
SILICON_NI_300K_M3 = 1.0e16

SILICON = SemiconductorMaterial(
    name="Si",
    band_gap_ev=1.12,
    electron_affinity_ev=4.05,
    effective_mass_ratio=0.26,
    relative_permittivity=11.7,
)

#: n+ poly-silicon (conventional floating-gate material).
POLYSILICON_N_WORK_FUNCTION_EV = 4.05

#: The Si/SiO2 electron barrier used throughout the silicon literature [eV].
SI_SIO2_BARRIER_EV = 3.15


@dataclass(frozen=True)
class DopedSilicon:
    """Uniformly doped silicon body.

    Attributes
    ----------
    doping_m3:
        Net doping concentration [1/m^3]; positive = donors (n-type),
        negative = acceptors (p-type).
    """

    doping_m3: float

    def __post_init__(self) -> None:
        if self.doping_m3 == 0.0:
            raise ConfigurationError("use a nonzero doping level")

    @property
    def is_n_type(self) -> bool:
        return self.doping_m3 > 0.0

    def fermi_potential_v(self, temperature_k: float = 300.0) -> float:
        """Bulk Fermi potential ``phi_F = Vt ln(N / n_i)`` [V].

        Positive for p-type (with the usual sign convention that the
        Fermi level sits below midgap), negative for n-type.
        """
        vt = thermal_voltage(temperature_k)
        magnitude = vt * math.log(abs(self.doping_m3) / SILICON_NI_300K_M3)
        return -magnitude if self.is_n_type else magnitude

    def work_function_ev(self, temperature_k: float = 300.0) -> float:
        """Work function including the doping-dependent Fermi shift [eV]."""
        midgap = SILICON.electron_affinity_ev + 0.5 * SILICON.band_gap_ev
        return midgap + self.fermi_potential_v(temperature_k)
