"""Material description dataclasses.

Three families cover everything the device stack needs:

* :class:`DielectricMaterial` -- tunnel/control oxides; carries the
  permittivity, the electron affinity (which sets tunneling barrier
  heights) and the effective tunneling mass.
* :class:`ConductorMaterial` -- gate electrodes and floating gates; the
  work function is the only electronic property the lumped model needs.
* :class:`SemiconductorMaterial` -- channel materials.

Barrier heights between an emitter and a dielectric follow the usual
electron-affinity rule ``phi_B = W_emitter - chi_dielectric``
(:func:`barrier_height_ev`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import ELECTRON_MASS
from ..errors import ConfigurationError


@dataclass(frozen=True)
class DielectricMaterial:
    """An insulating layer material.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"SiO2"``.
    relative_permittivity:
        Static dielectric constant (kappa).
    band_gap_ev:
        Band gap [eV]; used for sanity checks and regime classification.
    electron_affinity_ev:
        Electron affinity chi [eV], measured from vacuum.
    tunneling_mass_ratio:
        Effective electron tunneling mass as a fraction of the free
        electron mass (``m_ox / m_0``). SiO2 is conventionally 0.42.
    breakdown_field_v_per_m:
        Intrinsic breakdown field [V/m]; used by the reliability model.
    """

    name: str
    relative_permittivity: float
    band_gap_ev: float
    electron_affinity_ev: float
    tunneling_mass_ratio: float
    breakdown_field_v_per_m: float

    def __post_init__(self) -> None:
        if self.relative_permittivity <= 0.0:
            raise ConfigurationError("relative permittivity must be positive")
        if self.band_gap_ev <= 0.0:
            raise ConfigurationError("band gap must be positive")
        if self.tunneling_mass_ratio <= 0.0:
            raise ConfigurationError("tunneling mass ratio must be positive")
        if self.breakdown_field_v_per_m <= 0.0:
            raise ConfigurationError("breakdown field must be positive")

    @property
    def tunneling_mass_kg(self) -> float:
        """Effective tunneling mass [kg]."""
        return self.tunneling_mass_ratio * ELECTRON_MASS

    @property
    def permittivity_f_per_m(self) -> float:
        """Absolute permittivity [F/m]."""
        from ..constants import VACUUM_PERMITTIVITY

        return self.relative_permittivity * VACUUM_PERMITTIVITY


@dataclass(frozen=True)
class ConductorMaterial:
    """A gate/electrode material characterised by its work function."""

    name: str
    work_function_ev: float

    def __post_init__(self) -> None:
        if self.work_function_ev <= 0.0:
            raise ConfigurationError("work function must be positive")


@dataclass(frozen=True)
class SemiconductorMaterial:
    """A channel material.

    Attributes
    ----------
    name:
        Registry key.
    band_gap_ev:
        Band gap [eV]. Zero is allowed (pristine graphene).
    electron_affinity_ev:
        Electron affinity [eV].
    effective_mass_ratio:
        Conduction-band effective mass over the free electron mass. For
        linear-dispersion materials (graphene) this is a fitted transport
        parameter rather than a band curvature.
    relative_permittivity:
        Static dielectric constant of the channel body.
    """

    name: str
    band_gap_ev: float
    electron_affinity_ev: float
    effective_mass_ratio: float
    relative_permittivity: float

    def __post_init__(self) -> None:
        if self.band_gap_ev < 0.0:
            raise ConfigurationError("band gap cannot be negative")
        if self.effective_mass_ratio <= 0.0:
            raise ConfigurationError("effective mass ratio must be positive")
        if self.relative_permittivity <= 0.0:
            raise ConfigurationError("relative permittivity must be positive")

    @property
    def work_function_ev(self) -> float:
        """Mid-gap work function estimate: chi + Eg/2 [eV]."""
        return self.electron_affinity_ev + 0.5 * self.band_gap_ev


def barrier_height_ev(
    emitter_work_function_ev: float, dielectric: DielectricMaterial
) -> float:
    """Electron tunneling barrier at an emitter/dielectric interface [eV].

    Uses the electron-affinity rule ``phi_B = W - chi``. Raises if the
    result is non-positive, which would mean the interface presents no
    barrier and Fowler-Nordheim analysis does not apply.
    """
    phi_b = emitter_work_function_ev - dielectric.electron_affinity_ev
    if phi_b <= 0.0:
        raise ConfigurationError(
            f"no tunneling barrier: work function {emitter_work_function_ev} eV "
            f"<= affinity {dielectric.electron_affinity_ev} eV of {dielectric.name}"
        )
    return phi_b
