"""Layered dielectric stacks (ONO-style control dielectrics).

Production floating-gate flash rarely uses a single control oxide: the
classic inter-poly dielectric is an oxide/nitride/oxide (ONO) sandwich
that combines the SiO2 barrier with the nitride's higher permittivity.
A :class:`LayeredDielectric` computes the quantities the device model
needs from an arbitrary layer sequence -- series capacitance, equivalent
oxide thickness (EOT), the weakest barrier, and the field in each layer
under bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import VACUUM_PERMITTIVITY
from ..errors import ConfigurationError
from .base import DielectricMaterial
from .oxides import SI3N4, SIO2


@dataclass(frozen=True)
class DielectricLayer:
    """One layer of a stack: a material and its thickness."""

    material: DielectricMaterial
    thickness_m: float

    def __post_init__(self) -> None:
        if self.thickness_m <= 0.0:
            raise ConfigurationError("layer thickness must be positive")


@dataclass(frozen=True)
class LayeredDielectric:
    """A stack of dielectric layers treated as one series capacitor."""

    layers: "tuple[DielectricLayer, ...]"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError("a stack needs at least one layer")

    @staticmethod
    def single(
        material: DielectricMaterial, thickness_m: float
    ) -> "LayeredDielectric":
        """One-layer stack (degenerate case used by the default device)."""
        return LayeredDielectric(
            layers=(DielectricLayer(material, thickness_m),)
        )

    @staticmethod
    def ono(
        bottom_oxide_m: float, nitride_m: float, top_oxide_m: float
    ) -> "LayeredDielectric":
        """The classic SiO2 / Si3N4 / SiO2 inter-poly dielectric."""
        return LayeredDielectric(
            layers=(
                DielectricLayer(SIO2, bottom_oxide_m),
                DielectricLayer(SI3N4, nitride_m),
                DielectricLayer(SIO2, top_oxide_m),
            )
        )

    @property
    def total_thickness_m(self) -> float:
        """Physical thickness [m]."""
        return sum(layer.thickness_m for layer in self.layers)

    @property
    def capacitance_per_area(self) -> float:
        """Series capacitance per unit area [F/m^2]."""
        inverse = 0.0
        for layer in self.layers:
            eps = (
                layer.material.relative_permittivity * VACUUM_PERMITTIVITY
            )
            inverse += layer.thickness_m / eps
        return 1.0 / inverse

    @property
    def equivalent_oxide_thickness_m(self) -> float:
        """EOT: the SiO2 thickness with the same capacitance [m]."""
        eps_sio2 = SIO2.relative_permittivity * VACUUM_PERMITTIVITY
        return eps_sio2 / self.capacitance_per_area

    def minimum_barrier_ev(self, emitter_work_function_ev: float) -> float:
        """The weakest electron barrier any layer presents [eV].

        Leakage through a stack is gated by its lowest-barrier layer
        (the nitride in ONO); the affinity rule per layer.
        """
        barriers = [
            emitter_work_function_ev - layer.material.electron_affinity_ev
            for layer in self.layers
        ]
        weakest = min(barriers)
        if weakest <= 0.0:
            raise ConfigurationError(
                "a stack layer presents no barrier to the emitter"
            )
        return weakest

    def layer_fields_v_per_m(self, voltage_v: float) -> "list[float]":
        """Field in each layer under a total voltage drop [V/m].

        The displacement field is continuous, so
        ``E_i = D / eps_i`` with ``D = C * V`` per unit area.
        """
        d_field = self.capacitance_per_area * voltage_v
        return [
            d_field
            / (layer.material.relative_permittivity * VACUUM_PERMITTIVITY)
            for layer in self.layers
        ]

    def worst_layer_stress(
        self, voltage_v: float
    ) -> "tuple[DielectricLayer, float]":
        """(layer, field/breakdown ratio) of the most stressed layer."""
        fields = self.layer_fields_v_per_m(abs(voltage_v))
        stressed = max(
            zip(self.layers, fields),
            key=lambda pair: pair[1] / pair[0].material.breakdown_field_v_per_m,
        )
        layer, field = stressed
        return layer, field / layer.material.breakdown_field_v_per_m


def compare_control_dielectrics(
    single_oxide_m: float,
    ono: "LayeredDielectric | None" = None,
) -> "dict[str, float]":
    """Contrast a plain SiO2 control oxide with an ONO stack of equal EOT.

    Returns both structures' physical thickness, capacitance gain of the
    ONO at equal physical thickness, and the barrier penalty (the
    nitride's weaker barrier).
    """
    if single_oxide_m <= 0.0:
        raise ConfigurationError("oxide thickness must be positive")
    plain = LayeredDielectric.single(SIO2, single_oxide_m)
    stack = ono or LayeredDielectric.ono(
        0.25 * single_oxide_m, 0.5 * single_oxide_m, 0.25 * single_oxide_m
    )
    from .graphene import GRAPHENE_WORK_FUNCTION_EV

    return {
        "plain_eot_m": plain.equivalent_oxide_thickness_m,
        "ono_eot_m": stack.equivalent_oxide_thickness_m,
        "capacitance_gain": stack.capacitance_per_area
        / plain.capacitance_per_area,
        "plain_barrier_ev": plain.minimum_barrier_ev(
            GRAPHENE_WORK_FUNCTION_EV
        ),
        "ono_barrier_ev": stack.minimum_barrier_ev(
            GRAPHENE_WORK_FUNCTION_EV
        ),
    }
