"""Multi-level cell (MLC) support: two bits per floating gate.

The memory window of the MLGNR-CNT cell (~8-10 V saturated) is wide
enough to hold four threshold levels. This module partitions the
window into four target states with Gray-coded bit assignments,
programs cells level-by-level with the same ISPP machinery, and reads
them back with three references -- the standard MLC flow, driven
entirely by the device-calibrated kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellKernel, MemoryCell
from .ispp import (
    IsppPolicy,
    _as_page_matrix,
    program_cells,
    program_page_batch,
    program_page_scalar_reference,
)

#: Gray code for the four levels, lowest threshold first. L0 (erased)
#: holds '11'; each step changes one bit.
GRAY_BITS = ((1, 1), (1, 0), (0, 0), (0, 1))

#: Vectorized lookup tables of :data:`GRAY_BITS` (level index -> bit).
_GRAY_MSB = np.array([b[0] for b in GRAY_BITS], dtype=np.uint8)
_GRAY_LSB = np.array([b[1] for b in GRAY_BITS], dtype=np.uint8)


@dataclass(frozen=True)
class MlcLevels:
    """The four MLC target states derived from a calibrated kernel.

    Attributes
    ----------
    targets_v:
        Verify thresholds of levels L0..L3 [V]; L0 is the erased state.
    references_v:
        The three read references separating adjacent levels [V].
    """

    targets_v: "tuple[float, float, float, float]"
    references_v: "tuple[float, float, float]"

    @staticmethod
    def from_kernel(
        kernel: CellKernel, guard_fraction: float = 0.1
    ) -> "MlcLevels":
        """Partition the kernel's window into four evenly spaced levels.

        ``guard_fraction`` reserves margin at both window edges so L0
        keeps distance from the deepest-erased cells and L3 from the
        programming ceiling.
        """
        if not 0.0 <= guard_fraction < 0.5:
            raise ConfigurationError("guard fraction must be in [0, 0.5)")
        lo = kernel.erased_vt_v + guard_fraction * kernel.window_v
        hi = kernel.programmed_vt_v - guard_fraction * kernel.window_v
        targets = tuple(np.linspace(lo, hi, 4))
        references = tuple(
            0.5 * (a + b) for a, b in zip(targets, targets[1:])
        )
        return MlcLevels(targets_v=targets, references_v=references)

    def level_of(self, vt_v: float) -> int:
        """Level index (0-3) a threshold reads as."""
        level = 0
        for ref in self.references_v:
            if vt_v > ref:
                level += 1
        return level

    def level_of_batch(self, vt_v: np.ndarray) -> np.ndarray:
        """Level indices (0-3) of a whole threshold array at once.

        The vectorized form of :meth:`level_of`: each threshold is
        compared against the three read references in one broadcast,
        so MLC read-back of a ``(pages, cells)`` matrix costs three
        comparisons instead of a per-cell Python loop.
        """
        vt = np.asarray(vt_v, dtype=float)
        refs = np.asarray(self.references_v, dtype=float)
        return (vt[..., np.newaxis] > refs).sum(axis=-1).astype(np.int64)


def bits_to_level(msb: int, lsb: int) -> int:
    """Gray-coded (msb, lsb) pair -> level index."""
    try:
        return GRAY_BITS.index((int(msb), int(lsb)))
    except ValueError:
        raise MemoryOperationError(f"bits must be 0/1, got ({msb}, {lsb})")


def level_to_bits(level: int) -> "tuple[int, int]":
    """Level index -> Gray-coded (msb, lsb) pair."""
    if not 0 <= level < 4:
        raise MemoryOperationError(f"level must be 0-3, got {level}")
    return GRAY_BITS[level]


def program_mlc_page(
    cells: "list[MemoryCell]",
    levels: MlcLevels,
    target_levels: "list[int]",
    ispp_step_v: float = 0.15,
    noise_sigma_v: float = 0.02,
    rng: "np.random.Generator | None" = None,
) -> int:
    """Program a page of erased cells to per-cell MLC levels.

    Levels are programmed lowest-first (L1, then L2, then L3), each
    pass ISPP-verifying only the cells targeting that level -- the
    standard staircase that keeps already-placed levels undisturbed.
    Returns the total pulse count.

    Raises
    ------
    MemoryOperationError
        If any cell fails verify, or targets are malformed.
    """
    if len(target_levels) != len(cells):
        raise MemoryOperationError("one target level per cell required")
    if any(not 0 <= lv < 4 for lv in target_levels):
        raise MemoryOperationError("levels must be 0-3")
    rng = rng or np.random.default_rng(31)

    total_pulses = 0
    for level in (1, 2, 3):
        mask = [lv == level for lv in target_levels]
        if not any(mask):
            continue
        policy = IsppPolicy(
            verify_level_v=levels.targets_v[level],
            step_v=ispp_step_v,
            first_pulse_shift_v=ispp_step_v,
            noise_sigma_v=noise_sigma_v,
            max_pulses=200,
        )
        outcome = program_cells(cells, mask, policy, rng)
        if not outcome.success:
            raise MemoryOperationError(
                f"MLC level {level} failed verify on "
                f"{len(outcome.failed_cells)} cells"
            )
        total_pulses += outcome.pulses_used
    return total_pulses


def read_mlc_page(
    cells: "list[MemoryCell]", levels: MlcLevels
) -> "tuple[np.ndarray, np.ndarray]":
    """Read a page back as (msb_bits, lsb_bits) arrays."""
    msb = np.empty(len(cells), dtype=np.uint8)
    lsb = np.empty(len(cells), dtype=np.uint8)
    for i, cell in enumerate(cells):
        m, l = level_to_bits(levels.level_of(cell.vt_v))
        msb[i], lsb[i] = m, l
    return msb, lsb


# ----- array-state (matrix) path --------------------------------------------


def _mlc_policy(
    levels: MlcLevels, level: int, ispp_step_v: float, noise_sigma_v: float
) -> IsppPolicy:
    """The per-level ISPP policy shared by every MLC program path."""
    return IsppPolicy(
        verify_level_v=levels.targets_v[level],
        step_v=ispp_step_v,
        first_pulse_shift_v=ispp_step_v,
        noise_sigma_v=noise_sigma_v,
        max_pulses=200,
    )


def _program_mlc_matrix(
    vt_v: np.ndarray,
    levels: MlcLevels,
    target_levels: np.ndarray,
    ispp_step_v: float,
    noise_sigma_v: float,
    rng: "np.random.Generator | None",
    ceiling_v: "np.ndarray | float",
    kernel,
) -> "tuple[np.ndarray, np.ndarray]":
    """Shared staircase driver of the batch and scalar-reference paths."""
    vt_v = _as_page_matrix(vt_v, "vt_v").astype(float)
    targets = _as_page_matrix(target_levels, "target_levels")
    if targets.shape != vt_v.shape:
        raise MemoryOperationError("one target level per cell required")
    targets = targets.astype(np.int64)
    if ((targets < 0) | (targets > 3)).any():
        raise MemoryOperationError("levels must be 0-3")
    rng = rng or np.random.default_rng(31)

    total_pulses = np.zeros(vt_v.shape[0], dtype=np.int64)
    for level in (1, 2, 3):
        mask = targets == level
        if not mask.any():
            continue
        policy = _mlc_policy(levels, level, ispp_step_v, noise_sigma_v)
        outcome = kernel(vt_v, mask, policy, rng, ceiling_v)
        if not outcome.success:
            raise MemoryOperationError(
                f"MLC level {level} failed verify on "
                f"{int(outcome.failed_mask.sum())} cells"
            )
        vt_v = outcome.final_vt_v
        total_pulses += outcome.pulses_used
    return vt_v, total_pulses


def program_mlc_page_batch(
    vt_v: np.ndarray,
    levels: MlcLevels,
    target_levels: np.ndarray,
    ispp_step_v: float = 0.15,
    noise_sigma_v: float = 0.02,
    rng: "np.random.Generator | None" = None,
    ceiling_v: "np.ndarray | float" = np.inf,
) -> "tuple[np.ndarray, np.ndarray]":
    """Program a ``(pages, cells)`` threshold matrix to per-cell MLC levels.

    The vectorized form of :func:`program_mlc_page`: levels are
    programmed lowest-first (L1, L2, L3), each pass running the whole
    matrix through :func:`~repro.memory.ispp.program_page_batch` with
    that level's verify mask, so already-placed levels stay undisturbed.
    Returns ``(final_vt_v, pulses_per_page)``; a level whose verify
    fails anywhere raises :class:`~repro.errors.MemoryOperationError`.
    A staircase pass with no targeted cells anywhere is skipped without
    consuming RNG draws (the same stream rule the scalar reference
    replays).
    """
    return _program_mlc_matrix(
        vt_v,
        levels,
        target_levels,
        ispp_step_v,
        noise_sigma_v,
        rng,
        ceiling_v,
        program_page_batch,
    )


def program_mlc_page_scalar_reference(
    vt_v: np.ndarray,
    levels: MlcLevels,
    target_levels: np.ndarray,
    ispp_step_v: float = 0.15,
    noise_sigma_v: float = 0.02,
    rng: "np.random.Generator | None" = None,
    ceiling_v: "np.ndarray | float" = np.inf,
) -> "tuple[np.ndarray, np.ndarray]":
    """The seed per-cell MLC staircase; bit-exact twin of the batch path.

    Runs the identical level schedule through the per-cell Python loop
    of :func:`~repro.memory.ispp.program_page_scalar_reference`, so a
    shared seed reproduces :func:`program_mlc_page_batch` exactly.
    """
    return _program_mlc_matrix(
        vt_v,
        levels,
        target_levels,
        ispp_step_v,
        noise_sigma_v,
        rng,
        ceiling_v,
        program_page_scalar_reference,
    )


def read_mlc_page_batch(
    vt_v: np.ndarray, levels: MlcLevels
) -> "tuple[np.ndarray, np.ndarray]":
    """Read a threshold matrix back as Gray-coded (msb, lsb) bit matrices.

    Three vectorized reference comparisons classify every cell of the
    ``(pages, cells)`` matrix at once, then the Gray lookup tables map
    level indices to bit planes -- the matrix form of
    :func:`read_mlc_page`.
    """
    level = levels.level_of_batch(_as_page_matrix(vt_v, "vt_v"))
    return _GRAY_MSB[level], _GRAY_LSB[level]
