"""Threshold-voltage distributions of cell populations.

Real arrays never hold a single threshold: process variation, program
noise and disturb accumulation spread each logic state into a
distribution. Sensing works as long as the distributions of '0' and '1'
do not overlap at the read reference; this module supplies the Gaussian
bookkeeping (sampling, percentiles, overlap-derived bit-error rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class VtDistribution:
    """A Gaussian threshold distribution of one logic state.

    Attributes
    ----------
    mean_v:
        Mean threshold [V].
    sigma_v:
        Standard deviation [V].
    """

    mean_v: float
    sigma_v: float

    def __post_init__(self) -> None:
        if self.sigma_v <= 0.0:
            raise ConfigurationError("sigma must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` cell thresholds."""
        if n < 1:
            raise ConfigurationError("need at least one sample")
        return rng.normal(self.mean_v, self.sigma_v, size=n)

    def cdf(self, vt: float) -> float:
        """Probability a cell of this state reads below ``vt``."""
        z = (vt - self.mean_v) / (self.sigma_v * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def percentile(self, p: float) -> float:
        """Threshold below which a fraction ``p`` of cells fall."""
        if not 0.0 < p < 1.0:
            raise ConfigurationError("p must be in (0, 1)")
        # Inverse error function via Newton on the CDF.
        x = self.mean_v
        for _ in range(60):
            f = self.cdf(x) - p
            pdf = math.exp(
                -0.5 * ((x - self.mean_v) / self.sigma_v) ** 2
            ) / (self.sigma_v * math.sqrt(2.0 * math.pi))
            if pdf == 0.0:
                break
            step = f / pdf
            x -= step
            if abs(step) < 1e-12:
                break
        return x

    def shifted(self, delta_v: float) -> "VtDistribution":
        """Distribution rigidly shifted by ``delta_v`` (disturb drift)."""
        return VtDistribution(self.mean_v + delta_v, self.sigma_v)

    def broadened(self, extra_sigma_v: float) -> "VtDistribution":
        """Distribution with additional independent spread."""
        if extra_sigma_v < 0.0:
            raise ConfigurationError("extra sigma cannot be negative")
        return VtDistribution(
            self.mean_v, math.hypot(self.sigma_v, extra_sigma_v)
        )


def raw_bit_error_rate(
    erased: VtDistribution, programmed: VtDistribution, read_reference_v: float
) -> float:
    """Probability of misreading a cell at a reference voltage.

    Average of the two tail probabilities: erased cells above the
    reference (read as '0') and programmed cells below it (read as '1'),
    assuming equally likely states.
    """
    if programmed.mean_v <= erased.mean_v:
        raise ConfigurationError(
            "programmed state must sit above the erased state"
        )
    p_erased_high = 1.0 - erased.cdf(read_reference_v)
    p_programmed_low = programmed.cdf(read_reference_v)
    return 0.5 * (p_erased_high + p_programmed_low)


def optimal_read_reference(
    erased: VtDistribution, programmed: VtDistribution
) -> float:
    """Balanced-margin read reference between the two states.

    Places the reference where both states sit the same number of
    standard deviations away (equal z-scores), which minimises the worse
    of the two tail error probabilities:

    ``v = (mu_e * sigma_p + mu_p * sigma_e) / (sigma_e + sigma_p)``

    For equal sigmas this is the midpoint; a tighter state pulls the
    reference toward itself (its tail shrinks faster). The closed form
    is used rather than a numerical BER minimisation because for
    well-separated states the BER underflows to exactly zero over a wide
    plateau, leaving a search objective with no gradient.
    """
    if programmed.mean_v <= erased.mean_v:
        raise ConfigurationError(
            "programmed state must sit above the erased state"
        )
    return (
        erased.mean_v * programmed.sigma_v
        + programmed.mean_v * erased.sigma_v
    ) / (erased.sigma_v + programmed.sigma_v)
