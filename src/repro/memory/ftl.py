"""Flash translation layer: logical pages over erase-block flash.

A minimal but complete page-mapped FTL:

* logical-to-physical page map with out-of-place updates,
* greedy garbage collection (victim = most invalid pages) with live-page
  relocation,
* wear-aware free-block allocation (lowest erase count first),
* write-amplification telemetry.

The FTL operates purely on the :class:`repro.memory.array.MemoryArray`
interface, so every logical write really lands in device-calibrated
cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .array import MemoryArray


@dataclass
class FtlStats:
    """Telemetry counters of the translation layer."""

    host_writes: int = 0
    physical_writes: int = 0
    gc_relocations: int = 0
    gc_invocations: int = 0
    block_erases: int = 0

    @property
    def write_amplification(self) -> float:
        """Physical-to-host write ratio (1.0 is ideal)."""
        if self.host_writes == 0:
            return 1.0
        return self.physical_writes / self.host_writes


@dataclass
class PageMappedFtl:
    """Page-level translation layer over a memory array.

    Attributes
    ----------
    array:
        The physical array.
    overprovision_blocks:
        Blocks withheld from the logical capacity as GC headroom.
    """

    array: MemoryArray
    overprovision_blocks: int = 1
    stats: FtlStats = field(default_factory=FtlStats)

    def __post_init__(self) -> None:
        cfg = self.array.config
        if self.overprovision_blocks < 1:
            raise ConfigurationError(
                "need at least one over-provisioned block for GC"
            )
        if self.overprovision_blocks >= cfg.n_blocks:
            raise ConfigurationError(
                "over-provisioning cannot consume every block"
            )
        self._pages_per_block = cfg.wordlines_per_block
        self._n_physical_pages = cfg.n_blocks * self._pages_per_block
        #: logical page -> physical page (block * pages_per_block + wl)
        self._map: "dict[int, int]" = {}
        #: physical page -> logical page (None = invalid/garbage)
        self._reverse: "dict[int, int]" = {}
        self._free_pages_in_block = {
            b: list(range(self._pages_per_block))
            for b in range(cfg.n_blocks)
        }
        self._invalid_in_block = {b: 0 for b in range(cfg.n_blocks)}

    # ----- capacity -------------------------------------------------------

    @property
    def logical_capacity_pages(self) -> int:
        """Host-visible number of logical pages."""
        usable = self.array.config.n_blocks - self.overprovision_blocks
        return usable * self._pages_per_block

    # ----- internals ------------------------------------------------------

    def _physical_address(self, physical_page: int) -> "tuple[int, int]":
        return divmod(physical_page, self._pages_per_block)

    def _allocate_page(self) -> int:
        """Pick a free physical page, GC-ing if necessary."""
        block = self._pick_allocation_block()
        if block is None:
            self._garbage_collect()
            block = self._pick_allocation_block()
            if block is None:
                raise MemoryOperationError(
                    "no free pages even after garbage collection"
                )
        wordline = self._free_pages_in_block[block].pop(0)
        return block * self._pages_per_block + wordline

    def _pick_allocation_block(self) -> "int | None":
        """Least-worn block that still has free pages."""
        candidates = [
            b
            for b, free in self._free_pages_in_block.items()
            if free
        ]
        if not candidates:
            return None
        erase_counts = self.array.block_erase_counts()
        return min(candidates, key=lambda b: (erase_counts[b], b))

    def _garbage_collect(self) -> None:
        """Wear-normalised greedy GC.

        Victim score is the reclaimable page count discounted by how
        much more worn the block is than its least-worn peer, so a hot
        block does not get erased over and over while cold blocks idle.
        """
        self.stats.gc_invocations += 1
        erase_counts = self.array.block_erase_counts()
        min_erases = min(erase_counts)

        def score(b: int) -> float:
            wear_penalty = 1.0 + 0.5 * (erase_counts[b] - min_erases)
            return self._invalid_in_block[b] / wear_penalty

        victim = max(range(self.array.config.n_blocks), key=score)
        if self._invalid_in_block[victim] == 0:
            raise MemoryOperationError(
                "garbage collection found no reclaimable space "
                "(array over-full)"
            )
        # Relocate live pages out of the victim.
        live = [
            (ppage, lpage)
            for ppage, lpage in list(self._reverse.items())
            if ppage // self._pages_per_block == victim
        ]
        relocated = []
        for ppage, lpage in live:
            block, wl = self._physical_address(ppage)
            bits = self.array.read_page(block, wl)
            relocated.append((lpage, bits))
            del self._reverse[ppage]

        self.array.erase_block(victim)
        self.stats.block_erases += 1
        self._free_pages_in_block[victim] = list(
            range(self._pages_per_block)
        )
        self._invalid_in_block[victim] = 0

        for lpage, bits in relocated:
            target = self._allocate_page()
            block, wl = self._physical_address(target)
            self.array.program_page(block, wl, bits)
            self.stats.physical_writes += 1
            self.stats.gc_relocations += 1
            self._map[lpage] = target
            self._reverse[target] = lpage

    # ----- host interface ---------------------------------------------------

    def write(self, logical_page: int, bits: np.ndarray) -> None:
        """Write a logical page (out-of-place; old copy invalidated)."""
        if not 0 <= logical_page < self.logical_capacity_pages:
            raise MemoryOperationError(
                f"logical page {logical_page} beyond capacity "
                f"{self.logical_capacity_pages}"
            )
        target = self._allocate_page()
        # Look up the old copy only *after* allocating: allocation may
        # run garbage collection, which can relocate this very logical
        # page; capturing the old address earlier would leave the
        # relocated copy alive in the reverse map (a stale entry a later
        # GC would resurrect over the new data).
        old = self._map.get(logical_page)
        block, wl = self._physical_address(target)
        self.array.program_page(block, wl, bits)
        self._map[logical_page] = target
        self._reverse[target] = logical_page
        self.stats.host_writes += 1
        self.stats.physical_writes += 1
        if old is not None:
            self._reverse.pop(old, None)
            old_block = old // self._pages_per_block
            self._invalid_in_block[old_block] += 1

    def read(self, logical_page: int) -> np.ndarray:
        """Read a logical page.

        Raises
        ------
        MemoryOperationError
            If the page was never written.
        """
        target = self._map.get(logical_page)
        if target is None:
            raise MemoryOperationError(
                f"logical page {logical_page} has never been written"
            )
        block, wl = self._physical_address(target)
        return self.array.read_page(block, wl)

    def wear_spread(self) -> float:
        """Max minus min block erase count (wear-levelling quality)."""
        counts = self.array.block_erase_counts()
        return float(max(counts) - min(counts))
