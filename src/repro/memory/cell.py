"""Array-scale memory cell model calibrated from the device physics.

Running the full tunneling ODE for every cell of a simulated array
would be prohibitively slow. Instead a :class:`CellKernel` is calibrated
*once* from the :class:`FloatingGateTransistor` transients -- per-pulse
threshold shifts for the chosen program/erase pulses -- and then every
:class:`MemoryCell` replays those shifts with cell-to-cell variability.
This is the standard compact-model split between device simulation and
array simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..device.bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..device.threshold import ThresholdModel
from ..device.transient import simulate_transient
from ..errors import ConfigurationError, MemoryOperationError


class CellState(enum.Enum):
    """Logic state of a cell (paper Section I conventions)."""

    ERASED = 1  # logic '1': electrons depleted
    PROGRAMMED = 0  # logic '0': electrons stored


@dataclass(frozen=True)
class CellKernel:
    """Device-calibrated per-pulse behaviour shared by all cells.

    Attributes
    ----------
    erased_vt_v:
        Mean threshold of the erased state [V].
    programmed_vt_v:
        Mean threshold after a full program operation [V].
    program_pulse_shift_v:
        Threshold gain of one nominal program pulse from the erased
        state [V].
    ispp_step_v:
        Threshold gain per ISPP staircase step once in the steady
        regime [V] (equal to the voltage step, a standard ISPP result).
    pulse_duration_s:
        The calibrated pulse length [s].
    """

    erased_vt_v: float
    programmed_vt_v: float
    program_pulse_shift_v: float
    ispp_step_v: float
    pulse_duration_s: float

    def __post_init__(self) -> None:
        if self.programmed_vt_v <= self.erased_vt_v:
            raise ConfigurationError(
                "programmed threshold must exceed erased threshold"
            )
        if self.program_pulse_shift_v <= 0.0:
            raise ConfigurationError("pulse shift must be positive")

    @property
    def window_v(self) -> float:
        """Full memory window [V]."""
        return self.programmed_vt_v - self.erased_vt_v


def calibrate_kernel(
    device: FloatingGateTransistor,
    pulse_duration_s: float = 1e-4,
    program_bias: BiasCondition = PROGRAM_BIAS,
    erase_bias: BiasCondition = ERASE_BIAS,
    ispp_step_v: float = 0.5,
) -> CellKernel:
    """Calibrate the array kernel from full device transients.

    One program pulse from erased and one erase pulse from programmed
    are simulated with the real FN dynamics; their endpoint thresholds
    parameterise every cell in the array.
    """
    threshold = ThresholdModel(device)
    erase_from_fresh = simulate_transient(
        device, erase_bias, duration_s=pulse_duration_s
    )
    erased_q = erase_from_fresh.final_charge_c
    erased_vt = threshold.threshold_v(erased_q)

    program = simulate_transient(
        device,
        program_bias,
        initial_charge_c=erased_q,
        duration_s=pulse_duration_s,
    )
    programmed_vt = threshold.threshold_v(program.final_charge_c)

    # Single shorter pulse for the per-pulse shift (1/8 of the full op).
    single = simulate_transient(
        device,
        program_bias,
        initial_charge_c=erased_q,
        duration_s=pulse_duration_s / 8.0,
    )
    single_shift = threshold.threshold_v(single.final_charge_c) - erased_vt
    return CellKernel(
        erased_vt_v=erased_vt,
        programmed_vt_v=programmed_vt,
        program_pulse_shift_v=max(single_shift, 1e-3),
        ispp_step_v=ispp_step_v,
        pulse_duration_s=pulse_duration_s,
    )


@dataclass
class MemoryCell:
    """One cell of the array: a threshold plus wear state.

    Attributes
    ----------
    kernel:
        Shared calibrated behaviour.
    vt_v:
        Current threshold of this cell [V].
    state:
        Nominal logic state.
    pe_cycles:
        Program/erase cycles endured.
    vt_offset_v:
        Static process-variation offset of this cell [V].
    """

    kernel: CellKernel
    vt_v: float = 0.0
    state: CellState = CellState.ERASED
    pe_cycles: int = 0
    vt_offset_v: float = 0.0

    def __post_init__(self) -> None:
        if self.vt_v == 0.0:
            self.vt_v = self.kernel.erased_vt_v + self.vt_offset_v

    def erase(self, noise_sigma_v: float = 0.05, rng=None) -> None:
        """Return the cell to the erased distribution."""
        noise = 0.0 if rng is None else float(rng.normal(0.0, noise_sigma_v))
        self.vt_v = self.kernel.erased_vt_v + self.vt_offset_v + noise
        self.state = CellState.ERASED
        self.pe_cycles += 1

    def apply_program_pulse(
        self, pulse_shift_v: "float | None" = None
    ) -> None:
        """Apply one program pulse (threshold moves up, capped at full)."""
        shift = (
            self.kernel.program_pulse_shift_v
            if pulse_shift_v is None
            else pulse_shift_v
        )
        if shift < 0.0:
            raise MemoryOperationError("program pulses cannot lower Vt")
        ceiling = self.kernel.programmed_vt_v + self.vt_offset_v
        self.vt_v = min(self.vt_v + shift, ceiling)

    def mark_programmed(self) -> None:
        """Record the logic state after a verified program."""
        self.state = CellState.PROGRAMMED

    def disturb(self, delta_vt_v: float) -> None:
        """Apply a (small, signed) disturb shift."""
        self.vt_v += delta_vt_v

    def read_state(self, reference_v: float) -> CellState:
        """Sense against a reference: above = programmed '0'."""
        return (
            CellState.PROGRAMMED
            if self.vt_v > reference_v
            else CellState.ERASED
        )


def fresh_cells(
    kernel: CellKernel,
    n: int,
    process_sigma_v: float = 0.08,
    rng: "np.random.Generator | None" = None,
) -> "list[MemoryCell]":
    """Manufacture ``n`` erased cells with process variation."""
    if n < 1:
        raise ConfigurationError("need at least one cell")
    rng = rng or np.random.default_rng(0)
    offsets = rng.normal(0.0, process_sigma_v, size=n)
    return [
        MemoryCell(kernel=kernel, vt_offset_v=float(off)) for off in offsets
    ]
