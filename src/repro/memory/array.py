"""Block/page-organised NAND memory array.

Groups NAND strings into erase blocks and word-line pages -- the
granularity mismatch (program by page, erase by block) that motivates
the flash translation layer. Built entirely on the device-calibrated
cell kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellKernel
from .disturb import DisturbModel
from .ispp import IsppPolicy
from .nand_string import StringOperations, build_string
from .sense import SenseAmplifier


@dataclass(frozen=True)
class ArrayConfig:
    """Dimensions and policies of a memory array.

    Attributes
    ----------
    n_blocks:
        Erase blocks.
    wordlines_per_block:
        Pages per block.
    bitlines:
        Cells per page (page size in bits).
    process_sigma_v:
        Cell-to-cell threshold spread at manufacture [V].
    """

    n_blocks: int = 4
    wordlines_per_block: int = 16
    bitlines: int = 64
    process_sigma_v: float = 0.08

    def __post_init__(self) -> None:
        if min(self.n_blocks, self.wordlines_per_block, self.bitlines) < 1:
            raise ConfigurationError("array dimensions must be positive")


@dataclass
class Block:
    """One erase block: a slice of strings plus wear counters."""

    operations: StringOperations
    erase_count: int = 0
    programmed_pages: "set[int]" = field(default_factory=set)

    def is_page_free(self, wordline: int) -> bool:
        return wordline not in self.programmed_pages


@dataclass
class MemoryArray:
    """The full array: blocks of pages of device-calibrated cells.

    Build with :func:`build_array`; program/read/erase with page and
    block addressing. Pages must be erased before they are programmed
    (flash's write-once-then-erase constraint is enforced).
    """

    config: ArrayConfig
    blocks: "list[Block]"
    rng: np.random.Generator

    def _block(self, block: int) -> Block:
        if not 0 <= block < len(self.blocks):
            raise MemoryOperationError(f"block {block} out of range")
        return self.blocks[block]

    def program_page(
        self, block: int, wordline: int, bits: np.ndarray
    ) -> None:
        """Program one page with a bit pattern (1 = erased/inhibited).

        Raises
        ------
        MemoryOperationError
            If the page was already programmed since its last erase, or
            if ISPP fails to verify every selected cell.
        """
        blk = self._block(block)
        if not blk.is_page_free(wordline):
            raise MemoryOperationError(
                f"page ({block}, {wordline}) already programmed; erase first"
            )
        outcome = blk.operations.program_page(wordline, bits, self.rng)
        if not outcome.success:
            raise MemoryOperationError(
                f"program-status fail on page ({block}, {wordline}): "
                f"{len(outcome.failed_cells)} cells never verified"
            )
        blk.programmed_pages.add(wordline)

    def read_page(self, block: int, wordline: int) -> np.ndarray:
        """Read one page into a bit array."""
        return self._block(block).operations.read_page(wordline, self.rng)

    def erase_block(self, block: int) -> None:
        """Erase a whole block."""
        blk = self._block(block)
        blk.operations.erase_all(self.rng)
        blk.programmed_pages.clear()
        blk.erase_count += 1

    def block_erase_counts(self) -> "list[int]":
        """Erase counter of every block (wear-levelling telemetry)."""
        return [b.erase_count for b in self.blocks]

    def page_thresholds(self, block: int, wordline: int) -> np.ndarray:
        """Raw cell thresholds of a page (for distribution analysis)."""
        cells = self._block(block).operations.page_cells(wordline)
        return np.array([c.vt_v for c in cells])


def build_array(
    kernel: CellKernel,
    config: "ArrayConfig | None" = None,
    ispp: "IsppPolicy | None" = None,
    sense: "SenseAmplifier | None" = None,
    disturb: "DisturbModel | None" = None,
    seed: int = 7,
) -> MemoryArray:
    """Manufacture an array from a calibrated cell kernel.

    Default ISPP verify and sense reference levels are placed at 2/3 and
    1/2 of the calibrated memory window respectively.
    """
    config = config or ArrayConfig()
    window = kernel.window_v
    ispp = ispp or IsppPolicy(
        verify_level_v=kernel.erased_vt_v + 0.67 * window,
        step_v=max(0.05 * window, 0.1),
        first_pulse_shift_v=max(0.1 * window, 0.2),
    )
    sense = sense or SenseAmplifier(
        reference_v=kernel.erased_vt_v + 0.5 * window
    )
    rng = np.random.default_rng(seed)

    blocks = []
    for _ in range(config.n_blocks):
        strings = [
            build_string(
                kernel,
                config.wordlines_per_block,
                config.process_sigma_v,
                rng,
            )
            for _ in range(config.bitlines)
        ]
        blocks.append(
            Block(
                operations=StringOperations(
                    strings=strings, ispp=ispp, sense=sense, disturb=disturb
                )
            )
        )
    return MemoryArray(config=config, blocks=blocks, rng=rng)
