"""Block/page-organised NAND memory array.

Groups NAND strings into erase blocks and word-line pages -- the
granularity mismatch (program by page, erase by block) that motivates
the flash translation layer. Built entirely on the device-calibrated
cell kernel.

Two backends share the module:

* the seed object backend (:class:`MemoryArray` over per-cell
  :class:`~repro.memory.cell.MemoryCell` objects), retained unchanged,
  and
* the array-state backend (:class:`VectorMemoryArray` over an
  :class:`ArrayState` of whole-array ``(blocks, wordlines, bitlines)``
  threshold matrices), whose program/read/erase/disturb operations run
  through the vectorized page kernels -- or, with
  ``scalar_reference=True``, through their bit-exact per-cell Python
  twins, which is how the parity contracts and the gated benchmarks
  compare the two paths on identical RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellKernel
from .disturb import (
    DisturbModel,
    apply_program_disturb_batch,
    apply_program_disturb_scalar_reference,
    apply_read_disturb_batch,
    apply_read_disturb_scalar_reference,
)
from .ispp import (
    IsppBatchOutcome,
    IsppPolicy,
    program_page_batch,
    program_page_scalar_reference,
)
from .nand_string import StringOperations, build_string
from .sense import SenseAmplifier


@dataclass(frozen=True)
class ArrayConfig:
    """Dimensions and policies of a memory array.

    Attributes
    ----------
    n_blocks:
        Erase blocks.
    wordlines_per_block:
        Pages per block.
    bitlines:
        Cells per page (page size in bits).
    process_sigma_v:
        Cell-to-cell threshold spread at manufacture [V].
    """

    n_blocks: int = 4
    wordlines_per_block: int = 16
    bitlines: int = 64
    process_sigma_v: float = 0.08

    def __post_init__(self) -> None:
        if min(self.n_blocks, self.wordlines_per_block, self.bitlines) < 1:
            raise ConfigurationError("array dimensions must be positive")


@dataclass
class Block:
    """One erase block: a slice of strings plus wear counters."""

    operations: StringOperations
    erase_count: int = 0
    programmed_pages: "set[int]" = field(default_factory=set)

    def is_page_free(self, wordline: int) -> bool:
        return wordline not in self.programmed_pages


@dataclass
class MemoryArray:
    """The full array: blocks of pages of device-calibrated cells.

    Build with :func:`build_array`; program/read/erase with page and
    block addressing. Pages must be erased before they are programmed
    (flash's write-once-then-erase constraint is enforced).
    """

    config: ArrayConfig
    blocks: "list[Block]"
    rng: np.random.Generator

    def _block(self, block: int) -> Block:
        if not 0 <= block < len(self.blocks):
            raise MemoryOperationError(f"block {block} out of range")
        return self.blocks[block]

    def program_page(
        self, block: int, wordline: int, bits: np.ndarray
    ) -> None:
        """Program one page with a bit pattern (1 = erased/inhibited).

        Raises
        ------
        MemoryOperationError
            If the page was already programmed since its last erase, or
            if ISPP fails to verify every selected cell.
        """
        blk = self._block(block)
        if not blk.is_page_free(wordline):
            raise MemoryOperationError(
                f"page ({block}, {wordline}) already programmed; erase first"
            )
        outcome = blk.operations.program_page(wordline, bits, self.rng)
        if not outcome.success:
            raise MemoryOperationError(
                f"program-status fail on page ({block}, {wordline}): "
                f"{len(outcome.failed_cells)} cells never verified"
            )
        blk.programmed_pages.add(wordline)

    def read_page(self, block: int, wordline: int) -> np.ndarray:
        """Read one page into a bit array."""
        return self._block(block).operations.read_page(wordline, self.rng)

    def erase_block(self, block: int) -> None:
        """Erase a whole block."""
        blk = self._block(block)
        blk.operations.erase_all(self.rng)
        blk.programmed_pages.clear()
        blk.erase_count += 1

    def block_erase_counts(self) -> "list[int]":
        """Erase counter of every block (wear-levelling telemetry)."""
        return [b.erase_count for b in self.blocks]

    def page_thresholds(self, block: int, wordline: int) -> np.ndarray:
        """Raw cell thresholds of a page (for distribution analysis)."""
        cells = self._block(block).operations.page_cells(wordline)
        return np.array([c.vt_v for c in cells])


# ----- array-state (matrix) backend -----------------------------------------


@dataclass
class ArrayState:
    """Whole-array cell state as ``(blocks, wordlines, bitlines)`` matrices.

    Attributes
    ----------
    vt_v:
        Current threshold of every cell [V].
    offsets_v:
        Static process-variation offset of every cell [V].
    programmed:
        Boolean nominal-logic-state matrix (True = programmed '0').
    pe_cycles:
        Program/erase cycles endured per cell.
    erase_counts:
        Erase counter per block (wear-levelling telemetry).
    read_counts:
        Reads issued per page.
    """

    vt_v: np.ndarray
    offsets_v: np.ndarray
    programmed: np.ndarray
    pe_cycles: np.ndarray
    erase_counts: np.ndarray
    read_counts: np.ndarray

    @property
    def n_cells(self) -> int:
        """Total cell count of the array."""
        return int(self.vt_v.size)


@dataclass
class VectorMemoryArray:
    """Matrix-backed NAND array: one Vt matrix instead of cell objects.

    The same page/block addressing and flash constraints as
    :class:`MemoryArray` (program by page after erase, erase by block),
    but every operation is a whole-page or whole-block array program
    through the ``*_batch`` kernels of :mod:`~repro.memory.ispp`,
    :mod:`~repro.memory.sense` and :mod:`~repro.memory.disturb`. With
    ``scalar_reference=True`` the identical operations route through
    the per-cell ``*_scalar_reference`` loops on the same RNG stream,
    so the two modes are bit-identical -- the contract the randomized
    parity suites and the gated benchmarks enforce.

    Build with :func:`build_vector_array`.
    """

    config: ArrayConfig
    kernel: CellKernel
    ispp: IsppPolicy
    sense: SenseAmplifier
    rng: np.random.Generator
    state: ArrayState
    disturb: "DisturbModel | None" = None
    scalar_reference: bool = False
    erase_noise_sigma_v: float = 0.05
    programmed_pages: "list[set[int]]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.programmed_pages:
            self.programmed_pages = [
                set() for _ in range(self.config.n_blocks)
            ]

    # ----- addressing ----------------------------------------------------

    def _check_page(self, block: int, wordline: int) -> None:
        if not 0 <= block < self.config.n_blocks:
            raise MemoryOperationError(f"block {block} out of range")
        if not 0 <= wordline < self.config.wordlines_per_block:
            raise MemoryOperationError(
                f"wordline {wordline} outside block of "
                f"{self.config.wordlines_per_block}"
            )

    def is_page_free(self, block: int, wordline: int) -> bool:
        """Whether a page may be programmed without an erase first."""
        self._check_page(block, wordline)
        return wordline not in self.programmed_pages[block]

    # ----- operations ----------------------------------------------------

    def program_page(
        self, block: int, wordline: int, bits: np.ndarray
    ) -> IsppBatchOutcome:
        """Program one page with a bit pattern (1 = erased/inhibited).

        One vectorized ISPP run over the page row of the Vt matrix,
        followed by one boolean-indexed program-disturb accumulation
        over the rest of the block (when a disturb model is attached).
        Returns the ISPP outcome for telemetry.

        Raises
        ------
        MemoryOperationError
            If the page was already programmed since its last erase, or
            if ISPP fails to verify every selected cell.
        """
        self._check_page(block, wordline)
        if wordline in self.programmed_pages[block]:
            raise MemoryOperationError(
                f"page ({block}, {wordline}) already programmed; erase first"
            )
        bits = np.asarray(bits)
        if bits.size != self.config.bitlines:
            raise MemoryOperationError(
                f"need {self.config.bitlines} bits, got {bits.size}"
            )
        select = (bits.astype(np.int64) == 0).reshape(1, -1)
        vt_page = self.state.vt_v[block, wordline].reshape(1, -1)
        ceiling = (
            self.kernel.programmed_vt_v
            + self.state.offsets_v[block, wordline]
        ).reshape(1, -1)
        program = (
            program_page_scalar_reference
            if self.scalar_reference
            else program_page_batch
        )
        outcome = program(vt_page, select, self.ispp, self.rng, ceiling)
        if not outcome.success:
            raise MemoryOperationError(
                f"program-status fail on page ({block}, {wordline}): "
                f"{int(outcome.failed_mask.sum())} cells never verified"
            )
        self.state.vt_v[block, wordline] = outcome.final_vt_v[0]
        self.state.programmed[block, wordline] |= select[0]
        if self.disturb is not None:
            drift = self.disturb.drift_per_event_v()
            accumulate = (
                apply_program_disturb_scalar_reference
                if self.scalar_reference
                else apply_program_disturb_batch
            )
            accumulate(
                self.state.vt_v[block], wordline, select[0], drift
            )
        self.programmed_pages[block].add(wordline)
        return outcome

    def read_page(self, block: int, wordline: int) -> np.ndarray:
        """Read one page into a bit array (1 = erased).

        One vectorized sense comparison over the page row, plus one
        read-disturb accumulation over the rest of the block when a
        disturb model is attached.
        """
        self._check_page(block, wordline)
        sense = (
            self.sense.sense_page_scalar_reference
            if self.scalar_reference
            else self.sense.sense_page_batch
        )
        bits = sense(self.state.vt_v[block, wordline], self.rng)
        self.state.read_counts[block, wordline] += 1
        if self.disturb is not None:
            drift = self.disturb.drift_per_event_v()
            accumulate = (
                apply_read_disturb_scalar_reference
                if self.scalar_reference
                else apply_read_disturb_batch
            )
            accumulate(self.state.vt_v[block], wordline, drift)
        return bits

    def erase_block(self, block: int) -> None:
        """Erase a whole block back to the erased distribution.

        One vectorized noise draw re-seats every cell of the block at
        ``erased_vt + offset + noise`` (per-cell draws in the same
        C order under ``scalar_reference``).
        """
        self._check_page(block, 0)
        shape = self.state.vt_v[block].shape
        if self.scalar_reference:
            noise = np.empty(shape)
            flat = noise.reshape(-1)
            for i in range(flat.size):
                flat[i] = float(
                    self.rng.normal(0.0, self.erase_noise_sigma_v)
                )
        else:
            noise = self.rng.normal(
                0.0, self.erase_noise_sigma_v, size=shape
            )
        self.state.vt_v[block] = (
            self.kernel.erased_vt_v + self.state.offsets_v[block] + noise
        )
        self.state.programmed[block] = False
        self.state.pe_cycles[block] += 1
        self.state.erase_counts[block] += 1
        self.programmed_pages[block].clear()

    # ----- telemetry ------------------------------------------------------

    def block_erase_counts(self) -> "list[int]":
        """Erase counter of every block (wear-levelling telemetry)."""
        return [int(c) for c in self.state.erase_counts]

    def page_thresholds(self, block: int, wordline: int) -> np.ndarray:
        """Raw cell thresholds of a page (for distribution analysis)."""
        self._check_page(block, wordline)
        return self.state.vt_v[block, wordline].copy()


def build_vector_array(
    kernel: CellKernel,
    config: "ArrayConfig | None" = None,
    ispp: "IsppPolicy | None" = None,
    sense: "SenseAmplifier | None" = None,
    disturb: "DisturbModel | None" = None,
    seed: int = 7,
    scalar_reference: bool = False,
) -> VectorMemoryArray:
    """Manufacture a matrix-backed array from a calibrated cell kernel.

    Same default policies as :func:`build_array` (ISPP verify at 2/3 and
    the sense reference at 1/2 of the calibrated window). Process
    offsets are drawn as one ``(blocks, wordlines, bitlines)`` matrix;
    the ``scalar_reference`` flag routes every subsequent *operation*
    through the per-cell reference loops, so two arrays built with the
    same seed -- one per mode -- stay bit-identical through any shared
    operation sequence.
    """
    config = config or ArrayConfig()
    window = kernel.window_v
    ispp = ispp or IsppPolicy(
        verify_level_v=kernel.erased_vt_v + 0.67 * window,
        step_v=max(0.05 * window, 0.1),
        first_pulse_shift_v=max(0.1 * window, 0.2),
    )
    sense = sense or SenseAmplifier(
        reference_v=kernel.erased_vt_v + 0.5 * window
    )
    rng = np.random.default_rng(seed)
    shape = (config.n_blocks, config.wordlines_per_block, config.bitlines)
    offsets = rng.normal(0.0, config.process_sigma_v, size=shape)
    state = ArrayState(
        vt_v=kernel.erased_vt_v + offsets,
        offsets_v=offsets,
        programmed=np.zeros(shape, dtype=bool),
        pe_cycles=np.zeros(shape, dtype=np.int64),
        erase_counts=np.zeros(config.n_blocks, dtype=np.int64),
        read_counts=np.zeros(shape[:2], dtype=np.int64),
    )
    return VectorMemoryArray(
        config=config,
        kernel=kernel,
        ispp=ispp,
        sense=sense,
        rng=rng,
        state=state,
        disturb=disturb,
        scalar_reference=scalar_reference,
    )


def build_array(
    kernel: CellKernel,
    config: "ArrayConfig | None" = None,
    ispp: "IsppPolicy | None" = None,
    sense: "SenseAmplifier | None" = None,
    disturb: "DisturbModel | None" = None,
    seed: int = 7,
) -> MemoryArray:
    """Manufacture an array from a calibrated cell kernel.

    Default ISPP verify and sense reference levels are placed at 2/3 and
    1/2 of the calibrated memory window respectively.
    """
    config = config or ArrayConfig()
    window = kernel.window_v
    ispp = ispp or IsppPolicy(
        verify_level_v=kernel.erased_vt_v + 0.67 * window,
        step_v=max(0.05 * window, 0.1),
        first_pulse_shift_v=max(0.1 * window, 0.2),
    )
    sense = sense or SenseAmplifier(
        reference_v=kernel.erased_vt_v + 0.5 * window
    )
    rng = np.random.default_rng(seed)

    blocks = []
    for _ in range(config.n_blocks):
        strings = [
            build_string(
                kernel,
                config.wordlines_per_block,
                config.process_sigma_v,
                rng,
            )
            for _ in range(config.bitlines)
        ]
        blocks.append(
            Block(
                operations=StringOperations(
                    strings=strings, ispp=ispp, sense=sense, disturb=disturb
                )
            )
        )
    return MemoryArray(config=config, blocks=blocks, rng=rng)
