"""Sense amplifier: converting cell current into bits.

Reads a cell by comparing its drain current at the read bias against a
reference current (equivalently, its threshold against a reference
voltage). Comparator offset and current noise are modelled as a Gaussian
equivalent threshold noise, which is how sensing margin budgets are
specified in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .cell import CellState, MemoryCell


@dataclass(frozen=True)
class SenseAmplifier:
    """Threshold comparator with Gaussian input-referred noise.

    Attributes
    ----------
    reference_v:
        Read reference threshold [V].
    noise_sigma_v:
        Input-referred comparator noise [V].
    """

    reference_v: float
    noise_sigma_v: float = 0.02

    def __post_init__(self) -> None:
        if self.noise_sigma_v < 0.0:
            raise ConfigurationError("noise sigma cannot be negative")

    def sense(
        self, cell: MemoryCell, rng: "np.random.Generator | None" = None
    ) -> int:
        """Read one cell; returns the stored *bit* (1 = erased).

        Follows the paper's state convention: erased = logic '1',
        programmed = logic '0'.
        """
        noise = 0.0
        if rng is not None and self.noise_sigma_v > 0.0:
            noise = float(rng.normal(0.0, self.noise_sigma_v))
        state = cell.read_state(self.reference_v + noise)
        return 1 if state is CellState.ERASED else 0

    def sense_page(
        self,
        cells: "list[MemoryCell]",
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Read a page of cells into a bit array."""
        return np.array([self.sense(c, rng) for c in cells], dtype=np.uint8)

    def margin_v(self, cell: MemoryCell) -> float:
        """Distance of a cell's threshold from the reference [V].

        Positive margins are robust reads; the sign says which side of
        the reference the cell sits on.
        """
        return abs(cell.vt_v - self.reference_v)

    # ----- array-state (matrix) path ------------------------------------

    def sense_page_batch(
        self,
        vt_v: np.ndarray,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Sense a whole threshold array into bits in one comparison.

        Draws one comparator-noise value per cell (a single
        vectorized draw in C order -- the stream the scalar reference
        replays cell by cell) and compares every threshold against its
        noisy reference at once. Returns ``uint8`` bits of ``vt_v``'s
        shape, 1 = erased, matching :meth:`sense` exactly.
        """
        vt = np.asarray(vt_v, dtype=float)
        reference = self.reference_v
        if rng is not None and self.noise_sigma_v > 0.0:
            reference = reference + rng.normal(
                0.0, self.noise_sigma_v, size=vt.shape
            )
        return (vt <= reference).astype(np.uint8)

    def sense_page_scalar_reference(
        self,
        vt_v: np.ndarray,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """The seed per-cell sense loop (bit-exact parity twin).

        Same noise stream and comparison as :meth:`sense_page_batch`,
        executed one cell at a time in C order.
        """
        vt = np.asarray(vt_v, dtype=float)
        flat = vt.reshape(-1)
        bits = np.empty(flat.shape, dtype=np.uint8)
        draw_noise = rng is not None and self.noise_sigma_v > 0.0
        for i, value in enumerate(flat):
            noise = (
                float(rng.normal(0.0, self.noise_sigma_v))
                if draw_noise
                else 0.0
            )
            bits[i] = 1 if value <= self.reference_v + noise else 0
        return bits.reshape(vt.shape)
