"""Memory controller: ECC-protected logical page store.

The top of the memory stack: host pages are ECC-encoded, spread over the
array through the FTL, and verified/corrected on read. The controller
reports raw and post-ECC error statistics, closing the loop from the
paper's single-device tunneling physics to system-level reliability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .array import MemoryArray
from .ecc import (
    HammingCode,
    interleave_decode_batch,
    interleave_encode_batch,
)
from .ftl import PageMappedFtl


@dataclass
class ControllerStats:
    """Error/traffic counters."""

    pages_written: int = 0
    pages_read: int = 0
    bits_corrected: int = 0
    uncorrectable_pages: int = 0


@dataclass
class MemoryController:
    """Host-facing controller with ECC and page mapping.

    Attributes
    ----------
    ftl:
        The translation layer (owns the array).
    code:
        ECC code applied per page.
    host_page_bits:
        Payload bits per host page; must fit the physical page after
        encoding.
    """

    ftl: PageMappedFtl
    code: HammingCode = field(default_factory=lambda: HammingCode(32))
    host_page_bits: int = 32

    def __post_init__(self) -> None:
        physical_bits = self.ftl.array.config.bitlines
        import math

        n_blocks = math.ceil(self.host_page_bits / self.code.data_bits)
        encoded = n_blocks * self.code.codeword_bits
        if encoded > physical_bits:
            raise ConfigurationError(
                f"encoded page ({encoded} bits) exceeds the physical page "
                f"({physical_bits} bits); shrink host_page_bits or the code"
            )
        self.stats = ControllerStats()

    def write(self, logical_page: int, payload: np.ndarray) -> None:
        """ECC-encode and store one host page."""
        payload = np.asarray(payload).astype(np.uint8)
        if payload.size != self.host_page_bits:
            raise MemoryOperationError(
                f"payload must be {self.host_page_bits} bits, "
                f"got {payload.size}"
            )
        encoded = interleave_encode_batch(self.code, payload)
        physical_bits = self.ftl.array.config.bitlines
        page = np.ones(physical_bits, dtype=np.uint8)  # 1 = erased filler
        page[: encoded.size] = encoded
        self.ftl.write(logical_page, page)
        self.stats.pages_written += 1

    def read(self, logical_page: int) -> np.ndarray:
        """Read and correct one host page.

        Raises
        ------
        MemoryOperationError
            On uncorrectable ECC failure (recorded in the stats first).
        """
        raw = self.ftl.read(logical_page)
        import math

        n_blocks = math.ceil(self.host_page_bits / self.code.data_bits)
        encoded_bits = n_blocks * self.code.codeword_bits
        try:
            payload, corrected = interleave_decode_batch(
                self.code, raw[:encoded_bits], self.host_page_bits
            )
        except MemoryOperationError:
            self.stats.uncorrectable_pages += 1
            raise
        self.stats.pages_read += 1
        self.stats.bits_corrected += corrected
        return payload
