"""Program-disturb and read-disturb models.

Unselected cells in a NAND block still see voltage stress:

* **Program disturb**: cells on the selected word line but inhibited
  bit lines, and cells on unselected word lines seeing the pass
  voltage, experience weak FN/direct tunneling that slowly gains charge.
* **Read disturb**: every read applies the (small) pass voltage to all
  other pages of the string; over many reads erased cells drift upward.

Both are computed *from the device physics*: the disturb voltage is run
through the same capacitive divider and tunneling models as a real
program, then converted to a per-event threshold drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.bias import BiasCondition
from ..device.floating_gate import FloatingGateTransistor
from ..electrostatics.gcr import TerminalVoltages
from ..errors import ConfigurationError, MemoryOperationError
from ..tunneling.direct import DirectTunnelingModel

#: Read pass voltage is lower than program pass; the per-event drift is
#: scaled by this ratio of the squared fields (FN-like superlinearity).
READ_DISTURB_SCALE = 0.01


@dataclass(frozen=True)
class DisturbModel:
    """Per-event threshold drift caused by non-selected bias stress.

    Attributes
    ----------
    device:
        The calibration transistor.
    pass_voltage_v:
        Gate voltage seen by unselected word lines during program (or
        read) [V].
    event_duration_s:
        Duration of one disturb event [s].
    """

    device: FloatingGateTransistor
    pass_voltage_v: float = 6.0
    event_duration_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.pass_voltage_v < 0.0:
            raise ConfigurationError("pass voltage cannot be negative")
        if self.event_duration_s <= 0.0:
            raise ConfigurationError("event duration must be positive")

    def drift_per_event_v(self, stored_charge_c: float = 0.0) -> float:
        """Threshold gain of one disturb event [V].

        Evaluates the tunnel-oxide leakage (direct + FN, whichever the
        voltage selects via the continuous direct-tunneling expression)
        at the pass-voltage bias and converts the gained charge through
        C_FC into a threshold shift.
        """
        bias = BiasCondition(
            name="disturb",
            voltages=TerminalVoltages(vgs=self.pass_voltage_v),
        )
        vfg = self.device.floating_gate_voltage(bias, stored_charge_c)
        model = DirectTunnelingModel(self.device.tunnel_barrier)
        j = model.current_density_from_voltage(vfg)
        if j <= 0.0:
            return 0.0
        area = self.device.geometry.channel_area_m2
        gained_charge = -j * area * self.event_duration_s  # electrons in
        cfc = self.device.capacitances.cfc
        return -gained_charge / cfc

    def events_to_drift(self, budget_v: float) -> float:
        """Number of disturb events that consume a drift budget."""
        if budget_v <= 0.0:
            raise ConfigurationError("budget must be positive")
        per_event = self.drift_per_event_v()
        if per_event <= 0.0:
            return float("inf")
        return budget_v / per_event


# ----- array-state (matrix) accumulation ------------------------------------


def _validate_block_matrix(
    vt_v: np.ndarray, wordline: int
) -> np.ndarray:
    """Check one ``(wordlines, bitlines)`` block operand and wordline."""
    vt_v = np.asarray(vt_v, dtype=float)
    if vt_v.ndim != 2 or vt_v.size == 0:
        raise MemoryOperationError(
            f"block Vt must be a (wordlines, bitlines) matrix, got "
            f"shape {vt_v.shape}"
        )
    if not 0 <= wordline < vt_v.shape[0]:
        raise MemoryOperationError(
            f"wordline {wordline} outside block of {vt_v.shape[0]}"
        )
    return vt_v


def apply_program_disturb_batch(
    vt_v: np.ndarray,
    wordline: int,
    select_mask: np.ndarray,
    drift_v: float,
    n_events: int = 1,
) -> np.ndarray:
    """Accumulate program disturb over a whole block matrix in place.

    Victims are every *other* word line of the bit lines participating
    in the program (``select_mask`` true); each gains ``drift_v`` per
    event. One boolean-indexed add replaces the per-victim Python loop;
    each victim cell receives exactly one addition, so the result is
    bit-identical to the scalar reference. Returns ``vt_v``.
    """
    vt_v = _validate_block_matrix(vt_v, wordline)
    select = np.asarray(select_mask, dtype=bool)
    if select.shape != (vt_v.shape[1],):
        raise MemoryOperationError(
            f"select mask must have one entry per bitline "
            f"({vt_v.shape[1]}), got shape {select.shape}"
        )
    victims = np.ones(vt_v.shape[0], dtype=bool)
    victims[wordline] = False
    vt_v[np.ix_(victims, select)] += drift_v * n_events
    return vt_v


def apply_program_disturb_scalar_reference(
    vt_v: np.ndarray,
    wordline: int,
    select_mask: np.ndarray,
    drift_v: float,
    n_events: int = 1,
) -> np.ndarray:
    """The seed per-victim program-disturb loop (bit-exact parity twin)."""
    vt_v = _validate_block_matrix(vt_v, wordline)
    select = np.asarray(select_mask, dtype=bool)
    if select.shape != (vt_v.shape[1],):
        raise MemoryOperationError(
            f"select mask must have one entry per bitline "
            f"({vt_v.shape[1]}), got shape {select.shape}"
        )
    for bitline in range(vt_v.shape[1]):
        if not select[bitline]:
            continue
        for wl in range(vt_v.shape[0]):
            if wl != wordline:
                vt_v[wl, bitline] += drift_v * n_events
    return vt_v


def apply_read_disturb_batch(
    vt_v: np.ndarray,
    wordline: int,
    drift_v: float,
    n_events: int = 1,
) -> np.ndarray:
    """Accumulate read disturb over a whole block matrix in place.

    Every cell of every *other* word line gains the (read-scaled)
    ``drift_v`` per read event; ``n_events`` reads of the same page
    accumulate in one add. Returns ``vt_v``.
    """
    vt_v = _validate_block_matrix(vt_v, wordline)
    victims = np.ones(vt_v.shape[0], dtype=bool)
    victims[wordline] = False
    vt_v[victims, :] += drift_v * READ_DISTURB_SCALE * n_events
    return vt_v


def apply_read_disturb_scalar_reference(
    vt_v: np.ndarray,
    wordline: int,
    drift_v: float,
    n_events: int = 1,
) -> np.ndarray:
    """The seed per-cell read-disturb loop (bit-exact parity twin)."""
    vt_v = _validate_block_matrix(vt_v, wordline)
    for bitline in range(vt_v.shape[1]):
        for wl in range(vt_v.shape[0]):
            if wl != wordline:
                vt_v[wl, bitline] += (
                    drift_v * READ_DISTURB_SCALE * n_events
                )
    return vt_v
