"""Program-disturb and read-disturb models.

Unselected cells in a NAND block still see voltage stress:

* **Program disturb**: cells on the selected word line but inhibited
  bit lines, and cells on unselected word lines seeing the pass
  voltage, experience weak FN/direct tunneling that slowly gains charge.
* **Read disturb**: every read applies the (small) pass voltage to all
  other pages of the string; over many reads erased cells drift upward.

Both are computed *from the device physics*: the disturb voltage is run
through the same capacitive divider and tunneling models as a real
program, then converted to a per-event threshold drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.bias import BiasCondition
from ..device.floating_gate import FloatingGateTransistor
from ..electrostatics.gcr import TerminalVoltages
from ..errors import ConfigurationError
from ..tunneling.direct import DirectTunnelingModel


@dataclass(frozen=True)
class DisturbModel:
    """Per-event threshold drift caused by non-selected bias stress.

    Attributes
    ----------
    device:
        The calibration transistor.
    pass_voltage_v:
        Gate voltage seen by unselected word lines during program (or
        read) [V].
    event_duration_s:
        Duration of one disturb event [s].
    """

    device: FloatingGateTransistor
    pass_voltage_v: float = 6.0
    event_duration_s: float = 1e-4

    def __post_init__(self) -> None:
        if self.pass_voltage_v < 0.0:
            raise ConfigurationError("pass voltage cannot be negative")
        if self.event_duration_s <= 0.0:
            raise ConfigurationError("event duration must be positive")

    def drift_per_event_v(self, stored_charge_c: float = 0.0) -> float:
        """Threshold gain of one disturb event [V].

        Evaluates the tunnel-oxide leakage (direct + FN, whichever the
        voltage selects via the continuous direct-tunneling expression)
        at the pass-voltage bias and converts the gained charge through
        C_FC into a threshold shift.
        """
        bias = BiasCondition(
            name="disturb",
            voltages=TerminalVoltages(vgs=self.pass_voltage_v),
        )
        vfg = self.device.floating_gate_voltage(bias, stored_charge_c)
        model = DirectTunnelingModel(self.device.tunnel_barrier)
        j = model.current_density_from_voltage(vfg)
        if j <= 0.0:
            return 0.0
        area = self.device.geometry.channel_area_m2
        gained_charge = -j * area * self.event_duration_s  # electrons in
        cfc = self.device.capacitances.cfc
        return -gained_charge / cfc

    def events_to_drift(self, budget_v: float) -> float:
        """Number of disturb events that consume a drift budget."""
        if budget_v <= 0.0:
            raise ConfigurationError("budget must be positive")
        per_event = self.drift_per_event_v()
        if per_event <= 0.0:
            return float("inf")
        return budget_v / per_event
