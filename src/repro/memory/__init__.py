"""NAND flash array built on the MLGNR-CNT cell physics.

The system layer the paper motivates: device-calibrated cells organised
into NAND strings, pages and blocks, programmed with ISPP, sensed
against references, disturbed by pass-voltage stress, protected by
Hamming ECC and managed by a page-mapped FTL with greedy garbage
collection.
"""

from .array import ArrayConfig, Block, MemoryArray, build_array
from .cell import (
    CellKernel,
    CellState,
    MemoryCell,
    calibrate_kernel,
    fresh_cells,
)
from .controller import ControllerStats, MemoryController
from .disturb import DisturbModel
from .ecc import (
    HammingCode,
    interleave_decode,
    interleave_encode,
)
from .ftl import FtlStats, PageMappedFtl
from .mlc import (
    GRAY_BITS,
    MlcLevels,
    bits_to_level,
    level_to_bits,
    program_mlc_page,
    read_mlc_page,
)
from .ispp import IsppOutcome, IsppPolicy, program_cells
from .nand_string import NandString, StringOperations, build_string
from .rtn import RtnTrap, read_instability_probability
from .sense import SenseAmplifier
from .vt_distribution import (
    VtDistribution,
    optimal_read_reference,
    raw_bit_error_rate,
)
from .workload import (
    WorkloadSpec,
    WriteRequest,
    build_workload,
    random_payload,
    sequential_workload,
    uniform_random_workload,
    zipf_workload,
)

__all__ = [
    "CellState",
    "CellKernel",
    "MemoryCell",
    "calibrate_kernel",
    "fresh_cells",
    "VtDistribution",
    "raw_bit_error_rate",
    "optimal_read_reference",
    "IsppPolicy",
    "IsppOutcome",
    "program_cells",
    "SenseAmplifier",
    "RtnTrap",
    "read_instability_probability",
    "DisturbModel",
    "NandString",
    "StringOperations",
    "build_string",
    "ArrayConfig",
    "Block",
    "MemoryArray",
    "build_array",
    "HammingCode",
    "interleave_encode",
    "interleave_decode",
    "FtlStats",
    "PageMappedFtl",
    "MlcLevels",
    "GRAY_BITS",
    "bits_to_level",
    "level_to_bits",
    "program_mlc_page",
    "read_mlc_page",
    "ControllerStats",
    "MemoryController",
    "WorkloadSpec",
    "WriteRequest",
    "build_workload",
    "random_payload",
    "sequential_workload",
    "uniform_random_workload",
    "zipf_workload",
]
