"""NAND flash array built on the MLGNR-CNT cell physics.

The system layer the paper motivates: device-calibrated cells organised
into NAND strings, pages and blocks, programmed with ISPP, sensed
against references, disturbed by pass-voltage stress, protected by
Hamming ECC and managed by a page-mapped FTL with greedy garbage
collection.
"""

from .array import (
    ArrayConfig,
    ArrayState,
    Block,
    MemoryArray,
    VectorMemoryArray,
    build_array,
    build_vector_array,
)
from .cell import (
    CellKernel,
    CellState,
    MemoryCell,
    calibrate_kernel,
    fresh_cells,
)
from .controller import ControllerStats, MemoryController
from .disturb import (
    READ_DISTURB_SCALE,
    DisturbModel,
    apply_program_disturb_batch,
    apply_program_disturb_scalar_reference,
    apply_read_disturb_batch,
    apply_read_disturb_scalar_reference,
)
from .ecc import (
    HammingCode,
    interleave_decode,
    interleave_decode_batch,
    interleave_encode,
    interleave_encode_batch,
)
from .ftl import FtlStats, PageMappedFtl
from .mlc import (
    GRAY_BITS,
    MlcLevels,
    bits_to_level,
    level_to_bits,
    program_mlc_page,
    program_mlc_page_batch,
    program_mlc_page_scalar_reference,
    read_mlc_page,
    read_mlc_page_batch,
)
from .ispp import (
    IsppBatchOutcome,
    IsppOutcome,
    IsppPolicy,
    ispp_step_batch,
    program_cells,
    program_page_batch,
    program_page_scalar_reference,
)
from .nand_string import NandString, StringOperations, build_string
from .rtn import (
    RtnTrap,
    derive_trajectory_seed,
    read_instability_probability,
)
from .sense import SenseAmplifier
from .vt_distribution import (
    VtDistribution,
    optimal_read_reference,
    raw_bit_error_rate,
)
from .workload import (
    WorkloadSpec,
    WriteRequest,
    build_workload,
    random_payload,
    sequential_workload,
    uniform_random_workload,
    zipf_workload,
)

__all__ = [
    "CellState",
    "CellKernel",
    "MemoryCell",
    "calibrate_kernel",
    "fresh_cells",
    "VtDistribution",
    "raw_bit_error_rate",
    "optimal_read_reference",
    "IsppPolicy",
    "IsppOutcome",
    "IsppBatchOutcome",
    "program_cells",
    "ispp_step_batch",
    "program_page_batch",
    "program_page_scalar_reference",
    "SenseAmplifier",
    "RtnTrap",
    "derive_trajectory_seed",
    "read_instability_probability",
    "DisturbModel",
    "READ_DISTURB_SCALE",
    "apply_program_disturb_batch",
    "apply_program_disturb_scalar_reference",
    "apply_read_disturb_batch",
    "apply_read_disturb_scalar_reference",
    "NandString",
    "StringOperations",
    "build_string",
    "ArrayConfig",
    "ArrayState",
    "Block",
    "MemoryArray",
    "VectorMemoryArray",
    "build_array",
    "build_vector_array",
    "HammingCode",
    "interleave_encode",
    "interleave_decode",
    "interleave_encode_batch",
    "interleave_decode_batch",
    "FtlStats",
    "PageMappedFtl",
    "MlcLevels",
    "GRAY_BITS",
    "bits_to_level",
    "level_to_bits",
    "program_mlc_page",
    "program_mlc_page_batch",
    "program_mlc_page_scalar_reference",
    "read_mlc_page",
    "read_mlc_page_batch",
    "ControllerStats",
    "MemoryController",
    "WorkloadSpec",
    "WriteRequest",
    "build_workload",
    "random_payload",
    "sequential_workload",
    "uniform_random_workload",
    "zipf_workload",
]
