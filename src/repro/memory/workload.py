"""Synthetic host workloads for array/FTL benchmarks.

Three canonical access patterns: sequential streaming, uniform random,
and Zipf-skewed hot/cold traffic (the pattern that separates good from
bad garbage-collection policies). :class:`WorkloadSpec` is the
declarative form consumed by the session API
(:meth:`repro.api.session.SimulationSession.workload`): it names a
pattern plus its dimensions, and sessions derive the seed from their
own RNG so traffic replays deterministically per session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError

#: Workload kinds a :class:`WorkloadSpec` may name.
WORKLOAD_KINDS = ("sequential", "uniform", "zipf")


@dataclass(frozen=True)
class WriteRequest:
    """One host write: a logical page and its payload bits."""

    logical_page: int
    bits: np.ndarray


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one host workload.

    Attributes
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.
    n_requests, capacity_pages, page_bits:
        Traffic volume and logical-space dimensions.
    skew:
        Zipf skew (> 1); ignored by the other kinds.
    seed:
        Explicit RNG seed, or None to let the owning
        :class:`~repro.api.session.SimulationSession` derive one.
    """

    kind: str
    n_requests: int
    capacity_pages: int
    page_bits: int
    skew: float = 1.2
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            known = ", ".join(WORKLOAD_KINDS)
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; available: {known}"
            )


def build_workload(spec: WorkloadSpec) -> "Iterator[WriteRequest]":
    """Materialise the write stream a :class:`WorkloadSpec` describes.

    Specs without a seed get the generator functions' documented
    defaults, matching the pre-spec call signatures.
    """
    kwargs = {} if spec.seed is None else {"seed": spec.seed}
    if spec.kind == "zipf":
        kwargs["skew"] = spec.skew
    generator = {
        "sequential": sequential_workload,
        "uniform": uniform_random_workload,
        "zipf": zipf_workload,
    }[spec.kind]
    return generator(
        spec.n_requests, spec.capacity_pages, spec.page_bits, **kwargs
    )


def random_payload(
    n_bits: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random page payload."""
    return rng.integers(0, 2, size=n_bits).astype(np.uint8)


def sequential_workload(
    n_requests: int,
    capacity_pages: int,
    page_bits: int,
    seed: int = 11,
) -> "Iterator[WriteRequest]":
    """Streaming writes wrapping around the logical space."""
    if n_requests < 1 or capacity_pages < 1:
        raise ConfigurationError("requests and capacity must be positive")
    rng = np.random.default_rng(seed)
    for i in range(n_requests):
        yield WriteRequest(
            logical_page=i % capacity_pages,
            bits=random_payload(page_bits, rng),
        )


def uniform_random_workload(
    n_requests: int,
    capacity_pages: int,
    page_bits: int,
    seed: int = 13,
) -> "Iterator[WriteRequest]":
    """Uniformly random page updates."""
    if n_requests < 1 or capacity_pages < 1:
        raise ConfigurationError("requests and capacity must be positive")
    rng = np.random.default_rng(seed)
    for _ in range(n_requests):
        yield WriteRequest(
            logical_page=int(rng.integers(0, capacity_pages)),
            bits=random_payload(page_bits, rng),
        )


def zipf_workload(
    n_requests: int,
    capacity_pages: int,
    page_bits: int,
    skew: float = 1.2,
    seed: int = 17,
) -> "Iterator[WriteRequest]":
    """Zipf-skewed updates: a few hot pages absorb most writes.

    ``skew`` > 1 controls the hot-set concentration; pages are ranked by
    a random permutation so the hot set is not the low page numbers.
    """
    if skew <= 1.0:
        raise ConfigurationError("zipf skew must exceed 1.0")
    if n_requests < 1 or capacity_pages < 1:
        raise ConfigurationError("requests and capacity must be positive")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(capacity_pages)
    for _ in range(n_requests):
        rank = int(rng.zipf(skew))
        page = permutation[(rank - 1) % capacity_pages]
        yield WriteRequest(
            logical_page=int(page), bits=random_payload(page_bits, rng)
        )
