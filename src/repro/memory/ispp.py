"""Incremental step pulse programming (ISPP) with program-verify.

NAND programming alternates short pulses with verify reads: cells that
have crossed the verify level are inhibited from further pulses, which
squeezes the programmed distribution to roughly the ISPP step size
regardless of cell-to-cell speed variation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellState, MemoryCell


@dataclass(frozen=True)
class IsppPolicy:
    """ISPP controller settings.

    Attributes
    ----------
    verify_level_v:
        Threshold a cell must exceed to count as programmed [V].
    step_v:
        Staircase voltage increment per pulse; maps one-to-one to the
        per-pulse threshold gain in the steady ISPP regime [V].
    max_pulses:
        Abort limit (program-status failure beyond this).
    first_pulse_shift_v:
        Threshold gain of the first (lowest-voltage) pulse [V].
    noise_sigma_v:
        Per-pulse stochastic spread of the threshold gain [V].
    """

    verify_level_v: float
    step_v: float = 0.3
    max_pulses: int = 24
    first_pulse_shift_v: float = 0.4
    noise_sigma_v: float = 0.05

    def __post_init__(self) -> None:
        if self.step_v <= 0.0:
            raise ConfigurationError("ISPP step must be positive")
        if self.max_pulses < 1:
            raise ConfigurationError("need at least one pulse")
        if self.noise_sigma_v < 0.0:
            raise ConfigurationError("noise sigma cannot be negative")


@dataclass(frozen=True)
class IsppOutcome:
    """Result of programming one page worth of cells.

    Attributes
    ----------
    pulses_used:
        Pulses issued before every selected cell verified.
    failed_cells:
        Indices of cells that never reached the verify level.
    final_vt_v:
        Threshold of every selected cell after the operation.
    """

    pulses_used: int
    failed_cells: "tuple[int, ...]"
    final_vt_v: np.ndarray

    @property
    def success(self) -> bool:
        return not self.failed_cells


def program_cells(
    cells: "list[MemoryCell]",
    select_mask: "list[bool]",
    policy: IsppPolicy,
    rng: "np.random.Generator | None" = None,
) -> IsppOutcome:
    """Program the selected cells to the verify level with ISPP.

    Cells with ``select_mask[i]`` False are inhibited (stay erased).

    Raises
    ------
    MemoryOperationError
        If the mask length does not match the cell list.
    """
    if len(select_mask) != len(cells):
        raise MemoryOperationError("mask length must match cell count")
    rng = rng or np.random.default_rng(1)

    pending = [
        i for i, (cell, sel) in enumerate(zip(cells, select_mask)) if sel
    ]
    pulses = 0
    while pending and pulses < policy.max_pulses:
        shift_base = (
            policy.first_pulse_shift_v if pulses == 0 else policy.step_v
        )
        still_pending = []
        for i in pending:
            noise = float(rng.normal(0.0, policy.noise_sigma_v))
            cells[i].apply_program_pulse(max(shift_base + noise, 0.0))
            if cells[i].vt_v >= policy.verify_level_v:
                cells[i].mark_programmed()
            else:
                still_pending.append(i)
        pending = still_pending
        pulses += 1

    final = np.array(
        [cells[i].vt_v for i in range(len(cells))], dtype=float
    )
    return IsppOutcome(
        pulses_used=pulses,
        failed_cells=tuple(pending),
        final_vt_v=final,
    )
