"""Incremental step pulse programming (ISPP) with program-verify.

NAND programming alternates short pulses with verify reads: cells that
have crossed the verify level are inhibited from further pulses, which
squeezes the programmed distribution to roughly the ISPP step size
regardless of cell-to-cell speed variation.

Two implementations share the module:

* the seed object path (:func:`program_cells` over
  :class:`~repro.memory.cell.MemoryCell` lists), retained for the
  legacy :class:`~repro.memory.array.MemoryArray`, and
* the array-state path: :func:`ispp_step_batch` /
  :func:`program_page_batch` advance a whole ``(pages, cells)``
  threshold matrix per pulse with per-cell verify masks, and
  :func:`program_page_scalar_reference` replays the identical RNG
  stream through per-cell Python loops -- the bit-exact parity twin
  the randomized contract suites enforce.

RNG contract of the batch path: every pulse draws one noise value for
**every** cell of the matrix (page-major order), whether or not the
cell is still pending, so the stream layout is a pure function of the
matrix shape and pulse count -- that is what makes the vectorized and
scalar paths consume identical deterministic streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellState, MemoryCell


@dataclass(frozen=True)
class IsppPolicy:
    """ISPP controller settings.

    Attributes
    ----------
    verify_level_v:
        Threshold a cell must exceed to count as programmed [V].
    step_v:
        Staircase voltage increment per pulse; maps one-to-one to the
        per-pulse threshold gain in the steady ISPP regime [V].
    max_pulses:
        Abort limit (program-status failure beyond this).
    first_pulse_shift_v:
        Threshold gain of the first (lowest-voltage) pulse [V].
    noise_sigma_v:
        Per-pulse stochastic spread of the threshold gain [V].
    """

    verify_level_v: float
    step_v: float = 0.3
    max_pulses: int = 24
    first_pulse_shift_v: float = 0.4
    noise_sigma_v: float = 0.05

    def __post_init__(self) -> None:
        if self.step_v <= 0.0:
            raise ConfigurationError("ISPP step must be positive")
        if self.max_pulses < 1:
            raise ConfigurationError("need at least one pulse")
        if self.noise_sigma_v < 0.0:
            raise ConfigurationError("noise sigma cannot be negative")


@dataclass(frozen=True)
class IsppOutcome:
    """Result of programming one page worth of cells.

    Attributes
    ----------
    pulses_used:
        Pulses issued before every selected cell verified.
    failed_cells:
        Indices of cells that never reached the verify level.
    final_vt_v:
        Threshold of every selected cell after the operation.
    """

    pulses_used: int
    failed_cells: "tuple[int, ...]"
    final_vt_v: np.ndarray

    @property
    def success(self) -> bool:
        return not self.failed_cells


def program_cells(
    cells: "list[MemoryCell]",
    select_mask: "list[bool]",
    policy: IsppPolicy,
    rng: "np.random.Generator | None" = None,
) -> IsppOutcome:
    """Program the selected cells to the verify level with ISPP.

    Cells with ``select_mask[i]`` False are inhibited (stay erased).

    Raises
    ------
    MemoryOperationError
        If the mask length does not match the cell list.
    """
    if len(select_mask) != len(cells):
        raise MemoryOperationError("mask length must match cell count")
    rng = rng or np.random.default_rng(1)

    pending = [
        i for i, (cell, sel) in enumerate(zip(cells, select_mask)) if sel
    ]
    pulses = 0
    while pending and pulses < policy.max_pulses:
        shift_base = (
            policy.first_pulse_shift_v if pulses == 0 else policy.step_v
        )
        still_pending = []
        for i in pending:
            noise = float(rng.normal(0.0, policy.noise_sigma_v))
            cells[i].apply_program_pulse(max(shift_base + noise, 0.0))
            if cells[i].vt_v >= policy.verify_level_v:
                cells[i].mark_programmed()
            else:
                still_pending.append(i)
        pending = still_pending
        pulses += 1

    final = np.array(
        [cells[i].vt_v for i in range(len(cells))], dtype=float
    )
    return IsppOutcome(
        pulses_used=pulses,
        failed_cells=tuple(pending),
        final_vt_v=final,
    )


# ----- array-state (matrix) path --------------------------------------------


@dataclass(frozen=True)
class IsppBatchOutcome:
    """Result of programming a ``(pages, cells)`` threshold matrix.

    Attributes
    ----------
    pulses_used:
        Pulses issued per page -- a pulse counts for a page while that
        page still had unverified selected cells; shape ``(pages,)``.
    failed_mask:
        Boolean ``(pages, cells)`` mask of selected cells that never
        reached the verify level.
    final_vt_v:
        The full threshold matrix after the operation.
    """

    pulses_used: np.ndarray
    failed_mask: np.ndarray
    final_vt_v: np.ndarray

    @property
    def success(self) -> bool:
        """Whether every selected cell of every page verified."""
        return not bool(self.failed_mask.any())


def _as_page_matrix(array: np.ndarray, name: str) -> np.ndarray:
    """Validate and return one ``(pages, cells)`` matrix operand."""
    out = np.asarray(array)
    if out.ndim != 2:
        raise MemoryOperationError(
            f"{name} must be a (pages, cells) matrix, got shape {out.shape}"
        )
    if out.size == 0:
        raise MemoryOperationError(f"{name} must hold at least one cell")
    return out


def ispp_step_batch(
    vt_v: np.ndarray,
    pending: np.ndarray,
    shift_base_v: float,
    policy: IsppPolicy,
    rng: np.random.Generator,
    ceiling_v: "np.ndarray | float",
) -> "tuple[np.ndarray, np.ndarray]":
    """Advance one ISPP pulse over a ``(pages, cells)`` threshold matrix.

    Draws one noise value per matrix cell (the fixed stream layout of
    the batch RNG contract), applies ``max(shift_base + noise, 0)`` to
    the pending cells only -- capped at the per-cell ``ceiling_v`` --
    and verifies against the policy's verify level. Returns the updated
    ``(vt_v, pending)`` pair; non-pending cells pass through bit-exactly.
    """
    vt_v = _as_page_matrix(vt_v, "vt_v")
    pending = _as_page_matrix(pending, "pending").astype(bool)
    if pending.shape != vt_v.shape:
        raise MemoryOperationError("pending mask must match the Vt matrix")
    noise = rng.normal(0.0, policy.noise_sigma_v, size=vt_v.shape)
    shift = np.maximum(shift_base_v + noise, 0.0)
    bumped = np.minimum(vt_v + shift, ceiling_v)
    vt_new = np.where(pending, bumped, vt_v)
    pending_new = pending & (vt_new < policy.verify_level_v)
    return vt_new, pending_new


def program_page_batch(
    vt_v: np.ndarray,
    select_mask: np.ndarray,
    policy: IsppPolicy,
    rng: np.random.Generator,
    ceiling_v: "np.ndarray | float",
) -> IsppBatchOutcome:
    """Program whole pages of a threshold matrix with vectorized ISPP.

    ``vt_v`` and ``select_mask`` are ``(pages, cells)`` matrices;
    unselected cells are inhibited and pass through untouched. Pulsing
    stops when every selected cell of every page has verified or
    ``policy.max_pulses`` is exhausted; each page's pulse counter stops
    with its own last pending cell.
    """
    vt_v = _as_page_matrix(vt_v, "vt_v").astype(float).copy()
    select = _as_page_matrix(select_mask, "select_mask").astype(bool)
    if select.shape != vt_v.shape:
        raise MemoryOperationError("select mask must match the Vt matrix")
    pending = select & (vt_v < policy.verify_level_v)
    pulses = np.zeros(vt_v.shape[0], dtype=np.int64)
    issued = 0
    while pending.any() and issued < policy.max_pulses:
        shift_base = (
            policy.first_pulse_shift_v if issued == 0 else policy.step_v
        )
        pulses += pending.any(axis=1)
        vt_v, pending = ispp_step_batch(
            vt_v, pending, shift_base, policy, rng, ceiling_v
        )
        issued += 1
    return IsppBatchOutcome(
        pulses_used=pulses, failed_mask=pending, final_vt_v=vt_v
    )


def program_page_scalar_reference(
    vt_v: np.ndarray,
    select_mask: np.ndarray,
    policy: IsppPolicy,
    rng: np.random.Generator,
    ceiling_v: "np.ndarray | float",
) -> IsppBatchOutcome:
    """The seed per-cell ISPP loop under the batch RNG contract.

    Identical semantics to :func:`program_page_batch` -- same pulse
    schedule, same per-cell noise draws in page-major order -- executed
    one cell at a time in Python. The contract suites pin the two paths
    bit-exactly; benchmarks time this loop as the scalar baseline.
    """
    vt_v = _as_page_matrix(vt_v, "vt_v").astype(float).copy()
    select = _as_page_matrix(select_mask, "select_mask").astype(bool)
    if select.shape != vt_v.shape:
        raise MemoryOperationError("select mask must match the Vt matrix")
    n_pages, n_cells = vt_v.shape
    ceiling = np.broadcast_to(
        np.asarray(ceiling_v, dtype=float), vt_v.shape
    )
    pending = [
        [select[p, c] and vt_v[p, c] < policy.verify_level_v for c in range(n_cells)]
        for p in range(n_pages)
    ]
    pulses = np.zeros(n_pages, dtype=np.int64)
    issued = 0
    while any(any(row) for row in pending) and issued < policy.max_pulses:
        shift_base = (
            policy.first_pulse_shift_v if issued == 0 else policy.step_v
        )
        for p in range(n_pages):
            if any(pending[p]):
                pulses[p] += 1
        for p in range(n_pages):
            for c in range(n_cells):
                noise = float(rng.normal(0.0, policy.noise_sigma_v))
                if not pending[p][c]:
                    continue
                shift = max(shift_base + noise, 0.0)
                vt_v[p, c] = min(vt_v[p, c] + shift, ceiling[p, c])
                if vt_v[p, c] >= policy.verify_level_v:
                    pending[p][c] = False
        issued += 1
    failed = np.array(pending, dtype=bool).reshape(n_pages, n_cells)
    return IsppBatchOutcome(
        pulses_used=pulses, failed_mask=failed, final_vt_v=vt_v
    )
