"""Random telegraph noise (RTN) on cell thresholds.

A single oxide trap near the channel captures and emits an electron at
random, toggling the cell threshold between two levels -- the dominant
read-instability mechanism of deeply scaled cells, where one electron's
worth of charge is a measurable fraction of C_FC. The model is a
two-state Markov process with capture/emission time constants; its
amplitude is derived from the device capacitance, and its occupancy
statistics follow the detailed-balance ratio the tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELEMENTARY_CHARGE
from ..device.floating_gate import FloatingGateTransistor
from ..errors import ConfigurationError


@dataclass(frozen=True)
class RtnTrap:
    """One two-state oxide trap.

    Attributes
    ----------
    amplitude_v:
        Threshold shift when the trap holds an electron [V].
    capture_time_s:
        Mean time to capture when empty [s].
    emission_time_s:
        Mean time to emit when occupied [s].
    """

    amplitude_v: float
    capture_time_s: float
    emission_time_s: float

    def __post_init__(self) -> None:
        if self.amplitude_v <= 0.0:
            raise ConfigurationError("RTN amplitude must be positive")
        if self.capture_time_s <= 0.0 or self.emission_time_s <= 0.0:
            raise ConfigurationError("time constants must be positive")

    @property
    def occupancy(self) -> float:
        """Stationary probability the trap holds an electron.

        Detailed balance of the two-state process:
        ``p = tau_e / (tau_c + tau_e)``.
        """
        return self.emission_time_s / (
            self.capture_time_s + self.emission_time_s
        )

    @staticmethod
    def single_electron_for_device(
        device: FloatingGateTransistor,
        capture_time_s: float = 1e-3,
        emission_time_s: float = 1e-3,
    ) -> "RtnTrap":
        """Trap whose amplitude is one electron through C_FC.

        The natural RTN magnitude of the cell: how much one trapped
        electron moves the threshold seen from the control gate.
        """
        amplitude = ELEMENTARY_CHARGE / device.capacitances.cfc
        return RtnTrap(
            amplitude_v=amplitude,
            capture_time_s=capture_time_s,
            emission_time_s=emission_time_s,
        )

    def sample_trajectory(
        self,
        duration_s: float,
        dt_s: float,
        rng: np.random.Generator,
        initially_occupied: bool = False,
    ) -> np.ndarray:
        """Simulate the threshold-shift waveform on a fixed time grid.

        Returns the shift at each step (0 or ``amplitude_v``). Uses the
        exact per-step transition probabilities ``1 - exp(-dt/tau)``.
        """
        if duration_s <= 0.0 or dt_s <= 0.0:
            raise ConfigurationError("duration and dt must be positive")
        if dt_s > duration_s:
            raise ConfigurationError("dt cannot exceed the duration")
        n = int(duration_s / dt_s)
        p_capture = 1.0 - math.exp(-dt_s / self.capture_time_s)
        p_emit = 1.0 - math.exp(-dt_s / self.emission_time_s)
        occupied = initially_occupied
        shifts = np.empty(n)
        uniforms = rng.random(n)
        for i in range(n):
            if occupied:
                if uniforms[i] < p_emit:
                    occupied = False
            else:
                if uniforms[i] < p_capture:
                    occupied = True
            shifts[i] = self.amplitude_v if occupied else 0.0
        return shifts


def read_instability_probability(
    trap: RtnTrap, margin_v: float
) -> float:
    """Probability a single read lands on the wrong side of the margin.

    If the cell's nominal margin to the read reference is smaller than
    the RTN amplitude, the trap's occupancy statistics directly set the
    misread probability; otherwise RTN cannot flip the read.
    """
    if margin_v < 0.0:
        raise ConfigurationError("margin cannot be negative")
    if margin_v >= trap.amplitude_v:
        return 0.0
    return trap.occupancy
