"""Random telegraph noise (RTN) on cell thresholds.

A single oxide trap near the channel captures and emits an electron at
random, toggling the cell threshold between two levels -- the dominant
read-instability mechanism of deeply scaled cells, where one electron's
worth of charge is a measurable fraction of C_FC. The model is a
two-state Markov process with capture/emission time constants; its
amplitude is derived from the device capacitance, and its occupancy
statistics follow the detailed-balance ratio the tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELEMENTARY_CHARGE
from ..device.floating_gate import FloatingGateTransistor
from ..errors import ConfigurationError


@dataclass(frozen=True)
class RtnTrap:
    """One two-state oxide trap.

    Attributes
    ----------
    amplitude_v:
        Threshold shift when the trap holds an electron [V].
    capture_time_s:
        Mean time to capture when empty [s].
    emission_time_s:
        Mean time to emit when occupied [s].
    """

    amplitude_v: float
    capture_time_s: float
    emission_time_s: float

    def __post_init__(self) -> None:
        if self.amplitude_v <= 0.0:
            raise ConfigurationError("RTN amplitude must be positive")
        if self.capture_time_s <= 0.0 or self.emission_time_s <= 0.0:
            raise ConfigurationError("time constants must be positive")

    @property
    def occupancy(self) -> float:
        """Stationary probability the trap holds an electron.

        Detailed balance of the two-state process:
        ``p = tau_e / (tau_c + tau_e)``.
        """
        return self.emission_time_s / (
            self.capture_time_s + self.emission_time_s
        )

    @staticmethod
    def single_electron_for_device(
        device: FloatingGateTransistor,
        capture_time_s: float = 1e-3,
        emission_time_s: float = 1e-3,
    ) -> "RtnTrap":
        """Trap whose amplitude is one electron through C_FC.

        The natural RTN magnitude of the cell: how much one trapped
        electron moves the threshold seen from the control gate.
        """
        amplitude = ELEMENTARY_CHARGE / device.capacitances.cfc
        return RtnTrap(
            amplitude_v=amplitude,
            capture_time_s=capture_time_s,
            emission_time_s=emission_time_s,
        )

    def sample_trajectory(
        self,
        duration_s: float,
        dt_s: float,
        rng: np.random.Generator,
        initially_occupied: bool = False,
    ) -> np.ndarray:
        """Simulate the threshold-shift waveform on a fixed time grid.

        Returns the shift at each step (0 or ``amplitude_v``). Uses the
        exact per-step transition probabilities ``1 - exp(-dt/tau)``.

        For ensembles, do **not** thread one generator through repeated
        calls (trajectory *k* would then depend on how many steps every
        earlier trajectory consumed): derive one independent stream per
        lane with :func:`derive_trajectory_seed` -- the convention
        :meth:`sample_trajectory_batch` applies internally -- so lane
        ``i`` of a batch is reproduced exactly by
        ``sample_trajectory(..., rng=np.random.default_rng(
        derive_trajectory_seed(seed, i)))``.
        """
        self._validate_grid(duration_s, dt_s)
        n = int(duration_s / dt_s)
        p_capture = 1.0 - math.exp(-dt_s / self.capture_time_s)
        p_emit = 1.0 - math.exp(-dt_s / self.emission_time_s)
        occupied = initially_occupied
        shifts = np.empty(n)
        uniforms = rng.random(n)
        for i in range(n):
            if occupied:
                if uniforms[i] < p_emit:
                    occupied = False
            else:
                if uniforms[i] < p_capture:
                    occupied = True
            shifts[i] = self.amplitude_v if occupied else 0.0
        return shifts

    def sample_trajectory_scalar_reference(
        self,
        duration_s: float,
        dt_s: float,
        lane: int,
        seed: int,
        initially_occupied: bool = False,
    ) -> np.ndarray:
        """One lane of a batch ensemble through the seed per-step loop.

        Runs :meth:`sample_trajectory` on the lane's derived independent
        stream -- the bit-exact scalar twin of the corresponding row of
        :meth:`sample_trajectory_batch`.
        """
        rng = np.random.default_rng(derive_trajectory_seed(seed, lane))
        return self.sample_trajectory(
            duration_s, dt_s, rng, initially_occupied=initially_occupied
        )

    def sample_trajectory_batch(
        self,
        duration_s: float,
        dt_s: float,
        n_trajectories: int,
        seed: int,
        initially_occupied: bool = False,
    ) -> np.ndarray:
        """Simulate a ``(trajectories, steps)`` RTN ensemble vectorized.

        Each lane draws its uniforms from an independent stream derived
        via :func:`derive_trajectory_seed` (the
        ``session.derive_worker_seed`` convention). The two-state
        Markov recurrence is then solved in closed form instead of
        stepped: classify every step by its uniform --

        * *forced* (the step sets the state regardless of history:
          the capture and survival tests agree),
        * *flip* (``u`` below both probabilities: an occupied trap
          emits, an empty one captures), or
        * *identity* (``u`` above both: the state persists) --

        after which ``occupied[i]`` is the value at the most recent
        forced step XOR the parity of flips since it. The segment
        lookup runs as one running maximum over ``(step << 1) | value``
        packed integers (the maximum at step ``i`` is the *latest*
        forced step's packed record, or -1 if none yet) and the flip
        parity as one boolean XOR accumulation, so no Python loop over
        steps remains. Lane ``i`` is bit-identical to
        :meth:`sample_trajectory_scalar_reference` with the same seed.
        """
        self._validate_grid(duration_s, dt_s)
        if n_trajectories < 1:
            raise ConfigurationError("need at least one trajectory")
        n = int(duration_s / dt_s)
        p_capture = 1.0 - math.exp(-dt_s / self.capture_time_s)
        p_emit = 1.0 - math.exp(-dt_s / self.emission_time_s)
        uniforms = np.empty((n_trajectories, n))
        for lane in range(n_trajectories):
            lane_rng = np.random.default_rng(
                derive_trajectory_seed(seed, lane)
            )
            uniforms[lane] = lane_rng.random(n)
        captures = uniforms < p_capture
        stays = uniforms >= p_emit
        forced = captures == stays
        flips = captures & ~stays
        # Inclusive flip parity: occupied relative to the last anchor.
        parity = np.logical_xor.accumulate(flips, axis=1)
        # At a forced step j the state is captures[j]; store it parity-
        # relative (captures ^ parity) so the XOR below undoes the
        # flips that preceded the anchor.
        anchored = captures ^ parity
        packed_steps = (np.arange(n, dtype=np.int32) << 1).reshape(1, -1)
        packed = np.where(
            forced, packed_steps + anchored, np.int32(-1)
        )
        latest = np.maximum.accumulate(packed, axis=1)
        base = np.where(
            latest < 0, bool(initially_occupied), (latest & 1) == 1
        )
        occupied = base ^ parity
        return np.where(occupied, self.amplitude_v, 0.0)

    def _validate_grid(self, duration_s: float, dt_s: float) -> None:
        """Shared time-grid validation of the trajectory samplers."""
        if duration_s <= 0.0 or dt_s <= 0.0:
            raise ConfigurationError("duration and dt must be positive")
        if dt_s > duration_s:
            raise ConfigurationError("dt cannot exceed the duration")


def derive_trajectory_seed(seed: int, lane: int) -> int:
    """A deterministic independent seed for one ensemble lane.

    The memory-layer analogue of
    :func:`repro.api.session.derive_worker_seed`: ``(root seed, lane)``
    is mixed through :class:`numpy.random.SeedSequence` (stable across
    NumPy versions and platforms), so nearby lanes (0, 1, 2, ...) land
    on statistically independent streams and a fixed root seed replays
    the whole ensemble -- or any single lane -- exactly.
    """
    mask = (1 << 64) - 1
    mixed = np.random.SeedSequence([int(seed) & mask, int(lane) & mask])
    return int(mixed.generate_state(1, dtype=np.uint64)[0])


def read_instability_probability(
    trap: RtnTrap, margin_v: float
) -> float:
    """Probability a single read lands on the wrong side of the margin.

    If the cell's nominal margin to the read reference is smaller than
    the RTN amplitude, the trap's occupancy statistics directly set the
    misread probability; otherwise RTN cannot flip the read.
    """
    if margin_v < 0.0:
        raise ConfigurationError("margin cannot be negative")
    if margin_v >= trap.amplitude_v:
        return 0.0
    return trap.occupancy
