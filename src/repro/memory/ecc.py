"""Error-correcting codes for page reads.

Flash always pairs the raw cell array with ECC. A systematic Hamming
SEC (single error correcting) code with optional extended parity
(SECDED) is implemented from scratch over numpy bit arrays -- enough to
demonstrate the raw-BER to post-ECC-BER improvement the array
benchmarks report.

The seed bit-by-bit :meth:`HammingCode.encode` / ``decode`` loops are
retained as the scalar references; the matrix-parity path
(:meth:`HammingCode.encode_batch` / :meth:`HammingCode.decode_batch`,
plus the page-level :func:`interleave_encode_batch` /
:func:`interleave_decode_batch`) evaluates whole stacks of codewords
as GF(2) matrix products -- one ``uint8`` matmul-mod-2 per direction --
and is pinned bit-exact against the loops by the contract suites,
including every single-bit (and detectable double-bit) error pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError


def _parity_positions(n_total: int) -> "list[int]":
    """1-indexed power-of-two positions inside a codeword of length n."""
    positions = []
    p = 1
    while p <= n_total:
        positions.append(p)
        p *= 2
    return positions


@dataclass(frozen=True)
class HammingCode:
    """Systematic-in-layout Hamming code over ``data_bits`` payload bits.

    Attributes
    ----------
    data_bits:
        Payload length (e.g. 64 for a SECDED-72/64-like layout).
    extended:
        Add an overall parity bit, upgrading to SECDED: single-bit
        errors corrected, double-bit errors *detected*.
    """

    data_bits: int
    extended: bool = True

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ConfigurationError("need at least one data bit")

    @property
    def parity_bits(self) -> int:
        """Number of Hamming parity bits (excluding the extended bit)."""
        r = 1
        while 2**r < self.data_bits + r + 1:
            r += 1
        return r

    @property
    def codeword_bits(self) -> int:
        """Total encoded length."""
        return self.data_bits + self.parity_bits + (1 if self.extended else 0)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a payload bit array into a codeword bit array."""
        data = np.asarray(data).astype(np.uint8)
        if data.size != self.data_bits:
            raise MemoryOperationError(
                f"payload must be {self.data_bits} bits, got {data.size}"
            )
        n = self.data_bits + self.parity_bits
        word = np.zeros(n + 1, dtype=np.uint8)  # 1-indexed scratch
        parity_pos = set(_parity_positions(n))
        data_iter = iter(data)
        for pos in range(1, n + 1):
            if pos not in parity_pos:
                word[pos] = next(data_iter)
        for p in sorted(parity_pos):
            acc = 0
            for pos in range(1, n + 1):
                if pos != p and (pos & p):
                    acc ^= int(word[pos])
            word[p] = acc
        codeword = word[1:]
        if self.extended:
            overall = np.uint8(int(codeword.sum()) % 2)
            codeword = np.concatenate([codeword, [overall]])
        return codeword

    def decode(self, received: np.ndarray) -> "tuple[np.ndarray, int]":
        """Decode a received codeword.

        Returns ``(payload, n_corrected)`` where ``n_corrected`` is 0 or
        1.

        Raises
        ------
        MemoryOperationError
            On detected-but-uncorrectable patterns (SECDED double error).
        """
        received = np.asarray(received).astype(np.uint8)
        if received.size != self.codeword_bits:
            raise MemoryOperationError(
                f"codeword must be {self.codeword_bits} bits, "
                f"got {received.size}"
            )
        n = self.data_bits + self.parity_bits
        if self.extended:
            body = received[:-1].copy()
            overall_ok = int(received.sum()) % 2 == 0
        else:
            body = received.copy()
            overall_ok = True

        word = np.concatenate([[np.uint8(0)], body])  # 1-indexed
        syndrome = 0
        for p in _parity_positions(n):
            acc = 0
            for pos in range(1, n + 1):
                if pos & p:
                    acc ^= int(word[pos])
            if acc:
                syndrome |= p

        corrected = 0
        if syndrome != 0:
            if self.extended and overall_ok:
                raise MemoryOperationError(
                    "double-bit error detected (SECDED); page unrecoverable"
                )
            if syndrome <= n:
                word[syndrome] ^= 1
                corrected = 1
            else:
                raise MemoryOperationError(
                    f"syndrome {syndrome} outside codeword; uncorrectable"
                )
        elif self.extended and not overall_ok:
            # Error in the extended parity bit itself; payload intact.
            corrected = 1

        parity_pos = set(_parity_positions(n))
        payload = np.array(
            [word[pos] for pos in range(1, n + 1) if pos not in parity_pos],
            dtype=np.uint8,
        )
        return payload, corrected

    def overhead_fraction(self) -> float:
        """Redundancy fraction of the code."""
        return 1.0 - self.data_bits / self.codeword_bits

    # ----- matrix-parity (GF(2) matmul) path ----------------------------

    def encode_scalar_reference(self, data: np.ndarray) -> np.ndarray:
        """The seed bit-by-bit encode loop (parity twin of the matmul).

        Alias of :meth:`encode`, named so the batched-vs-scalar parity
        contract reads the same here as for every other batch kernel.
        """
        return self.encode(data)

    def decode_scalar_reference(
        self, received: np.ndarray
    ) -> "tuple[np.ndarray, int]":
        """The seed bit-by-bit decode loop (parity twin of the matmul).

        Alias of :meth:`decode`; see :meth:`encode_scalar_reference`.
        """
        return self.decode(received)

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        """Encode a ``(words, data_bits)`` stack as one GF(2) matmul.

        Parity bits are the data block times the precomputed generator
        submatrix, reduced mod 2; the extended overall-parity column is
        one row sum. A 1-D payload is treated as a single word and the
        codeword returned 1-D, matching :meth:`encode` exactly.
        """
        data = np.asarray(data).astype(np.uint8)
        single = data.ndim == 1
        words = data.reshape(1, -1) if single else data
        if words.ndim != 2 or words.shape[1] != self.data_bits:
            raise MemoryOperationError(
                f"payload stack must be (words, {self.data_bits}) bits, "
                f"got shape {data.shape}"
            )
        s = _code_structure(self.data_bits, self.extended)
        out = np.zeros((words.shape[0], self.codeword_bits), dtype=np.uint8)
        out[:, s.data_idx] = words
        out[:, s.parity_idx] = (
            words.astype(np.int64) @ s.generator
        ) % 2
        if self.extended:
            out[:, -1] = out[:, :-1].sum(axis=1) % 2
        return out[0] if single else out

    def decode_batch(
        self, received: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Decode a ``(words, codeword_bits)`` stack via syndrome matmul.

        Returns ``(payloads, corrected, uncorrectable)``: the corrected
        payload stack, the per-word 0/1 correction counts, and a boolean
        mask of words whose error pattern the code can only detect
        (SECDED double errors and out-of-range syndromes). Uncorrectable
        words keep their (wrong) payload bits; callers decide whether to
        raise -- :func:`interleave_decode_batch` does, matching the
        scalar path's exception contract.
        """
        received = np.asarray(received).astype(np.uint8)
        single = received.ndim == 1
        words = received.reshape(1, -1) if single else received
        if words.ndim != 2 or words.shape[1] != self.codeword_bits:
            raise MemoryOperationError(
                f"codeword stack must be (words, {self.codeword_bits}) "
                f"bits, got shape {received.shape}"
            )
        s = _code_structure(self.data_bits, self.extended)
        n = self.data_bits + self.parity_bits
        body = words[:, :n].copy()
        if self.extended:
            overall_ok = words.sum(axis=1) % 2 == 0
        else:
            overall_ok = np.ones(words.shape[0], dtype=bool)

        # One syndrome bit per parity position: XOR of the covered
        # columns, i.e. a mod-2 matrix product with the check matrix.
        syndrome_bits = (body.astype(np.int64) @ s.check.T) % 2
        syndrome = syndrome_bits @ s.parity_values  # weighted -> position

        corrected = np.zeros(words.shape[0], dtype=np.int64)
        uncorrectable = np.zeros(words.shape[0], dtype=bool)

        nonzero = syndrome != 0
        if self.extended:
            # Even overall parity with a nonzero syndrome = two flips.
            uncorrectable |= nonzero & overall_ok
        out_of_range = syndrome > n
        uncorrectable |= nonzero & out_of_range
        flip = nonzero & ~uncorrectable
        rows = np.nonzero(flip)[0]
        body[rows, syndrome[rows] - 1] ^= 1
        corrected[flip] = 1
        # A clean syndrome with bad overall parity: the extended bit
        # itself flipped; the payload is intact.
        corrected[~nonzero & ~overall_ok] = 1

        payloads = body[:, s.data_idx]
        if single:
            return payloads[0], corrected[0], uncorrectable[0]
        return payloads, corrected, uncorrectable


@dataclass(frozen=True)
class _CodeStructure:
    """Precomputed GF(2) matrices of one (data_bits, extended) layout."""

    data_idx: np.ndarray
    parity_idx: np.ndarray
    generator: np.ndarray
    check: np.ndarray
    parity_values: np.ndarray


@lru_cache(maxsize=32)
def _code_structure(data_bits: int, extended: bool) -> _CodeStructure:
    """Build (once per layout) the encode/decode matrices of a code.

    ``generator`` maps a data block to its parity bits; ``check`` maps a
    codeword body to its syndrome bits; ``parity_values`` are the
    power-of-two syndrome weights that turn syndrome bits back into a
    1-indexed error position.
    """
    code = HammingCode(data_bits, extended=extended)
    n = code.data_bits + code.parity_bits
    parity_values = np.array(_parity_positions(n), dtype=np.int64)
    parity_set = set(int(p) for p in parity_values)
    data_positions = np.array(
        [pos for pos in range(1, n + 1) if pos not in parity_set],
        dtype=np.int64,
    )
    generator = (
        (data_positions[:, np.newaxis] & parity_values[np.newaxis, :]) != 0
    ).astype(np.int64)
    positions = np.arange(1, n + 1, dtype=np.int64)
    check = (
        (positions[np.newaxis, :] & parity_values[:, np.newaxis]) != 0
    ).astype(np.int64)
    return _CodeStructure(
        data_idx=data_positions - 1,
        parity_idx=parity_values - 1,
        generator=generator,
        check=check,
        parity_values=parity_values,
    )


def interleave_encode(
    code: HammingCode, page_bits: np.ndarray
) -> np.ndarray:
    """Encode a long page as consecutive independent codewords.

    Pads the tail with zeros to a whole number of payload blocks.
    """
    page_bits = np.asarray(page_bits).astype(np.uint8)
    k = code.data_bits
    n_blocks = math.ceil(page_bits.size / k)
    padded = np.zeros(n_blocks * k, dtype=np.uint8)
    padded[: page_bits.size] = page_bits
    blocks = [
        code.encode(padded[i * k : (i + 1) * k]) for i in range(n_blocks)
    ]
    return np.concatenate(blocks)


def interleave_decode(
    code: HammingCode, encoded: np.ndarray, payload_bits: int
) -> "tuple[np.ndarray, int]":
    """Decode a page of consecutive codewords; returns (bits, corrected)."""
    encoded = np.asarray(encoded).astype(np.uint8)
    n = code.codeword_bits
    if encoded.size % n != 0:
        raise MemoryOperationError(
            f"encoded length {encoded.size} is not a multiple of {n}"
        )
    payloads = []
    corrected = 0
    for i in range(encoded.size // n):
        payload, fixed = code.decode(encoded[i * n : (i + 1) * n])
        payloads.append(payload)
        corrected += fixed
    bits = np.concatenate(payloads)[:payload_bits]
    return bits, corrected


def interleave_encode_batch(
    code: HammingCode, page_bits: np.ndarray
) -> np.ndarray:
    """Encode a long page as one stacked GF(2) matmul.

    Pads the tail with zeros to a whole number of payload blocks,
    reshapes the page into a ``(words, data_bits)`` stack, and encodes
    every codeword at once -- bit-identical to the per-word
    :func:`interleave_encode` loop.
    """
    page_bits = np.asarray(page_bits).astype(np.uint8)
    k = code.data_bits
    n_blocks = math.ceil(page_bits.size / k)
    padded = np.zeros(n_blocks * k, dtype=np.uint8)
    padded[: page_bits.size] = page_bits
    return code.encode_batch(padded.reshape(n_blocks, k)).reshape(-1)


def interleave_decode_batch(
    code: HammingCode, encoded: np.ndarray, payload_bits: int
) -> "tuple[np.ndarray, int]":
    """Decode a page of consecutive codewords via the syndrome matmul.

    Returns ``(bits, corrected)`` exactly like :func:`interleave_decode`
    and raises :class:`~repro.errors.MemoryOperationError` if any word
    of the page is uncorrectable (the SECDED detection contract of the
    scalar path).
    """
    encoded = np.asarray(encoded).astype(np.uint8)
    n = code.codeword_bits
    if encoded.size % n != 0:
        raise MemoryOperationError(
            f"encoded length {encoded.size} is not a multiple of {n}"
        )
    payloads, corrected, uncorrectable = code.decode_batch(
        encoded.reshape(-1, n)
    )
    if uncorrectable.any():
        raise MemoryOperationError(
            f"{int(uncorrectable.sum())} codeword(s) uncorrectable "
            "(SECDED detection); page unrecoverable"
        )
    bits = payloads.reshape(-1)[:payload_bits]
    return bits, int(corrected.sum())
