"""Error-correcting codes for page reads.

Flash always pairs the raw cell array with ECC. A systematic Hamming
SEC (single error correcting) code with optional extended parity
(SECDED) is implemented from scratch over numpy bit arrays -- enough to
demonstrate the raw-BER to post-ECC-BER improvement the array
benchmarks report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError


def _parity_positions(n_total: int) -> "list[int]":
    """1-indexed power-of-two positions inside a codeword of length n."""
    positions = []
    p = 1
    while p <= n_total:
        positions.append(p)
        p *= 2
    return positions


@dataclass(frozen=True)
class HammingCode:
    """Systematic-in-layout Hamming code over ``data_bits`` payload bits.

    Attributes
    ----------
    data_bits:
        Payload length (e.g. 64 for a SECDED-72/64-like layout).
    extended:
        Add an overall parity bit, upgrading to SECDED: single-bit
        errors corrected, double-bit errors *detected*.
    """

    data_bits: int
    extended: bool = True

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ConfigurationError("need at least one data bit")

    @property
    def parity_bits(self) -> int:
        """Number of Hamming parity bits (excluding the extended bit)."""
        r = 1
        while 2**r < self.data_bits + r + 1:
            r += 1
        return r

    @property
    def codeword_bits(self) -> int:
        """Total encoded length."""
        return self.data_bits + self.parity_bits + (1 if self.extended else 0)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a payload bit array into a codeword bit array."""
        data = np.asarray(data).astype(np.uint8)
        if data.size != self.data_bits:
            raise MemoryOperationError(
                f"payload must be {self.data_bits} bits, got {data.size}"
            )
        n = self.data_bits + self.parity_bits
        word = np.zeros(n + 1, dtype=np.uint8)  # 1-indexed scratch
        parity_pos = set(_parity_positions(n))
        data_iter = iter(data)
        for pos in range(1, n + 1):
            if pos not in parity_pos:
                word[pos] = next(data_iter)
        for p in sorted(parity_pos):
            acc = 0
            for pos in range(1, n + 1):
                if pos != p and (pos & p):
                    acc ^= int(word[pos])
            word[p] = acc
        codeword = word[1:]
        if self.extended:
            overall = np.uint8(int(codeword.sum()) % 2)
            codeword = np.concatenate([codeword, [overall]])
        return codeword

    def decode(self, received: np.ndarray) -> "tuple[np.ndarray, int]":
        """Decode a received codeword.

        Returns ``(payload, n_corrected)`` where ``n_corrected`` is 0 or
        1.

        Raises
        ------
        MemoryOperationError
            On detected-but-uncorrectable patterns (SECDED double error).
        """
        received = np.asarray(received).astype(np.uint8)
        if received.size != self.codeword_bits:
            raise MemoryOperationError(
                f"codeword must be {self.codeword_bits} bits, "
                f"got {received.size}"
            )
        n = self.data_bits + self.parity_bits
        if self.extended:
            body = received[:-1].copy()
            overall_ok = int(received.sum()) % 2 == 0
        else:
            body = received.copy()
            overall_ok = True

        word = np.concatenate([[np.uint8(0)], body])  # 1-indexed
        syndrome = 0
        for p in _parity_positions(n):
            acc = 0
            for pos in range(1, n + 1):
                if pos & p:
                    acc ^= int(word[pos])
            if acc:
                syndrome |= p

        corrected = 0
        if syndrome != 0:
            if self.extended and overall_ok:
                raise MemoryOperationError(
                    "double-bit error detected (SECDED); page unrecoverable"
                )
            if syndrome <= n:
                word[syndrome] ^= 1
                corrected = 1
            else:
                raise MemoryOperationError(
                    f"syndrome {syndrome} outside codeword; uncorrectable"
                )
        elif self.extended and not overall_ok:
            # Error in the extended parity bit itself; payload intact.
            corrected = 1

        parity_pos = set(_parity_positions(n))
        payload = np.array(
            [word[pos] for pos in range(1, n + 1) if pos not in parity_pos],
            dtype=np.uint8,
        )
        return payload, corrected

    def overhead_fraction(self) -> float:
        """Redundancy fraction of the code."""
        return 1.0 - self.data_bits / self.codeword_bits


def interleave_encode(
    code: HammingCode, page_bits: np.ndarray
) -> np.ndarray:
    """Encode a long page as consecutive independent codewords.

    Pads the tail with zeros to a whole number of payload blocks.
    """
    page_bits = np.asarray(page_bits).astype(np.uint8)
    k = code.data_bits
    n_blocks = math.ceil(page_bits.size / k)
    padded = np.zeros(n_blocks * k, dtype=np.uint8)
    padded[: page_bits.size] = page_bits
    blocks = [
        code.encode(padded[i * k : (i + 1) * k]) for i in range(n_blocks)
    ]
    return np.concatenate(blocks)


def interleave_decode(
    code: HammingCode, encoded: np.ndarray, payload_bits: int
) -> "tuple[np.ndarray, int]":
    """Decode a page of consecutive codewords; returns (bits, corrected)."""
    encoded = np.asarray(encoded).astype(np.uint8)
    n = code.codeword_bits
    if encoded.size % n != 0:
        raise MemoryOperationError(
            f"encoded length {encoded.size} is not a multiple of {n}"
        )
    payloads = []
    corrected = 0
    for i in range(encoded.size // n):
        payload, fixed = code.decode(encoded[i * n : (i + 1) * n])
        payloads.append(payload)
        corrected += fixed
    bits = np.concatenate(payloads)[:payload_bits]
    return bits, corrected
