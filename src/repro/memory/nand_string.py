"""NAND string: serially connected cells sharing one bit line.

The paper targets NAND flash ("FN tunneling is adopted in NAND flash
memory, which is the most popular, dense and cost effective"). In a
NAND string every cell sits in series, so reading one page requires
driving all *other* word lines with a pass voltage -- the structural
source of read disturb -- and programming applies the pass voltage to
the unselected pages of selected bit lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, MemoryOperationError
from .cell import CellKernel, CellState, MemoryCell, fresh_cells
from .disturb import READ_DISTURB_SCALE, DisturbModel
from .ispp import IsppOutcome, IsppPolicy, program_cells
from .sense import SenseAmplifier


@dataclass
class NandString:
    """One bit line's serial chain of cells.

    Attributes
    ----------
    cells:
        Word-line-ordered cells (index 0 nearest the source select).
    """

    cells: "list[MemoryCell]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError("a NAND string needs at least one cell")

    @property
    def n_wordlines(self) -> int:
        return len(self.cells)

    def cell(self, wordline: int) -> MemoryCell:
        if not 0 <= wordline < self.n_wordlines:
            raise MemoryOperationError(
                f"wordline {wordline} outside string of {self.n_wordlines}"
            )
        return self.cells[wordline]

    def is_conducting(self, selected_wordline: int, reference_v: float) -> bool:
        """Whether the string conducts with one word line at the reference.

        All unselected cells see the pass voltage (assumed to exceed any
        programmed threshold, so they conduct); the selected cell
        conducts only if its threshold is below the reference.
        """
        return self.cell(selected_wordline).vt_v <= reference_v


def build_string(
    kernel: CellKernel,
    n_wordlines: int = 64,
    process_sigma_v: float = 0.08,
    rng: "np.random.Generator | None" = None,
) -> NandString:
    """Manufacture a fresh (erased) NAND string."""
    if n_wordlines < 1:
        raise ConfigurationError("need at least one wordline")
    return NandString(
        cells=fresh_cells(kernel, n_wordlines, process_sigma_v, rng)
    )


@dataclass
class StringOperations:
    """Program/read operations on a group of strings (one block slice).

    Attributes
    ----------
    strings:
        The bit lines, each a :class:`NandString` of equal length.
    ispp:
        Programming policy.
    sense:
        Read comparator.
    disturb:
        Physics-calibrated disturb model; None disables disturbs.
    """

    strings: "list[NandString]"
    ispp: IsppPolicy
    sense: SenseAmplifier
    disturb: "DisturbModel | None" = None
    read_count: "dict[int, int]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strings:
            raise ConfigurationError("need at least one string")
        lengths = {s.n_wordlines for s in self.strings}
        if len(lengths) != 1:
            raise ConfigurationError("all strings must share a length")

    @property
    def n_wordlines(self) -> int:
        return self.strings[0].n_wordlines

    @property
    def n_bitlines(self) -> int:
        return len(self.strings)

    def page_cells(self, wordline: int) -> "list[MemoryCell]":
        """Cells of one page (same word line across all bit lines)."""
        return [s.cell(wordline) for s in self.strings]

    def program_page(
        self,
        wordline: int,
        bits: np.ndarray,
        rng: "np.random.Generator | None" = None,
    ) -> IsppOutcome:
        """Program a page: bit 0 -> programmed cell, bit 1 -> inhibited.

        Applies pass-voltage program disturb to every other page of the
        participating strings when a disturb model is attached.
        """
        bits = np.asarray(bits)
        if bits.size != self.n_bitlines:
            raise MemoryOperationError(
                f"need {self.n_bitlines} bits, got {bits.size}"
            )
        cells = self.page_cells(wordline)
        mask = [int(b) == 0 for b in bits]
        outcome = program_cells(cells, mask, self.ispp, rng)

        if self.disturb is not None:
            drift = self.disturb.drift_per_event_v()
            for string, selected in zip(self.strings, mask):
                if not selected:
                    continue
                for wl in range(self.n_wordlines):
                    if wl != wordline:
                        string.cell(wl).disturb(drift)
        return outcome

    def read_page(
        self,
        wordline: int,
        rng: "np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Read a page into bits, applying read disturb to other pages."""
        cells = self.page_cells(wordline)
        bits = self.sense.sense_page(cells, rng)
        self.read_count[wordline] = self.read_count.get(wordline, 0) + 1
        if self.disturb is not None:
            drift = self.disturb.drift_per_event_v()
            read_scale = READ_DISTURB_SCALE
            for string in self.strings:
                for wl in range(self.n_wordlines):
                    if wl != wordline:
                        string.cell(wl).disturb(drift * read_scale)
        return bits

    def erase_all(self, rng: "np.random.Generator | None" = None) -> None:
        """Block erase: every cell returns to the erased distribution."""
        rng = rng or np.random.default_rng(2)
        for string in self.strings:
            for cell in string.cells:
                cell.erase(rng=rng)

    def page_states(self, wordline: int) -> "list[CellState]":
        """Nominal logic states of one page (for verification in tests)."""
        return [c.state for c in self.page_cells(wordline)]
