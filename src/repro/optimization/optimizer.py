"""Design optimisation (the paper's proposed future work).

Finds the programming voltage and tunnel-oxide thickness that minimise
programming time subject to the reliability constraints. Two stages
since PR 1:

1. a **vectorized screen** through the batch engine
   (:func:`repro.engine.batch.design_screen`): the zero-charge current
   density and oxide field of a coarse design grid, evaluated in one
   NumPy shot without building a device or running a transient, seed
   the search inside the admissible region;
2. a constrained Nelder-Mead refinement over the continuous design
   coordinates with penalty handling (the objective surface is smooth
   but spans many decades, so derivative-free is the robust choice).
   Only this stage spends full device evaluations.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import minimize

from ..engine.batch import design_screen
from ..errors import ConfigurationError, ConvergenceError
from .constraints import ConstraintSet
from .design_space import DesignPoint
from .objectives import DesignMetrics, evaluate_design

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.session import SimulationSession


#: Fraction of the field ceiling the vectorized screen may seed up to.
#: The screen sees only the oxide-field constraint; endurance and
#: window feasibility shrink near the ceiling, so seeding on the
#: boundary strands the simplex in infeasible territory. A 20% guard
#: band keeps the seed fast *and* inside the feasible set.
SCREEN_FIELD_DERATING = 0.8


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of the constrained design search.

    Attributes
    ----------
    best:
        Metrics of the best feasible design found.
    evaluations:
        Number of device evaluations spent.
    """

    best: DesignMetrics
    evaluations: int


def optimise_program_time(
    constraints: "ConstraintSet | None" = None,
    voltage_bounds_v: "tuple[float, float]" = (10.0, 20.0),
    tunnel_oxide_bounds_nm: "tuple[float, float]" = (4.0, 8.0),
    control_oxide_nm: float = 9.0,
    gcr: float = 0.6,
    max_evaluations: int = 60,
    session: "SimulationSession | None" = None,
) -> OptimizationResult:
    """Minimise t_sat subject to the reliability constraint set.

    When a :class:`~repro.api.session.SimulationSession` is given, the
    screen and every device evaluation run on that session's cache set
    (so repeated searches inside one session reuse compiled cells and
    coefficient pairs, and its ``cache_stats()`` attribute the work);
    without one, the engine's default caches serve the search.

    Raises
    ------
    ConvergenceError
        If no feasible design is found within the evaluation budget.
    """
    constraints = constraints or ConstraintSet()
    if voltage_bounds_v[0] >= voltage_bounds_v[1]:
        raise ConfigurationError("voltage bounds must be increasing")
    if tunnel_oxide_bounds_nm[0] >= tunnel_oxide_bounds_nm[1]:
        raise ConfigurationError("oxide bounds must be increasing")

    evaluations = 0
    best: "DesignMetrics | None" = None

    def objective(x: np.ndarray) -> float:
        nonlocal evaluations, best
        vgs = float(np.clip(x[0], *voltage_bounds_v))
        xto = float(np.clip(x[1], *tunnel_oxide_bounds_nm))
        point = DesignPoint(
            program_voltage_v=vgs,
            tunnel_oxide_nm=xto,
            control_oxide_nm=control_oxide_nm,
            gate_coupling_ratio=gcr,
        )
        metrics = evaluate_design(point)
        evaluations += 1

        t_sat = metrics.program_time_s
        if t_sat is not None:
            base = math.log10(t_sat)
        else:
            # Unsaturated designs score far above any saturated one but
            # keep a gradient through the initial current density so the
            # simplex can walk toward faster (thinner/higher-voltage)
            # corners of the box instead of stalling on a plateau.
            j0 = max(metrics.initial_current_density_a_m2, 1e-30)
            base = 10.0 - 0.1 * math.log10(j0)
        penalty = 10.0 * len(constraints.violations(metrics))
        score = base + penalty
        if constraints.is_feasible(metrics):
            if best is None or (
                best.program_time_s is None
                or (t_sat is not None and t_sat < best.program_time_s)
            ):
                best = metrics
        return score

    # Seed the simplex from the engine's vectorized design screen: the
    # fastest grid point whose zero-charge field respects the derated
    # ceiling (closed-form, no device evaluations spent). When the
    # whole grid violates the ceiling, fall back to the fast corner of
    # the box and let the penalty gradient do the walking.
    with session.activate() if session is not None else nullcontext():
        screen = design_screen(
            np.linspace(*voltage_bounds_v, 9),
            np.linspace(*tunnel_oxide_bounds_nm, 9),
            gcr=gcr,
        )
        seeded = screen.best_point(
            SCREEN_FIELD_DERATING * constraints.max_tunnel_field_v_per_m
        )
        if seeded is not None:
            x0 = np.array(seeded)
        else:
            x0 = np.array(
                [
                    voltage_bounds_v[0]
                    + 0.75 * (voltage_bounds_v[1] - voltage_bounds_v[0]),
                    tunnel_oxide_bounds_nm[0]
                    + 0.25
                    * (tunnel_oxide_bounds_nm[1] - tunnel_oxide_bounds_nm[0]),
                ]
            )
        minimize(
            objective,
            x0,
            method="Nelder-Mead",
            options={"maxfev": max_evaluations, "xatol": 0.05, "fatol": 0.01},
        )
    if best is None:
        raise ConvergenceError(
            f"no feasible design in {evaluations} evaluations; relax the "
            "constraint set or widen the bounds"
        )
    return OptimizationResult(best=best, evaluations=evaluations)
