"""Pareto-front extraction over evaluated designs."""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ConfigurationError
from .objectives import DesignMetrics

#: An objective: (extractor, direction) with direction "min" or "max".
Objective = "tuple[Callable[[DesignMetrics], float], str]"


def _dominates(
    a: "tuple[float, ...]", b: "tuple[float, ...]", senses: "tuple[int, ...]"
) -> bool:
    """True when point a dominates b (better-or-equal everywhere, better
    somewhere); senses hold +1 for maximise, -1 for minimise."""
    at_least_as_good = all(
        s * (x - y) >= 0.0 for x, y, s in zip(a, b, senses)
    )
    strictly_better = any(s * (x - y) > 0.0 for x, y, s in zip(a, b, senses))
    return at_least_as_good and strictly_better


def pareto_front(
    evaluated: Sequence[DesignMetrics],
    objectives: Sequence[Objective],
) -> "list[DesignMetrics]":
    """Non-dominated subset of the evaluated designs.

    Parameters
    ----------
    evaluated:
        Candidate designs with metrics attached.
    objectives:
        ``(extractor, "min"|"max")`` pairs, e.g.
        ``[(lambda m: m.program_time_s, "min"),
        (lambda m: m.cycles_to_breakdown, "max")]``.
    """
    if not objectives:
        raise ConfigurationError("need at least one objective")
    senses = []
    for _, direction in objectives:
        if direction == "min":
            senses.append(-1)
        elif direction == "max":
            senses.append(+1)
        else:
            raise ConfigurationError(
                f"direction must be 'min' or 'max', got {direction!r}"
            )
    senses = tuple(senses)

    vectors = []
    for metrics in evaluated:
        values = []
        for extractor, _ in objectives:
            value = extractor(metrics)
            if value is None:
                value = float("inf") if senses[len(values)] < 0 else -float("inf")
            values.append(float(value))
        vectors.append(tuple(values))

    front = []
    for i, metrics in enumerate(evaluated):
        dominated = any(
            _dominates(vectors[j], vectors[i], senses)
            for j in range(len(evaluated))
            if j != i
        )
        if not dominated:
            front.append(metrics)
    return front
