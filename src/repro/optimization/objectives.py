"""Evaluation of one cell design: the speed/stress/window metrics.

For every :class:`DesignPoint` the evaluator runs the actual device
models and reports the figures of merit the paper's conclusion names:
tunneling current density (speed), oxide field (reliability), plus the
derived program time, memory window and endurance estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.bias import PROGRAM_BIAS
from ..device.threshold import ThresholdModel
from ..device.transient import simulate_transient
from ..reliability.breakdown import BreakdownModel
from .design_space import DesignPoint


@dataclass(frozen=True)
class DesignMetrics:
    """Figures of merit of one evaluated design.

    Attributes
    ----------
    point:
        The design evaluated.
    initial_current_density_a_m2:
        J_FN at t = 0 of programming (the paper's Figures 6-7 quantity).
    peak_tunnel_field_v_per_m:
        Maximum field across the tunnel oxide during programming.
    program_time_s:
        Time to 99% of the equilibrium charge (t_sat); None when the
        window was not reached within the simulated pulse.
    memory_window_v:
        Saturated threshold window of the design.
    cycles_to_breakdown:
        Endurance estimate from the Q_BD budget.
    """

    point: DesignPoint
    initial_current_density_a_m2: float
    peak_tunnel_field_v_per_m: float
    program_time_s: "float | None"
    memory_window_v: float
    cycles_to_breakdown: float


def evaluate_design(
    point: DesignPoint,
    pulse_duration_s: float = 1e-2,
    breakdown: "BreakdownModel | None" = None,
) -> DesignMetrics:
    """Run the device models for one design point."""
    import numpy as np

    device = point.build_device()
    bias = PROGRAM_BIAS.with_gate_voltage(point.program_voltage_v)

    transient = simulate_transient(
        device, bias, duration_s=pulse_duration_s, n_samples=200
    )
    j0 = abs(float(transient.jin_a_m2[0]))
    x_to = device.geometry.tunnel_oxide_thickness_m
    peak_field = float(np.max(np.abs(transient.vfg_v)) / x_to)

    threshold = ThresholdModel(device)
    from ..device.memory_window import saturated_memory_window
    from ..device.bias import ERASE_BIAS

    erase_bias = ERASE_BIAS.with_gate_voltage(-point.program_voltage_v)
    window = saturated_memory_window(threshold, bias, erase_bias).window_v

    model = breakdown or BreakdownModel()
    fluence = float(
        np.trapezoid(np.abs(transient.jin_a_m2), transient.t_s)
    )
    cycles = (
        model.cycles_to_breakdown(2.0 * fluence, peak_field)
        if fluence > 0.0
        else float("inf")
    )
    return DesignMetrics(
        point=point,
        initial_current_density_a_m2=j0,
        peak_tunnel_field_v_per_m=peak_field,
        program_time_s=transient.t_sat_s,
        memory_window_v=window,
        cycles_to_breakdown=cycles,
    )
