"""Feasibility constraints on cell designs."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .objectives import DesignMetrics


@dataclass(frozen=True)
class ConstraintSet:
    """Hard requirements a usable design must meet.

    Attributes
    ----------
    max_tunnel_field_v_per_m:
        Reliability ceiling on the programming field.
    max_program_time_s:
        Speed floor (t_sat must fit the write budget).
    min_memory_window_v:
        Sensing requirement on the saturated window.
    min_cycles:
        Endurance requirement.
    """

    max_tunnel_field_v_per_m: float = 2.5e9
    max_program_time_s: float = 1e-3
    min_memory_window_v: float = 2.0
    min_cycles: float = 1e4

    def __post_init__(self) -> None:
        if self.max_tunnel_field_v_per_m <= 0.0:
            raise ConfigurationError("field ceiling must be positive")
        if self.max_program_time_s <= 0.0:
            raise ConfigurationError("time budget must be positive")

    def violations(self, metrics: DesignMetrics) -> "list[str]":
        """Human-readable list of violated constraints (empty = feasible)."""
        problems = []
        if metrics.peak_tunnel_field_v_per_m > self.max_tunnel_field_v_per_m:
            problems.append(
                f"field {metrics.peak_tunnel_field_v_per_m:.2e} V/m exceeds "
                f"{self.max_tunnel_field_v_per_m:.2e}"
            )
        if (
            metrics.program_time_s is None
            or metrics.program_time_s > self.max_program_time_s
        ):
            actual = (
                "unsaturated"
                if metrics.program_time_s is None
                else f"{metrics.program_time_s:.2e} s"
            )
            problems.append(
                f"program time {actual} exceeds {self.max_program_time_s:.1e} s"
            )
        if metrics.memory_window_v < self.min_memory_window_v:
            problems.append(
                f"window {metrics.memory_window_v:.2f} V below "
                f"{self.min_memory_window_v:.2f} V"
            )
        if metrics.cycles_to_breakdown < self.min_cycles:
            problems.append(
                f"endurance {metrics.cycles_to_breakdown:.0f} cycles below "
                f"{self.min_cycles:.0f}"
            )
        return problems

    def is_feasible(self, metrics: DesignMetrics) -> bool:
        """True when every constraint is satisfied."""
        return not self.violations(metrics)
