"""Design-space exploration and optimisation (paper's future work).

Sweeps and optimises the parameters the paper's conclusion highlights:
programming voltage, tunneling current density and oxide thicknesses,
under reliability constraints.
"""

from .constraints import ConstraintSet
from .design_space import DesignPoint, grid
from .objectives import DesignMetrics, evaluate_design
from .optimizer import OptimizationResult, optimise_program_time
from .pareto import pareto_front

__all__ = [
    "DesignPoint",
    "grid",
    "DesignMetrics",
    "evaluate_design",
    "ConstraintSet",
    "pareto_front",
    "OptimizationResult",
    "optimise_program_time",
]
