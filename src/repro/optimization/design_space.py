"""Design space of the floating-gate cell.

The paper's conclusion calls for "an optimization among these crucial
parameters" -- programming voltage, tunneling current density and oxide
thicknesses. A :class:`DesignPoint` captures one candidate cell design
in exactly those coordinates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..device.floating_gate import FloatingGateTransistor
from ..device.geometry import DeviceGeometry
from ..errors import ConfigurationError
from ..units import nm_to_m


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design.

    Attributes
    ----------
    program_voltage_v:
        Control-gate programming voltage (erase uses the negative).
    tunnel_oxide_nm:
        X_TO [nm].
    control_oxide_nm:
        X_CO [nm]; must exceed X_TO.
    gate_coupling_ratio:
        Target GCR.
    """

    program_voltage_v: float = 15.0
    tunnel_oxide_nm: float = 5.0
    control_oxide_nm: float = 8.0
    gate_coupling_ratio: float = 0.6

    def __post_init__(self) -> None:
        if self.program_voltage_v <= 0.0:
            raise ConfigurationError("program voltage must be positive")
        if self.tunnel_oxide_nm <= 0.0:
            raise ConfigurationError("tunnel oxide must be positive")
        if self.control_oxide_nm <= self.tunnel_oxide_nm:
            raise ConfigurationError("control oxide must exceed tunnel oxide")
        if not 0.0 < self.gate_coupling_ratio < 1.0:
            raise ConfigurationError("GCR must be in (0, 1)")

    def build_device(self) -> FloatingGateTransistor:
        """Instantiate the transistor this point describes."""
        geometry = DeviceGeometry(
            tunnel_oxide_thickness_m=nm_to_m(self.tunnel_oxide_nm),
            control_oxide_thickness_m=nm_to_m(self.control_oxide_nm),
        )
        device = FloatingGateTransistor(geometry=geometry)
        return device.with_gate_coupling_ratio(self.gate_coupling_ratio)


def grid(
    program_voltages_v: Sequence[float],
    tunnel_oxides_nm: Sequence[float],
    control_oxides_nm: Sequence[float] = (8.0,),
    gcrs: Sequence[float] = (0.6,),
) -> "Iterator[DesignPoint]":
    """Cartesian-product design grid, skipping invalid combinations."""
    for vgs, xto, xco, gcr in itertools.product(
        program_voltages_v, tunnel_oxides_nm, control_oxides_nm, gcrs
    ):
        if xco <= xto:
            continue
        yield DesignPoint(
            program_voltage_v=vgs,
            tunnel_oxide_nm=xto,
            control_oxide_nm=xco,
            gate_coupling_ratio=gcr,
        )
