"""Erase transient: the dynamic mirror of Figure 5.

The paper states "the same set of ... analysis is done for erasing
operation" but only shows the static sweeps (Figures 8-9). This
experiment completes the symmetry: starting from the programmed state,
a -15 V gate pulse depletes the floating gate, with the tunnel-oxide
current now flowing outward and the saturation bounded by the reversed
Jin = Jout balance.

Overrides (session API): ``vgs_v`` (the erase voltage; the preceding
program pulse uses its negation, keeping the symmetry checks exact),
``gcr``, ``tunnel_oxide_nm``, ``duration_s`` and ``n_samples``.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..device.transient import equilibrium_charge, simulate_transient
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "erase-transient"
TITLE = "Erase transient from the programmed state (VGS = -15 V)"


def run(
    ctx: "SimulationContext | None" = None,
    *,
    duration_s: float = 1e-2,
    n_samples: int = 300,
    vgs_v: float = -15.0,
    gcr: "float | None" = None,
    tunnel_oxide_nm: "float | None" = None,
) -> ExperimentResult:
    """Simulate a full erase of the saturated programmed cell."""
    ctx = ensure_context(ctx)
    device = ctx.device(tunnel_oxide_nm=tunnel_oxide_nm, gcr=gcr)
    erase_bias = ctx.bias("erase", vgs_v=vgs_v)
    program_bias = ctx.bias("program", vgs_v=-vgs_v)
    programmed_charge = equilibrium_charge(device, program_bias)
    result = simulate_transient(
        device,
        erase_bias,
        initial_charge_c=programmed_charge,
        duration_s=duration_s,
        n_samples=n_samples,
    )
    jin = np.abs(result.jin_a_m2)
    jout = np.abs(result.jout_a_m2)
    series = (
        PlotSeries(label="|Jin| (tunnel oxide)", x=result.t_s, y=jin),
        PlotSeries(label="|Jout| (control oxide)", x=result.t_s, y=jout),
        PlotSeries(
            label="|Q_FG|", x=result.t_s, y=np.abs(result.charge_c)
        ),
    )

    q_erase_eq = equilibrium_charge(device, erase_bias)
    crossed_zero = bool(
        (result.charge_c[0] < 0.0) and (result.charge_c[-1] > 0.0)
    )
    checks = (
        ShapeCheck(
            claim="electrons deplete from the floating gate under negative "
            "V_GS (logic '1')",
            passed=result.final_charge_c > programmed_charge,
            detail=f"Q: {programmed_charge:.2e} -> "
            f"{result.final_charge_c:.2e} C",
        ),
        ShapeCheck(
            claim="the erase overshoots neutrality into depletion",
            passed=crossed_zero,
            detail=f"final Q = {result.final_charge_c:.2e} C > 0",
        ),
        ShapeCheck(
            claim="erase saturates at the reversed Jin = Jout balance",
            passed=result.t_sat_s is not None
            and abs(result.final_charge_c / q_erase_eq - 1.0) < 0.02,
            detail=f"t_sat = {result.t_sat_s!r} s, "
            f"Q_final/Q_eq = {result.final_charge_c / q_erase_eq:.4f}",
        ),
        ShapeCheck(
            claim="erase and program windows are symmetric for symmetric "
            f"bias (+/-{abs(vgs_v):g} V)",
            passed=abs(q_erase_eq / programmed_charge + 1.0) < 1e-3,
            detail=f"Q_erase_eq = {q_erase_eq:.3e} C vs "
            f"-Q_program_eq = {-programmed_charge:.3e} C",
        ),
        ShapeCheck(
            claim="the initial erase current magnitude mirrors the "
            "programming Figure 4 value",
            passed=jin[0] > 1e4,
            detail=f"|Jin(0)| = {jin[0]:.2e} A/m^2",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="time [s]",
        y_label="|J| [A/m^2], |Q| [C]",
        series=series,
        parameters={
            "vgs_v": vgs_v,
            "initial_charge_c": programmed_charge,
            "t_sat_s": result.t_sat_s,
            "q_equilibrium_c": q_erase_eq,
        },
        checks=checks,
    )
