"""Registry mapping experiment ids to their ``run`` callables, lazily.

Experiments register as ``"module:function"`` spec strings and resolve
on first use, so importing the registry (or :mod:`repro.api`, which
depends on it) stays cheap and a broken figure module cannot take down
unrelated experiments -- the import error surfaces only when *that*
experiment is requested, wrapped as a
:class:`~repro.errors.ConfigurationError`.

Protocol: every registered callable has the redesigned signature
``run(ctx: SimulationContext | None = None, **params) -> ExperimentResult``.
Because ``ctx`` defaults to ``None`` (resolved to the default session by
:func:`repro.api.session.ensure_context`), the pre-redesign zero-argument
calling convention keeps working unchanged -- that is the registry's
backwards-compatibility shim.
"""

from __future__ import annotations

import importlib
from typing import Callable, TYPE_CHECKING

from ..errors import ConfigurationError
from .base import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.session import SimulationContext

#: The redesigned experiment protocol: ``run(ctx=None, **params)``.
Runner = Callable[..., ExperimentResult]

_PACKAGE = __name__.rsplit(".", 1)[0]

_SPECS: "dict[str, str]" = {
    "fig2": f"{_PACKAGE}.fig2:run",
    "fig4": f"{_PACKAGE}.fig4:run",
    "fig5": f"{_PACKAGE}.fig5:run",
    "fig6": f"{_PACKAGE}.fig6:run",
    "fig7": f"{_PACKAGE}.fig7:run",
    "fig8": f"{_PACKAGE}.fig8:run",
    "fig9": f"{_PACKAGE}.fig9:run",
    "abl-wkb": f"{_PACKAGE}.ablations:run_model_comparison",
    "abl-cq": f"{_PACKAGE}.ablations:run_quantum_capacitance",
    "abl-temp": f"{_PACKAGE}.ablations:run_temperature",
    "cmp-si": f"{_PACKAGE}.comparisons:run_silicon_comparison",
    "cmp-che": f"{_PACKAGE}.comparisons:run_che_comparison",
    "device-summary": f"{_PACKAGE}.summary:run",
    "erase-transient": f"{_PACKAGE}.erase_transient:run",
    "rel-endurance": f"{_PACKAGE}.reliability:run_endurance",
    "rel-bake": f"{_PACKAGE}.reliability:run_bake",
    "rel-silc": f"{_PACKAGE}.reliability:run_silc",
    "mem-array": f"{_PACKAGE}.memory:run_array",
    "mem-mlc": f"{_PACKAGE}.memory:run_mlc",
    "mem-ftl": f"{_PACKAGE}.memory:run_ftl",
    "mem-disturb": f"{_PACKAGE}.memory:run_disturb",
}

_RESOLVED: "dict[str, Runner]" = {}

#: Relative cost hints (dimensionless, 1.0 = a cheap vectorized figure
#: sweep) used by the parallel executor's ``by-cost`` shard strategy to
#: balance shards before running anything. Only the *ratios* matter,
#: and ids absent here default to 1.0 via :func:`experiment_cost`.
#:
#: Values are **measured**, not hand-tuned: best-of-3 default-parameter
#: wall clock on a warm session, normalized to the median cheap figure
#: sweep (regenerate with ``python benchmarks/measure_costs.py`` after
#: performance work; last measured after the batched electrostatics +
#: reliability backend landed, which added the rel-* experiments and
#: trimmed device-summary's endurance share).
_COST_HINTS: "dict[str, float]" = {
    "abl-wkb": 198.0,  # batched Tsu-Esaki transfer-matrix integrals
    "device-summary": 103.0,  # program + erase transients + retention
    "cmp-si": 23.0,  # two full device transients + leakage
    "rel-endurance": 18.0,  # shared stress transients + wear kernel
    "erase-transient": 10.0,  # program equilibrium + erase transient
    "fig5": 7.5,  # transient sampling
    "cmp-che": 6.7,
    "fig4": 4.5,  # transient sampling
    "fig2": 3.0,  # band-diagram assembly
}

#: Ids of the experiments reproducing actual paper figures. Figure 2
#: (the FN band diagram) is included; Figures 1 and 3 are conceptual
#: layout/schematic drawings with no quantitative content to reproduce.
PAPER_FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9")


def experiment_cost(experiment_id: str) -> float:
    """The relative cost hint of one experiment (default 1.0).

    A dimensionless estimate of how expensive one run is compared to a
    cheap vectorized figure sweep; the parallel executor's ``by-cost``
    strategy balances shards on these hints. Unknown ids are *not*
    rejected here (the registry check happens when the experiment is
    resolved) -- they simply cost 1.0.
    """
    return _COST_HINTS.get(experiment_id, 1.0)


def available_experiments() -> "tuple[str, ...]":
    """Sorted ids of every registered experiment (nothing imported)."""
    return tuple(sorted(_SPECS))


def resolve_experiment(experiment_id: str) -> Runner:
    """Import and return one experiment's ``run`` callable.

    Resolution is memoized; unknown ids and broken figure modules both
    raise :class:`~repro.errors.ConfigurationError`, the latter naming
    the failing module so one bad experiment never masks the others.
    """
    if experiment_id in _RESOLVED:
        return _RESOLVED[experiment_id]
    try:
        spec = _SPECS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {known}"
        ) from None
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
        runner = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(
            f"experiment {experiment_id!r} failed to load from {spec!r}: {exc}"
        ) from exc
    _RESOLVED[experiment_id] = runner
    return runner


def get_experiment(experiment_id: str) -> Runner:
    """Look up one experiment runner by id (alias of resolution).

    The returned callable still works with zero arguments -- the
    pre-redesign convention -- and additionally accepts a
    :class:`~repro.api.session.SimulationContext` plus keyword
    parameter overrides.
    """
    return resolve_experiment(experiment_id)


def run_experiment(
    experiment_id: str,
    ctx: "SimulationContext | None" = None,
    **params: object,
) -> ExperimentResult:
    """Run one experiment by id, optionally parameterized.

    ``run_experiment("fig6")`` behaves exactly as before the API
    redesign; ``run_experiment("fig6", ctx, temperature_k=400.0)`` runs
    it inside a session context with overrides. When a context is given
    its session's cache set is activated for the run (the same routing
    as :meth:`~repro.api.session.SimulationSession.run`), and unknown
    parameter names raise :class:`~repro.errors.ConfigurationError`
    either way.
    """
    fn = resolve_experiment(experiment_id)
    # Local import: api.session imports this module (lazily resolved
    # specs), so the reverse edge must not exist at import time.
    from ..api.session import merge_parameters

    merged = merge_parameters(fn, {}, params, experiment_id)
    if ctx is None:
        return fn(None, **merged)
    with ctx.session.activate():
        return fn(ctx, **merged)


def run_all(
    paper_only: bool = False,
    ctx: "SimulationContext | None" = None,
) -> "list[ExperimentResult]":
    """Run every registered experiment (or only the paper figures)."""
    ids = PAPER_FIGURES if paper_only else available_experiments()
    return [run_experiment(i, ctx) for i in ids]
