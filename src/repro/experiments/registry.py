"""Registry mapping experiment ids to their run() callables."""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import ConfigurationError
from . import (
    ablations,
    comparisons,
    erase_transient,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    summary,
)
from .base import ExperimentResult

Runner = Callable[[], ExperimentResult]

_REGISTRY: "dict[str, Runner]" = {
    "fig2": fig2.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "abl-wkb": ablations.run_model_comparison,
    "abl-cq": ablations.run_quantum_capacitance,
    "abl-temp": ablations.run_temperature,
    "cmp-si": comparisons.run_silicon_comparison,
    "cmp-che": comparisons.run_che_comparison,
    "device-summary": summary.run,
    "erase-transient": erase_transient.run,
}

#: Ids of the experiments reproducing actual paper figures. Figure 2
#: (the FN band diagram) is included; Figures 1 and 3 are conceptual
#: layout/schematic drawings with no quantitative content to reproduce.
PAPER_FIGURES = ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9")


def available_experiments() -> "Mapping[str, Runner]":
    """Immutable view of the registered experiments."""
    return dict(_REGISTRY)


def get_experiment(experiment_id: str) -> Runner:
    """Look up one experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {known}"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)()


def run_all(paper_only: bool = False) -> "list[ExperimentResult]":
    """Run every registered experiment (or only the paper figures)."""
    ids = PAPER_FIGURES if paper_only else tuple(sorted(_REGISTRY))
    return [run_experiment(i) for i in ids]
