"""Figure 2: the Fowler-Nordheim band diagram.

The paper's Figure 2 sketches the mechanism: electrons tunnel from the
channel into the oxide conduction band through a *triangular* barrier,
because "at high electric field band-bending takes place that results
in apparent thinning of the barrier". This experiment rebuilds the
diagram quantitatively from the Poisson solution of the biased stack
and checks those statements.
"""

from __future__ import annotations

import numpy as np

from ..device.bias import PROGRAM_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..electrostatics.band_diagram import build_band_diagram
from ..materials.oxides import SIO2
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "fig2"
TITLE = "Fowler-Nordheim band diagram (triangular barrier)"


def run() -> ExperimentResult:
    """Reproduce Figure 2: the biased-stack conduction band."""
    device = FloatingGateTransistor()
    geometry = device.geometry
    channel_phi, gate_phi = device.barrier_heights_ev()
    vfg = device.floating_gate_voltage(PROGRAM_BIAS)

    biased = build_band_diagram(
        tunnel_dielectric=SIO2,
        control_dielectric=SIO2,
        tunnel_thickness_m=geometry.tunnel_oxide_thickness_m,
        control_thickness_m=geometry.control_oxide_thickness_m,
        floating_gate_thickness_m=geometry.floating_gate_thickness_m,
        channel_barrier_ev=channel_phi,
        gate_barrier_ev=gate_phi,
        floating_gate_voltage_v=vfg,
        control_gate_voltage_v=15.0,
    )
    flat = build_band_diagram(
        tunnel_dielectric=SIO2,
        control_dielectric=SIO2,
        tunnel_thickness_m=geometry.tunnel_oxide_thickness_m,
        control_thickness_m=geometry.control_oxide_thickness_m,
        floating_gate_thickness_m=geometry.floating_gate_thickness_m,
        channel_barrier_ev=channel_phi,
        gate_barrier_ev=gate_phi,
        floating_gate_voltage_v=0.0,
        control_gate_voltage_v=0.0,
    )
    series = (
        PlotSeries(
            label="unbiased stack", x=flat.x_m * 1e9,
            y=flat.conduction_band_ev,
        ),
        PlotSeries(
            label="programming bias (VGS=15V)",
            x=biased.x_m * 1e9,
            y=biased.conduction_band_ev,
        ),
    )

    # Linearity of the tunnel-oxide band edge (triangular shape).
    mask = [lbl == "tunnel_oxide" for lbl in biased.region_labels]
    x_to = biased.x_m[mask]
    band_to = biased.conduction_band_ev[mask]
    slopes = np.diff(band_to) / np.diff(x_to)
    linear = bool(np.allclose(slopes, slopes[0], rtol=1e-9))

    thinning = biased.tunnel_distance_at_fermi_m()
    expected_thinning = channel_phi / (
        vfg / geometry.tunnel_oxide_thickness_m
    )
    full = flat.tunnel_distance_at_fermi_m()

    checks = (
        ShapeCheck(
            claim="the biased barrier is triangular (linear band edge in "
            "the tunnel oxide)",
            passed=linear,
            detail=f"slope = {slopes[0]:.3e} eV/m, uniform to 1e-9",
        ),
        ShapeCheck(
            claim="band bending causes 'apparent thinning of the barrier'",
            passed=thinning < 0.5 * full,
            detail=(
                f"forbidden distance {thinning * 1e9:.2f} nm biased vs "
                f"{full * 1e9:.2f} nm unbiased"
            ),
        ),
        ShapeCheck(
            claim="the thinned width equals phi_B / E (exit point of the "
            "triangle)",
            passed=abs(thinning / expected_thinning - 1.0) < 0.05,
            detail=f"measured {thinning * 1e9:.2f} nm vs phi_B/E = "
            f"{expected_thinning * 1e9:.2f} nm",
        ),
        ShapeCheck(
            claim="the barrier peak sits at the injecting interface",
            passed=bool(
                np.argmax(biased.conduction_band_ev) == 0
            ),
            detail=f"peak {biased.barrier_peak_ev():.2f} eV at x = 0",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="position [nm]",
        y_label="E_c [eV]",
        series=series,
        parameters={
            "vgs_v": 15.0,
            "vfg_v": vfg,
            "channel_barrier_ev": channel_phi,
        },
        checks=checks,
        log_y=False,
    )
