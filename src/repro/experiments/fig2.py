"""Figure 2: the Fowler-Nordheim band diagram.

The paper's Figure 2 sketches the mechanism: electrons tunnel from the
channel into the oxide conduction band through a *triangular* barrier,
because "at high electric field band-bending takes place that results
in apparent thinning of the barrier". This experiment rebuilds the
diagram quantitatively from the Poisson solution of the biased stack
and checks those statements.

Overrides (session API): ``vgs_v`` rebiases the stack;
``tunnel_oxide_nm`` / ``control_oxide_nm`` rebuild the device geometry.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..electrostatics.band_diagram import build_band_diagram
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "fig2"
TITLE = "Fowler-Nordheim band diagram (triangular barrier)"


def run(
    ctx: "SimulationContext | None" = None,
    *,
    vgs_v: float = 15.0,
    tunnel_oxide_nm: "float | None" = None,
    control_oxide_nm: "float | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 2: the biased-stack conduction band."""
    ctx = ensure_context(ctx)
    device = ctx.device(
        tunnel_oxide_nm=tunnel_oxide_nm, control_oxide_nm=control_oxide_nm
    )
    bias = ctx.bias("program", vgs_v=vgs_v)
    geometry = device.geometry
    channel_phi, gate_phi = device.barrier_heights_ev()
    vfg = device.floating_gate_voltage(bias)

    def stack_diagram(vfg_v: float, vgs: float):
        return build_band_diagram(
            tunnel_dielectric=device.tunnel_dielectric,
            control_dielectric=device.control_dielectric,
            tunnel_thickness_m=geometry.tunnel_oxide_thickness_m,
            control_thickness_m=geometry.control_oxide_thickness_m,
            floating_gate_thickness_m=geometry.floating_gate_thickness_m,
            channel_barrier_ev=channel_phi,
            gate_barrier_ev=gate_phi,
            floating_gate_voltage_v=vfg_v,
            control_gate_voltage_v=vgs,
        )

    biased = stack_diagram(vfg, vgs_v)
    flat = stack_diagram(0.0, 0.0)
    series = (
        PlotSeries(
            label="unbiased stack", x=flat.x_m * 1e9,
            y=flat.conduction_band_ev,
        ),
        PlotSeries(
            label=f"programming bias (VGS={vgs_v:g}V)",
            x=biased.x_m * 1e9,
            y=biased.conduction_band_ev,
        ),
    )

    # Linearity of the tunnel-oxide band edge (triangular shape).
    mask = [lbl == "tunnel_oxide" for lbl in biased.region_labels]
    x_to = biased.x_m[mask]
    band_to = biased.conduction_band_ev[mask]
    slopes = np.diff(band_to) / np.diff(x_to)
    linear = bool(np.allclose(slopes, slopes[0], rtol=1e-9))

    thinning = biased.tunnel_distance_at_fermi_m()
    expected_thinning = channel_phi / (
        vfg / geometry.tunnel_oxide_thickness_m
    )
    full = flat.tunnel_distance_at_fermi_m()

    checks = (
        ShapeCheck(
            claim="the biased barrier is triangular (linear band edge in "
            "the tunnel oxide)",
            passed=linear,
            detail=f"slope = {slopes[0]:.3e} eV/m, uniform to 1e-9",
        ),
        ShapeCheck(
            claim="band bending causes 'apparent thinning of the barrier'",
            passed=thinning < 0.5 * full,
            detail=(
                f"forbidden distance {thinning * 1e9:.2f} nm biased vs "
                f"{full * 1e9:.2f} nm unbiased"
            ),
        ),
        ShapeCheck(
            claim="the thinned width equals phi_B / E (exit point of the "
            "triangle)",
            passed=abs(thinning / expected_thinning - 1.0) < 0.05,
            detail=f"measured {thinning * 1e9:.2f} nm vs phi_B/E = "
            f"{expected_thinning * 1e9:.2f} nm",
        ),
        ShapeCheck(
            claim="the barrier peak sits at the injecting interface",
            passed=bool(
                np.argmax(biased.conduction_band_ev) == 0
            ),
            detail=f"peak {biased.barrier_peak_ev():.2f} eV at x = 0",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="position [nm]",
        y_label="E_c [eV]",
        series=series,
        parameters={
            "vgs_v": vgs_v,
            "vfg_v": vfg,
            "channel_barrier_ev": channel_phi,
            "xto_nm": geometry.tunnel_oxide_thickness_m * 1e9,
        },
        checks=checks,
        log_y=False,
    )
