"""Comparison experiments against the paper's implicit baselines.

* ``cmp-si``  -- the proposed MLGNR-CNT device vs the conventional
  silicon floating-gate transistor the paper positions itself against
  (Section I-II): programming current, speed and retention leakage at
  the same bias and geometry.
* ``cmp-che`` -- Fowler-Nordheim vs channel-hot-electron programming
  (Section II): supply current per cell and injection efficiency,
  quantifying why the paper "mainly focus[es] on FN tunneling based
  programming" for NAND-style arrays.

Both accept the session-API protocol (``run(ctx, **params)``) with
sweep-range and bias overrides.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..device.baselines import mlgnr_reference_fgt, silicon_baseline_fgt
from ..device.retention import RetentionModel
from ..device.transient import equilibrium_charge, simulate_transient
from ..reporting.ascii_plot import PlotSeries
from ..tunneling.channel_hot_electron import (
    CheOperatingPoint,
    LuckyElectronModel,
    compare_che_to_fn,
)
from .base import ExperimentResult, ShapeCheck


def run_silicon_comparison(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 25,
    vgs_range_v: "tuple[float, float]" = (10.0, 17.0),
    duration_s: float = 1e-2,
) -> ExperimentResult:
    """cmp-si: J_FN vs V_GS for the MLGNR device and the Si baseline."""
    ctx = ensure_context(ctx)
    gnr = mlgnr_reference_fgt()
    si = silicon_baseline_fgt()
    program_bias = ctx.bias("program")

    vgs = np.linspace(*vgs_range_v, n_points)
    gcr = gnr.gate_coupling_ratio

    def sweep(device):
        model = device.tunnel_fn_model
        return np.array(
            [
                abs(model.current_density_from_voltage(gcr * float(v)))
                for v in vgs
            ]
        )

    j_gnr = sweep(gnr)
    j_si = sweep(si)
    series = (
        PlotSeries(label="MLGNR-CNT (phi_B=3.61eV)", x=vgs, y=j_gnr),
        PlotSeries(label="Si baseline (phi_B=3.10eV)", x=vgs, y=j_si),
    )

    gnr_transient = simulate_transient(gnr, program_bias, duration_s=duration_s)
    si_transient = simulate_transient(si, program_bias, duration_s=duration_s)

    q_gnr = equilibrium_charge(gnr, program_bias)
    q_si = equilibrium_charge(si, program_bias)
    leak_gnr = RetentionModel(gnr).leakage_current_a(q_gnr)
    leak_si = RetentionModel(si).leakage_current_a(q_si)

    checks = (
        ShapeCheck(
            claim="the taller graphene/SiO2 barrier passes less FN current "
            "than Si/SiO2 at equal bias",
            passed=bool(np.all(j_gnr < j_si)),
            detail=f"at {vgs[n_points // 2]:g} V: "
            f"{j_gnr[n_points // 2]:.2e} vs "
            f"{j_si[n_points // 2]:.2e} A/m^2",
        ),
        ShapeCheck(
            claim="the silicon baseline therefore programs faster at 15 V",
            passed=(
                si_transient.t_sat_s is not None
                and gnr_transient.t_sat_s is not None
                and si_transient.t_sat_s < gnr_transient.t_sat_s
            ),
            detail=f"t_sat: Si {si_transient.t_sat_s:.2e} s vs "
            f"MLGNR {gnr_transient.t_sat_s:.2e} s",
        ),
        ShapeCheck(
            claim="the MLGNR cell retains charge better (same barrier "
            "asymmetry, reversed role at retention fields)",
            passed=leak_gnr < leak_si,
            detail=f"rest leakage: MLGNR {leak_gnr:.2e} A vs Si "
            f"{leak_si:.2e} A",
        ),
        ShapeCheck(
            claim="stored charge is capacitance-limited, not "
            "barrier-limited (within 2x between devices)",
            passed=0.5 < abs(q_si / q_gnr) < 2.0,
            detail=f"Q_eq: Si {q_si:.2e} C vs MLGNR {q_gnr:.2e} C",
        ),
    )
    return ExperimentResult(
        experiment_id="cmp-si",
        title="MLGNR-CNT device vs conventional silicon FGT",
        x_label="V_GS [V]",
        y_label="J_FN [A/m^2]",
        series=series,
        parameters={
            "gcr": gcr,
            "barriers_ev": (
                gnr.barrier_heights_ev()[0],
                si.barrier_heights_ev()[0],
            ),
        },
        checks=checks,
    )


def run_che_comparison(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 25,
    drain_voltage_range_v: "tuple[float, float]" = (4.0, 6.0),
    che_drain_current_a: float = 5e-4,
    duration_s: float = 1e-3,
) -> ExperimentResult:
    """cmp-che: supply current of CHE vs FN programming."""
    ctx = ensure_context(ctx)
    device = mlgnr_reference_fgt()
    program_bias = ctx.bias("program")
    barrier_ev = device.barrier_heights_ev()[0]
    che = LuckyElectronModel(barrier_height_ev=barrier_ev)

    # FN cell current over the programming transient.
    transient = simulate_transient(device, program_bias, duration_s=duration_s)
    area = device.geometry.channel_area_m2
    fn_cell_current = np.abs(transient.jin_a_m2) * area

    # CHE gate current across the paper's drain-voltage range (4-6 V).
    drain_voltages = np.linspace(*drain_voltage_range_v, n_points)
    che_gate_currents = np.array(
        [
            che.gate_current_a(
                che_drain_current_a,
                CheOperatingPoint(
                    drain_voltage_v=float(v)
                ).lateral_field_v_per_m,
            )
            for v in drain_voltages
        ]
    )
    series = (
        PlotSeries(
            label="CHE gate current vs V_D",
            x=drain_voltages,
            y=che_gate_currents,
        ),
        PlotSeries(
            label="FN cell current vs time (rescaled axis)",
            x=np.linspace(*drain_voltage_range_v, transient.t_s.size),
            y=fn_cell_current,
        ),
    )

    comparison = compare_che_to_fn(
        che, CheOperatingPoint(), fn_cell_current_a=float(fn_cell_current[0])
    )
    v_lo, v_hi = drain_voltage_range_v
    checks = (
        ShapeCheck(
            claim="FN programming draws < 1 nA per cell for most of the "
            "pulse (paper Section II reason (ii))",
            passed=bool(np.median(fn_cell_current) < 1e-9),
            detail=f"median FN cell current "
            f"{np.median(fn_cell_current):.2e} A",
        ),
        ShapeCheck(
            claim="CHE requires a large (0.3-1 mA) channel current per "
            "cell, limiting parallelism",
            passed=comparison["supply_current_ratio"] > 1e4,
            detail=f"supply ratio CHE/FN = "
            f"{comparison['supply_current_ratio']:.1e}",
        ),
        ShapeCheck(
            claim="CHE injection efficiency is far below unity",
            passed=comparison["che_injection_efficiency"] < 1e-2,
            detail=f"I_g/I_d = {comparison['che_injection_efficiency']:.2e}",
        ),
        ShapeCheck(
            claim="CHE gate current grows superlinearly with drain voltage "
            "(the lucky-electron exponential)",
            passed=bool(
                che_gate_currents[-1]
                > 2.0 * (v_hi / v_lo) * che_gate_currents[0]
            ),
            detail=f"{che_gate_currents[0]:.2e} -> "
            f"{che_gate_currents[-1]:.2e} A over {v_lo:g}-{v_hi:g} V "
            f"(x{che_gate_currents[-1] / che_gate_currents[0]:.1f} for a "
            f"x{v_hi / v_lo:.1f} voltage step)",
        ),
    )
    return ExperimentResult(
        experiment_id="cmp-che",
        title="Programming mechanisms: Fowler-Nordheim vs channel hot "
        "electron",
        x_label="V_D [V] (CHE) / scaled time (FN)",
        y_label="current [A]",
        series=series,
        parameters={
            "barrier_ev": barrier_ev,
            "che_drain_current_a": che_drain_current_a,
        },
        checks=checks,
    )
