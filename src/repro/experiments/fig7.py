"""Figure 7: programming J_FN vs V_GS for five tunnel-oxide thicknesses.

Paper caption: "[Program] FN tunneling current density (JFN) versus
Control gate voltage (VGS) for five different tunnel oxide thickness
(XTO). GCR = 60%, VGS = 10-17 V." Claims: for a given X_TO, J_FN rises
with V_GS; J_FN increases significantly when X_TO drops below 7 nm (the
ITRS sub-20 nm-node reliability concern).

Overrides (session API): ``tunnel_oxides_nm``, ``vgs_range_v``, ``gcr``,
``temperature_k`` and ``n_points``; defaults reproduce the paper figure
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..errors import ConfigurationError
from .base import (
    ExperimentResult,
    ShapeCheck,
    monotonic_increasing,
    series_ordering_check,
)
from .sweeps import SweepSettings, oxide_family

EXPERIMENT_ID = "fig7"
TITLE = "[Program] J_FN vs V_GS for five X_TO values (GCR = 60%)"

TUNNEL_OXIDES_NM = (4.0, 5.0, 6.0, 7.0, 8.0)
VGS_RANGE_V = (10.0, 17.0)
GCR = 0.6


def scaling_jump_check(
    series, mid: int, claim: str
) -> ShapeCheck:
    """The paper's sub-7 nm scaling claim, generalized to any family.

    Series arrive ordered thickest-first; the decade jump between the
    two *thinnest* oxides must exceed the jump between the two
    *thickest* (the exponential X_TO sensitivity grows as the oxide
    shrinks). Needs at least three series to compare.
    """
    if len(series) < 3:
        raise ConfigurationError("scaling check needs >= 3 oxide series")
    jump_thick = float(np.log10(series[1].y[mid] / series[0].y[mid]))
    jump_thin = float(np.log10(series[-1].y[mid] / series[-2].y[mid]))
    return ShapeCheck(
        claim=claim,
        passed=jump_thin > jump_thick > 0.0,
        detail=(
            f"{series[0].label}->{series[1].label}: 10^{jump_thick:.2f}; "
            f"{series[-2].label}->{series[-1].label}: 10^{jump_thin:.2f}"
        ),
    )


def run(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 36,
    tunnel_oxides_nm: "tuple[float, ...]" = TUNNEL_OXIDES_NM,
    vgs_range_v: "tuple[float, float]" = VGS_RANGE_V,
    gcr: float = GCR,
    temperature_k: float = 0.0,
    settings: "SweepSettings | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (optionally reparameterized)."""
    ctx = ensure_context(ctx)
    settings = settings or ctx.sweep_settings(temperature_k=temperature_k)
    vgs = np.linspace(*vgs_range_v, n_points)
    series = oxide_family(vgs, tuple(tunnel_oxides_nm), gcr, settings)

    checks = [
        ShapeCheck(
            claim=f"J_FN rises with V_GS at {s.label}",
            passed=monotonic_increasing(s.y),
            detail=f"J spans {s.y[0]:.2e} -> {s.y[-1]:.2e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="thinner tunnel oxide gives higher J_FN at fixed V_GS",
            at_index=-1,
        )
    )
    # "JFN increases significantly when XTO < 7 nm": the decade gain per
    # removed nm must grow toward thin oxides.
    checks.append(
        scaling_jump_check(
            series,
            mid=n_points // 2,
            claim="current gain per removed nm grows as X_TO shrinks "
            "below 7 nm",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V]",
        y_label="J_FN [A/m^2]",
        series=series,
        parameters={
            "tunnel_oxides_nm": tuple(tunnel_oxides_nm),
            "vgs_range_v": vgs_range_v,
            "gcr": gcr,
            "n_points": n_points,
            "temperature_k": settings.temperature_k,
        },
        checks=tuple(checks),
    )
