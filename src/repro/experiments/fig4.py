"""Figure 4: tunneling currents at the start of programming.

Paper claim: with V_GS = 15 V, GCR = 0.6 and no stored charge, V_FG is
9 V; the inward tunnel-oxide current Jin is much larger than the
outward control-oxide leakage Jout (only 15 - 9 = 6 V across the
thicker control oxide). The figure shows the two current magnitudes
over the early transient with the t = 0 mechanism in the insert.

Overrides (session API): ``vgs_v``, ``gcr``, ``tunnel_oxide_nm``,
``duration_s`` and ``n_samples``; the eq. (3) check adapts to the
overridden operating point (V_FG(0) = GCR * V_GS).
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..device.transient import simulate_transient
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck, decades_between

EXPERIMENT_ID = "fig4"
TITLE = "Jin vs Jout at the start of programming (VGS=15V, GCR=0.6)"


def run(
    ctx: "SimulationContext | None" = None,
    *,
    duration_s: float = 1e-5,
    n_samples: int = 120,
    vgs_v: float = 15.0,
    gcr: "float | None" = None,
    tunnel_oxide_nm: "float | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 4: the early programming transient."""
    ctx = ensure_context(ctx)
    device = ctx.device(tunnel_oxide_nm=tunnel_oxide_nm, gcr=gcr)
    bias = ctx.bias("program", vgs_v=vgs_v)
    result = simulate_transient(
        device,
        bias,
        duration_s=duration_s,
        n_samples=n_samples,
    )
    jin = np.abs(result.jin_a_m2)
    jout = np.abs(result.jout_a_m2)
    series = (
        PlotSeries(label="Jin (tunnel oxide)", x=result.t_s, y=jin),
        PlotSeries(label="Jout (control oxide)", x=result.t_s, y=jout),
    )

    vfg0 = float(result.vfg_v[0])
    vfg_expected = device.gate_coupling_ratio * vgs_v
    separation = decades_between(float(jout[0]), float(jin[0]))
    checks = (
        ShapeCheck(
            claim=f"V_FG = {vfg_expected:g} V at t = 0 for V_GS = {vgs_v:g} V"
            f" and GCR = {device.gate_coupling_ratio:g} (eq. 3)",
            passed=abs(vfg0 - vfg_expected) < 1e-6,
            detail=f"V_FG(0) = {vfg0:.6f} V",
        ),
        ShapeCheck(
            claim="Jin >> Jout at t = 0 (lower voltage, thicker control oxide)",
            passed=jin[0] > 1e3 * jout[0],
            detail=f"Jin/Jout = 10^{separation:.1f}",
        ),
        ShapeCheck(
            claim="Jin decreases as electrons accumulate",
            passed=bool(jin[-1] < jin[0]),
            detail=f"Jin: {jin[0]:.3e} -> {jin[-1]:.3e} A/m^2",
        ),
        ShapeCheck(
            claim="Jout increases as V_FG falls",
            passed=bool(jout[-1] > jout[0]),
            detail=f"Jout: {jout[0]:.3e} -> {jout[-1]:.3e} A/m^2",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="time [s]",
        y_label="|J| [A/m^2]",
        series=series,
        parameters={
            "vgs_v": vgs_v,
            "gcr": device.gate_coupling_ratio,
            "xto_nm": device.geometry.tunnel_oxide_thickness_m * 1e9,
            "xco_nm": device.geometry.control_oxide_thickness_m * 1e9,
            "duration_s": duration_s,
        },
        checks=checks,
    )
