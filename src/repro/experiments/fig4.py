"""Figure 4: tunneling currents at the start of programming.

Paper claim: with V_GS = 15 V, GCR = 0.6 and no stored charge, V_FG is
9 V; the inward tunnel-oxide current Jin is much larger than the
outward control-oxide leakage Jout (only 15 - 9 = 6 V across the
thicker control oxide). The figure shows the two current magnitudes
over the early transient with the t = 0 mechanism in the insert.
"""

from __future__ import annotations

import numpy as np

from ..device.bias import PROGRAM_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..device.transient import simulate_transient
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck, decades_between

EXPERIMENT_ID = "fig4"
TITLE = "Jin vs Jout at the start of programming (VGS=15V, GCR=0.6)"


def run(duration_s: float = 1e-5, n_samples: int = 120) -> ExperimentResult:
    """Reproduce Figure 4: the early programming transient."""
    device = FloatingGateTransistor()
    result = simulate_transient(
        device,
        PROGRAM_BIAS,
        duration_s=duration_s,
        n_samples=n_samples,
    )
    jin = np.abs(result.jin_a_m2)
    jout = np.abs(result.jout_a_m2)
    series = (
        PlotSeries(label="Jin (tunnel oxide)", x=result.t_s, y=jin),
        PlotSeries(label="Jout (control oxide)", x=result.t_s, y=jout),
    )

    vfg0 = float(result.vfg_v[0])
    separation = decades_between(float(jout[0]), float(jin[0]))
    checks = (
        ShapeCheck(
            claim="V_FG = 9 V at t = 0 for V_GS = 15 V and GCR = 0.6 (eq. 3)",
            passed=abs(vfg0 - 9.0) < 1e-6,
            detail=f"V_FG(0) = {vfg0:.6f} V",
        ),
        ShapeCheck(
            claim="Jin >> Jout at t = 0 (lower voltage, thicker control oxide)",
            passed=jin[0] > 1e3 * jout[0],
            detail=f"Jin/Jout = 10^{separation:.1f}",
        ),
        ShapeCheck(
            claim="Jin decreases as electrons accumulate",
            passed=bool(jin[-1] < jin[0]),
            detail=f"Jin: {jin[0]:.3e} -> {jin[-1]:.3e} A/m^2",
        ),
        ShapeCheck(
            claim="Jout increases as V_FG falls",
            passed=bool(jout[-1] > jout[0]),
            detail=f"Jout: {jout[0]:.3e} -> {jout[-1]:.3e} A/m^2",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="time [s]",
        y_label="|J| [A/m^2]",
        series=series,
        parameters={
            "vgs_v": 15.0,
            "gcr": device.gate_coupling_ratio,
            "xto_nm": device.geometry.tunnel_oxide_thickness_m * 1e9,
            "xco_nm": device.geometry.control_oxide_thickness_m * 1e9,
            "duration_s": duration_s,
        },
        checks=checks,
    )
