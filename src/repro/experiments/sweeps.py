"""Shared sweep machinery for the paper's Figures 6-9.

All four figures evaluate the same composition of paper equations:
eq. (3) with zero stored charge (``V_FG = GCR * V_GS``) feeding eq. (7)
(``J_FN = A (V_FG / X_TO)^2 exp(-B X_TO / V_FG)``), swept over the
control-gate voltage for families of GCR or tunnel-oxide thickness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..electrostatics.gcr import floating_gate_voltage_simple
from ..errors import ConfigurationError
from ..materials.graphene import GRAPHENE_WORK_FUNCTION_EV
from ..materials.oxides import SIO2
from ..reporting.ascii_plot import PlotSeries
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.fowler_nordheim import FowlerNordheimModel
from ..units import nm_to_m


@dataclass(frozen=True)
class SweepSettings:
    """Barrier parameters shared by every figure sweep.

    Defaults: graphene channel on SiO2 (phi_B = W_graphene - chi_SiO2 =
    3.61 eV, m_ox = 0.42 m0). The paper leaves these unstated; see
    DESIGN.md for the substitution record.
    """

    barrier_height_ev: float = GRAPHENE_WORK_FUNCTION_EV - SIO2.electron_affinity_ev
    mass_ratio: float = SIO2.tunneling_mass_ratio

    def __post_init__(self) -> None:
        if self.barrier_height_ev <= 0.0:
            raise ConfigurationError("barrier height must be positive")


def fn_density_vs_gate_voltage(
    vgs_v: np.ndarray,
    gcr: float,
    tunnel_oxide_nm: float,
    settings: "SweepSettings | None" = None,
) -> np.ndarray:
    """|J_FN| over a V_GS sweep via eqs. (3) + (7) [A/m^2].

    Works for both polarities: erase sweeps pass negative V_GS and the
    magnitude of the current is returned, matching how Figures 8-9 plot
    the erase current.
    """
    settings = settings or SweepSettings()
    vgs_v = np.asarray(vgs_v, dtype=float)
    barrier = TunnelBarrier(
        barrier_height_ev=settings.barrier_height_ev,
        thickness_m=nm_to_m(tunnel_oxide_nm),
        mass_ratio=settings.mass_ratio,
    )
    model = FowlerNordheimModel(barrier)
    vfg = np.array(
        [floating_gate_voltage_simple(gcr, float(v)) for v in vgs_v]
    )
    return np.abs(model.current_density_from_voltage(vfg))


def gcr_family(
    vgs_v: np.ndarray,
    gcrs: "tuple[float, ...]",
    tunnel_oxide_nm: float,
    settings: "SweepSettings | None" = None,
) -> "tuple[PlotSeries, ...]":
    """One series per GCR (Figures 6 and 8)."""
    return tuple(
        PlotSeries(
            label=f"GCR={int(round(g * 100))}%",
            x=np.asarray(vgs_v, dtype=float),
            y=fn_density_vs_gate_voltage(
                vgs_v, g, tunnel_oxide_nm, settings
            ),
        )
        for g in gcrs
    )


def oxide_family(
    vgs_v: np.ndarray,
    tunnel_oxides_nm: "tuple[float, ...]",
    gcr: float,
    settings: "SweepSettings | None" = None,
) -> "tuple[PlotSeries, ...]":
    """One series per tunnel-oxide thickness (Figures 7 and 9).

    Ordered thickest first so the series run bottom-to-top in current,
    matching the ordering-check convention.
    """
    ordered = tuple(sorted(tunnel_oxides_nm, reverse=True))
    return tuple(
        PlotSeries(
            label=f"XTO={x:g}nm",
            x=np.asarray(vgs_v, dtype=float),
            y=fn_density_vs_gate_voltage(vgs_v, gcr, x, settings),
        )
        for x in ordered
    )
