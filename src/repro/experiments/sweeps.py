"""Shared sweep machinery for the paper's Figures 6-9.

All four figures evaluate the same composition of paper equations:
eq. (3) with zero stored charge (``V_FG = GCR * V_GS``) feeding eq. (7)
(``J_FN = A (V_FG / X_TO)^2 exp(-B X_TO / V_FG)``), swept over the
control-gate voltage for families of GCR or tunnel-oxide thickness.

Since PR 1 the sweeps are routed through the batch engine
(:mod:`repro.engine.batch`): a whole figure family is one
:class:`~repro.engine.batch.BatchSpec` evaluated in a single fused
NumPy call, instead of one scalar eq. (3) + (7) evaluation per point.
The numbers are identical to the seed's looped path -- the engine runs
the same formulas, vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.batch import BatchSpec, fn_batch
from ..errors import ConfigurationError
from ..materials.graphene import GRAPHENE_WORK_FUNCTION_EV
from ..materials.oxides import SIO2
from ..reporting.ascii_plot import PlotSeries


@dataclass(frozen=True)
class SweepSettings:
    """Barrier parameters shared by every figure sweep.

    Defaults: graphene channel on SiO2 (phi_B = W_graphene - chi_SiO2 =
    3.61 eV, m_ox = 0.42 m0) at zero temperature, the paper's implicit
    operating point. The paper leaves these unstated; see DESIGN.md for
    the substitution record. A positive ``temperature_k`` applies the
    Good-Mueller thermal-broadening factor to every sweep lane (the
    ``temperature_k`` override of the figure experiments).
    """

    barrier_height_ev: float = GRAPHENE_WORK_FUNCTION_EV - SIO2.electron_affinity_ev
    mass_ratio: float = SIO2.tunneling_mass_ratio
    temperature_k: float = 0.0

    def __post_init__(self) -> None:
        if self.barrier_height_ev <= 0.0:
            raise ConfigurationError("barrier height must be positive")
        if self.temperature_k < 0.0:
            raise ConfigurationError("temperature cannot be negative")


def fn_density_vs_gate_voltage(
    vgs_v: np.ndarray,
    gcr: float,
    tunnel_oxide_nm: float,
    settings: "SweepSettings | None" = None,
) -> np.ndarray:
    """|J_FN| over a V_GS sweep via eqs. (3) + (7) [A/m^2].

    Works for both polarities: erase sweeps pass negative V_GS and the
    magnitude of the current is returned, matching how Figures 8-9 plot
    the erase current. One vectorized engine batch per call.
    """
    settings = settings or SweepSettings()
    spec = BatchSpec(
        gate_voltages_v=np.asarray(vgs_v, dtype=float),
        gcrs=np.asarray(gcr, dtype=float),
        tunnel_oxides_nm=np.asarray(tunnel_oxide_nm, dtype=float),
        barrier_height_ev=settings.barrier_height_ev,
        mass_ratio=settings.mass_ratio,
        temperature_k=settings.temperature_k,
    )
    return fn_batch(spec).j_magnitude_a_m2


def _family_series(
    vgs_v: np.ndarray,
    family_values: "tuple[float, ...]",
    labels: "tuple[str, ...]",
    spec: BatchSpec,
) -> "tuple[PlotSeries, ...]":
    """Evaluate one engine batch and slice it into per-family series."""
    magnitudes = fn_batch(spec).j_magnitude_a_m2
    x = np.asarray(vgs_v, dtype=float)
    return tuple(
        PlotSeries(label=labels[i], x=x, y=magnitudes[i])
        for i in range(len(family_values))
    )


def gcr_family(
    vgs_v: np.ndarray,
    gcrs: "tuple[float, ...]",
    tunnel_oxide_nm: float,
    settings: "SweepSettings | None" = None,
) -> "tuple[PlotSeries, ...]":
    """One series per GCR (Figures 6 and 8), one engine batch total."""
    settings = settings or SweepSettings()
    spec = BatchSpec(
        gate_voltages_v=np.asarray(vgs_v, dtype=float).reshape(1, -1),
        gcrs=np.asarray(gcrs, dtype=float).reshape(-1, 1),
        tunnel_oxides_nm=np.asarray(tunnel_oxide_nm, dtype=float),
        barrier_height_ev=settings.barrier_height_ev,
        mass_ratio=settings.mass_ratio,
        temperature_k=settings.temperature_k,
    )
    labels = tuple(f"GCR={int(round(g * 100))}%" for g in gcrs)
    return _family_series(vgs_v, tuple(gcrs), labels, spec)


def oxide_family(
    vgs_v: np.ndarray,
    tunnel_oxides_nm: "tuple[float, ...]",
    gcr: float,
    settings: "SweepSettings | None" = None,
) -> "tuple[PlotSeries, ...]":
    """One series per tunnel-oxide thickness (Figures 7 and 9).

    Ordered thickest first so the series run bottom-to-top in current,
    matching the ordering-check convention. One engine batch total.
    """
    settings = settings or SweepSettings()
    ordered = tuple(sorted(tunnel_oxides_nm, reverse=True))
    spec = BatchSpec(
        gate_voltages_v=np.asarray(vgs_v, dtype=float).reshape(1, -1),
        gcrs=np.asarray(gcr, dtype=float),
        tunnel_oxides_nm=np.asarray(ordered, dtype=float).reshape(-1, 1),
        barrier_height_ev=settings.barrier_height_ev,
        mass_ratio=settings.mass_ratio,
        temperature_k=settings.temperature_k,
    )
    labels = tuple(f"XTO={x:g}nm" for x in ordered)
    return _family_series(vgs_v, ordered, labels, spec)
