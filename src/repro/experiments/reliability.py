"""Reliability experiments (DESIGN.md rel-*): the paper's warning, quantified.

The paper's conclusion warns that the tunneling currents that make the
cell fast "severely damage the oxide's reliability". These experiments
turn that sentence into curves through the batched reliability backend:

* ``rel-endurance`` -- memory-window closure and Q_BD life over cycling
  for a corner sweep of trapped-charge fractions, one closed-form
  kernel call for the whole sweep
  (:meth:`~repro.reliability.endurance.EnduranceModel.simulate_batch`).
* ``rel-bake``      -- the JEDEC-style retention-bake acceleration
  table over a bake-temperature grid (vectorized Arrhenius law).
* ``rel-silc``      -- stress-induced leakage at retention fields over
  an injected-fluence grid
  (:func:`~repro.reliability.silc.silc_current_density_batch`).

All three accept the session-API protocol (``run(ctx, **params)``)
with grid-range and corner overrides.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..reliability.bake import ArrheniusAcceleration
from ..reliability.silc import silc_current_density_batch
from ..reporting.ascii_plot import PlotSeries
from ..tunneling.barriers import TunnelBarrier
from ..units import nm_to_m
from .base import ExperimentResult, ShapeCheck


def run_endurance(
    ctx: "SimulationContext | None" = None,
    *,
    n_cycles: int = 100_000,
    n_samples: int = 40,
    pulse_duration_s: float = 1e-4,
    trapped_charge_fractions: "tuple[float, ...]" = (0.02, 0.05, 0.10),
) -> ExperimentResult:
    """rel-endurance: window closure across a trapped-charge corner sweep."""
    ctx = ensure_context(ctx)
    fractions = np.asarray(trapped_charge_fractions, dtype=float)
    model = ctx.endurance_model(pulse_duration_s=pulse_duration_s)
    batch = model.simulate_batch(
        n_cycles,
        n_samples=n_samples,
        trapped_charge_fractions=fractions,
    )
    series = tuple(
        PlotSeries(
            label=f"window closure, {fractions[i]:.0%} traps charged",
            x=batch.cycle_counts,
            y=batch.window_closure_v[i],
        )
        for i in range(batch.n_lanes)
    )
    cycles_bd = float(batch.cycles_to_breakdown[0])
    closure_end = batch.window_closure_v[:, -1]
    checks = (
        ShapeCheck(
            claim="window closure grows monotonically with cycling "
            "(trap generation never anneals in the model)",
            passed=bool(
                np.all(np.diff(batch.window_closure_v, axis=1) > 0.0)
            ),
            detail=f"final closures {np.array2string(closure_end, precision=3)} V",
        ),
        ShapeCheck(
            claim="closure scales linearly with the trapped-charge "
            "fraction (same trap population, different occupancy)",
            passed=bool(
                np.allclose(
                    closure_end / fractions,
                    closure_end[0] / fractions[0],
                    rtol=1e-9,
                )
            ),
            detail="closure/fraction constant across the corner sweep",
        ),
        ShapeCheck(
            claim="the cell survives the flash endurance range "
            "(>= 1e4 cycles to Q_BD exhaustion)",
            passed=cycles_bd >= 1e4,
            detail=f"{cycles_bd:.2e} cycles to breakdown",
        ),
    )
    return ExperimentResult(
        experiment_id="rel-endurance",
        title="Endurance window closure (trapped-charge corner sweep)",
        x_label="program/erase cycles",
        y_label="window closure [V]",
        series=series,
        parameters={
            "n_cycles": n_cycles,
            "pulse_duration_s": pulse_duration_s,
            "cycles_to_breakdown": cycles_bd,
            "life_consumed_at_end": float(batch.life_consumed[0, -1]),
        },
        checks=checks,
    )


def run_bake(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 12,
    bake_temperature_range_k: "tuple[float, float]" = (398.15, 523.15),
    activation_energy_ev: float = 1.1,
    use_temperature_k: float = 328.15,
) -> ExperimentResult:
    """rel-bake: ten-year-equivalent bake duration vs bake temperature."""
    ctx = ensure_context(ctx)
    model = ArrheniusAcceleration(
        activation_energy_ev=activation_energy_ev,
        use_temperature_k=use_temperature_k,
    )
    temperatures = np.linspace(*bake_temperature_range_k, n_points)
    hours = model.ten_year_bake_hours(temperatures)
    factors = model.acceleration_factor(temperatures)
    series = (
        PlotSeries(
            label=f"10-year bake, Ea = {activation_energy_ev:g} eV",
            x=temperatures,
            y=hours,
        ),
    )
    checks = (
        ShapeCheck(
            claim="hot bakes accelerate retention loss (AF > 1 above "
            "the use temperature)",
            passed=bool(np.all(factors > 1.0)),
            detail=f"AF spans {factors[0]:.1f} .. {factors[-1]:.2e}",
        ),
        ShapeCheck(
            claim="the required bake shrinks monotonically with "
            "temperature (Arrhenius)",
            passed=bool(np.all(np.diff(hours) < 0.0)),
            detail=f"{hours[0]:.3g} h at {temperatures[0]:.0f} K -> "
            f"{hours[-1]:.3g} h at {temperatures[-1]:.0f} K",
        ),
        ShapeCheck(
            claim="a 250 C bake emulates ten years within practical "
            "qualification time (under a month)",
            passed=bool(hours[-1] < 24.0 * 31.0),
            detail=f"{hours[-1]:.1f} h at {temperatures[-1]:.0f} K",
        ),
    )
    return ExperimentResult(
        experiment_id="rel-bake",
        title="Ten-year retention bake equivalence (Arrhenius)",
        x_label="bake temperature [K]",
        y_label="bake duration [h]",
        series=series,
        parameters={
            "activation_energy_ev": activation_energy_ev,
            "use_temperature_k": use_temperature_k,
        },
        checks=checks,
    )


def run_silc(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 12,
    fluence_range_c_per_m2: "tuple[float, float]" = (1e2, 1e6),
    retention_fields_mv_per_cm: "tuple[float, ...]" = (4.0, 6.0),
    barrier_height_ev: float = 3.61,
    tunnel_oxide_nm: float = 5.0,
    mass_ratio: float = 0.42,
) -> ExperimentResult:
    """rel-silc: stress-induced leakage vs injected fluence."""
    ctx = ensure_context(ctx)
    barrier = TunnelBarrier(
        barrier_height_ev=barrier_height_ev,
        thickness_m=nm_to_m(tunnel_oxide_nm),
        mass_ratio=mass_ratio,
    )
    fluences = np.geomspace(*fluence_range_c_per_m2, n_points)
    fields = np.asarray(retention_fields_mv_per_cm, dtype=float) * 1e8
    grid = silc_current_density_batch(
        barrier, fields[:, np.newaxis], fluences[np.newaxis, :]
    )
    series = tuple(
        PlotSeries(
            label=f"J_SILC at {retention_fields_mv_per_cm[i]:g} MV/cm",
            x=fluences,
            y=grid[i],
        )
        for i in range(fields.size)
    )
    # Log-log slope of the *generated* part approaches alpha once the
    # generated traps dominate the pre-existing population.
    slope = float(
        np.log(grid[0, -1] / grid[0, -2])
        / np.log(fluences[-1] / fluences[-2])
    )
    checks = (
        ShapeCheck(
            claim="SILC grows sub-linearly with injected fluence "
            "(power-law trap generation, alpha < 1)",
            passed=bool(
                np.all(np.diff(grid, axis=1) > 0.0) and 0.0 < slope < 1.0
            ),
            detail=f"high-fluence log-log slope {slope:.2f}",
        ),
        ShapeCheck(
            claim="leakage rises steeply with the retention field "
            "(trap-assisted conduction)",
            passed=bool(np.all(grid[-1] > grid[0])),
            detail=(
                f"J({retention_fields_mv_per_cm[-1]:g} MV/cm) / "
                f"J({retention_fields_mv_per_cm[0]:g} MV/cm) = "
                f"{grid[-1, -1] / grid[0, -1]:.2e}"
            ),
        ),
    )
    return ExperimentResult(
        experiment_id="rel-silc",
        title="Stress-induced leakage vs injected fluence",
        x_label="injected fluence [C/m^2]",
        y_label="J_SILC [A/m^2]",
        series=series,
        parameters={
            "barrier_ev": barrier_height_ev,
            "xto_nm": tunnel_oxide_nm,
            "high_fluence_slope": slope,
        },
        checks=checks,
    )
