"""Command-line entry point: regenerate the paper's figures.

Usage (installed as ``repro-experiments``)::

    repro-experiments                 # run all paper figures + ablations
    repro-experiments fig6 fig7       # selected experiments
    repro-experiments --paper-only    # only the six paper figures
    repro-experiments --csv-dir out/  # also export series as CSV

Prints, for each experiment, the ASCII rendering of the figure and the
table of shape checks against the paper's claims; exits nonzero if any
check fails. The figure sweeps run through the batch engine
(:mod:`repro.engine`); ``--cache-stats`` reports how much of the run
was served from the engine's memoized intermediates.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..engine import cache_stats, clear_caches
from ..reporting.export import export_series_csv
from .base import ExperimentResult
from .registry import available_experiments, run_all, run_experiment


def _print_result(result: ExperimentResult, plot: bool = True) -> None:
    print("=" * 78)
    print(f"{result.experiment_id}: {result.title}")
    print("-" * 78)
    if result.parameters:
        params = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        print(f"parameters: {params}")
    if plot:
        print(result.render_plot())
    print(result.render_checks())
    print()


def main(argv: "Sequence[str] | None" = None) -> int:
    """Run experiments and report; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Hossain et al., SOCC 2014.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--paper-only",
        action="store_true",
        help="run only the six paper figures",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="suppress ASCII figures"
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="directory to export each experiment's series as CSV",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="report batch-engine cache hit rates after the run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(available_experiments()):
            print(experiment_id)
        return 0

    if args.cache_stats:
        clear_caches()  # attribute the report to this run only

    if args.experiments:
        results = [run_experiment(e) for e in args.experiments]
    else:
        results = run_all(paper_only=args.paper_only)

    failures = 0
    for result in results:
        _print_result(result, plot=not args.no_plot)
        if args.csv_dir:
            path = export_series_csv(
                f"{args.csv_dir}/{result.experiment_id}.csv",
                result.series,
                x_label=result.x_label,
                y_label=result.y_label,
            )
            print(f"wrote {path}")
        failures += sum(1 for c in result.checks if not c.passed)

    total_checks = sum(len(r.checks) for r in results)
    print(
        f"{len(results)} experiments, {total_checks} shape checks, "
        f"{failures} failures"
    )
    if args.cache_stats:
        stats = cache_stats()
        print(
            f"engine caches: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate, {stats.currsize} entries)"
        )
        for name, (hits, misses, size) in stats.per_cache:
            print(f"  {name:22s} {hits:6d} hits {misses:6d} misses {size:4d} entries")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
