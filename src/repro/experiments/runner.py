"""Command-line entry point: regenerate the paper's figures.

Usage (installed as ``repro-experiments``)::

    repro-experiments                     # all paper figures + ablations
    repro-experiments fig6 fig7           # selected experiments
    repro-experiments fig6 --set temperature_k=400   # parameterized
    repro-experiments --plan plan.json    # a declarative RunPlan
    repro-experiments --plan plan.json --workers 4 --shard-by by-cost
                                          # sharded parallel execution
    repro-experiments --paper-only        # only the paper figures
    repro-experiments --csv-dir out/      # also export series as CSV
    repro-experiments --json-dir out/     # also export results as JSON

Prints, for each experiment, the ASCII rendering of the figure and the
table of shape checks against the paper's claims; exits nonzero if any
check fails. Every run goes through one
:class:`~repro.api.session.SimulationSession`, so ``--cache-stats``
reports *per-session* hit/miss counters -- for a ``--plan`` run that
includes the cross-scenario reuse the plan achieved.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from ..api.plan import RunPlan
from ..api.session import SimulationSession
from ..engine.cache import CacheStats
from ..errors import ConfigurationError
from ..io import (
    experiment_result_to_dict,
    save_json,
    scenario_result_to_dict,
)
from ..reporting.export import export_series_csv
from .base import ExperimentResult
from .registry import available_experiments


def parse_set_option(assignments: "Sequence[str]") -> "dict[str, Any]":
    """Parse repeated ``--set key=value`` assignments into overrides.

    Values parse as JSON where possible (numbers, booleans, lists like
    ``[0.5,0.6]``, quoted strings) and fall back to the raw string, so
    ``--set temperature_k=400 --set gcrs=[0.5,0.7]`` both work.
    """
    overrides: "dict[str, Any]" = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"--set expects key=value, got {assignment!r}"
            )
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def _print_result(result: ExperimentResult, plot: bool = True) -> None:
    print("=" * 78)
    print(f"{result.experiment_id}: {result.title}")
    print("-" * 78)
    if result.parameters:
        params = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        print(f"parameters: {params}")
    if plot:
        print(result.render_plot())
    print(result.render_checks())
    print()


def _export(
    result: ExperimentResult,
    stem: str,
    csv_dir: "str | None",
    json_dir: "str | None",
    record: "dict[str, Any] | None" = None,
) -> None:
    """Write the CSV and/or JSON export of one result."""
    if csv_dir:
        path = export_series_csv(
            f"{csv_dir}/{stem}.csv",
            result.series,
            x_label=result.x_label,
            y_label=result.y_label,
        )
        print(f"wrote {path}")
    if json_dir:
        path = save_json(
            record or experiment_result_to_dict(result),
            f"{json_dir}/{stem}.json",
        )
        print(f"wrote {path}")


def _safe_stem(name: str) -> str:
    """A filesystem-safe export stem for a scenario name."""
    return "".join(
        c if c.isalnum() or c in "-_." else "_" for c in name
    )


def _print_cache_stats(stats: CacheStats) -> None:
    print(
        f"engine caches: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate, {stats.currsize} entries)"
    )
    for name, (hits, misses, size) in stats.per_cache:
        print(f"  {name:22s} {hits:6d} hits {misses:6d} misses {size:4d} entries")


def _run_plan(
    session: SimulationSession, plan: RunPlan, args: argparse.Namespace
) -> int:
    """Execute a RunPlan (serially or sharded) and report per scenario.

    With ``--from-store`` scenarios whose canonical hash is already in
    the store are served from disk (only misses compute); with
    ``--update-store`` freshly computed results are written back. A
    store hit/miss summary line is printed whenever either flag is on.
    """
    store_report = None
    if args.from_store or args.update_store:
        from ..service.store import run_plan_with_store

        outcome, store_report = run_plan_with_store(
            session,
            plan,
            from_store=args.from_store,
            update_store=args.update_store,
            workers=args.workers,
            shard_by=args.shard_by,
            timeout_s=args.shard_timeout,
            max_shard_retries=args.shard_retries,
        )
    elif args.workers > 1:
        outcome = session.run_plan_parallel(
            plan,
            workers=args.workers,
            shard_by=args.shard_by or "round-robin",
            timeout_s=args.shard_timeout,
            max_shard_retries=args.shard_retries,
        )
    else:
        outcome = session.run_plan(plan)
    failures = 0
    used_stems: "dict[str, int]" = {}
    for scenario_result in outcome.scenario_results:
        _print_result(scenario_result.result, plot=not args.no_plot)
        print(
            f"scenario {scenario_result.scenario.name}: "
            f"{scenario_result.elapsed_s * 1e3:.1f} ms, "
            f"{scenario_result.cache_stats.hits} cache hits / "
            f"{scenario_result.cache_stats.misses} misses "
            f"({scenario_result.reused_hits} reused)"
        )
        stem = _safe_stem(scenario_result.scenario.name)
        # Repeated scenarios (e.g. warm-cache reruns) must not silently
        # overwrite each other's export files.
        count = used_stems.get(stem, 0)
        used_stems[stem] = count + 1
        if count:
            stem = f"{stem}-{count + 1}"
        _export(
            scenario_result.result,
            stem,
            args.csv_dir,
            args.json_dir,
            record=scenario_result_to_dict(scenario_result),
        )
        failures += sum(
            1 for c in scenario_result.result.checks if not c.passed
        )
    total_checks = sum(len(r.checks) for r in outcome.results)
    print(
        f"plan {plan.name!r}: {len(outcome.scenario_results)} scenarios, "
        f"{total_checks} shape checks, {failures} failures, "
        f"{outcome.cross_scenario_hits} cross-scenario cache hits"
    )
    if store_report is not None:
        print(store_report.summary())
    for report in getattr(outcome, "shard_reports", ()):
        print(
            f"shard {report.index}: {len(report.positions)} scenarios in "
            f"{report.elapsed_s * 1e3:.1f} ms (seed {report.seed}, "
            f"{report.cache_stats.hits} hits / "
            f"{report.cache_stats.misses} misses)"
        )
    if args.cache_stats:
        # A parallel run leaves the CLI session's own caches untouched;
        # the merged plan counters are the meaningful report either way.
        _print_cache_stats(outcome.cache_stats)
    return 1 if failures else 0


def _check_overrides_used(
    ids: "Sequence[str]", overrides: "dict[str, Any]"
) -> None:
    """Reject ``--set`` keys no selected experiment accepts.

    CLI overrides ride as session defaults (each experiment takes the
    subset it understands), so a typo'd key would otherwise be silently
    ignored; this check keeps it an error.
    """
    from ..api.session import accepted_parameters
    from .registry import resolve_experiment

    for key in overrides:
        if not any(
            key in accepted_parameters(resolve_experiment(i)) for i in ids
        ):
            raise ConfigurationError(
                f"--set {key}=... is not accepted by any selected "
                f"experiment ({', '.join(ids)})"
            )


def main(argv: "Sequence[str] | None" = None) -> int:
    """Run experiments and report; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Hossain et al., SOCC 2014.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--paper-only",
        action="store_true",
        help="run only the six paper figures",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="suppress ASCII figures"
    )
    parser.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="parameter override applied to every selected experiment "
        "(repeatable; values parse as JSON, e.g. temperature_k=400)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="PLAN.JSON",
        help="run a declarative RunPlan (JSON) through one session",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="session RNG seed (default 0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run a --plan across N sharded worker sessions "
        "(process pool; results are bit-identical to the serial run)",
    )
    parser.add_argument(
        "--shard-by",
        choices=["round-robin", "by-experiment", "by-cost"],
        default=None,
        help="how --workers splits the plan across workers "
        "(default round-robin; requires --workers >= 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline for --workers runs; a shard past it is "
        "cancelled and retried (off by default)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="retries per failed/crashed/timed-out shard before the "
        "plan run errors (default 2)",
    )
    parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="serve --plan scenarios already in this result store from "
        "disk (content-addressed by canonical scenario hash); only "
        "misses are computed",
    )
    parser.add_argument(
        "--update-store",
        default=None,
        metavar="DIR",
        help="write results computed during a --plan run into this "
        "result store (may be the same directory as --from-store)",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="directory to export each experiment's series as CSV",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="directory to export each result as JSON (repro.io format)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="report the session's cache hit rates after the run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    try:
        overrides = parse_set_option(args.assignments)
        session = SimulationSession(seed=args.seed, defaults=overrides)

        if args.workers < 1:
            raise ConfigurationError(
                f"--workers must be >= 1, got {args.workers}"
            )
        if args.shard_by is not None and args.workers < 2:
            raise ConfigurationError(
                "--shard-by only applies to parallel runs; pass "
                "--workers N (N >= 2) alongside it"
            )
        if args.shard_timeout is not None and args.workers < 2:
            raise ConfigurationError(
                "--shard-timeout only applies to parallel runs; pass "
                "--workers N (N >= 2) alongside it"
            )
        if args.shard_retries < 0:
            raise ConfigurationError(
                f"--shard-retries must be >= 0, got {args.shard_retries}"
            )
        if (args.from_store or args.update_store) and not args.plan:
            raise ConfigurationError(
                "--from-store/--update-store apply to --plan runs; wrap "
                "the experiments in a plan file to use the result store"
            )
        if args.plan:
            if args.experiments or overrides:
                raise ConfigurationError(
                    "--plan replaces positional experiment ids and --set; "
                    "encode overrides in the plan file"
                )
            return _run_plan(session, RunPlan.load(args.plan), args)
        if args.workers > 1:
            raise ConfigurationError(
                "--workers applies to --plan runs; wrap the experiments "
                "in a plan file to run them in parallel"
            )

        if args.experiments:
            ids = list(args.experiments)
        elif args.paper_only:
            from .registry import PAPER_FIGURES

            ids = list(PAPER_FIGURES)
        else:
            ids = list(available_experiments())

        _check_overrides_used(ids, overrides)
        results = [session.run(i) for i in ids]
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = 0
    for result in results:
        _print_result(result, plot=not args.no_plot)
        _export(result, result.experiment_id, args.csv_dir, args.json_dir)
        failures += sum(1 for c in result.checks if not c.passed)

    total_checks = sum(len(r.checks) for r in results)
    print(
        f"{len(results)} experiments, {total_checks} shape checks, "
        f"{failures} failures"
    )
    if args.cache_stats:
        _print_cache_stats(session.cache_stats())
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
