"""Experiment framework: results, shape checks and reporting hooks.

Every paper figure is reproduced by a module exposing ``run()`` which
returns an :class:`ExperimentResult`. Since the paper's absolute
numbers depend on unstated parameters (phi_B, m_ox), reproduction is
verified through *shape checks* -- monotonicity, curve ordering,
decade-scale separations -- each recorded as a :class:`ShapeCheck` so
the harness can report which qualitative claims of the paper hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..reporting.ascii_plot import PlotSeries, ascii_plot
from ..reporting.table import format_table


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim of the paper, checked numerically.

    Attributes
    ----------
    claim:
        The paper's statement being tested.
    passed:
        Whether the reproduced data satisfies it.
    detail:
        Numbers supporting the verdict.
    """

    claim: str
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one reproduced figure.

    Attributes
    ----------
    experiment_id:
        e.g. ``"fig6"``.
    title:
        Paper caption summary.
    x_label, y_label:
        Axis labels for reporting.
    series:
        The reproduced curves.
    parameters:
        The sweep parameters used (for EXPERIMENTS.md records).
    checks:
        Shape checks against the paper's claims.
    log_y:
        Whether the y axis is meaningful only on a log scale.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: "tuple[PlotSeries, ...]"
    parameters: "Mapping[str, object]" = field(default_factory=dict)
    checks: "tuple[ShapeCheck, ...]" = ()
    log_y: bool = True

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks)

    def render_plot(self, width: int = 72, height: int = 18) -> str:
        """ASCII rendering of the reproduced figure."""
        return ascii_plot(
            self.series,
            width=width,
            height=height,
            log_y=self.log_y,
            title=f"[{self.experiment_id}] {self.title}",
            x_label=self.x_label,
            y_label=self.y_label,
        )

    def render_checks(self) -> str:
        """Tabular rendering of the shape checks."""
        rows = [
            ("PASS" if c.passed else "FAIL", c.claim, c.detail)
            for c in self.checks
        ]
        return format_table(("status", "paper claim", "measured"), rows)


def monotonic_increasing(y: np.ndarray, strict: bool = True) -> bool:
    """Whether a series rises along its x axis."""
    d = np.diff(np.asarray(y, dtype=float))
    return bool(np.all(d > 0.0) if strict else np.all(d >= 0.0))


def series_ordering_check(
    series: Sequence[PlotSeries],
    claim: str,
    at_index: int = -1,
) -> ShapeCheck:
    """Check that series are ordered bottom-to-top as listed.

    Used for "higher GCR gives higher J" (Figures 6/8) and "thinner
    oxide gives higher J" (Figures 7/9): the first listed series must
    have the lowest value at the probe index, and so on upward.
    """
    if len(series) < 2:
        raise ConfigurationError("ordering needs at least two series")
    values = [float(np.asarray(s.y)[at_index]) for s in series]
    ordered = all(a < b for a, b in zip(values, values[1:]))
    detail = ", ".join(
        f"{s.label}={v:.3g}" for s, v in zip(series, values)
    )
    return ShapeCheck(claim=claim, passed=ordered, detail=detail)


def decades_between(
    low: float, high: float
) -> float:
    """log10 ratio helper for separation checks."""
    if low <= 0.0 or high <= 0.0:
        return float("nan")
    return float(np.log10(high / low))
