"""Figure 9: erase J_FN vs V_GS for five tunnel-oxide thicknesses.

Paper caption: "[Erase] FN tunneling current density (JFN) versus
Control gate voltage (VGS) for five different tunnel oxide thickness
(XTO). GCR = 60%, VGS < 0 V." Claims: |J_FN| grows as V_GS goes more
negative for a given X_TO, and increases significantly when X_TO is
below 7 nm, "similar to the programming operation".
"""

from __future__ import annotations

import numpy as np

from .base import ExperimentResult, ShapeCheck, series_ordering_check
from .sweeps import SweepSettings, oxide_family

EXPERIMENT_ID = "fig9"
TITLE = "[Erase] J_FN vs V_GS for five X_TO values (GCR = 60%, VGS < 0)"

TUNNEL_OXIDES_NM = (4.0, 5.0, 6.0, 7.0, 8.0)
VGS_RANGE_V = (-10.0, -17.0)
GCR = 0.6


def run(
    n_points: int = 36, settings: "SweepSettings | None" = None
) -> ExperimentResult:
    """Reproduce Figure 9."""
    vgs = np.linspace(*VGS_RANGE_V, n_points)
    series = oxide_family(vgs, TUNNEL_OXIDES_NM, GCR, settings)

    checks = [
        ShapeCheck(
            claim=f"|J_FN| rises toward more negative V_GS at {s.label}",
            passed=bool(np.all(np.diff(s.y) > 0.0)),
            detail=f"J spans {s.y[0]:.2e} -> {s.y[-1]:.2e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="thinner tunnel oxide gives higher erase current",
            at_index=-1,
        )
    )
    by_label = {s.label: s for s in series}
    mid = n_points // 2
    jump_thick = float(
        np.log10(by_label["XTO=7nm"].y[mid] / by_label["XTO=8nm"].y[mid])
    )
    jump_thin = float(
        np.log10(by_label["XTO=4nm"].y[mid] / by_label["XTO=5nm"].y[mid])
    )
    checks.append(
        ShapeCheck(
            claim="sub-7 nm oxides show the same sharp current increase "
            "as in programming",
            passed=jump_thin > jump_thick > 0.0,
            detail=f"8->7 nm: 10^{jump_thick:.2f}; 5->4 nm: 10^{jump_thin:.2f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V] (negative)",
        y_label="|J_FN| [A/m^2]",
        series=series,
        parameters={
            "tunnel_oxides_nm": TUNNEL_OXIDES_NM,
            "vgs_range_v": VGS_RANGE_V,
            "gcr": GCR,
            "n_points": n_points,
        },
        checks=tuple(checks),
    )
