"""Figure 9: erase J_FN vs V_GS for five tunnel-oxide thicknesses.

Paper caption: "[Erase] FN tunneling current density (JFN) versus
Control gate voltage (VGS) for five different tunnel oxide thickness
(XTO). GCR = 60%, VGS < 0 V." Claims: |J_FN| grows as V_GS goes more
negative for a given X_TO, and increases significantly when X_TO is
below 7 nm, "similar to the programming operation".

Overrides (session API): ``tunnel_oxides_nm``, ``vgs_range_v``, ``gcr``,
``temperature_k`` and ``n_points``; defaults reproduce the paper figure
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from .base import ExperimentResult, ShapeCheck, series_ordering_check
from .fig7 import scaling_jump_check
from .sweeps import SweepSettings, oxide_family

EXPERIMENT_ID = "fig9"
TITLE = "[Erase] J_FN vs V_GS for five X_TO values (GCR = 60%, VGS < 0)"

TUNNEL_OXIDES_NM = (4.0, 5.0, 6.0, 7.0, 8.0)
VGS_RANGE_V = (-10.0, -17.0)
GCR = 0.6


def run(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 36,
    tunnel_oxides_nm: "tuple[float, ...]" = TUNNEL_OXIDES_NM,
    vgs_range_v: "tuple[float, float]" = VGS_RANGE_V,
    gcr: float = GCR,
    temperature_k: float = 0.0,
    settings: "SweepSettings | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (optionally reparameterized)."""
    ctx = ensure_context(ctx)
    settings = settings or ctx.sweep_settings(temperature_k=temperature_k)
    vgs = np.linspace(*vgs_range_v, n_points)
    series = oxide_family(vgs, tuple(tunnel_oxides_nm), gcr, settings)

    checks = [
        ShapeCheck(
            claim=f"|J_FN| rises toward more negative V_GS at {s.label}",
            passed=bool(np.all(np.diff(s.y) > 0.0)),
            detail=f"J spans {s.y[0]:.2e} -> {s.y[-1]:.2e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="thinner tunnel oxide gives higher erase current",
            at_index=-1,
        )
    )
    checks.append(
        scaling_jump_check(
            series,
            mid=n_points // 2,
            claim="sub-7 nm oxides show the same sharp current increase "
            "as in programming",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V] (negative)",
        y_label="|J_FN| [A/m^2]",
        series=series,
        parameters={
            "tunnel_oxides_nm": tuple(tunnel_oxides_nm),
            "vgs_range_v": vgs_range_v,
            "gcr": gcr,
            "n_points": n_points,
            "temperature_k": settings.temperature_k,
        },
        checks=tuple(checks),
    )
