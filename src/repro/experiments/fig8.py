"""Figure 8: erase J_FN vs V_GS for four gate coupling ratios.

Paper caption: "[Erasing] FN tunneling current density (JFN) versus
Control gate voltage (VGS) for four different GCR (%). XTO = 5,
VGS < 0 V." Claims: J_FN increases as V_GS becomes more negative;
higher GCR gives higher J_FN (larger coupling raises the electron
depletion rate from the floating gate to the MLGNR channel).
"""

from __future__ import annotations

import numpy as np

from .base import ExperimentResult, ShapeCheck, series_ordering_check
from .sweeps import SweepSettings, gcr_family

EXPERIMENT_ID = "fig8"
TITLE = "[Erase] J_FN vs V_GS for four GCR values (X_TO = 5 nm, VGS < 0)"

GCRS = (0.4, 0.5, 0.6, 0.7)
VGS_RANGE_V = (-8.0, -17.0)
TUNNEL_OXIDE_NM = 5.0


def run(
    n_points: int = 46, settings: "SweepSettings | None" = None
) -> ExperimentResult:
    """Reproduce Figure 8 (x axis runs from -8 V to -17 V)."""
    vgs = np.linspace(*VGS_RANGE_V, n_points)
    series = gcr_family(vgs, GCRS, TUNNEL_OXIDE_NM, settings)

    checks = [
        ShapeCheck(
            claim=f"|J_FN| rises as V_GS goes more negative at {s.label}",
            passed=bool(np.all(np.diff(s.y) > 0.0)),
            detail=f"J({vgs[0]:.0f}V) = {s.y[0]:.3e}, "
            f"J({vgs[-1]:.0f}V) = {s.y[-1]:.3e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="higher GCR raises the erase (depletion) current",
            at_index=-1,
        )
    )
    # Erase symmetry with programming: |J(-V)| == |J(+V)| for Q = 0.
    from .sweeps import fn_density_vs_gate_voltage

    j_erase = fn_density_vs_gate_voltage(
        np.array([-15.0]), 0.6, TUNNEL_OXIDE_NM, settings
    )[0]
    j_prog = fn_density_vs_gate_voltage(
        np.array([15.0]), 0.6, TUNNEL_OXIDE_NM, settings
    )[0]
    checks.append(
        ShapeCheck(
            claim="erase magnitude mirrors programming at +/-V_GS (Q=0)",
            passed=abs(j_erase / j_prog - 1.0) < 1e-9,
            detail=f"|J(-15V)|/|J(+15V)| = {j_erase / j_prog:.6f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V] (negative)",
        y_label="|J_FN| [A/m^2]",
        series=series,
        parameters={
            "gcrs": GCRS,
            "vgs_range_v": VGS_RANGE_V,
            "xto_nm": TUNNEL_OXIDE_NM,
            "n_points": n_points,
        },
        checks=tuple(checks),
    )
