"""Figure 8: erase J_FN vs V_GS for four gate coupling ratios.

Paper caption: "[Erasing] FN tunneling current density (JFN) versus
Control gate voltage (VGS) for four different GCR (%). XTO = 5,
VGS < 0 V." Claims: J_FN increases as V_GS becomes more negative;
higher GCR gives higher J_FN (larger coupling raises the electron
depletion rate from the floating gate to the MLGNR channel).

Overrides (session API): ``gcrs``, ``vgs_range_v``, ``tunnel_oxide_nm``,
``temperature_k`` and ``n_points``; defaults reproduce the paper figure
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from .base import ExperimentResult, ShapeCheck, series_ordering_check
from .sweeps import SweepSettings, fn_density_vs_gate_voltage, gcr_family

EXPERIMENT_ID = "fig8"
TITLE = "[Erase] J_FN vs V_GS for four GCR values (X_TO = 5 nm, VGS < 0)"

GCRS = (0.4, 0.5, 0.6, 0.7)
VGS_RANGE_V = (-8.0, -17.0)
TUNNEL_OXIDE_NM = 5.0


def run(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 46,
    gcrs: "tuple[float, ...]" = GCRS,
    vgs_range_v: "tuple[float, float]" = VGS_RANGE_V,
    tunnel_oxide_nm: float = TUNNEL_OXIDE_NM,
    temperature_k: float = 0.0,
    settings: "SweepSettings | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (x axis runs from -8 V to -17 V by default)."""
    ctx = ensure_context(ctx)
    gcrs = tuple(sorted(float(g) for g in gcrs))
    settings = settings or ctx.sweep_settings(temperature_k=temperature_k)
    vgs = np.linspace(*vgs_range_v, n_points)
    series = gcr_family(vgs, gcrs, tunnel_oxide_nm, settings)

    checks = [
        ShapeCheck(
            claim=f"|J_FN| rises as V_GS goes more negative at {s.label}",
            passed=bool(np.all(np.diff(s.y) > 0.0)),
            detail=f"J({vgs[0]:.0f}V) = {s.y[0]:.3e}, "
            f"J({vgs[-1]:.0f}V) = {s.y[-1]:.3e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="higher GCR raises the erase (depletion) current",
            at_index=-1,
        )
    )
    # Erase symmetry with programming: |J(-V)| == |J(+V)| for Q = 0.
    probe_v = abs(float(vgs[-1]))
    probe_gcr = gcrs[len(gcrs) // 2]
    j_erase = fn_density_vs_gate_voltage(
        np.array([-probe_v]), probe_gcr, tunnel_oxide_nm, settings
    )[0]
    j_prog = fn_density_vs_gate_voltage(
        np.array([probe_v]), probe_gcr, tunnel_oxide_nm, settings
    )[0]
    checks.append(
        ShapeCheck(
            claim="erase magnitude mirrors programming at +/-V_GS (Q=0)",
            passed=abs(j_erase / j_prog - 1.0) < 1e-9,
            detail=f"|J(-{probe_v:g}V)|/|J(+{probe_v:g}V)| = "
            f"{j_erase / j_prog:.6f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V] (negative)",
        y_label="|J_FN| [A/m^2]",
        series=series,
        parameters={
            "gcrs": gcrs,
            "vgs_range_v": vgs_range_v,
            "xto_nm": tunnel_oxide_nm,
            "n_points": n_points,
            "temperature_k": settings.temperature_k,
        },
        checks=tuple(checks),
    )
