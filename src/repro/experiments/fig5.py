"""Figure 5: the full programming transient and its saturation point.

Paper claim: Jin decays and Jout grows as negative charge accumulates;
at t = t_sat they meet, and the charge accumulated by then is the
maximum the floating gate can store -- beyond it the cell stops being
programmable (the Jin < Jout region is unusable).

The paper draws the meeting as a crossing; physically the two densities
converge asymptotically, so t_sat is defined operationally as the time
to reach 99% of the equilibrium charge (see DESIGN.md).

Overrides (session API): ``vgs_v``, ``gcr``, ``tunnel_oxide_nm``,
``duration_s`` and ``n_samples``.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..device.transient import simulate_transient
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "fig5"
TITLE = "Programming transient to saturation (Jin -> Jout, t_sat)"


def run(
    ctx: "SimulationContext | None" = None,
    *,
    duration_s: float = 1e-2,
    n_samples: int = 300,
    vgs_v: float = 15.0,
    gcr: "float | None" = None,
    tunnel_oxide_nm: "float | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 5: transient until Jin meets Jout."""
    ctx = ensure_context(ctx)
    device = ctx.device(tunnel_oxide_nm=tunnel_oxide_nm, gcr=gcr)
    bias = ctx.bias("program", vgs_v=vgs_v)
    result = simulate_transient(
        device,
        bias,
        duration_s=duration_s,
        n_samples=n_samples,
    )
    jin = np.abs(result.jin_a_m2)
    jout = np.abs(result.jout_a_m2)
    series = (
        PlotSeries(label="Jin (tunnel oxide)", x=result.t_s, y=jin),
        PlotSeries(label="Jout (control oxide)", x=result.t_s, y=jout),
    )

    # Area-weighted balance at the end of the pulse: Jin*A = Jout*A_cg.
    mult = device.geometry.control_gate_area_multiplier
    final_ratio = float(jin[-1] / (jout[-1] * mult))
    q_eq = result.q_equilibrium_c

    checks = (
        ShapeCheck(
            claim="Jin decreases monotonically toward saturation",
            passed=bool(np.all(np.diff(jin) <= jin[:-1] * 1e-9 + 1e-30)),
            detail=f"Jin: {jin[0]:.3e} -> {jin[-1]:.3e} A/m^2",
        ),
        ShapeCheck(
            claim="Jout increases monotonically toward saturation",
            passed=bool(np.all(np.diff(jout) >= -(jout[:-1] * 1e-9 + 1e-30))),
            detail=f"Jout: {jout[0]:.3e} -> {jout[-1]:.3e} A/m^2",
        ),
        ShapeCheck(
            claim="Jin and Jout meet (charge flux balance) at t_sat",
            passed=result.t_sat_s is not None and 0.5 < final_ratio < 2.0,
            detail=(
                f"t_sat = {result.t_sat_s!r} s, "
                f"flux ratio at end = {final_ratio:.3f}"
            ),
        ),
        ShapeCheck(
            claim="accumulated charge saturates at the maximum storable value",
            passed=result.saturation_fraction() > 0.98,
            detail=(
                f"Q(final)/Q_eq = {result.saturation_fraction():.4f}, "
                f"Q_eq = {q_eq:.3e} C"
            ),
        ),
        ShapeCheck(
            claim="stored charge is negative (electron accumulation, logic '0')",
            passed=result.final_charge_c < 0.0,
            detail=f"Q = {result.final_charge_c:.3e} C "
            f"({result.stored_electrons:.0f} electrons)",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="time [s]",
        y_label="|J| [A/m^2]",
        series=series,
        parameters={
            "vgs_v": vgs_v,
            "gcr": device.gate_coupling_ratio,
            "duration_s": duration_s,
            "t_sat_s": result.t_sat_s,
            "q_equilibrium_c": q_eq,
        },
        checks=checks,
    )
