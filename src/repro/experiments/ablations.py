"""Ablation experiments on the modelling choices (DESIGN.md abl-*).

The paper adopts the closed-form FN expression with ideal (metallic)
electrodes at zero temperature. Each ablation relaxes one of those
choices and quantifies the effect:

* ``abl-wkb``  -- FN closed form vs numerical WKB vs exact transfer
  matrix for the same triangular barrier.
* ``abl-cq``   -- gate coupling ratio with the MLGNR floating gate's
  finite quantum capacitance, vs layer count.
* ``abl-temp`` -- finite-temperature FN correction over 200-400 K.

All three accept the session-API protocol (``run(ctx, **params)``) with
barrier, geometry and sweep-range overrides.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..electrostatics.capacitance import capacitance_per_area
from ..materials.graphene import multilayer_quantum_capacitance_batch
from ..materials.oxides import SIO2
from ..reporting.ascii_plot import PlotSeries
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.fowler_nordheim import FowlerNordheimModel
from ..tunneling.temperature import temperature_correction_factor
from ..tunneling.tsu_esaki import TsuEsakiModel
from ..units import nm_to_m
from .base import ExperimentResult, ShapeCheck


def run_model_comparison(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 10,
    barrier_height_ev: float = 3.61,
    tunnel_oxide_nm: float = 5.0,
    mass_ratio: float = 0.42,
    voltage_range_v: "tuple[float, float]" = (6.0, 10.5),
) -> ExperimentResult:
    """abl-wkb: the FN closed form against the numerical references."""
    ctx = ensure_context(ctx)
    barrier = TunnelBarrier(
        barrier_height_ev=barrier_height_ev,
        thickness_m=nm_to_m(tunnel_oxide_nm),
        mass_ratio=mass_ratio,
    )
    fn = FowlerNordheimModel(barrier)
    te_tm = TsuEsakiModel(barrier, method="transfer_matrix")
    te_wkb = TsuEsakiModel(barrier, method="wkb")

    voltages = np.linspace(*voltage_range_v, n_points)
    j_fn = np.array(
        [fn.current_density_from_voltage(float(v)) for v in voltages]
    )
    # One vectorized (bias x energy) integral per method: the batched
    # solver backend replaces the former per-voltage-per-energy loops.
    j_tm = te_tm.current_density_batch(voltages)
    j_wkb = te_wkb.current_density_batch(voltages)
    series = (
        PlotSeries(label="FN closed form (paper)", x=voltages, y=j_fn),
        PlotSeries(label="Tsu-Esaki + transfer matrix", x=voltages, y=j_tm),
        PlotSeries(label="Tsu-Esaki + WKB", x=voltages, y=j_wkb),
    )
    worst_tm = float(np.max(np.abs(np.log10(j_fn / j_tm))))
    worst_wkb = float(np.max(np.abs(np.log10(j_fn / j_wkb))))
    checks = (
        ShapeCheck(
            claim="FN closed form tracks the exact transfer-matrix current "
            "within one decade across the programming window",
            passed=worst_tm < 1.0,
            detail=f"max |log10(J_FN/J_TM)| = {worst_tm:.2f}",
        ),
        ShapeCheck(
            claim="WKB and FN agree closely (same barrier approximation)",
            passed=worst_wkb < 1.0,
            detail=f"max |log10(J_FN/J_WKB)| = {worst_wkb:.2f}",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-wkb",
        title="FN closed form vs WKB vs transfer matrix (5 nm SiO2)",
        x_label="V_ox [V]",
        y_label="J [A/m^2]",
        series=series,
        parameters={
            "barrier_ev": barrier_height_ev,
            "xto_nm": tunnel_oxide_nm,
            "mass_ratio": mass_ratio,
        },
        checks=checks,
    )


def run_quantum_capacitance(
    ctx: "SimulationContext | None" = None,
    *,
    max_layers: int = 10,
    geometric_gcr: float = 0.6,
    channel_potential_v: float = 0.2,
) -> ExperimentResult:
    """abl-cq: GCR degradation from the MLGNR quantum capacitance."""
    ctx = ensure_context(ctx)
    c_co = capacitance_per_area(
        SIO2.relative_permittivity, nm_to_m(8.0)
    )
    c_to = capacitance_per_area(SIO2.relative_permittivity, nm_to_m(5.0))
    # Geometric network normalised to the requested GCR (paper reference
    # point 0.6): scale C_FC so that CFC/(CFC + rest) matches with
    # rest = C_TO * 1.25.
    rest = c_to * 1.25
    c_fc = geometric_gcr * rest / (1.0 - geometric_gcr)

    layers = np.arange(1, max_layers + 1)
    # One batched quantum-capacitance evaluation for the whole layer
    # sweep; the FG's finite DOS appears in series with *every*
    # geometric capacitance touching the floating gate.
    cq = multilayer_quantum_capacitance_batch(
        layers, channel_potential_v=channel_potential_v
    )
    c_fc_eff = c_fc * cq / (c_fc + cq)
    rest_eff = rest * cq / (rest + cq)
    effective_gcr = c_fc_eff / (c_fc_eff + rest_eff)

    series = (
        PlotSeries(
            label="effective GCR with C_Q", x=layers.astype(float), y=effective_gcr
        ),
        PlotSeries(
            label="geometric GCR (paper)",
            x=layers.astype(float),
            y=np.full(layers.size, geometric_gcr),
        ),
    )
    checks = (
        ShapeCheck(
            claim="quantum capacitance lowers the effective coupling for "
            "few-layer floating gates",
            passed=bool(effective_gcr[0] < geometric_gcr),
            detail=f"1 layer: GCR_eff = {effective_gcr[0]:.3f} vs "
            f"{geometric_gcr:.3f}",
        ),
        ShapeCheck(
            claim="multilayer stacks recover near-metallic coupling "
            "(justifying the paper's MLGNR choice)",
            passed=bool(
                abs(effective_gcr[-1] - geometric_gcr)
                < abs(effective_gcr[0] - geometric_gcr) * 0.8
            ),
            detail=(
                f"{max_layers} layers: GCR_eff = {effective_gcr[-1]:.3f} "
                f"(1 layer: {effective_gcr[0]:.3f})"
            ),
        ),
    )
    return ExperimentResult(
        experiment_id="abl-cq",
        title="Effective GCR vs MLGNR layer count (quantum capacitance)",
        x_label="floating-gate layers",
        y_label="GCR",
        series=series,
        parameters={"geometric_gcr": geometric_gcr, "max_layers": max_layers},
        checks=checks,
        log_y=False,
    )


def run_temperature(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 9,
    temperature_range_k: "tuple[float, float]" = (200.0, 400.0),
    barrier_height_ev: float = 3.61,
    tunnel_oxide_nm: float = 5.0,
    mass_ratio: float = 0.42,
) -> ExperimentResult:
    """abl-temp: finite-temperature enhancement of the FN current."""
    ctx = ensure_context(ctx)
    barrier = TunnelBarrier(
        barrier_height_ev=barrier_height_ev,
        thickness_m=nm_to_m(tunnel_oxide_nm),
        mass_ratio=mass_ratio,
    )
    # 9 V across the tunnel oxide (the reference programming field).
    field = 9.0 / nm_to_m(tunnel_oxide_nm)
    temperatures = np.linspace(*temperature_range_k, n_points)
    factors = np.array(
        [
            temperature_correction_factor(barrier, field, float(t))
            for t in temperatures
        ]
    )
    series = (
        PlotSeries(
            label=f"J(T)/J(0) at E = {field:.2g} V/m",
            x=temperatures,
            y=factors,
        ),
    )
    checks = (
        ShapeCheck(
            claim="FN current is only weakly temperature dependent "
            "(tunneling is 'a pure electrical phenomenon')",
            passed=bool(factors[-1] < 1.6),
            detail=f"J({temperatures[-1]:g}K)/J(0K) = {factors[-1]:.3f}",
        ),
        ShapeCheck(
            claim="the correction grows monotonically with temperature",
            passed=bool(np.all(np.diff(factors) > 0.0)),
            detail=f"{factors[0]:.3f} at {temperatures[0]:g} K -> "
            f"{factors[-1]:.3f} at {temperatures[-1]:g} K",
        ),
    )
    return ExperimentResult(
        experiment_id="abl-temp",
        title="Finite-temperature correction to J_FN (200-400 K)",
        x_label="temperature [K]",
        y_label="J(T)/J(0)",
        series=series,
        parameters={"field_v_per_m": field, "barrier_ev": barrier_height_ev},
        checks=checks,
        log_y=False,
    )
