"""Memory-array experiments (mem-*): the system layer, measured.

The paper's cell is only useful inside an array, and the array-state
backend makes whole-array experiments cheap enough to pin as goldens.
These experiments run the matrix-backed NAND stack end to end through
the engine entry points:

* ``mem-array``   -- SLC program/read of a page batch through
  :func:`~repro.engine.batch.array_program_sweep`; threshold
  populations and read-back fidelity.
* ``mem-mlc``     -- the four-level staircase over a page batch through
  :func:`~repro.engine.batch.mlc_program_sweep`; per-level placement.
* ``mem-ftl``     -- a Zipf host workload through the page-mapped FTL
  over a :class:`~repro.memory.array.VectorMemoryArray`; write
  amplification and wear spread.
* ``mem-disturb`` -- read-disturb accumulation through the batched
  block kernel plus an RTN trajectory ensemble on derived independent
  streams.

All randomness comes from explicit seed parameters (never the session
stream counter), so the golden snapshots are insensitive to the order
experiments run in a shared session.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..engine.batch import array_program_sweep, mlc_program_sweep
from ..memory.array import ArrayConfig, build_vector_array
from ..memory.disturb import (
    READ_DISTURB_SCALE,
    DisturbModel,
    apply_read_disturb_batch,
)
from ..memory.ftl import PageMappedFtl
from ..memory.mlc import MlcLevels
from ..memory.rtn import RtnTrap
from ..memory.workload import WorkloadSpec, build_workload
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck


def _percentiles(values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Sorted values against their percentile rank (an empirical CDF)."""
    flat = np.sort(np.asarray(values, dtype=float).reshape(-1))
    ranks = 100.0 * (np.arange(flat.size) + 0.5) / flat.size
    return ranks, flat


def run_array(
    ctx: "SimulationContext | None" = None,
    *,
    n_pages: int = 8,
    bitlines: int = 128,
    pattern_seed: int = 101,
    array_seed: int = 11,
) -> ExperimentResult:
    """mem-array: SLC threshold populations of a programmed page batch."""
    ctx = ensure_context(ctx)
    kernel = ctx.session.cell_kernel()
    patterns = (
        np.random.default_rng(pattern_seed)
        .integers(0, 2, size=(n_pages, bitlines))
        .astype(np.uint8)
    )
    sweep = array_program_sweep(kernel, patterns, seed=array_seed)
    programmed = sweep.thresholds_v[patterns == 0]
    erased = sweep.thresholds_v[patterns == 1]
    reference_v = kernel.erased_vt_v + 0.5 * kernel.window_v
    verify_v = kernel.erased_vt_v + 0.67 * kernel.window_v
    e_x, e_y = _percentiles(erased)
    p_x, p_y = _percentiles(programmed)
    series = (
        PlotSeries(label="erased cells", x=e_x, y=e_y),
        PlotSeries(label="programmed cells", x=p_x, y=p_y),
    )
    checks = (
        ShapeCheck(
            claim="every page reads back its written pattern bit-exactly",
            passed=bool((sweep.read_bits == patterns).all()),
            detail=f"{n_pages} pages x {bitlines} bits compared",
        ),
        ShapeCheck(
            claim="the two threshold populations are separated by the "
            "read reference (no sensing overlap)",
            passed=bool(
                erased.max() < reference_v < programmed.min()
            ),
            detail=(
                f"erased <= {erased.max():.3f} V < ref {reference_v:.3f} V"
                f" < programmed >= {programmed.min():.3f} V"
            ),
        ),
        ShapeCheck(
            claim="ISPP places every programmed cell at or above the "
            "verify level",
            passed=bool((programmed >= verify_v).all()),
            detail=f"verify at {verify_v:.3f} V",
        ),
    )
    return ExperimentResult(
        experiment_id="mem-array",
        title="SLC array threshold populations after a page-batch program",
        x_label="percentile",
        y_label="threshold [V]",
        series=series,
        parameters={
            "n_pages": n_pages,
            "bitlines": bitlines,
            "mean_pulses_per_page": float(sweep.pulses_per_page.mean()),
        },
        checks=checks,
        log_y=False,
    )


def run_mlc(
    ctx: "SimulationContext | None" = None,
    *,
    n_pages: int = 6,
    cells_per_page: int = 96,
    target_seed: int = 103,
    program_seed: int = 31,
) -> ExperimentResult:
    """mem-mlc: per-level threshold placement of the batch MLC staircase."""
    ctx = ensure_context(ctx)
    kernel = ctx.session.cell_kernel()
    levels = MlcLevels.from_kernel(kernel)
    targets = np.random.default_rng(target_seed).integers(
        0, 4, size=(n_pages, cells_per_page)
    )
    sweep = mlc_program_sweep(kernel, targets, seed=program_seed)
    read_levels = levels.level_of_batch(sweep.thresholds_v)
    series = tuple(
        PlotSeries(
            label=f"L{level} cells",
            x=_percentiles(sweep.thresholds_v[targets == level])[0],
            y=_percentiles(sweep.thresholds_v[targets == level])[1],
        )
        for level in range(4)
    )
    level_means = np.array(
        [sweep.thresholds_v[targets == level].mean() for level in range(4)]
    )
    placed = all(
        bool(
            (
                sweep.thresholds_v[targets == level]
                >= levels.targets_v[level]
            ).all()
        )
        for level in (1, 2, 3)
    )
    checks = (
        ShapeCheck(
            claim="every cell reads back its target level through the "
            "three references",
            passed=bool((read_levels == targets).all()),
            detail=f"{targets.size} cells classified",
        ),
        ShapeCheck(
            claim="level populations are ordered L0 < L1 < L2 < L3",
            passed=bool((np.diff(level_means) > 0.0).all()),
            detail=f"means {np.array2string(level_means, precision=2)} V",
        ),
        ShapeCheck(
            claim="the staircase verifies every non-erased cell at or "
            "above its level target",
            passed=placed,
            detail="levels 1-3 checked against their verify thresholds",
        ),
    )
    return ExperimentResult(
        experiment_id="mem-mlc",
        title="MLC level placement of the batched staircase",
        x_label="percentile within level",
        y_label="threshold [V]",
        series=series,
        parameters={
            "n_pages": n_pages,
            "cells_per_page": cells_per_page,
            "mean_pulses_per_page": float(sweep.pulses_per_page.mean()),
        },
        checks=checks,
        log_y=False,
    )


def run_ftl(
    ctx: "SimulationContext | None" = None,
    *,
    n_blocks: int = 6,
    wordlines_per_block: int = 8,
    bitlines: int = 32,
    n_requests: int = 300,
    workload_seed: int = 107,
    array_seed: int = 5,
    sample_every: int = 10,
) -> ExperimentResult:
    """mem-ftl: write amplification of a Zipf workload on the array backend."""
    ctx = ensure_context(ctx)
    kernel = ctx.session.cell_kernel()
    config = ArrayConfig(
        n_blocks=n_blocks,
        wordlines_per_block=wordlines_per_block,
        bitlines=bitlines,
    )
    ftl = PageMappedFtl(
        build_vector_array(kernel, config, seed=array_seed),
        overprovision_blocks=1,
    )
    spec = WorkloadSpec(
        kind="zipf",
        n_requests=n_requests,
        capacity_pages=ftl.logical_capacity_pages,
        page_bits=bitlines,
        seed=workload_seed,
    )
    expected: "dict[int, np.ndarray]" = {}
    sample_x, sample_wa, sample_spread = [], [], []
    for i, request in enumerate(build_workload(spec), start=1):
        ftl.write(request.logical_page, request.bits)
        expected[request.logical_page] = request.bits
        if i % sample_every == 0:
            sample_x.append(float(i))
            sample_wa.append(ftl.stats.write_amplification)
            sample_spread.append(ftl.wear_spread())
    readback_ok = all(
        bool((ftl.read(lpage) == bits).all())
        for lpage, bits in sorted(expected.items())
    )
    series = (
        PlotSeries(
            label="write amplification",
            x=np.array(sample_x),
            y=np.array(sample_wa),
        ),
        PlotSeries(
            label="wear spread [erases]",
            x=np.array(sample_x),
            y=np.array(sample_spread),
        ),
    )
    checks = (
        ShapeCheck(
            claim="every live logical page reads back its last-written "
            "payload through the matrix backend",
            passed=readback_ok,
            detail=f"{len(expected)} logical pages verified",
        ),
        ShapeCheck(
            claim="sustained random overwrites force garbage collection "
            "(write amplification above 1)",
            passed=ftl.stats.gc_invocations > 0
            and ftl.stats.write_amplification > 1.0,
            detail=(
                f"WA {ftl.stats.write_amplification:.3f} after "
                f"{ftl.stats.gc_invocations} GC passes"
            ),
        ),
        ShapeCheck(
            claim="wear-aware allocation keeps the block-erase spread "
            "tight (within 2 erases)",
            passed=ftl.wear_spread() <= 2.0,
            detail=f"spread {ftl.wear_spread():.0f} erases",
        ),
    )
    return ExperimentResult(
        experiment_id="mem-ftl",
        title="FTL write amplification under a Zipf workload",
        x_label="host writes",
        y_label="ratio / erase count",
        series=series,
        parameters={
            "n_requests": n_requests,
            "logical_capacity_pages": ftl.logical_capacity_pages,
            "write_amplification": ftl.stats.write_amplification,
            "gc_invocations": ftl.stats.gc_invocations,
            "block_erases": ftl.stats.block_erases,
        },
        checks=checks,
        log_y=False,
    )


def run_disturb(
    ctx: "SimulationContext | None" = None,
    *,
    wordlines: int = 16,
    bitlines: int = 64,
    n_reads: int = 200,
    rtn_trajectories: int = 32,
    rtn_steps: int = 400,
    rtn_seed: int = 109,
) -> ExperimentResult:
    """mem-disturb: read-disturb drift and an RTN occupancy ensemble."""
    ctx = ensure_context(ctx)
    device = ctx.device()
    disturb = DisturbModel(device)
    drift_v = disturb.drift_per_event_v()
    kernel = ctx.session.cell_kernel()
    vt = np.full((wordlines, bitlines), kernel.erased_vt_v)
    victim_shift = np.empty(n_reads)
    for read in range(n_reads):
        apply_read_disturb_batch(vt, 0, drift_v)
        victim_shift[read] = vt[1:].mean() - kernel.erased_vt_v
    trap = RtnTrap.single_electron_for_device(device)
    dt_s = trap.capture_time_s / 10.0
    duration_s = rtn_steps * dt_s
    ensemble = trap.sample_trajectory_batch(
        duration_s, dt_s, rtn_trajectories, seed=rtn_seed
    )
    occupancy = (ensemble > 0.0).mean(axis=0)
    times = np.arange(rtn_steps) * dt_s
    tail_occupancy = float(occupancy[rtn_steps // 2 :].mean())
    series = (
        PlotSeries(
            label="victim mean Vt shift [V]",
            x=np.arange(1, n_reads + 1, dtype=float),
            y=victim_shift,
        ),
        PlotSeries(
            label="RTN ensemble occupancy",
            x=times / dt_s,
            y=occupancy,
        ),
    )
    per_read = drift_v * READ_DISTURB_SCALE
    checks = (
        ShapeCheck(
            claim="read disturb accumulates linearly: N reads shift "
            "every victim cell by exactly N per-event drifts",
            passed=bool(
                np.allclose(
                    victim_shift,
                    per_read * np.arange(1, n_reads + 1),
                    rtol=1e-9,
                )
            ),
            detail=f"per-read drift {per_read:.3e} V",
        ),
        ShapeCheck(
            claim="the aggressor word line itself is not disturbed by "
            "its own reads",
            passed=bool(
                np.allclose(vt[0], kernel.erased_vt_v, rtol=0.0, atol=0.0)
            ),
            detail="word line 0 unchanged after all reads",
        ),
        ShapeCheck(
            claim="the RTN ensemble settles to the detailed-balance "
            "occupancy tau_e / (tau_c + tau_e)",
            passed=bool(
                abs(tail_occupancy - trap.occupancy) < 0.15
            ),
            detail=(
                f"tail occupancy {tail_occupancy:.3f} vs stationary "
                f"{trap.occupancy:.3f}"
            ),
        ),
    )
    return ExperimentResult(
        experiment_id="mem-disturb",
        title="Read-disturb accumulation and RTN occupancy ensemble",
        x_label="reads / RTN steps",
        y_label="Vt shift [V] / occupancy",
        series=series,
        parameters={
            "n_reads": n_reads,
            "drift_per_event_v": drift_v,
            "rtn_trajectories": rtn_trajectories,
            "rtn_amplitude_v": trap.amplitude_v,
        },
        checks=checks,
        log_y=False,
    )
