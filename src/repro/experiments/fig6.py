"""Figure 6: programming J_FN vs V_GS for four gate coupling ratios.

Paper caption: "[Program] Fowler Nordheim (FN) tunneling current density
(JFN) versus Control gate voltage (VGS) for four different GCR.
VGS = 8-17 V." Generated from equations (3) and (7). Claims: J_FN
increases with both the control-gate voltage and the GCR.

Overrides (session API): ``gcrs``, ``vgs_range_v``, ``tunnel_oxide_nm``,
``temperature_k`` and ``n_points`` reparameterize the sweep; defaults
reproduce the paper figure bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from .base import (
    ExperimentResult,
    ShapeCheck,
    monotonic_increasing,
    series_ordering_check,
)
from .sweeps import SweepSettings, gcr_family

EXPERIMENT_ID = "fig6"
TITLE = "[Program] J_FN vs V_GS for four GCR values (VGS = 8-17 V)"

GCRS = (0.4, 0.5, 0.6, 0.7)
VGS_RANGE_V = (8.0, 17.0)
TUNNEL_OXIDE_NM = 5.0


def run(
    ctx: "SimulationContext | None" = None,
    *,
    n_points: int = 46,
    gcrs: "tuple[float, ...]" = GCRS,
    vgs_range_v: "tuple[float, float]" = VGS_RANGE_V,
    tunnel_oxide_nm: float = TUNNEL_OXIDE_NM,
    temperature_k: float = 0.0,
    settings: "SweepSettings | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 6 (optionally reparameterized)."""
    ctx = ensure_context(ctx)
    gcrs = tuple(sorted(float(g) for g in gcrs))
    settings = settings or ctx.sweep_settings(temperature_k=temperature_k)
    vgs = np.linspace(*vgs_range_v, n_points)
    series = gcr_family(vgs, gcrs, tunnel_oxide_nm, settings)

    checks = [
        ShapeCheck(
            claim=f"J_FN rises with V_GS at {s.label}",
            passed=monotonic_increasing(s.y),
            detail=f"J({vgs[0]:.0f}V) = {s.y[0]:.3e}, "
            f"J({vgs[-1]:.0f}V) = {s.y[-1]:.3e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="higher GCR gives higher J_FN at fixed V_GS",
            at_index=-1,
        )
    )
    # The separation at low V_GS should span decades (exponential regime).
    low_spread = float(np.log10(series[-1].y[0] / series[0].y[0]))
    checks.append(
        ShapeCheck(
            claim="GCR families separate by orders of magnitude at low V_GS",
            passed=low_spread > 3.0,
            detail=f"10^{low_spread:.1f} between {series[0].label} and "
            f"{series[-1].label} at {vgs[0]:g} V",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V]",
        y_label="J_FN [A/m^2]",
        series=series,
        parameters={
            "gcrs": gcrs,
            "vgs_range_v": vgs_range_v,
            "xto_nm": tunnel_oxide_nm,
            "n_points": n_points,
            "temperature_k": settings.temperature_k,
        },
        checks=tuple(checks),
    )
