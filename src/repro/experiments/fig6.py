"""Figure 6: programming J_FN vs V_GS for four gate coupling ratios.

Paper caption: "[Program] Fowler Nordheim (FN) tunneling current density
(JFN) versus Control gate voltage (VGS) for four different GCR.
VGS = 8-17 V." Generated from equations (3) and (7). Claims: J_FN
increases with both the control-gate voltage and the GCR.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ExperimentResult,
    ShapeCheck,
    monotonic_increasing,
    series_ordering_check,
)
from .sweeps import SweepSettings, gcr_family

EXPERIMENT_ID = "fig6"
TITLE = "[Program] J_FN vs V_GS for four GCR values (VGS = 8-17 V)"

GCRS = (0.4, 0.5, 0.6, 0.7)
VGS_RANGE_V = (8.0, 17.0)
TUNNEL_OXIDE_NM = 5.0


def run(
    n_points: int = 46, settings: "SweepSettings | None" = None
) -> ExperimentResult:
    """Reproduce Figure 6."""
    vgs = np.linspace(*VGS_RANGE_V, n_points)
    series = gcr_family(vgs, GCRS, TUNNEL_OXIDE_NM, settings)

    checks = [
        ShapeCheck(
            claim=f"J_FN rises with V_GS at {s.label}",
            passed=monotonic_increasing(s.y),
            detail=f"J({vgs[0]:.0f}V) = {s.y[0]:.3e}, "
            f"J({vgs[-1]:.0f}V) = {s.y[-1]:.3e} A/m^2",
        )
        for s in series
    ]
    checks.append(
        series_ordering_check(
            series,
            claim="higher GCR gives higher J_FN at fixed V_GS",
            at_index=-1,
        )
    )
    # The separation at low V_GS should span decades (exponential regime).
    low_spread = float(np.log10(series[-1].y[0] / series[0].y[0]))
    checks.append(
        ShapeCheck(
            claim="GCR families separate by orders of magnitude at low V_GS",
            passed=low_spread > 3.0,
            detail=f"10^{low_spread:.1f} between GCR=40% and GCR=70% at 8 V",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="V_GS [V]",
        y_label="J_FN [A/m^2]",
        series=series,
        parameters={
            "gcrs": GCRS,
            "vgs_range_v": VGS_RANGE_V,
            "xto_nm": TUNNEL_OXIDE_NM,
            "n_points": n_points,
        },
        checks=tuple(checks),
    )
