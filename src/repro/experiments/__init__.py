"""Reproduction harness for every figure of the paper plus ablations.

``run_experiment("fig6")`` (etc.) regenerates a figure's series and
checks the paper's qualitative claims; the ``repro-experiments`` CLI
(see :mod:`repro.experiments.runner`) prints them all. Since the
:mod:`repro.api` redesign every experiment follows the
``run(ctx, **params)`` protocol -- ``run_experiment("fig6", ctx,
temperature_k=400.0)`` reparameterizes a figure -- while zero-argument
calls keep reproducing the paper's defaults; figure modules resolve
lazily through the registry.
"""

from .base import ExperimentResult, ShapeCheck
from .registry import (
    PAPER_FIGURES,
    available_experiments,
    get_experiment,
    resolve_experiment,
    run_all,
    run_experiment,
)
from .sweeps import (
    SweepSettings,
    fn_density_vs_gate_voltage,
    gcr_family,
    oxide_family,
)

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "SweepSettings",
    "fn_density_vs_gate_voltage",
    "gcr_family",
    "oxide_family",
    "PAPER_FIGURES",
    "available_experiments",
    "get_experiment",
    "resolve_experiment",
    "run_experiment",
    "run_all",
]
