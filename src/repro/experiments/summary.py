"""Device summary: the figure-of-merit table the paper implies.

SOCC papers usually close with a summary table; this one does not, so
``device-summary`` assembles the equivalent from the models: static
electrostatics, programming dynamics, memory window, retention and
endurance of the reference MLGNR-CNT cell, each cross-checked against
the behaviour the paper describes.

Overrides (session API): ``gcr`` / ``tunnel_oxide_nm`` summarise an
alternative cell; ``program_duration_s``, ``endurance_cycles``,
``endurance_pulse_s`` and ``endurance_samples`` tune how much work the
record spends (``endurance_samples`` sets how many cycle counts the
wear curve is sampled at, formerly a hard-coded 10).
"""

from __future__ import annotations

import numpy as np

from ..api.session import SimulationContext, ensure_context
from ..device.memory_window import saturated_memory_window
from ..device.retention import RetentionModel
from ..device.threshold import ThresholdModel
from ..device.transient import equilibrium_charge, simulate_transient
from ..reporting.ascii_plot import PlotSeries
from .base import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "device-summary"
TITLE = "Reference-cell figure-of-merit summary"


def run(
    ctx: "SimulationContext | None" = None,
    *,
    gcr: "float | None" = None,
    tunnel_oxide_nm: "float | None" = None,
    program_duration_s: float = 1e-2,
    endurance_cycles: int = 10_000,
    endurance_pulse_s: float = 1e-4,
    endurance_samples: int = 10,
) -> ExperimentResult:
    """Assemble the reference cell's figure-of-merit record."""
    ctx = ensure_context(ctx)
    device = ctx.device(tunnel_oxide_nm=tunnel_oxide_nm, gcr=gcr)
    program_bias = ctx.bias("program")
    threshold = ThresholdModel(device)

    program = simulate_transient(
        device, program_bias, duration_s=program_duration_s
    )
    q_program = equilibrium_charge(device, program_bias)
    window = saturated_memory_window(threshold)
    retention = RetentionModel(device).simulate(q_program, n_samples=60)
    endurance = ctx.endurance_model(
        pulse_duration_s=endurance_pulse_s,
        tunnel_oxide_nm=tunnel_oxide_nm,
        gcr=gcr,
    ).simulate(endurance_cycles, n_samples=endurance_samples)

    metrics = {
        "gcr": device.gate_coupling_ratio,
        "tunnel_barrier_ev": device.barrier_heights_ev()[0],
        "vfg_at_program_v": device.floating_gate_voltage(program_bias),
        "jin_t0_a_m2": device.tunneling_state(program_bias).jin_a_m2,
        "t_sat_s": program.t_sat_s,
        "stored_electrons": program.stored_electrons,
        "memory_window_v": window.window_v,
        "retention_10y_fraction": retention.charge_after_10y_fraction,
        "cycles_to_breakdown": endurance.cycles_to_breakdown,
    }

    # Series: the programming trajectory (charge vs time), which strings
    # the table's numbers together visually.
    series = (
        PlotSeries(
            label="|Q_FG(t)| during programming",
            x=program.t_s[1:],
            y=np.abs(program.charge_c[1:]),
        ),
    )

    target_gcr = 0.6 if gcr is None else gcr
    checks = (
        ShapeCheck(
            claim=f"the cell realises the paper's GCR = {target_gcr:g} "
            "operating point",
            passed=abs(metrics["gcr"] - target_gcr) < 1e-6,
            detail=f"GCR = {metrics['gcr']:.4f}",
        ),
        ShapeCheck(
            claim="programming completes in a flash-practical time "
            "(microseconds to milliseconds)",
            passed=metrics["t_sat_s"] is not None
            and 1e-6 < metrics["t_sat_s"] < 1e-1,
            detail=f"t_sat = {metrics['t_sat_s']:.2e} s",
        ),
        ShapeCheck(
            claim="the memory window supports robust single-bit sensing",
            passed=metrics["memory_window_v"] > 2.0,
            detail=f"window = {metrics['memory_window_v']:.2f} V",
        ),
        ShapeCheck(
            claim="the cell is nonvolatile (most charge kept for 10 years)",
            passed=metrics["retention_10y_fraction"] > 0.5,
            detail=f"{metrics['retention_10y_fraction'] * 100:.1f}% "
            "after 10 years",
        ),
        ShapeCheck(
            claim="endurance reaches the flash range (>= 1e4 cycles)",
            passed=metrics["cycles_to_breakdown"] >= 1e4,
            detail=f"{metrics['cycles_to_breakdown']:.2e} cycles",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="time [s]",
        y_label="|Q_FG| [C]",
        series=series,
        parameters=metrics,
        checks=checks,
    )
