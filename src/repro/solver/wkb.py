"""WKB (Wentzel-Kramers-Brillouin) tunneling action integrals.

The WKB transmission through a classically forbidden region is
``T = exp(-2 S)`` with the action ``S = integral sqrt(2 m (V(x) - E)) / hbar dx``
taken between the classical turning points. The Fowler-Nordheim closed
form used by the paper is the analytic evaluation of this integral for a
triangular barrier; this module provides the numerical evaluation for any
barrier shape so the closed form can be validated against it.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..constants import HBAR
from ..errors import ConfigurationError


def wkb_action(
    potential_fn: Callable[[float], float],
    energy_j: float,
    mass_kg: float,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
) -> float:
    """Numerically evaluate the WKB action integral.

    Parameters
    ----------
    potential_fn:
        Potential energy profile ``V(x)`` [J] as a function of position [m].
    energy_j:
        Electron energy [J].
    mass_kg:
        Effective mass in the barrier [kg].
    x_start, x_stop:
        Integration limits [m]. Points where ``V(x) <= E`` contribute zero
        (they are classically allowed), so the limits may safely bracket
        the turning points.
    n_points:
        Number of samples for the composite trapezoidal rule.

    Returns
    -------
    float
        The dimensionless action ``S``; transmission is ``exp(-2 S)``.
    """
    if mass_kg <= 0.0:
        raise ConfigurationError("mass must be positive")
    if x_stop <= x_start:
        raise ConfigurationError("x_stop must exceed x_start")
    if n_points < 3:
        raise ConfigurationError("need at least three sample points")

    xs = np.linspace(x_start, x_stop, n_points)
    barrier = np.array([potential_fn(float(x)) for x in xs]) - energy_j
    barrier = np.clip(barrier, 0.0, None)
    kappa = np.sqrt(2.0 * mass_kg * barrier) / HBAR
    return float(np.trapezoid(kappa, xs))


def wkb_transmission(
    potential_fn: Callable[[float], float],
    energy_j: float,
    mass_kg: float,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
) -> float:
    """WKB transmission ``exp(-2 S)`` through an arbitrary barrier."""
    action = wkb_action(
        potential_fn, energy_j, mass_kg, x_start, x_stop, n_points=n_points
    )
    return math.exp(-2.0 * action)


def triangular_action_exact(
    barrier_height_j: float, field_v_per_m: float, mass_kg: float
) -> float:
    """Closed-form WKB action for a triangular barrier.

    For a barrier ``V(x) = phi_B - q E x`` entered at energy 0 the action is
    ``S = (2/3) * sqrt(2 m) * phi_B^{3/2} / (hbar * q * E)``; the resulting
    ``exp(-2S)`` is exactly the exponential factor of the Fowler-Nordheim
    equation (paper eq. (4)).
    """
    if barrier_height_j <= 0.0:
        raise ConfigurationError("barrier height must be positive")
    if field_v_per_m <= 0.0:
        raise ConfigurationError("field must be positive")
    if mass_kg <= 0.0:
        raise ConfigurationError("mass must be positive")
    q = 1.602176634e-19
    return (
        2.0
        / 3.0
        * math.sqrt(2.0 * mass_kg)
        * barrier_height_j**1.5
        / (HBAR * q * field_v_per_m)
    )
