"""WKB (Wentzel-Kramers-Brillouin) tunneling action integrals.

The WKB transmission through a classically forbidden region is
``T = exp(-2 S)`` with the action ``S = integral sqrt(2 m (V(x) - E)) / hbar dx``
taken between the classical turning points. The Fowler-Nordheim closed
form used by the paper is the analytic evaluation of this integral for a
triangular barrier; this module provides the numerical evaluation for any
barrier shape so the closed form can be validated against it.

Two evaluation paths share the same arithmetic:

* :func:`wkb_action` / :func:`wkb_transmission` -- the scalar reference,
  one (energy, barrier) pair per call.
* :func:`wkb_action_batch` / :func:`wkb_transmission_batch` -- the
  vectorized backend: the barrier is sampled once as an array (a whole
  energy x bias x geometry grid when the potential callable is
  vectorized) and the action of every lane falls out of a single
  trapezoidal reduction over the last axis.

The batched kernels evaluate the identical samples in the identical
order, so a batch lane matches the scalar path to floating-point
round-off -- the parity the golden regression suite pins at 1e-9.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..constants import HBAR
from ..errors import ConfigurationError


def wkb_action(
    potential_fn: Callable[[float], float],
    energy_j: float,
    mass_kg: float,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
) -> float:
    """Numerically evaluate the WKB action integral.

    Parameters
    ----------
    potential_fn:
        Potential energy profile ``V(x)`` [J] as a function of position [m].
    energy_j:
        Electron energy [J].
    mass_kg:
        Effective mass in the barrier [kg].
    x_start, x_stop:
        Integration limits [m]. Points where ``V(x) <= E`` contribute zero
        (they are classically allowed), so the limits may safely bracket
        the turning points.
    n_points:
        Number of samples for the composite trapezoidal rule.

    Returns
    -------
    float
        The dimensionless action ``S``; transmission is ``exp(-2 S)``.
    """
    if mass_kg <= 0.0:
        raise ConfigurationError("mass must be positive")
    if x_stop <= x_start:
        raise ConfigurationError("x_stop must exceed x_start")
    if n_points < 3:
        raise ConfigurationError("need at least three sample points")

    xs = np.linspace(x_start, x_stop, n_points)
    barrier = np.array([potential_fn(float(x)) for x in xs]) - energy_j
    barrier = np.clip(barrier, 0.0, None)
    kappa = np.sqrt(2.0 * mass_kg * barrier) / HBAR
    return float(np.trapezoid(kappa, xs))


def sample_potential(
    potential_fn: Callable, xs: np.ndarray
) -> np.ndarray:
    """Sample a potential profile on a position grid, vectorized if possible.

    The vectorized-potential protocol: ``potential_fn`` is first called
    with the whole ``(n_points,)`` position array. A callable that
    supports it must return either

    * an array whose **last axis** has length ``n_points`` -- leading
      axes are treated as barrier batch lanes (one barrier per bias or
      geometry point), or
    * a scalar, interpreted as a constant potential.

    Scalar-only callables (anything that raises on array input, or
    returns an array of the wrong trailing length) fall back to one
    Python call per grid point, reproducing the historical sampling
    exactly.
    """
    try:
        values = potential_fn(xs)
    except Exception:
        values = None
    if values is not None:
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 0:
            return np.full(xs.shape, float(arr))
        if arr.shape[-1] == xs.size:
            return arr
    return np.array([float(potential_fn(float(x))) for x in xs])


def wkb_action_batch(
    potential_fn: Callable,
    energies_j,
    mass_kg,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
):
    """Vectorized :func:`wkb_action` over energy/bias/geometry grids.

    Parameters
    ----------
    potential_fn:
        Potential profile ``V(x)`` [J]; evaluated through
        :func:`sample_potential`, so it may be vectorized (returning a
        ``(..., n_points)`` barrier array with one leading lane per
        bias/geometry point) or a plain scalar callable.
    energies_j:
        Electron energies [J]; scalar or any array shape. Energies are
        broadcast against the barrier's leading lane axes with a
        trailing position axis appended, so a ``(n_bias, 1, n_points)``
        barrier against ``(n_energy,)`` energies yields a
        ``(n_bias, n_energy)`` action grid.
    mass_kg:
        Effective mass [kg]; scalar or broadcastable like the energies.
    x_start, x_stop, n_points:
        Trapezoid grid, exactly as :func:`wkb_action`.

    Returns
    -------
    float or numpy.ndarray
        Dimensionless actions with the broadcast shape of (barrier
        lanes, energies, masses); a float when everything is scalar.
        Each lane matches the scalar :func:`wkb_action` to round-off.
    """
    masses = np.asarray(mass_kg, dtype=float)
    if np.any(masses <= 0.0):
        raise ConfigurationError("mass must be positive")
    if x_stop <= x_start:
        raise ConfigurationError("x_stop must exceed x_start")
    if n_points < 3:
        raise ConfigurationError("need at least three sample points")

    xs = np.linspace(x_start, x_stop, n_points)
    potentials = sample_potential(potential_fn, xs)
    energies = np.asarray(energies_j, dtype=float)
    barrier = potentials - energies[..., np.newaxis]
    np.clip(barrier, 0.0, None, out=barrier)
    kappa = np.sqrt(2.0 * masses[..., np.newaxis] * barrier) / HBAR
    action = np.trapezoid(kappa, xs, axis=-1)
    if np.ndim(action) == 0:
        return float(action)
    return action


def wkb_transmission_batch(
    potential_fn: Callable,
    energies_j,
    mass_kg,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
):
    """Batched WKB transmission ``exp(-2 S)``; see :func:`wkb_action_batch`."""
    action = wkb_action_batch(
        potential_fn, energies_j, mass_kg, x_start, x_stop, n_points=n_points
    )
    return np.exp(-2.0 * np.asarray(action))


def wkb_transmission(
    potential_fn: Callable[[float], float],
    energy_j: float,
    mass_kg: float,
    x_start: float,
    x_stop: float,
    n_points: int = 2001,
) -> float:
    """WKB transmission ``exp(-2 S)`` through an arbitrary barrier."""
    action = wkb_action(
        potential_fn, energy_j, mass_kg, x_start, x_stop, n_points=n_points
    )
    return math.exp(-2.0 * action)


def triangular_action_exact(
    barrier_height_j: float, field_v_per_m: float, mass_kg: float
) -> float:
    """Closed-form WKB action for a triangular barrier.

    For a barrier ``V(x) = phi_B - q E x`` entered at energy 0 the action is
    ``S = (2/3) * sqrt(2 m) * phi_B^{3/2} / (hbar * q * E)``; the resulting
    ``exp(-2S)`` is exactly the exponential factor of the Fowler-Nordheim
    equation (paper eq. (4)).
    """
    if barrier_height_j <= 0.0:
        raise ConfigurationError("barrier height must be positive")
    if field_v_per_m <= 0.0:
        raise ConfigurationError("field must be positive")
    if mass_kg <= 0.0:
        raise ConfigurationError("mass must be positive")
    q = 1.602176634e-19
    return (
        2.0
        / 3.0
        * math.sqrt(2.0 * mass_kg)
        * barrier_height_j**1.5
        / (HBAR * q * field_v_per_m)
    )
