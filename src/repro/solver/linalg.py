"""Tridiagonal linear algebra used by the 1-D solvers.

Two routes through the same systems:

* :func:`solve_tridiagonal` -- the scalar Thomas algorithm, the seed
  implementation and the parity reference of the batched path;
* :func:`solve_tridiagonal_batch` -- a stack of *independent*
  tridiagonal systems assembled into one block-diagonal banded matrix
  and handed to LAPACK in a single :func:`scipy.linalg.solve_banded`
  call. Because the off-diagonal entries that would couple neighbouring
  blocks are exactly zero, the banded factorization never mixes lanes:
  the stacked solve is algebraically identical to solving each system
  on its own, at one compiled-code call for the whole batch.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from ..errors import ConfigurationError, ConvergenceError


def tridiagonal_matrix(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Assemble a dense matrix from its three diagonals (for tests/debug).

    ``lower`` and ``upper`` have length ``n - 1``; ``diag`` has length ``n``.
    """
    diag = np.asarray(diag, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    n = diag.size
    if lower.size != n - 1 or upper.size != n - 1:
        raise ConfigurationError("off-diagonals must have length n - 1")
    matrix = np.zeros((n, n))
    matrix[np.arange(n), np.arange(n)] = diag
    matrix[np.arange(1, n), np.arange(n - 1)] = lower
    matrix[np.arange(n - 1), np.arange(1, n)] = upper
    return matrix


def solve_tridiagonal(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``A x = rhs`` for tridiagonal ``A`` via the Thomas algorithm.

    Parameters
    ----------
    lower, diag, upper:
        The sub-, main- and super-diagonal of ``A``. ``lower[i]`` couples
        row ``i + 1`` to column ``i``.
    rhs:
        Right-hand side of length ``n``.

    Raises
    ------
    ConvergenceError
        If a pivot underflows (matrix numerically singular).
    """
    diag = np.asarray(diag, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    n = diag.size
    if rhs.size != n:
        raise ConfigurationError("rhs length must match diagonal length")
    if lower.size != n - 1 or upper.size != n - 1:
        raise ConfigurationError("off-diagonals must have length n - 1")

    c_prime = np.empty(n - 1)
    d_prime = np.empty(n)
    pivot = diag[0]
    if pivot == 0.0:
        raise ConvergenceError("zero pivot in tridiagonal solve (row 0)")
    c_prime_prev = upper[0] / pivot if n > 1 else 0.0
    if n > 1:
        c_prime[0] = c_prime_prev
    d_prime[0] = rhs[0] / pivot
    for i in range(1, n):
        pivot = diag[i] - lower[i - 1] * c_prime[i - 1]
        if pivot == 0.0:
            raise ConvergenceError(f"zero pivot in tridiagonal solve (row {i})")
        if i < n - 1:
            c_prime[i] = upper[i] / pivot
        d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / pivot

    x = np.empty(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x


def solve_tridiagonal_batch(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve a stack of independent tridiagonal systems in one call.

    Parameters
    ----------
    lower, upper:
        Off-diagonals, shape ``(n_systems, n - 1)`` (or ``(n - 1,)``,
        broadcast to every system).
    diag:
        Main diagonals, shape ``(n_systems, n)``.
    rhs:
        Right-hand sides, shape ``(n_systems, n)``.

    Returns
    -------
    numpy.ndarray
        Solutions, shape ``(n_systems, n)``.

    Notes
    -----
    The systems are laid out as the blocks of one block-diagonal
    banded matrix and factorized by a single LAPACK banded solve; the
    inter-block couplings are exactly zero, so no elimination step ever
    crosses a block boundary and each lane's solution equals its own
    standalone solve to round-off. This is the workhorse behind the
    batched Poisson solver and the batched inverse-iteration
    eigenvector refinement.
    """
    diag = np.atleast_2d(np.asarray(diag, dtype=float))
    rhs = np.atleast_2d(np.asarray(rhs, dtype=float))
    n_sys, n = diag.shape
    if rhs.shape != (n_sys, n):
        raise ConfigurationError(
            f"rhs shape {rhs.shape} does not match diagonals {diag.shape}"
        )
    lower = np.broadcast_to(
        np.asarray(lower, dtype=float), (n_sys, n - 1)
    )
    upper = np.broadcast_to(
        np.asarray(upper, dtype=float), (n_sys, n - 1)
    )

    total = n_sys * n
    # Banded storage (l = u = 1): row 0 holds the super-diagonal shifted
    # right, row 2 the sub-diagonal shifted left. Zeros at the block
    # seams keep the stacked systems decoupled.
    ab = np.zeros((3, total))
    ab[1] = diag.reshape(-1)
    up = np.zeros((n_sys, n - 1 + 1))
    up[:, :-1] = upper
    ab[0, 1:] = up.reshape(-1)[:-1]
    lo = np.zeros((n_sys, n - 1 + 1))
    lo[:, 1:] = lower
    ab[2, :-1] = lo.reshape(-1)[1:]
    try:
        x = solve_banded((1, 1), ab, rhs.reshape(-1))
    except np.linalg.LinAlgError as exc:  # pragma: no cover - singular
        raise ConvergenceError(
            f"singular system in batched tridiagonal solve: {exc}"
        ) from exc
    return x.reshape(n_sys, n)
