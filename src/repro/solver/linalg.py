"""Tridiagonal linear algebra (Thomas algorithm) used by the 1-D solvers."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ConvergenceError


def tridiagonal_matrix(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Assemble a dense matrix from its three diagonals (for tests/debug).

    ``lower`` and ``upper`` have length ``n - 1``; ``diag`` has length ``n``.
    """
    diag = np.asarray(diag, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    n = diag.size
    if lower.size != n - 1 or upper.size != n - 1:
        raise ConfigurationError("off-diagonals must have length n - 1")
    matrix = np.zeros((n, n))
    matrix[np.arange(n), np.arange(n)] = diag
    matrix[np.arange(1, n), np.arange(n - 1)] = lower
    matrix[np.arange(n - 1), np.arange(1, n)] = upper
    return matrix


def solve_tridiagonal(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``A x = rhs`` for tridiagonal ``A`` via the Thomas algorithm.

    Parameters
    ----------
    lower, diag, upper:
        The sub-, main- and super-diagonal of ``A``. ``lower[i]`` couples
        row ``i + 1`` to column ``i``.
    rhs:
        Right-hand side of length ``n``.

    Raises
    ------
    ConvergenceError
        If a pivot underflows (matrix numerically singular).
    """
    diag = np.asarray(diag, dtype=float)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    n = diag.size
    if rhs.size != n:
        raise ConfigurationError("rhs length must match diagonal length")
    if lower.size != n - 1 or upper.size != n - 1:
        raise ConfigurationError("off-diagonals must have length n - 1")

    c_prime = np.empty(n - 1)
    d_prime = np.empty(n)
    pivot = diag[0]
    if pivot == 0.0:
        raise ConvergenceError("zero pivot in tridiagonal solve (row 0)")
    c_prime_prev = upper[0] / pivot if n > 1 else 0.0
    if n > 1:
        c_prime[0] = c_prime_prev
    d_prime[0] = rhs[0] / pivot
    for i in range(1, n):
        pivot = diag[i] - lower[i - 1] * c_prime[i - 1]
        if pivot == 0.0:
            raise ConvergenceError(f"zero pivot in tridiagonal solve (row {i})")
        if i < n - 1:
            c_prime[i] = upper[i] / pivot
        d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / pivot

    x = np.empty(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x
