"""Bracketing root finders and series crossing detection.

Used for locating ``t_sat`` (the Jin = Jout crossing of paper Figure 5)
and for inverting monotonic device characteristics such as the threshold
voltage as a function of stored charge.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.optimize import brentq

from ..errors import ConfigurationError, ConvergenceError


def bisect(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Classic bisection on a sign-changing bracket.

    Kept alongside :func:`brentq_checked` because bisection tolerates
    functions that are discontinuous or extremely flat near the root,
    which occurs when bracketing tunneling currents spanning ~30 decades.
    """
    f_lo = fn(lo)
    f_hi = fn(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        raise ConfigurationError(
            f"bisect bracket does not change sign: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = fn(mid)
        if f_mid == 0.0 or (hi - lo) < tol:
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    raise ConvergenceError(f"bisection did not converge in {max_iter} iterations")


def brentq_checked(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-12,
) -> float:
    """Brent's method with an explicit bracket check and library errors."""
    f_lo = fn(lo)
    f_hi = fn(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        raise ConfigurationError(
            f"brentq bracket does not change sign: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    try:
        return float(brentq(fn, lo, hi, xtol=tol))
    except RuntimeError as exc:  # pragma: no cover - scipy rarely fails here
        raise ConvergenceError(str(exc)) from exc


def find_crossing(
    t: np.ndarray, series_a: np.ndarray, series_b: np.ndarray
) -> "float | None":
    """First crossing time of two sampled series, or None if they never cross.

    Finds the first index where ``sign(a - b)`` changes and linearly
    interpolates the crossing time. Exact ties at a sample point return
    that sample's time.
    """
    t = np.asarray(t, dtype=float)
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if not (t.size == a.size == b.size):
        raise ConfigurationError("t, series_a, series_b must share a length")
    if t.size < 2:
        raise ConfigurationError("need at least two samples")

    diff = a - b
    for i in range(diff.size):
        if diff[i] == 0.0:
            return float(t[i])
        if i > 0 and diff[i - 1] * diff[i] < 0.0:
            frac = diff[i - 1] / (diff[i - 1] - diff[i])
            return float(t[i - 1] + frac * (t[i] - t[i - 1]))
    return None
