"""Numerical substrate shared by the physics packages.

Everything here is deliberately generic: 1-D grids, tridiagonal linear
algebra, a Poisson solver, a finite-difference Schrodinger eigensolver, a
piecewise-constant transfer-matrix transmission solver, WKB action
integrals, ODE integration wrappers and bracketing root finders. The
device and tunneling packages are written on top of these primitives so
that the physics code contains no hand-rolled numerics.
"""

from .grid import Grid1D, nonuniform_grid, uniform_grid
from .linalg import (
    solve_tridiagonal,
    solve_tridiagonal_batch,
    tridiagonal_matrix,
)
from .ode import IntegrationResult, integrate_ivp, integrate_rk4
from .poisson import (
    PoissonBatchSolution1D,
    PoissonProblem1D,
    solve_poisson_1d,
    solve_poisson_1d_batch,
)
from .rootfind import bisect, brentq_checked, find_crossing
from .schrodinger import (
    BoundStates,
    BoundStatesBatch,
    refine_bound_states_batch,
    solve_schrodinger_1d,
    solve_schrodinger_1d_batch,
)
from .transfer_matrix import (
    BarrierSegment,
    PiecewiseBarrier,
    transmission_probability,
    transmission_probability_batch,
)
from .wkb import (
    wkb_action,
    wkb_action_batch,
    wkb_transmission,
    wkb_transmission_batch,
)

__all__ = [
    "Grid1D",
    "uniform_grid",
    "nonuniform_grid",
    "tridiagonal_matrix",
    "solve_tridiagonal",
    "solve_tridiagonal_batch",
    "PoissonProblem1D",
    "PoissonBatchSolution1D",
    "solve_poisson_1d",
    "solve_poisson_1d_batch",
    "BoundStates",
    "BoundStatesBatch",
    "solve_schrodinger_1d",
    "solve_schrodinger_1d_batch",
    "refine_bound_states_batch",
    "BarrierSegment",
    "PiecewiseBarrier",
    "transmission_probability",
    "transmission_probability_batch",
    "wkb_action",
    "wkb_action_batch",
    "wkb_transmission",
    "wkb_transmission_batch",
    "IntegrationResult",
    "integrate_ivp",
    "integrate_rk4",
    "bisect",
    "brentq_checked",
    "find_crossing",
]
