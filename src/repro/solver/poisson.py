"""1-D Poisson solver for layered dielectric stacks.

Solves  d/dx ( eps(x) d(phi)/dx ) = -rho(x)  on a :class:`Grid1D` with
Dirichlet boundary conditions at both ends, using a conservative
finite-volume discretisation that keeps the displacement field
``D = -eps * dphi/dx`` continuous across permittivity jumps -- exactly the
property needed for oxide stacks where the permittivity is discontinuous
at material interfaces.

Two routes through the same discretisation:

* :func:`solve_poisson_1d` -- one problem at a time through the scalar
  Thomas algorithm (the seed path, retained as the parity reference);
* :func:`solve_poisson_1d_batch` -- many problems sharing one grid and
  permittivity profile, factorized once by LAPACK with every lane's
  right-hand side stacked as the columns of a single
  :func:`scipy.linalg.solve_banded` call. This is the electrostatics
  kernel behind the batched Poisson-Schrodinger bias sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import solve_banded

from ..errors import ConfigurationError
from .grid import Grid1D
from .linalg import solve_tridiagonal


@dataclass(frozen=True)
class PoissonProblem1D:
    """Specification of a 1-D electrostatic boundary-value problem.

    Attributes
    ----------
    grid:
        Node positions [m].
    permittivity:
        Absolute permittivity on each *cell* (length ``n - 1``) [F/m].
    charge_density:
        Volume charge density at each *node* (length ``n``) [C/m^3].
    phi_left, phi_right:
        Dirichlet potentials at the two boundaries [V].
    """

    grid: Grid1D
    permittivity: np.ndarray = field(repr=False)
    charge_density: np.ndarray = field(repr=False)
    phi_left: float = 0.0
    phi_right: float = 0.0

    def __post_init__(self) -> None:
        eps = np.asarray(self.permittivity, dtype=float)
        rho = np.asarray(self.charge_density, dtype=float)
        if eps.size != self.grid.n - 1:
            raise ConfigurationError(
                f"permittivity must be per-cell (length {self.grid.n - 1}), "
                f"got {eps.size}"
            )
        if np.any(eps <= 0.0):
            raise ConfigurationError("permittivity must be positive everywhere")
        if rho.size != self.grid.n:
            raise ConfigurationError(
                f"charge_density must be per-node (length {self.grid.n}), "
                f"got {rho.size}"
            )
        object.__setattr__(self, "permittivity", eps)
        object.__setattr__(self, "charge_density", rho)


@dataclass(frozen=True)
class PoissonSolution1D:
    """Potential and derived fields returned by :func:`solve_poisson_1d`."""

    grid: Grid1D
    potential: np.ndarray = field(repr=False)
    #: Electric field at cell midpoints, E = -dphi/dx [V/m].
    field_midpoints: np.ndarray = field(repr=False)
    #: Displacement field at cell midpoints, D = eps * E [C/m^2].
    displacement_midpoints: np.ndarray = field(repr=False)

    def field_at(self, x: float) -> float:
        """Electric field of the cell containing ``x`` [V/m]."""
        return float(self.field_midpoints[self.grid.locate(x)])


def solve_poisson_1d(problem: PoissonProblem1D) -> PoissonSolution1D:
    """Solve the layered-stack Poisson problem.

    Returns the node potentials together with the per-cell electric and
    displacement fields. For zero charge density the solution is the exact
    piecewise-linear capacitive-divider potential, which is what the
    floating-gate electrostatics package validates against.
    """
    grid = problem.grid
    h = grid.spacing
    eps = problem.permittivity
    n = grid.n

    # Interface conductances g_i = eps_i / h_i for each cell i.
    g = eps / h

    n_int = n - 2
    if n_int == 0:
        # Two-node problem: linear potential between the boundaries.
        potential = np.array([problem.phi_left, problem.phi_right])
    else:
        diag = g[:-1] + g[1:]
        lower = -g[1:-1]
        upper = -g[1:-1]
        # Finite-volume charge: integrate rho over the dual cell of node i.
        rho = problem.charge_density
        dual = 0.5 * (h[:-1] + h[1:])
        rhs = rho[1:-1] * dual
        rhs[0] += g[0] * problem.phi_left
        rhs[-1] += g[-1] * problem.phi_right
        interior = solve_tridiagonal(lower, diag, upper, rhs)
        potential = np.concatenate(
            ([problem.phi_left], interior, [problem.phi_right])
        )

    e_field = -np.diff(potential) / h
    displacement = eps * e_field
    return PoissonSolution1D(
        grid=grid,
        potential=potential,
        field_midpoints=e_field,
        displacement_midpoints=displacement,
    )


@dataclass(frozen=True)
class PoissonBatchSolution1D:
    """Stacked solutions returned by :func:`solve_poisson_1d_batch`.

    Attributes
    ----------
    grid:
        The grid shared by every lane.
    potential:
        Node potentials, shape ``(n_lanes, n)`` [V].
    field_midpoints:
        Electric field at cell midpoints, shape ``(n_lanes, n - 1)``
        [V/m].
    displacement_midpoints:
        Displacement field at cell midpoints, shape ``(n_lanes, n - 1)``
        [C/m^2].
    """

    grid: Grid1D
    potential: np.ndarray = field(repr=False)
    field_midpoints: np.ndarray = field(repr=False)
    displacement_midpoints: np.ndarray = field(repr=False)

    @property
    def n_lanes(self) -> int:
        """Number of stacked Poisson problems."""
        return int(self.potential.shape[0])

    def lane(self, index: int) -> PoissonSolution1D:
        """One lane's solution in the scalar result form."""
        return PoissonSolution1D(
            grid=self.grid,
            potential=self.potential[index],
            field_midpoints=self.field_midpoints[index],
            displacement_midpoints=self.displacement_midpoints[index],
        )


def solve_poisson_1d_batch(
    grid: Grid1D,
    permittivity: np.ndarray,
    charge_densities: np.ndarray,
    phi_left=0.0,
    phi_right=0.0,
) -> PoissonBatchSolution1D:
    """Solve a stack of Poisson problems sharing one grid and stack.

    Parameters
    ----------
    grid:
        Node positions [m], shared by every lane.
    permittivity:
        Absolute per-cell permittivity (length ``n - 1``) [F/m], shared
        by every lane (the operator is factorized once).
    charge_densities:
        Per-node charge density, shape ``(n_lanes, n)`` [C/m^3].
    phi_left, phi_right:
        Dirichlet boundary potentials [V]; scalars or ``(n_lanes,)``
        arrays.

    Notes
    -----
    The discretisation is exactly that of :func:`solve_poisson_1d`; the
    lanes differ only in their right-hand sides, which are stacked as
    the columns of one banded LAPACK solve (``solve_banded`` with an
    ``(n - 2, n_lanes)`` RHS matrix). Each lane agrees with the scalar
    Thomas-algorithm path to round-off, so the batch is a faster route
    through the same electrostatics, not a second model.
    """
    eps = np.asarray(permittivity, dtype=float)
    rho = np.atleast_2d(np.asarray(charge_densities, dtype=float))
    n = grid.n
    n_lanes = rho.shape[0]
    if eps.shape != (n - 1,):
        raise ConfigurationError(
            f"permittivity must be per-cell (length {n - 1}), got {eps.shape}"
        )
    if np.any(eps <= 0.0):
        raise ConfigurationError("permittivity must be positive everywhere")
    if rho.shape[1] != n:
        raise ConfigurationError(
            f"charge densities must be per-node (length {n}), "
            f"got {rho.shape[1]}"
        )
    left = np.broadcast_to(
        np.asarray(phi_left, dtype=float), (n_lanes,)
    ).astype(float)
    right = np.broadcast_to(
        np.asarray(phi_right, dtype=float), (n_lanes,)
    ).astype(float)

    h = grid.spacing
    g = eps / h
    n_int = n - 2
    potential = np.empty((n_lanes, n))
    potential[:, 0] = left
    potential[:, -1] = right
    if n_int > 0:
        dual = 0.5 * (h[:-1] + h[1:])
        rhs = rho[:, 1:-1] * dual
        rhs[:, 0] += g[0] * left
        rhs[:, -1] += g[-1] * right
        ab = np.zeros((3, n_int))
        ab[0, 1:] = -g[1:-1]
        ab[1] = g[:-1] + g[1:]
        ab[2, :-1] = -g[1:-1]
        potential[:, 1:-1] = solve_banded((1, 1), ab, rhs.T).T

    e_field = -np.diff(potential, axis=1) / h
    displacement = eps * e_field
    return PoissonBatchSolution1D(
        grid=grid,
        potential=potential,
        field_midpoints=e_field,
        displacement_midpoints=displacement,
    )
