"""One-dimensional spatial grids for the field solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Grid1D:
    """A strictly increasing 1-D grid of node positions.

    Attributes
    ----------
    points:
        Node coordinates in metres, strictly increasing.
    """

    points: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        if points.ndim != 1 or points.size < 2:
            raise ConfigurationError("grid needs at least two points in 1-D")
        if not np.all(np.diff(points) > 0.0):
            raise ConfigurationError("grid points must be strictly increasing")
        object.__setattr__(self, "points", points)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.points.size)

    @property
    def spacing(self) -> np.ndarray:
        """Array of the ``n - 1`` cell widths."""
        return np.diff(self.points)

    @property
    def length(self) -> float:
        """Total domain length in metres."""
        return float(self.points[-1] - self.points[0])

    @property
    def is_uniform(self) -> bool:
        """True when all cell widths agree to within a relative 1e-12."""
        h = self.spacing
        return bool(np.allclose(h, h[0], rtol=1e-12, atol=0.0))

    def midpoints(self) -> np.ndarray:
        """Coordinates of the cell centres."""
        return 0.5 * (self.points[:-1] + self.points[1:])

    def locate(self, x: float) -> int:
        """Index of the cell containing ``x`` (clamped to the domain)."""
        idx = int(np.searchsorted(self.points, x, side="right")) - 1
        return min(max(idx, 0), self.n - 2)


def uniform_grid(start: float, stop: float, n: int) -> Grid1D:
    """Build a uniform grid of ``n`` nodes on ``[start, stop]``."""
    if stop <= start:
        raise ConfigurationError(f"stop ({stop}) must exceed start ({start})")
    if n < 2:
        raise ConfigurationError("a grid needs at least two nodes")
    return Grid1D(np.linspace(start, stop, n))


def nonuniform_grid(
    breakpoints: "list[float]", nodes_per_region: "list[int]"
) -> Grid1D:
    """Build a piecewise-uniform grid with region-dependent resolution.

    Parameters
    ----------
    breakpoints:
        Region boundaries, strictly increasing, length ``R + 1``.
    nodes_per_region:
        Number of cells in each of the ``R`` regions.

    Notes
    -----
    Interior breakpoints appear exactly once (shared between regions), so
    material interfaces in layered stacks always fall on a node.
    """
    if len(breakpoints) < 2:
        raise ConfigurationError("need at least two breakpoints")
    if len(nodes_per_region) != len(breakpoints) - 1:
        raise ConfigurationError(
            "nodes_per_region must have one entry per region "
            f"({len(breakpoints) - 1}), got {len(nodes_per_region)}"
        )
    segments = []
    for i, cells in enumerate(nodes_per_region):
        if cells < 1:
            raise ConfigurationError("each region needs at least one cell")
        seg = np.linspace(breakpoints[i], breakpoints[i + 1], cells + 1)
        segments.append(seg if i == 0 else seg[1:])
    return Grid1D(np.concatenate(segments))
