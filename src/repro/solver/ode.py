"""Initial-value-problem integration wrappers.

Thin, typed wrapper over :func:`scipy.integrate.solve_ivp` tuned for the
stiff charge-transient ODEs that arise when integrating
``dQ_FG/dt = -(Jin - Jout) * Area`` (paper Figures 4-5): the tunneling
currents vary over many decades, so the default method is implicit.

For vector states whose lanes are mutually independent the wrapper
accepts Jacobian bandwidths (``lband``/``uband``), and
:func:`integrate_rk4` provides the fixed-step fallback whose lane
results are bit-stable against batch composition (see the batched
transient integrator in :mod:`repro.device.transient`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import ConvergenceError


@dataclass(frozen=True)
class IntegrationResult:
    """Solution of an initial value problem.

    Attributes
    ----------
    t:
        Time samples [s].
    y:
        State trajectory, shape ``(n_states, len(t))``.
    event_times:
        For each registered event, the times at which it fired.
    terminated_by_event:
        True when integration stopped at a terminal event rather than at
        ``t_final``.
    """

    t: np.ndarray = field(repr=False)
    y: np.ndarray = field(repr=False)
    event_times: "tuple[np.ndarray, ...]" = ()
    terminated_by_event: bool = False

    @property
    def final_state(self) -> np.ndarray:
        return self.y[:, -1]

    @property
    def final_time(self) -> float:
        return float(self.t[-1])


def integrate_ivp(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    t_span: "tuple[float, float]",
    y0: Sequence[float],
    method: str = "LSODA",
    rtol: float = 1e-8,
    atol=1e-12,
    max_step: Optional[float] = None,
    events: Optional[Sequence[Callable[[float, np.ndarray], float]]] = None,
    dense_samples: int = 0,
    lband: Optional[int] = None,
    uband: Optional[int] = None,
) -> IntegrationResult:
    """Integrate ``dy/dt = rhs(t, y)`` from ``t_span[0]`` to ``t_span[1]``.

    Parameters
    ----------
    rhs:
        Right-hand side of the ODE system.
    t_span:
        ``(t_initial, t_final)`` in seconds.
    y0:
        Initial state.
    method:
        Any solve_ivp method; defaults to LSODA which switches between
        stiff/non-stiff automatically.
    events:
        Optional event functions; mark one terminal by setting
        ``fn.terminal = True`` (scipy convention).
    dense_samples:
        When positive, evaluate the solution on that many uniformly spaced
        time points instead of the solver's internal steps.
    lband, uband:
        Jacobian bandwidths for the implicit methods (LSODA/BDF/Radau).
        The batched transient integrator passes ``lband=uband=0``: its
        lanes are mutually independent, so the Jacobian is diagonal and
        the solver's finite-difference estimate costs one extra RHS
        evaluation instead of one per state.

    Raises
    ------
    ConvergenceError
        If the underlying solver reports failure.
    """
    t_eval = None
    if dense_samples > 0:
        t_eval = np.linspace(t_span[0], t_span[1], dense_samples)

    kwargs = {}
    if max_step is not None:
        kwargs["max_step"] = max_step
    if lband is not None:
        kwargs["lband"] = lband
    if uband is not None:
        kwargs["uband"] = uband
    solution = solve_ivp(
        rhs,
        t_span,
        np.asarray(y0, dtype=float),
        method=method,
        rtol=rtol,
        atol=atol,
        t_eval=t_eval,
        events=list(events) if events else None,
        **kwargs,
    )
    if not solution.success:
        raise ConvergenceError(f"ODE integration failed: {solution.message}")

    event_times: "tuple[np.ndarray, ...]" = ()
    if events:
        event_times = tuple(np.asarray(te) for te in solution.t_events)
    return IntegrationResult(
        t=solution.t,
        y=solution.y,
        event_times=event_times,
        terminated_by_event=(solution.status == 1),
    )


def integrate_rk4(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    t_grid,
    y0: Sequence[float],
) -> IntegrationResult:
    """Fixed-step classic Runge-Kutta 4 over a caller-supplied time grid.

    The deterministic fallback of the batched transient integrator:
    unlike an adaptive method, whose shared step-size control couples
    every lane of a vector state, fixed steps advance each lane with
    arithmetic that never depends on the other lanes (the RHS of the
    charge ODEs is elementwise). Stacking lanes therefore changes
    nothing -- lane ``i`` of a batch is **bit-identical** to the same
    lane integrated alone on the same grid, which is what makes RK4
    results stable golden references for batch refactors.

    Parameters
    ----------
    rhs:
        Right-hand side ``f(t, y)``; must accept and return vector
        states.
    t_grid:
        Strictly increasing sample times [s]; one RK4 step is taken
        between each consecutive pair (transients spanning decades in
        time use a geometric grid). The first entry is the initial time.
    y0:
        Initial state at ``t_grid[0]``.

    Returns
    -------
    IntegrationResult
        With ``t`` the input grid and ``y`` of shape
        ``(n_states, len(t_grid))``.
    """
    t = np.asarray(t_grid, dtype=float)
    if t.ndim != 1 or t.size < 2:
        raise ConvergenceError("RK4 needs at least two grid points")
    if np.any(np.diff(t) <= 0.0):
        raise ConvergenceError("RK4 grid must be strictly increasing")
    state = np.asarray(y0, dtype=float).copy()
    if state.ndim != 1:
        raise ConvergenceError("RK4 state must be one-dimensional")
    out = np.empty((state.size, t.size))
    out[:, 0] = state
    for i in range(t.size - 1):
        h = t[i + 1] - t[i]
        half = 0.5 * h
        k1 = rhs(t[i], state)
        k2 = rhs(t[i] + half, state + half * k1)
        k3 = rhs(t[i] + half, state + half * k2)
        k4 = rhs(t[i + 1], state + h * k3)
        state = state + (h / 6.0) * (k1 + 2.0 * (k2 + k3) + k4)
        if not np.all(np.isfinite(state)):
            raise ConvergenceError(
                f"RK4 diverged at t = {t[i + 1]:.3e} s; the fixed grid is "
                "too coarse for the stiffness of this transient"
            )
        out[:, i + 1] = state
    return IntegrationResult(t=t, y=out)
