"""Initial-value-problem integration wrappers.

Thin, typed wrapper over :func:`scipy.integrate.solve_ivp` tuned for the
stiff charge-transient ODEs that arise when integrating
``dQ_FG/dt = -(Jin - Jout) * Area`` (paper Figures 4-5): the tunneling
currents vary over many decades, so the default method is implicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import ConvergenceError


@dataclass(frozen=True)
class IntegrationResult:
    """Solution of an initial value problem.

    Attributes
    ----------
    t:
        Time samples [s].
    y:
        State trajectory, shape ``(n_states, len(t))``.
    event_times:
        For each registered event, the times at which it fired.
    terminated_by_event:
        True when integration stopped at a terminal event rather than at
        ``t_final``.
    """

    t: np.ndarray = field(repr=False)
    y: np.ndarray = field(repr=False)
    event_times: "tuple[np.ndarray, ...]" = ()
    terminated_by_event: bool = False

    @property
    def final_state(self) -> np.ndarray:
        return self.y[:, -1]

    @property
    def final_time(self) -> float:
        return float(self.t[-1])


def integrate_ivp(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    t_span: "tuple[float, float]",
    y0: Sequence[float],
    method: str = "LSODA",
    rtol: float = 1e-8,
    atol: float = 1e-12,
    max_step: Optional[float] = None,
    events: Optional[Sequence[Callable[[float, np.ndarray], float]]] = None,
    dense_samples: int = 0,
) -> IntegrationResult:
    """Integrate ``dy/dt = rhs(t, y)`` from ``t_span[0]`` to ``t_span[1]``.

    Parameters
    ----------
    rhs:
        Right-hand side of the ODE system.
    t_span:
        ``(t_initial, t_final)`` in seconds.
    y0:
        Initial state.
    method:
        Any solve_ivp method; defaults to LSODA which switches between
        stiff/non-stiff automatically.
    events:
        Optional event functions; mark one terminal by setting
        ``fn.terminal = True`` (scipy convention).
    dense_samples:
        When positive, evaluate the solution on that many uniformly spaced
        time points instead of the solver's internal steps.

    Raises
    ------
    ConvergenceError
        If the underlying solver reports failure.
    """
    t_eval = None
    if dense_samples > 0:
        t_eval = np.linspace(t_span[0], t_span[1], dense_samples)

    kwargs = {}
    if max_step is not None:
        kwargs["max_step"] = max_step
    solution = solve_ivp(
        rhs,
        t_span,
        np.asarray(y0, dtype=float),
        method=method,
        rtol=rtol,
        atol=atol,
        t_eval=t_eval,
        events=list(events) if events else None,
        **kwargs,
    )
    if not solution.success:
        raise ConvergenceError(f"ODE integration failed: {solution.message}")

    event_times: "tuple[np.ndarray, ...]" = ()
    if events:
        event_times = tuple(np.asarray(te) for te in solution.t_events)
    return IntegrationResult(
        t=solution.t,
        y=solution.y,
        event_times=event_times,
        terminated_by_event=(solution.status == 1),
    )
