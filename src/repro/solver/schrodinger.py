"""Finite-difference 1-D Schrodinger eigensolver.

Used by the self-consistent Poisson-Schrodinger channel model to find
bound subband energies in the potential well formed at the
channel/tunnel-oxide interface, and by tests as an independent check of
the transfer-matrix solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import eigh_tridiagonal

from ..constants import HBAR
from ..errors import ConfigurationError
from .grid import Grid1D


@dataclass(frozen=True)
class BoundStates:
    """Eigenpairs returned by :func:`solve_schrodinger_1d`.

    Attributes
    ----------
    energies:
        Eigenenergies in joules, ascending.
    wavefunctions:
        Normalised eigenfunctions, one per column; ``wavefunctions[:, k]``
        is the k-th state sampled on the interior grid nodes.
    grid:
        The grid the states were computed on.
    """

    energies: np.ndarray = field(repr=False)
    wavefunctions: np.ndarray = field(repr=False)
    grid: Grid1D

    @property
    def n_states(self) -> int:
        return int(self.energies.size)

    def density(self, occupations: np.ndarray) -> np.ndarray:
        """Probability density summed over states weighted by occupation.

        ``occupations`` has one entry per state (e.g. subband sheet
        densities); the result has one entry per interior node and
        integrates to ``sum(occupations)``.
        """
        occ = np.asarray(occupations, dtype=float)
        if occ.size != self.n_states:
            raise ConfigurationError(
                f"need one occupation per state ({self.n_states}), got {occ.size}"
            )
        return (np.abs(self.wavefunctions) ** 2) @ occ


def solve_schrodinger_1d(
    grid: Grid1D,
    potential_j: np.ndarray,
    effective_mass_kg: float,
    n_states: int = 4,
) -> BoundStates:
    """Solve ``-hbar^2/(2m) psi'' + V psi = E psi`` with hard walls.

    Parameters
    ----------
    grid:
        Uniform 1-D grid (hard-wall boundary conditions at both ends).
    potential_j:
        Potential energy at each node [J], length ``grid.n``.
    effective_mass_kg:
        Effective mass of the particle [kg].
    n_states:
        Number of lowest eigenstates to return.

    Notes
    -----
    The discretisation is the standard 3-point Laplacian; wavefunctions are
    normalised so that ``sum(|psi|^2) * h == 1``.
    """
    if not grid.is_uniform:
        raise ConfigurationError("Schrodinger solver requires a uniform grid")
    if effective_mass_kg <= 0.0:
        raise ConfigurationError("effective mass must be positive")
    potential = np.asarray(potential_j, dtype=float)
    if potential.size != grid.n:
        raise ConfigurationError(
            f"potential must be per-node (length {grid.n}), got {potential.size}"
        )
    n_interior = grid.n - 2
    if n_interior < 1:
        raise ConfigurationError("grid too small for interior eigenproblem")
    n_states = min(n_states, n_interior)

    h = float(grid.spacing[0])
    kinetic = HBAR**2 / (2.0 * effective_mass_kg * h * h)
    diag = 2.0 * kinetic + potential[1:-1]
    offdiag = np.full(n_interior - 1, -kinetic)

    energies, vectors = eigh_tridiagonal(
        diag, offdiag, select="i", select_range=(0, n_states - 1)
    )
    # Normalise: integral of |psi|^2 dx = 1.
    norms = np.sqrt(np.sum(np.abs(vectors) ** 2, axis=0) * h)
    vectors = vectors / norms
    return BoundStates(energies=energies, wavefunctions=vectors, grid=grid)
