"""Finite-difference 1-D Schrodinger eigensolver.

Used by the self-consistent Poisson-Schrodinger channel model to find
bound subband energies in the potential well formed at the
channel/tunnel-oxide interface, and by tests as an independent check of
the transfer-matrix solver.

Three routes through the same 3-point discretisation:

* :func:`solve_schrodinger_1d` -- one potential at a time (the seed
  path, retained as the parity reference);
* :func:`solve_schrodinger_1d_batch` -- a stack of potentials on one
  grid, each lane solved by the same LAPACK tridiagonal eigensolver
  with the Hamiltonian assembly amortized across the stack;
* :func:`refine_bound_states_batch` -- the warm-start eigenlevel
  tracker: when a batch of Hamiltonians changes slightly (one damped
  self-consistency step), the previous eigenpairs are polished to
  machine precision by Rayleigh-quotient iteration whose inverse-
  iteration solves run for *every* (lane, level) pair at once through
  the block-diagonal banded solver of
  :func:`~repro.solver.linalg.solve_tridiagonal_batch`. Each refined
  pair is verified (residual, level ordering, branch continuity) and
  any lane that fails verification silently falls back to the exact
  per-lane solve -- the fast path can only ever reproduce the slow one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import eigh_tridiagonal

from ..constants import HBAR
from ..errors import ConfigurationError
from .grid import Grid1D
from .linalg import solve_tridiagonal_batch


@dataclass(frozen=True)
class BoundStates:
    """Eigenpairs returned by :func:`solve_schrodinger_1d`.

    Attributes
    ----------
    energies:
        Eigenenergies in joules, ascending.
    wavefunctions:
        Normalised eigenfunctions, one per column; ``wavefunctions[:, k]``
        is the k-th state sampled on the interior grid nodes.
    grid:
        The grid the states were computed on.
    """

    energies: np.ndarray = field(repr=False)
    wavefunctions: np.ndarray = field(repr=False)
    grid: Grid1D

    @property
    def n_states(self) -> int:
        return int(self.energies.size)

    def density(self, occupations: np.ndarray) -> np.ndarray:
        """Probability density summed over states weighted by occupation.

        ``occupations`` has one entry per state (e.g. subband sheet
        densities); the result has one entry per interior node and
        integrates to ``sum(occupations)``.
        """
        occ = np.asarray(occupations, dtype=float)
        if occ.size != self.n_states:
            raise ConfigurationError(
                f"need one occupation per state ({self.n_states}), got {occ.size}"
            )
        return (np.abs(self.wavefunctions) ** 2) @ occ


def solve_schrodinger_1d(
    grid: Grid1D,
    potential_j: np.ndarray,
    effective_mass_kg: float,
    n_states: int = 4,
) -> BoundStates:
    """Solve ``-hbar^2/(2m) psi'' + V psi = E psi`` with hard walls.

    Parameters
    ----------
    grid:
        Uniform 1-D grid (hard-wall boundary conditions at both ends).
    potential_j:
        Potential energy at each node [J], length ``grid.n``.
    effective_mass_kg:
        Effective mass of the particle [kg].
    n_states:
        Number of lowest eigenstates to return.

    Notes
    -----
    The discretisation is the standard 3-point Laplacian; wavefunctions are
    normalised so that ``sum(|psi|^2) * h == 1``.
    """
    if not grid.is_uniform:
        raise ConfigurationError("Schrodinger solver requires a uniform grid")
    if effective_mass_kg <= 0.0:
        raise ConfigurationError("effective mass must be positive")
    potential = np.asarray(potential_j, dtype=float)
    if potential.size != grid.n:
        raise ConfigurationError(
            f"potential must be per-node (length {grid.n}), got {potential.size}"
        )
    n_interior = grid.n - 2
    if n_interior < 1:
        raise ConfigurationError("grid too small for interior eigenproblem")
    n_states = min(n_states, n_interior)

    h = float(grid.spacing[0])
    kinetic = HBAR**2 / (2.0 * effective_mass_kg * h * h)
    diag = 2.0 * kinetic + potential[1:-1]
    offdiag = np.full(n_interior - 1, -kinetic)

    energies, vectors = eigh_tridiagonal(
        diag, offdiag, select="i", select_range=(0, n_states - 1)
    )
    # Normalise: integral of |psi|^2 dx = 1.
    norms = np.sqrt(np.sum(np.abs(vectors) ** 2, axis=0) * h)
    vectors = vectors / norms
    return BoundStates(energies=energies, wavefunctions=vectors, grid=grid)


@dataclass(frozen=True)
class BoundStatesBatch:
    """Stacked eigenpairs for a batch of potentials on one grid.

    Attributes
    ----------
    energies:
        Eigenenergies [J], shape ``(n_lanes, n_states)``, ascending
        along the last axis.
    wavefunctions:
        Normalised eigenfunctions, shape
        ``(n_lanes, n_interior, n_states)`` (the per-lane column layout
        of :class:`BoundStates`).
    grid:
        The grid shared by every lane.
    """

    energies: np.ndarray = field(repr=False)
    wavefunctions: np.ndarray = field(repr=False)
    grid: Grid1D

    @property
    def n_lanes(self) -> int:
        """Number of stacked potentials."""
        return int(self.energies.shape[0])

    @property
    def n_states(self) -> int:
        """Number of eigenstates per lane."""
        return int(self.energies.shape[1])

    def lane(self, index: int) -> BoundStates:
        """One lane's eigenpairs in the scalar result form."""
        return BoundStates(
            energies=self.energies[index],
            wavefunctions=self.wavefunctions[index],
            grid=self.grid,
        )

    def density_batch(self, occupations: np.ndarray) -> np.ndarray:
        """Occupation-weighted probability density for every lane.

        ``occupations`` has shape ``(n_lanes, n_states)``; the result
        has shape ``(n_lanes, n_interior)`` and row ``i`` equals
        ``self.lane(i).density(occupations[i])``.
        """
        occ = np.asarray(occupations, dtype=float)
        if occ.shape != self.energies.shape:
            raise ConfigurationError(
                f"occupations must have shape {self.energies.shape}, "
                f"got {occ.shape}"
            )
        return np.einsum(
            "lnk,lk->ln", np.abs(self.wavefunctions) ** 2, occ
        )


def _hamiltonian_diagonals(
    grid: Grid1D, potentials_j: np.ndarray, effective_mass_kg: float
) -> "tuple[np.ndarray, float, float]":
    """Interior-node Hamiltonian diagonals for a stack of potentials.

    Returns ``(diag, kinetic, h)`` with ``diag`` of shape
    ``(n_lanes, n_interior)``; the off-diagonal is the constant
    ``-kinetic``.
    """
    if not grid.is_uniform:
        raise ConfigurationError("Schrodinger solver requires a uniform grid")
    if effective_mass_kg <= 0.0:
        raise ConfigurationError("effective mass must be positive")
    potentials = np.atleast_2d(np.asarray(potentials_j, dtype=float))
    if potentials.shape[1] != grid.n:
        raise ConfigurationError(
            f"potentials must be per-node (length {grid.n}), "
            f"got {potentials.shape[1]}"
        )
    if grid.n - 2 < 1:
        raise ConfigurationError("grid too small for interior eigenproblem")
    h = float(grid.spacing[0])
    kinetic = HBAR**2 / (2.0 * effective_mass_kg * h * h)
    diag = 2.0 * kinetic + potentials[:, 1:-1]
    return diag, kinetic, h


def solve_schrodinger_1d_batch(
    grid: Grid1D,
    potentials_j: np.ndarray,
    effective_mass_kg: float,
    n_states: int = 4,
) -> BoundStatesBatch:
    """Solve a stack of 1-D Schrodinger problems on one grid.

    ``potentials_j`` has shape ``(n_lanes, grid.n)``; every lane is
    solved with the same LAPACK tridiagonal eigensolver as
    :func:`solve_schrodinger_1d` (Hamiltonian assembly and off-diagonal
    storage amortized over the stack), so lane ``i`` matches the scalar
    solve of ``potentials_j[i]`` to round-off. This is the cold-start
    kernel of the batched Poisson-Schrodinger solver; warm
    self-consistency steps go through
    :func:`refine_bound_states_batch` instead.
    """
    diag, kinetic, h = _hamiltonian_diagonals(
        grid, potentials_j, effective_mass_kg
    )
    n_lanes, n_interior = diag.shape
    n_states = min(n_states, n_interior)
    offdiag = np.full(n_interior - 1, -kinetic)

    energies = np.empty((n_lanes, n_states))
    vectors = np.empty((n_lanes, n_interior, n_states))
    for i in range(n_lanes):
        energies[i], vectors[i] = eigh_tridiagonal(
            diag[i], offdiag, select="i", select_range=(0, n_states - 1)
        )
    norms = np.sqrt(np.sum(np.abs(vectors) ** 2, axis=1, keepdims=True) * h)
    vectors = vectors / norms
    return BoundStatesBatch(energies=energies, wavefunctions=vectors, grid=grid)


def _apply_tridiagonal(
    diag: np.ndarray, off: float, vectors: np.ndarray
) -> np.ndarray:
    """``T @ v`` for stacked vectors, shape ``(..., n)`` (elementwise)."""
    out = diag * vectors
    out[..., :-1] += off * vectors[..., 1:]
    out[..., 1:] += off * vectors[..., :-1]
    return out


def _sturm_counts_below(
    diag: np.ndarray, off: float, shifts: np.ndarray
) -> np.ndarray:
    """Eigenvalues of each lane's tridiagonal strictly below each shift.

    One vectorized pass of the standard Sturm-ratio recurrence
    ``q_k = (d_k - shift) - t^2 / q_{k-1}`` (negative ``q`` values count
    eigenvalues below the shift), evaluated for every (lane, shift)
    pair at once with the LAPACK-style pivot floor. This is the exact
    index certificate the Rayleigh-quotient tracker uses to prove a
    refined eigenvalue really is the k-th one.
    """
    shifted = diag[:, np.newaxis, :] - shifts[..., np.newaxis]
    t2 = off * off
    pivmin = np.finfo(float).tiny * max(t2, 1.0)
    q = shifted[..., 0]
    q = np.where(np.abs(q) < pivmin, -pivmin, q)
    counts = (q < 0.0).astype(int)
    for k in range(1, diag.shape[-1]):
        q = shifted[..., k] - t2 / q
        q = np.where(np.abs(q) < pivmin, -pivmin, q)
        counts += q < 0.0
    return counts


def refine_bound_states_batch(
    grid: Grid1D,
    potentials_j: np.ndarray,
    effective_mass_kg: float,
    guess: BoundStatesBatch,
    n_sweeps: int = 2,
    residual_rtol: float = 1e-12,
) -> BoundStatesBatch:
    """Track a batch of eigenpairs across a small Hamiltonian update.

    Given the eigenpairs of the *previous* potentials, polish them into
    the eigenpairs of the new ``potentials_j`` by Rayleigh-quotient
    iteration: each sweep computes every (lane, level) Rayleigh shift,
    then runs all the shifted inverse-iteration solves as one
    block-diagonal banded solve. Convergence is cubic, so two sweeps
    from a nearby guess reach machine precision.

    Every refined pair is verified -- relative residual below
    ``residual_rtol`` (times the Hamiltonian scale), levels ascending,
    and an exact branch certificate: a vectorized Sturm count proves
    that precisely ``k`` eigenvalues lie below the ``k``-th refined
    level, so a guess that drifted onto an excited branch cannot be
    returned as a lower state. Lanes failing any check are recomputed
    with the exact per-lane solver, so the result matches
    :func:`solve_schrodinger_1d_batch` to round-off regardless of how
    good the guess was; only the *speed* depends on it.
    """
    diag, kinetic, h = _hamiltonian_diagonals(
        grid, potentials_j, effective_mass_kg
    )
    n_lanes, n_interior = diag.shape
    n_states = guess.n_states
    if guess.energies.shape[0] != n_lanes or guess.wavefunctions.shape[1] != (
        n_interior
    ):
        raise ConfigurationError(
            "guess shape does not match the potentials batch"
        )
    scale = float(np.max(np.abs(diag))) + 2.0 * kinetic

    # Work lane-level major: (n_lanes, n_states, n_interior).
    v = np.swapaxes(guess.wavefunctions, 1, 2).copy()
    v = v / np.linalg.norm(v, axis=2, keepdims=True)
    d = diag[:, np.newaxis, :]

    mu = np.empty((n_lanes, n_states))
    for _ in range(max(int(n_sweeps), 1)):
        tv = _apply_tridiagonal(d, -kinetic, v)
        mu = np.sum(v * tv, axis=2)
        # A tiny shift offset keeps the inverse-iteration matrix
        # nonsingular when the guess is already exact; it only bounds
        # the per-sweep error reduction, not the attainable accuracy.
        shifted = d - (mu + 1e-14 * scale)[..., np.newaxis]
        w = solve_tridiagonal_batch(
            np.full(n_interior - 1, -kinetic),
            shifted.reshape(-1, n_interior),
            np.full(n_interior - 1, -kinetic),
            v.reshape(-1, n_interior),
        ).reshape(v.shape)
        v = w / np.linalg.norm(w, axis=2, keepdims=True)

    tv = _apply_tridiagonal(d, -kinetic, v)
    mu = np.sum(v * tv, axis=2)
    residuals = np.linalg.norm(tv - mu[..., np.newaxis] * v, axis=2)

    # Restore ascending level order lane by lane (RQI preserves the
    # branch, but verify rather than assume).
    order = np.argsort(mu, axis=1)
    mu = np.take_along_axis(mu, order, axis=1)
    residuals = np.take_along_axis(residuals, order, axis=1)
    v = np.take_along_axis(v, order[..., np.newaxis], axis=1)

    # Accept a lane only with a full certificate: every pair converged
    # (small residual), levels ascending, and -- the branch proof --
    # exactly k eigenvalues lie below the k-th refined level (one
    # vectorized Sturm-count pass). A guess that drifted onto an
    # excited branch fails the count and falls back, even for a
    # single-state batch.
    ok = np.all(residuals <= residual_rtol * scale, axis=1)
    if n_states > 1:
        ok &= np.all(np.diff(mu, axis=1) > 0.0, axis=1)
    slack = 1e3 * residual_rtol * scale
    counts = _sturm_counts_below(diag, -kinetic, mu - slack)
    ok &= np.all(counts == np.arange(n_states), axis=1)

    energies = mu
    vectors = np.swapaxes(v, 1, 2)
    if not np.all(ok):
        offdiag = np.full(n_interior - 1, -kinetic)
        for i in np.nonzero(~ok)[0]:
            energies[i], vecs = eigh_tridiagonal(
                diag[i], offdiag, select="i", select_range=(0, n_states - 1)
            )
            vectors[i] = vecs / np.linalg.norm(vecs, axis=0, keepdims=True)

    norms = np.sqrt(np.sum(np.abs(vectors) ** 2, axis=1, keepdims=True) * h)
    vectors = vectors / norms
    return BoundStatesBatch(
        energies=energies, wavefunctions=vectors, grid=grid
    )
