"""Piecewise-constant transfer-matrix transmission solver.

Computes the exact quantum-mechanical transmission probability through an
arbitrary 1-D potential profile approximated by constant-potential slabs,
with BenDaniel-Duke (mass-weighted) interface matching. This is the
reference model that the Fowler-Nordheim closed form and the WKB
approximation are benchmarked against in the ablation experiments.

Two evaluation paths share the same matrix algebra:

* :func:`transmission_probability` -- the scalar reference, one energy
  per call, multiplying 2x2 interface/propagation matrices in Python.
* :func:`transmission_probability_batch` -- the vectorized backend: the
  per-segment matrices are stacked over the energy axis as
  ``(n_energy, 2, 2)`` arrays and reduced with batched ``matmul`` in the
  identical left-to-right order, so every energy lane reproduces the
  scalar result to floating-point round-off while the whole
  Tsu-Esaki energy grid costs one pass over the segments.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..constants import HBAR
from ..errors import ConfigurationError


@dataclass(frozen=True)
class BarrierSegment:
    """One constant-potential slab of a piecewise barrier.

    Attributes
    ----------
    width_m:
        Slab thickness [m]; must be positive.
    potential_j:
        Potential energy inside the slab [J].
    mass_kg:
        Effective mass inside the slab [kg].
    """

    width_m: float
    potential_j: float
    mass_kg: float

    def __post_init__(self) -> None:
        if self.width_m <= 0.0:
            raise ConfigurationError("segment width must be positive")
        if self.mass_kg <= 0.0:
            raise ConfigurationError("segment mass must be positive")


@dataclass(frozen=True)
class PiecewiseBarrier:
    """A 1-D barrier between two semi-infinite leads.

    Attributes
    ----------
    segments:
        The slabs, ordered from the left lead to the right lead.
    lead_potential_left_j, lead_potential_right_j:
        Asymptotic potentials of the leads [J].
    lead_mass_left_kg, lead_mass_right_kg:
        Effective masses in the leads [kg].
    """

    segments: Sequence[BarrierSegment]
    lead_potential_left_j: float = 0.0
    lead_potential_right_j: float = 0.0
    lead_mass_left_kg: float = 9.1093837015e-31
    lead_mass_right_kg: float = 9.1093837015e-31

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("barrier needs at least one segment")
        if self.lead_mass_left_kg <= 0.0 or self.lead_mass_right_kg <= 0.0:
            raise ConfigurationError("lead masses must be positive")

    @property
    def total_width_m(self) -> float:
        """Total barrier thickness [m]."""
        return sum(seg.width_m for seg in self.segments)

    @staticmethod
    def from_profile(
        potential_fn: Callable[[float], float],
        width_m: float,
        mass_kg: float,
        n_slabs: int = 200,
        lead_potential_left_j: float = 0.0,
        lead_potential_right_j: float = 0.0,
        lead_mass_kg: float = 9.1093837015e-31,
    ) -> "PiecewiseBarrier":
        """Discretise a smooth potential profile into equal-width slabs.

        ``potential_fn`` maps position in ``[0, width_m]`` to potential
        energy [J]; each slab takes the profile value at its midpoint.
        """
        if width_m <= 0.0:
            raise ConfigurationError("barrier width must be positive")
        if n_slabs < 1:
            raise ConfigurationError("need at least one slab")
        dx = width_m / n_slabs
        midpoints = (np.arange(n_slabs) + 0.5) * dx
        segments = tuple(
            BarrierSegment(dx, float(potential_fn(float(x))), mass_kg)
            for x in midpoints
        )
        return PiecewiseBarrier(
            segments=segments,
            lead_potential_left_j=lead_potential_left_j,
            lead_potential_right_j=lead_potential_right_j,
            lead_mass_left_kg=lead_mass_kg,
            lead_mass_right_kg=lead_mass_kg,
        )


#: Energy floor regularising E == V exactly at a band edge [J] (1 neV).
_EDGE_EPSILON_J = 1.602176634e-28


def _wavevector(energy_j: float, potential_j: float, mass_kg: float) -> complex:
    """Complex wavevector ``k = sqrt(2m(E - V))/hbar`` (evanescent if E < V).

    Energies exactly at a band edge (E == V) give k = 0, which breaks
    the interface matching; they are nudged by one nano-eV, a
    measure-zero regularisation that keeps T(E) continuous.
    """
    delta = energy_j - potential_j
    if delta == 0.0:
        delta = _EDGE_EPSILON_J
    return cmath.sqrt(2.0 * mass_kg * complex(delta)) / HBAR


def _wavevector_array(
    energies_j: np.ndarray, potential_j: float, mass_kg: float
) -> np.ndarray:
    """Vectorized :func:`_wavevector`: complex ``k(E)`` for an energy array.

    Applies the same one-nano-eV band-edge nudge as the scalar form so
    batch lanes stay bit-comparable with per-energy calls.
    """
    delta = energies_j - potential_j
    delta = np.where(delta == 0.0, _EDGE_EPSILON_J, delta)
    return np.sqrt(2.0 * mass_kg * delta.astype(complex)) / HBAR


def transmission_probability_batch(
    barrier: PiecewiseBarrier, energies_j
) -> np.ndarray:
    """Batched :func:`transmission_probability` over an energy array.

    Parameters
    ----------
    barrier:
        Piecewise-constant barrier specification (shared by all lanes).
    energies_j:
        Incident energies [J]; any array shape (or a scalar).

    Returns
    -------
    numpy.ndarray
        Transmission probabilities with the shape of ``energies_j``;
        each lane matches the scalar reference to round-off. The
        reduction walks the segments once, multiplying stacked
        ``(n_energy, 2, 2)`` interface/propagation matrices with batched
        ``matmul`` in the scalar path's left-to-right order (the
        diagonal propagation factor is fused as a column scaling, which
        is the same arithmetic as the explicit matrix product).
    """
    shape = np.shape(energies_j)
    energies = np.asarray(energies_j, dtype=float).reshape(-1)
    n = energies.size

    # Region list: left lead | slabs | right lead (wavevectors (n,)).
    ks = [
        _wavevector_array(
            energies, barrier.lead_potential_left_j, barrier.lead_mass_left_kg
        )
    ]
    masses = [barrier.lead_mass_left_kg]
    widths = [0.0]
    for seg in barrier.segments:
        ks.append(_wavevector_array(energies, seg.potential_j, seg.mass_kg))
        masses.append(seg.mass_kg)
        widths.append(seg.width_m)
    ks.append(
        _wavevector_array(
            energies, barrier.lead_potential_right_j, barrier.lead_mass_right_kg
        )
    )
    masses.append(barrier.lead_mass_right_kg)
    k_left, k_right = ks[0], ks[-1]

    total = np.broadcast_to(np.eye(2, dtype=complex), (n, 2, 2)).copy()
    interface = np.empty((n, 2, 2), dtype=complex)
    for j in range(len(ks) - 1):
        r = (ks[j + 1] * masses[j]) / (ks[j] * masses[j + 1])
        half_plus = 0.5 * (1.0 + r)
        half_minus = 0.5 * (1.0 - r)
        interface[:, 0, 0] = half_plus
        interface[:, 0, 1] = half_minus
        interface[:, 1, 0] = half_minus
        interface[:, 1, 1] = half_plus
        if j + 1 < len(ks) - 1:
            phase = ks[j + 1] * widths[j + 1]
            step = interface.copy()
            step[:, :, 0] *= np.exp(-1j * phase)[:, np.newaxis]
            step[:, :, 1] *= np.exp(1j * phase)[:, np.newaxis]
            total = total @ step
        else:
            total = total @ interface

    m00 = total[:, 0, 0]
    zero_m00 = m00 == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        t_amplitude = 1.0 / np.where(zero_m00, 1.0, m00)
        flux_ratio = (k_right.real / barrier.lead_mass_right_kg) / (
            k_left.real / barrier.lead_mass_left_kg
        )
        t_prob = flux_ratio * np.abs(t_amplitude) ** 2
    t_prob = np.where(zero_m00, 1.0, t_prob)
    t_prob = np.where(np.isfinite(t_prob), t_prob, 0.0)
    t_prob = np.clip(t_prob, 0.0, 1.0)
    evanescent = (energies <= barrier.lead_potential_left_j) | (
        energies <= barrier.lead_potential_right_j
    )
    t_prob = np.where(evanescent, 0.0, t_prob)
    return t_prob.reshape(shape)


def transmission_probability(barrier: PiecewiseBarrier, energy_j: float) -> float:
    """Exact transmission probability ``T(E)`` through the barrier.

    Parameters
    ----------
    barrier:
        Piecewise-constant barrier specification.
    energy_j:
        Incident electron energy [J], measured on the same scale as the
        segment potentials. Must be above both lead potentials for a
        propagating scattering state; otherwise the transmission is zero.

    Returns
    -------
    float
        Transmission probability in ``[0, 1]``.
    """
    if energy_j <= barrier.lead_potential_left_j:
        return 0.0
    if energy_j <= barrier.lead_potential_right_j:
        return 0.0

    k_left = _wavevector(
        energy_j, barrier.lead_potential_left_j, barrier.lead_mass_left_kg
    )
    k_right = _wavevector(
        energy_j, barrier.lead_potential_right_j, barrier.lead_mass_right_kg
    )

    # Build the region list: left lead | slabs | right lead.
    ks = [k_left]
    masses = [barrier.lead_mass_left_kg]
    widths = [0.0]
    for seg in barrier.segments:
        ks.append(_wavevector(energy_j, seg.potential_j, seg.mass_kg))
        masses.append(seg.mass_kg)
        widths.append(seg.width_m)
    ks.append(k_right)
    masses.append(barrier.lead_mass_right_kg)

    # Transfer matrix taking right-lead coefficients to left-lead ones:
    # (A_L, B_L)^T = M (A_R, B_R)^T with B_R = 0 => t = 1 / M[0, 0].
    total = np.eye(2, dtype=complex)
    for j in range(len(ks) - 1):
        k1, m1 = ks[j], masses[j]
        k2, m2 = ks[j + 1], masses[j + 1]
        # Velocity ratio for BenDaniel-Duke matching psi'/m continuity.
        r = (k2 * m1) / (k1 * m2)
        interface = 0.5 * np.array(
            [[1.0 + r, 1.0 - r], [1.0 - r, 1.0 + r]], dtype=complex
        )
        if j + 1 < len(ks) - 1:
            phase = ks[j + 1] * widths[j + 1]
            propagation = np.array(
                [
                    [cmath.exp(-1j * phase), 0.0],
                    [0.0, cmath.exp(1j * phase)],
                ],
                dtype=complex,
            )
            total = total @ interface @ propagation
        else:
            total = total @ interface

    m00 = total[0, 0]
    if m00 == 0:
        return 1.0
    t_amplitude = 1.0 / m00
    flux_ratio = (k_right.real / barrier.lead_mass_right_kg) / (
        k_left.real / barrier.lead_mass_left_kg
    )
    t_prob = flux_ratio * abs(t_amplitude) ** 2
    if not math.isfinite(t_prob):
        return 0.0
    return float(min(max(t_prob, 0.0), 1.0))
