"""Direct tunneling through trapezoidal (sub-FN) barriers.

When the oxide voltage drop is smaller than the barrier height the
electron exits the dielectric before the band crosses its energy: the
barrier is trapezoidal rather than triangular, and the paper notes this
regime dominates for ultra-thin (2-5 nm) oxides at low bias. The
standard closed form modifies the FN exponent by the factor
``1 - (1 - V_ox/phi_B)^{3/2}``; it reduces exactly to Fowler-Nordheim as
``V_ox -> phi_B`` from below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .barriers import TunnelBarrier
from .fowler_nordheim import fn_coefficient_a, fn_coefficient_b


@dataclass(frozen=True)
class DirectTunnelingModel:
    """Closed-form direct-tunneling current for one barrier."""

    barrier: TunnelBarrier

    def current_density_from_voltage(self, oxide_voltage_v):
        """Signed direct-tunneling current density [A/m^2].

        For ``|V_ox| >= phi_B`` this continuously switches to the pure
        FN expression (the correction factor saturates at 1).
        """
        voltage = np.asarray(oxide_voltage_v, dtype=float)
        phi = self.barrier.barrier_height_ev
        a = fn_coefficient_a(phi)
        b = fn_coefficient_b(phi, self.barrier.mass_ratio)

        v_abs = np.abs(voltage)
        field = v_abs / self.barrier.thickness_m
        ratio = np.clip(1.0 - v_abs / phi, 0.0, 1.0)
        correction = 1.0 - ratio**1.5
        with np.errstate(divide="ignore", invalid="ignore"):
            exponent = np.where(
                field > 0.0, -b * correction / np.where(field > 0, field, 1.0), -np.inf
            )
            j = a * field**2 * np.exp(exponent)
        j = np.where(field > 0.0, j, 0.0)
        signed = np.sign(voltage) * j
        if np.isscalar(oxide_voltage_v):
            return float(signed)
        return signed

    def suppression_vs_fn(self, oxide_voltage_v: float) -> float:
        """Ratio of the trapezoidal correction exponent to the FN one.

        Returns the factor ``1 - (1 - V/phi)^{3/2}`` in ``[0, 1]``; a
        value of 1 means the barrier is fully triangular (FN regime).
        """
        if oxide_voltage_v < 0.0:
            raise ConfigurationError("use the voltage magnitude")
        ratio = max(0.0, 1.0 - oxide_voltage_v / self.barrier.barrier_height_ev)
        return 1.0 - ratio**1.5
