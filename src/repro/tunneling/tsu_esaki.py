"""Tsu-Esaki current integral with pluggable transmission models.

The closed-form Fowler-Nordheim expression is a zero-temperature,
triangular-barrier approximation of the general current integral

.. math::

    J = \\frac{q m_e k T}{2 \\pi^2 \\hbar^3}
        \\int T(E_x) \\,
        \\ln\\!\\frac{1 + e^{(E_F - E_x)/kT}}{1 + e^{(E_F - E_x - qV)/kT}}
        \\; dE_x

(Tsu & Esaki, APL 22, 562 (1973)). This module evaluates the integral
with either the exact transfer-matrix transmission or the WKB
transmission, giving the reference curves the ablation benchmark
compares the paper's closed form against.

The energy integral runs on the vectorized solver backend: one
:func:`~repro.solver.wkb.wkb_transmission_batch` (or
:func:`~repro.solver.transfer_matrix.transmission_probability_batch`)
call evaluates the transmission of the whole energy grid, the supply
function is a fused array expression, and a single ``np.trapezoid``
closes the integral. The per-energy scalar loop is retained as
:meth:`TsuEsakiModel.current_density_scalar_reference` -- the parity
and benchmark baseline, not a second model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from ..constants import (
    BOLTZMANN,
    ELECTRON_MASS,
    ELEMENTARY_CHARGE,
    HBAR,
)
from ..errors import ConfigurationError
from ..solver.transfer_matrix import (
    PiecewiseBarrier,
    transmission_probability,
    transmission_probability_batch,
)
from ..solver.wkb import wkb_transmission, wkb_transmission_batch
from ..units import ev_to_j
from .barriers import TunnelBarrier

TransmissionMethod = Literal["transfer_matrix", "wkb"]


@dataclass(frozen=True)
class TsuEsakiModel:
    """Numerical tunneling-current model for a biased barrier.

    Attributes
    ----------
    barrier:
        The tunnel junction.
    method:
        ``"transfer_matrix"`` (exact, slabbed) or ``"wkb"``.
    emitter_fermi_ev:
        Fermi energy of the emitter above its band bottom [eV]; sets the
        supply of tunneling electrons.
    temperature_k:
        Emitter temperature [K].
    n_energy:
        Number of energy samples for the current integral.
    n_slabs:
        Barrier discretisation used by the transfer-matrix method.
    """

    barrier: TunnelBarrier
    method: TransmissionMethod = "transfer_matrix"
    emitter_fermi_ev: float = 0.2
    temperature_k: float = 300.0
    n_energy: int = 160
    n_slabs: int = 60

    def __post_init__(self) -> None:
        if self.emitter_fermi_ev <= 0.0:
            raise ConfigurationError("emitter Fermi energy must be positive")
        if self.temperature_k <= 0.0:
            raise ConfigurationError("temperature must be positive")
        if self.n_energy < 8:
            raise ConfigurationError("need at least 8 energy samples")

    def transmission(self, energy_ev: float, oxide_voltage_v: float) -> float:
        """Transmission probability at longitudinal energy ``E_x`` [eV].

        Energies are measured from the emitter band bottom; the barrier
        top sits at ``E_F + phi_B``.
        """
        if oxide_voltage_v < 0.0:
            raise ConfigurationError("use the voltage magnitude")
        energy_j = ev_to_j(energy_ev)
        barrier_top_j = ev_to_j(self.emitter_fermi_ev + self.barrier.barrier_height_ev)
        thickness = self.barrier.thickness_m
        drop_j = ev_to_j(oxide_voltage_v)
        mass = self.barrier.mass_kg

        def profile(x_m: float) -> float:
            return barrier_top_j - drop_j * (x_m / thickness)

        if self.method == "wkb":
            return wkb_transmission(
                profile, energy_j, mass, 0.0, thickness, n_points=501
            )
        piecewise = PiecewiseBarrier.from_profile(
            profile,
            thickness,
            mass,
            n_slabs=self.n_slabs,
            lead_potential_left_j=0.0,
            lead_potential_right_j=-drop_j,
            lead_mass_kg=ELECTRON_MASS,
        )
        return transmission_probability(piecewise, energy_j)

    def transmission_batch(self, energies_ev, oxide_voltage_v: float):
        """Batched :meth:`transmission` over an energy array [eV].

        Evaluates the same barrier profile through the vectorized solver
        backend (:func:`~repro.solver.wkb.wkb_transmission_batch` or
        :func:`~repro.solver.transfer_matrix.transmission_probability_batch`);
        element ``i`` matches ``transmission(energies_ev[i], V)`` to
        floating-point round-off.
        """
        if oxide_voltage_v < 0.0:
            raise ConfigurationError("use the voltage magnitude")
        energies_j = ev_to_j(np.asarray(energies_ev, dtype=float))
        barrier_top_j = ev_to_j(self.emitter_fermi_ev + self.barrier.barrier_height_ev)
        thickness = self.barrier.thickness_m
        drop_j = ev_to_j(oxide_voltage_v)
        mass = self.barrier.mass_kg

        def profile(x_m):
            return barrier_top_j - drop_j * (x_m / thickness)

        if self.method == "wkb":
            return wkb_transmission_batch(
                profile, energies_j, mass, 0.0, thickness, n_points=501
            )
        piecewise = PiecewiseBarrier.from_profile(
            profile,
            thickness,
            mass,
            n_slabs=self.n_slabs,
            lead_potential_left_j=0.0,
            lead_potential_right_j=-drop_j,
            lead_mass_kg=ELECTRON_MASS,
        )
        return transmission_probability_batch(piecewise, energies_j)

    def supply_function(self, energy_ev: float, oxide_voltage_v: float) -> float:
        """Log-occupancy difference between the two electrodes [unitless]."""
        return float(self.supply_function_batch(energy_ev, oxide_voltage_v))

    def supply_function_batch(self, energies_ev, oxide_voltage_v):
        """Vectorized :meth:`supply_function` over broadcastable arrays.

        Both the energies [eV] and the oxide voltage [V] may be scalars
        or arrays; they broadcast together.
        """
        kt_j = BOLTZMANN * self.temperature_k
        ef_j = ev_to_j(self.emitter_fermi_ev)
        e_j = ev_to_j(np.asarray(energies_ev, dtype=float))
        qv_j = ev_to_j(np.asarray(oxide_voltage_v, dtype=float))
        up = np.logaddexp(0.0, (ef_j - e_j) / kt_j)
        down = np.logaddexp(0.0, (ef_j - e_j - qv_j) / kt_j)
        return up - down

    def _energy_grid_ev(self) -> np.ndarray:
        """The longitudinal-energy integration grid [eV].

        Runs up to a few kT above the Fermi level; transmission at
        higher energies is larger but occupancy dies exponentially.
        """
        kt_j = BOLTZMANN * self.temperature_k
        e_max_ev = self.emitter_fermi_ev + 10.0 * kt_j / ELEMENTARY_CHARGE
        return np.linspace(1e-4, e_max_ev, self.n_energy)

    @property
    def _prefactor(self) -> float:
        """The Tsu-Esaki current prefactor ``q m kT / (2 pi^2 hbar^3)``."""
        kt_j = BOLTZMANN * self.temperature_k
        return (
            ELEMENTARY_CHARGE
            * ELECTRON_MASS
            * kt_j
            / (2.0 * math.pi**2 * HBAR**3)
        )

    def current_density_from_voltage(self, oxide_voltage_v: float) -> float:
        """Tunneling current density [A/m^2] at an oxide voltage.

        The returned value is signed like the FN model: positive for
        positive oxide voltage. The energy integral is fully vectorized:
        one batched transmission call, one fused supply evaluation, one
        ``np.trapezoid`` -- numerically identical (to round-off) to the
        retained per-energy reference
        :meth:`current_density_scalar_reference`.
        """
        v_abs = abs(oxide_voltage_v)
        if v_abs == 0.0:
            return 0.0
        energies = self._energy_grid_ev()
        integrand = self.transmission_batch(
            energies, v_abs
        ) * self.supply_function_batch(energies, v_abs)
        integral_j = np.trapezoid(integrand, energies * ELEMENTARY_CHARGE)
        j = self._prefactor * integral_j
        return math.copysign(j, oxide_voltage_v)

    def current_density_batch(self, oxide_voltages_v) -> np.ndarray:
        """Vectorized current density for an array of oxide voltages.

        The WKB method evaluates the whole (bias x energy x position)
        barrier grid through one :func:`~repro.solver.wkb.wkb_action_batch`
        trapezoid; the transfer-matrix method batches the energy axis per
        bias (the slab discretisation differs per voltage). Element ``i``
        matches ``current_density_from_voltage(oxide_voltages_v[i])`` to
        floating-point round-off.
        """
        voltages = np.asarray(oxide_voltages_v, dtype=float)
        shape = voltages.shape
        flat = voltages.reshape(-1)
        energies = self._energy_grid_ev()
        v_abs = np.abs(flat)
        if self.method == "wkb":
            barrier_top_j = ev_to_j(
                self.emitter_fermi_ev + self.barrier.barrier_height_ev
            )
            thickness = self.barrier.thickness_m
            drops_j = ev_to_j(v_abs)

            def profiles(x_m):
                return barrier_top_j - drops_j[:, np.newaxis, np.newaxis] * (
                    x_m / thickness
                )

            transmissions = wkb_transmission_batch(
                profiles,
                ev_to_j(energies),
                self.barrier.mass_kg,
                0.0,
                thickness,
                n_points=501,
            )
        else:
            transmissions = np.array(
                [self.transmission_batch(energies, float(v)) for v in v_abs]
            )
        supply = self.supply_function_batch(energies, v_abs[:, np.newaxis])
        integral_j = np.trapezoid(
            transmissions * supply, energies * ELEMENTARY_CHARGE, axis=-1
        )
        j = np.where(v_abs == 0.0, 0.0, self._prefactor * integral_j)
        return (np.copysign(j, flat)).reshape(shape)

    def current_density_scalar_reference(self, oxide_voltage_v: float) -> float:
        """The pre-vectorization energy integral, retained verbatim.

        One scalar :meth:`transmission` and :meth:`supply_function` call
        per energy sample -- the parity baseline the batched kernels are
        tested and benchmarked against. Not used on any hot path.
        """
        v_abs = abs(oxide_voltage_v)
        if v_abs == 0.0:
            return 0.0
        energies = self._energy_grid_ev()
        integrand = np.array(
            [
                self.transmission(float(e), v_abs)
                * self.supply_function(float(e), v_abs)
                for e in energies
            ]
        )
        integral_j = np.trapezoid(integrand, energies * ELEMENTARY_CHARGE)
        j = self._prefactor * integral_j
        return math.copysign(j, oxide_voltage_v)


def transmission_model(
    barrier: TunnelBarrier, method: TransmissionMethod = "transfer_matrix"
) -> Callable[[float, float], float]:
    """Convenience factory returning ``T(E_ev, V_ox)`` for a barrier."""
    model = TsuEsakiModel(barrier=barrier, method=method)
    return model.transmission
