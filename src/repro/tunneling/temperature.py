"""Finite-temperature correction to Fowler-Nordheim emission.

The FN closed form is a zero-temperature result. At finite temperature
the thermally broadened supply of electrons above the Fermi level
increases the current by the classic Good-Mueller factor

.. math::

    \\frac{J(T)}{J(0)} = \\frac{\\pi c k T}{\\sin(\\pi c k T)},
    \\qquad c = \\frac{2 \\sqrt{2 m_{ox} \\Phi_B}}{\\hbar q E}

valid while ``pi c k T < 1`` (far from the thermionic crossover). The
ablation benchmark ``abl-temp`` sweeps this correction over 200-400 K.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import BOLTZMANN, ELECTRON_MASS, ELEMENTARY_CHARGE, HBAR
from ..errors import ConfigurationError, RegimeError
from .barriers import TunnelBarrier
from .fowler_nordheim import FowlerNordheimModel


def temperature_sensitivity_c(
    barrier: TunnelBarrier, field_v_per_m: float
) -> float:
    """The ``c`` parameter [1/J]: energy-sensitivity of the WKB action."""
    if field_v_per_m <= 0.0:
        raise ConfigurationError("field must be positive")
    return (
        2.0
        * math.sqrt(2.0 * barrier.mass_kg * barrier.barrier_height_j)
        / (HBAR * ELEMENTARY_CHARGE * field_v_per_m)
    )


def temperature_correction_factor(
    barrier: TunnelBarrier, field_v_per_m: float, temperature_k: float
) -> float:
    """Multiplicative correction ``pi c kT / sin(pi c kT)`` (>= 1).

    Raises
    ------
    RegimeError
        When ``c kT >= 1`` (i.e. ``pi c kT`` reaches the sine's zero):
        emission is no longer field-dominated and the expansion diverges.
    """
    if temperature_k < 0.0:
        raise ConfigurationError("temperature cannot be negative")
    if temperature_k == 0.0:
        return 1.0
    c = temperature_sensitivity_c(barrier, field_v_per_m)
    x = math.pi * c * BOLTZMANN * temperature_k
    if x >= math.pi:
        raise RegimeError(
            f"c*kT = {x / math.pi:.2f} >= 1 at E = {field_v_per_m:.2e} V/m, "
            f"T = {temperature_k} K: thermionic emission dominates and the "
            "FN temperature expansion diverges (sin(pi*c*kT) -> 0)"
        )
    return x / math.sin(x)


def temperature_correction_factor_batch(
    barrier_height_ev: float,
    mass_ratio: float,
    field_v_per_m: np.ndarray,
    temperature_k: float,
) -> np.ndarray:
    """Vectorized :func:`temperature_correction_factor` over a field array.

    The batch-engine form: ``c`` depends only on the barrier height,
    tunneling mass and the per-lane field (not on the oxide thickness),
    so a whole sweep's correction factors evaluate in one fused NumPy
    expression. Raises :class:`~repro.errors.RegimeError` if *any* lane
    reaches the thermionic crossover ``c kT >= 1``.
    """
    if temperature_k < 0.0:
        raise ConfigurationError("temperature cannot be negative")
    field = np.asarray(field_v_per_m, dtype=float)
    if np.any(field < 0.0):
        raise ConfigurationError("field magnitudes cannot be negative")
    factors = np.ones_like(field)
    positive = field > 0.0
    if temperature_k == 0.0 or not np.any(positive):
        return factors
    mass_kg = mass_ratio * ELECTRON_MASS
    barrier_j = barrier_height_ev * ELEMENTARY_CHARGE
    c = 2.0 * np.sqrt(2.0 * mass_kg * barrier_j) / (
        HBAR * ELEMENTARY_CHARGE * field[positive]
    )
    x = math.pi * c * BOLTZMANN * temperature_k
    if np.any(x >= math.pi):
        worst = float(np.max(x) / math.pi)
        raise RegimeError(
            f"c*kT = {worst:.2f} >= 1 at T = {temperature_k} K: thermionic "
            "emission dominates and the FN temperature expansion diverges"
        )
    factors[positive] = x / np.sin(x)
    return factors


def current_density_at_temperature(
    model: FowlerNordheimModel,
    field_v_per_m: float,
    temperature_k: float,
) -> float:
    """FN current density including the finite-temperature factor [A/m^2]."""
    base = model.current_density(field_v_per_m)
    factor = temperature_correction_factor(
        model.barrier, field_v_per_m, temperature_k
    )
    return base * factor
