"""Tunnel barrier descriptions shared by every tunneling model.

A :class:`TunnelBarrier` couples an emitter (characterised by its work
function) to a dielectric layer of a given thickness. Under bias the
conduction-band profile inside the dielectric tilts linearly; the
profile helpers here build the exact shapes used by the WKB and
transfer-matrix reference models, so that the closed-form
Fowler-Nordheim expression of the paper can be validated against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..constants import ELECTRON_MASS, ELEMENTARY_CHARGE
from ..errors import ConfigurationError
from ..materials.base import DielectricMaterial, barrier_height_ev
from ..units import ev_to_j


@dataclass(frozen=True)
class TunnelBarrier:
    """An emitter/dielectric tunnel junction.

    Attributes
    ----------
    barrier_height_ev:
        Conduction-band offset between emitter Fermi level and dielectric
        conduction band, ``phi_B`` [eV].
    thickness_m:
        Dielectric thickness [m].
    mass_ratio:
        Effective tunneling mass over the free-electron mass.
    relative_permittivity:
        Dielectric constant of the barrier (for image-force corrections).
    """

    barrier_height_ev: float
    thickness_m: float
    mass_ratio: float = 0.42
    relative_permittivity: float = 3.9

    def __post_init__(self) -> None:
        if self.barrier_height_ev <= 0.0:
            raise ConfigurationError("barrier height must be positive")
        if self.thickness_m <= 0.0:
            raise ConfigurationError("barrier thickness must be positive")
        if self.mass_ratio <= 0.0:
            raise ConfigurationError("mass ratio must be positive")
        if self.relative_permittivity <= 0.0:
            raise ConfigurationError("permittivity must be positive")

    @property
    def barrier_height_j(self) -> float:
        """Barrier height in joules."""
        return ev_to_j(self.barrier_height_ev)

    @property
    def mass_kg(self) -> float:
        """Tunneling effective mass [kg]."""
        return self.mass_ratio * ELECTRON_MASS

    @staticmethod
    def from_materials(
        emitter_work_function_ev: float,
        dielectric: DielectricMaterial,
        thickness_m: float,
    ) -> "TunnelBarrier":
        """Build the barrier of an emitter/dielectric interface."""
        return TunnelBarrier(
            barrier_height_ev=barrier_height_ev(
                emitter_work_function_ev, dielectric
            ),
            thickness_m=thickness_m,
            mass_ratio=dielectric.tunneling_mass_ratio,
            relative_permittivity=dielectric.relative_permittivity,
        )

    def voltage_drop_for_field(self, field_v_per_m: float) -> float:
        """Oxide voltage ``V_ox = E * thickness`` [V]."""
        return field_v_per_m * self.thickness_m

    def field_for_voltage(self, voltage_v: float) -> float:
        """Oxide field ``E = V_ox / thickness`` [V/m] (paper eq. (5))."""
        return voltage_v / self.thickness_m

    def profile_under_bias(
        self, field_v_per_m: float
    ) -> Callable[[float], float]:
        """Conduction-band profile V(x) [J] inside the biased dielectric.

        ``V(x) = phi_B - q E x`` measured from the emitter Fermi level;
        the triangular shape of paper Figure 2.
        """
        if field_v_per_m < 0.0:
            raise ConfigurationError("field must be non-negative")
        phi_j = self.barrier_height_j
        slope = ELEMENTARY_CHARGE * field_v_per_m

        def profile(x_m: float) -> float:
            return phi_j - slope * x_m

        return profile

    def exit_thickness_m(self, field_v_per_m: float) -> float:
        """Distance at which the tilted barrier crosses the Fermi level.

        In the Fowler-Nordheim regime (``V_ox > phi_B``) this is shorter
        than the physical thickness -- the "apparent thinning" of the
        barrier the paper describes; otherwise electrons must traverse
        the full dielectric (direct-tunneling regime).
        """
        if field_v_per_m <= 0.0:
            return self.thickness_m
        x_exit = self.barrier_height_ev / field_v_per_m
        return min(x_exit, self.thickness_m)

    def is_fowler_nordheim(self, voltage_v: float) -> bool:
        """True when ``V_ox > phi_B`` (triangular-barrier condition)."""
        return abs(voltage_v) > self.barrier_height_ev
