"""Tunneling regime classification.

Section II of the paper reviews the three conduction mechanisms of
floating-gate oxides -- Fowler-Nordheim, direct tunneling and
channel-hot-electron injection -- and the thickness/bias ranges where
each dominates (FN for oxides >~6 nm and high fields; direct for
2-5 nm at low bias; the contested 4-6 nm band in between). This module
encodes those rules so device code can warn when the closed-form FN
model is being used outside its validity window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import m_to_nm
from .barriers import TunnelBarrier


class TunnelingRegime(enum.Enum):
    """Dominant oxide conduction mechanism."""

    FOWLER_NORDHEIM = "fowler-nordheim"
    DIRECT = "direct"
    TRANSITIONAL = "transitional"
    NEGLIGIBLE = "negligible"


#: Oxide thickness below which direct tunneling can dominate [nm] (paper: 2-5 nm).
DIRECT_THICKNESS_MAX_NM = 5.0

#: Thickness above which FN is the accepted mechanism [nm] (paper refs [1], [6]).
FN_THICKNESS_MIN_NM = 6.0

#: Fields below this produce negligible tunneling in either regime [V/m].
NEGLIGIBLE_FIELD_V_PER_M = 1.0e8


@dataclass(frozen=True)
class RegimeAssessment:
    """Classification plus the quantities that drove it."""

    regime: TunnelingRegime
    oxide_voltage_v: float
    field_v_per_m: float
    triangular: bool
    thickness_nm: float
    rationale: str


def classify_regime(
    barrier: TunnelBarrier, oxide_voltage_v: float
) -> RegimeAssessment:
    """Classify the conduction regime of a biased barrier.

    The rules follow the paper's Section II: the barrier shape
    (``V_ox`` vs ``phi_B``) decides triangular-vs-trapezoidal, and the
    thickness bands decide which closed form is trustworthy.
    """
    v_abs = abs(oxide_voltage_v)
    field = v_abs / barrier.thickness_m
    thickness_nm = m_to_nm(barrier.thickness_m)
    triangular = v_abs > barrier.barrier_height_ev

    if field < NEGLIGIBLE_FIELD_V_PER_M:
        regime = TunnelingRegime.NEGLIGIBLE
        rationale = (
            f"field {field:.2e} V/m below the ~1e8 V/m floor; "
            "retention-scale leakage only"
        )
    elif triangular and thickness_nm >= FN_THICKNESS_MIN_NM:
        regime = TunnelingRegime.FOWLER_NORDHEIM
        rationale = (
            f"V_ox {v_abs:.2f} V exceeds phi_B "
            f"{barrier.barrier_height_ev:.2f} eV and the oxide is thick "
            f"({thickness_nm:.1f} nm >= {FN_THICKNESS_MIN_NM} nm)"
        )
    elif triangular:
        regime = TunnelingRegime.TRANSITIONAL
        rationale = (
            f"triangular barrier but thin oxide ({thickness_nm:.1f} nm); "
            "FN and direct components are comparable (the 4-6 nm debate "
            "discussed in the paper)"
        )
    elif thickness_nm <= DIRECT_THICKNESS_MAX_NM:
        regime = TunnelingRegime.DIRECT
        rationale = (
            f"V_ox {v_abs:.2f} V below phi_B in a "
            f"{thickness_nm:.1f} nm oxide: trapezoidal barrier"
        )
    else:
        regime = TunnelingRegime.NEGLIGIBLE
        rationale = (
            f"sub-barrier bias across a thick oxide "
            f"({thickness_nm:.1f} nm): current negligible"
        )
    return RegimeAssessment(
        regime=regime,
        oxide_voltage_v=oxide_voltage_v,
        field_v_per_m=field,
        triangular=triangular,
        thickness_nm=thickness_nm,
        rationale=rationale,
    )


def programming_voltage_window(
    barrier: TunnelBarrier,
    gate_coupling_ratio: float,
    max_field_v_per_m: float = 3.5e9,
) -> "tuple[float, float]":
    """Control-gate voltage band that puts the barrier in the FN regime.

    Lower edge: the gate voltage at which ``V_ox = phi_B`` (triangular
    onset). Upper edge: the voltage at which the oxide field reaches
    ``max_field_v_per_m``. The default ceiling is the transient
    programming-stress limit (~35 MV/cm) rather than the DC breakdown
    field: flash cells routinely program at fields above DC breakdown
    because the pulse is microseconds long (the paper's own operating
    point, VGS = 15 V / GCR 0.6 / 5 nm, is 18 MV/cm).
    """
    if not 0.0 < gate_coupling_ratio < 1.0:
        raise ConfigurationError("gate coupling ratio must be in (0, 1)")
    if max_field_v_per_m <= 0.0:
        raise ConfigurationError("max field must be positive")
    onset = barrier.barrier_height_ev / gate_coupling_ratio
    ceiling = max_field_v_per_m * barrier.thickness_m / gate_coupling_ratio
    if ceiling <= onset:
        raise ConfigurationError(
            "no FN window: breakdown guard reached before triangular onset "
            f"(onset {onset:.1f} V, ceiling {ceiling:.1f} V)"
        )
    return onset, ceiling
