"""Tunneling current models (the physics core of the paper).

The paper's programming/erase analysis rests on the Fowler-Nordheim
closed form (:class:`FowlerNordheimModel`, eqs. (1), (4)-(7)). Around it
this package provides the direct-tunneling closed form for sub-barrier
bias, the Tsu-Esaki numerical reference (with WKB or transfer-matrix
transmission), trap-assisted tunneling for degraded oxides, image-force
corrections, FN-plot parameter extraction, regime classification and the
finite-temperature correction.
"""

from .barriers import TunnelBarrier
from .channel_hot_electron import (
    CheOperatingPoint,
    LuckyElectronModel,
    compare_che_to_fn,
)
from .direct import DirectTunnelingModel
from .fn_plot import FnPlotFit, fit_fn_plot, fn_plot_coordinates
from .fowler_nordheim import (
    FowlerNordheimModel,
    fn_coefficient_a,
    fn_coefficient_b,
    fn_current_density,
)
from .image_force import (
    effective_barrier_ev,
    image_rounded_profile,
    schottky_lowering_ev,
)
from .regimes import (
    RegimeAssessment,
    TunnelingRegime,
    classify_regime,
    programming_voltage_window,
)
from .temperature import (
    current_density_at_temperature,
    temperature_correction_factor,
    temperature_sensitivity_c,
)
from .trap_assisted import TrapAssistedModel
from .tsu_esaki import TsuEsakiModel, transmission_model

__all__ = [
    "TunnelBarrier",
    "FowlerNordheimModel",
    "fn_coefficient_a",
    "fn_coefficient_b",
    "fn_current_density",
    "LuckyElectronModel",
    "CheOperatingPoint",
    "compare_che_to_fn",
    "DirectTunnelingModel",
    "TsuEsakiModel",
    "transmission_model",
    "TrapAssistedModel",
    "schottky_lowering_ev",
    "effective_barrier_ev",
    "image_rounded_profile",
    "FnPlotFit",
    "fit_fn_plot",
    "fn_plot_coordinates",
    "TunnelingRegime",
    "RegimeAssessment",
    "classify_regime",
    "programming_voltage_window",
    "temperature_correction_factor",
    "temperature_sensitivity_c",
    "current_density_at_temperature",
]
