"""Fowler-Nordheim tunneling current density (paper eqs. (1), (4)-(7)).

The paper's central model:

.. math::

    J_{FN} = A E^2 \\exp(-B / E)

with

.. math::

    A = \\frac{q^3}{16 \\pi^2 \\hbar \\Phi_B}, \\qquad
    B = \\frac{4}{3} \\frac{\\sqrt{2 m_{ox}}}{q \\hbar} \\Phi_B^{3/2}

(``Phi_B`` in joules inside the formulas). The paper's typography writes
``h``; the standard Lenzlinger-Snow coefficients use the reduced
constant, which reproduces the accepted experimental
``B ~ 2.4e10 V/m`` for the Si/SiO2 system, so that is what is
implemented (see DESIGN.md, "Physics notes").

Field-to-voltage mapping (paper eqs. (5)-(7)): ``E = (V_FG - V_S)/X_TO``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELEMENTARY_CHARGE, HBAR
from ..errors import ConfigurationError
from ..units import ev_to_j
from .barriers import TunnelBarrier


def fn_coefficient_a(barrier_height_ev):
    """Pre-exponential coefficient ``A = q^3 / (16 pi^2 hbar phi_B)``.

    Units: A/V^2 (current density per squared field). Accepts a scalar
    barrier height or an ndarray of heights (batch path).
    """
    phi_ev = np.asarray(barrier_height_ev, dtype=float)
    if np.any(phi_ev <= 0.0):
        raise ConfigurationError("barrier height must be positive")
    phi_j = ev_to_j(phi_ev)
    a = ELEMENTARY_CHARGE**3 / (16.0 * math.pi**2 * HBAR * phi_j)
    if np.isscalar(barrier_height_ev):
        return float(a)
    return a


def fn_coefficient_b(barrier_height_ev, mass_ratio):
    """Exponential slope ``B = (4/3) sqrt(2 m_ox) phi_B^{3/2} / (q hbar)``.

    Units: V/m. Accepts scalars or ndarrays (broadcast together).
    """
    phi_ev = np.asarray(barrier_height_ev, dtype=float)
    ratio = np.asarray(mass_ratio, dtype=float)
    if np.any(phi_ev <= 0.0):
        raise ConfigurationError("barrier height must be positive")
    if np.any(ratio <= 0.0):
        raise ConfigurationError("mass ratio must be positive")
    from ..constants import ELECTRON_MASS

    phi_j = ev_to_j(phi_ev)
    m_ox = ratio * ELECTRON_MASS
    b = (
        4.0
        / 3.0
        * np.sqrt(2.0 * m_ox)
        * phi_j**1.5
        / (ELEMENTARY_CHARGE * HBAR)
    )
    if np.isscalar(barrier_height_ev) and np.isscalar(mass_ratio):
        return float(b)
    return b


def fn_current_density(field_v_per_m, coefficient_a, coefficient_b):
    """Raw FN kernel ``J = A E^2 exp(-B/E)`` for arbitrary arrays [A/m^2].

    The batch engine's innermost loop: every argument may be a scalar or
    an ndarray and all three broadcast together. Zero field maps to zero
    current; negative fields are the caller's responsibility (the model
    wrappers validate signs, this kernel does not).
    """
    field = np.asarray(field_v_per_m, dtype=float)
    a = np.asarray(coefficient_a, dtype=float)
    b = np.asarray(coefficient_b, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        safe = np.where(field > 0.0, field, 1.0)
        exponent = np.where(field > 0.0, -b / safe, -np.inf)
        j = a * field**2 * np.exp(exponent)
    j = np.where(field > 0.0, j, 0.0)
    if (
        np.isscalar(field_v_per_m)
        and np.isscalar(coefficient_a)
        and np.isscalar(coefficient_b)
    ):
        return float(j)
    return j


@dataclass(frozen=True)
class FowlerNordheimModel:
    """Closed-form FN current model for one tunnel barrier.

    Attributes
    ----------
    barrier:
        The emitter/dielectric junction the current flows through.

    Examples
    --------
    >>> from repro.tunneling import TunnelBarrier, FowlerNordheimModel
    >>> barrier = TunnelBarrier(barrier_height_ev=3.2, thickness_m=5e-9)
    >>> model = FowlerNordheimModel(barrier)
    >>> j = model.current_density(1.0e9)  # field of 10 MV/cm
    """

    barrier: TunnelBarrier

    @property
    def coefficient_a(self) -> float:
        """``A`` [A/V^2]."""
        return fn_coefficient_a(self.barrier.barrier_height_ev)

    @property
    def coefficient_b(self) -> float:
        """``B`` [V/m]."""
        return fn_coefficient_b(
            self.barrier.barrier_height_ev, self.barrier.mass_ratio
        )

    def current_density(self, field_v_per_m):
        """FN current density ``J = A E^2 exp(-B/E)`` [A/m^2].

        Accepts a scalar or array field magnitude [V/m]; negative values
        are rejected (callers decide current direction from the sign of
        the oxide voltage, as the transient model does).
        """
        field = np.asarray(field_v_per_m, dtype=float)
        if np.any(field < 0.0):
            raise ConfigurationError(
                "field magnitude must be non-negative; sign the current "
                "at the call site"
            )
        j = fn_current_density(field, self.coefficient_a, self.coefficient_b)
        if np.isscalar(field_v_per_m):
            return float(j)
        return j

    def current_density_from_voltage(self, oxide_voltage_v):
        """FN current from the oxide voltage drop (paper eqs. (6)-(7)).

        ``E = V_ox / X_TO``; the returned density is *signed*: positive
        for positive oxide voltage (electrons flowing against the field
        into the collector), negative for negative voltage.
        """
        voltage = np.asarray(oxide_voltage_v, dtype=float)
        field = np.abs(voltage) / self.barrier.thickness_m
        j = self.current_density(field)
        signed = np.sign(voltage) * j
        if np.isscalar(oxide_voltage_v):
            return float(signed)
        return signed

    def field_for_target_current(
        self, target_j_a_m2: float, field_lo: float = 1e7, field_hi: float = 2e10
    ) -> float:
        """Invert J(E) for the field that produces a target density.

        The FN characteristic is strictly increasing in field, so a
        bracketing solve on the log of the ratio is robust across the
        ~30 decades the characteristic spans.
        """
        if target_j_a_m2 <= 0.0:
            raise ConfigurationError("target current density must be positive")
        from ..solver.rootfind import brentq_checked

        def objective(log_field: float) -> float:
            j = self.current_density(math.exp(log_field))
            if j <= 0.0:
                return -float("inf")
            return math.log(j) - math.log(target_j_a_m2)

        return math.exp(
            brentq_checked(objective, math.log(field_lo), math.log(field_hi))
        )
