"""Fowler-Nordheim plot construction and parameter extraction.

Experimentalists determine the FN coefficients from the linearised
characteristic ``ln(J/E^2) = ln A - B / E`` (the "FN plot"; paper
Section IV and refs [1]-[3], [9]). This module builds the plot from
(field, current) samples, fits the line, and inverts the fitted (A, B)
back into physical barrier parameters:

* from ``A = q^3/(16 pi^2 hbar phi_B)``: the barrier height,
* from ``B = (4/3) sqrt(2 m) phi_B^{3/2} / (q hbar)`` with that barrier
  height: the effective tunneling mass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELECTRON_MASS, ELEMENTARY_CHARGE, HBAR
from ..errors import ConfigurationError
from ..units import j_to_ev


@dataclass(frozen=True)
class FnPlotFit:
    """Result of a linear fit to the FN plot.

    Attributes
    ----------
    coefficient_a:
        Fitted pre-exponential ``A`` [A/V^2].
    coefficient_b:
        Fitted slope magnitude ``B`` [V/m].
    r_squared:
        Coefficient of determination of the linear fit.
    barrier_height_ev:
        Barrier height recovered from ``A``.
    mass_ratio:
        Effective mass ratio recovered from ``B`` given that barrier.
    """

    coefficient_a: float
    coefficient_b: float
    r_squared: float
    barrier_height_ev: float
    mass_ratio: float


def fn_plot_coordinates(
    field_v_per_m: np.ndarray, current_a_m2: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Transform (E, J) samples into FN-plot coordinates (1/E, ln(J/E^2))."""
    field = np.asarray(field_v_per_m, dtype=float)
    current = np.asarray(current_a_m2, dtype=float)
    if field.shape != current.shape:
        raise ConfigurationError("field and current arrays must match")
    if np.any(field <= 0.0) or np.any(current <= 0.0):
        raise ConfigurationError(
            "FN plot needs strictly positive fields and currents"
        )
    return 1.0 / field, np.log(current / field**2)


def fit_fn_plot(
    field_v_per_m: np.ndarray, current_a_m2: np.ndarray
) -> FnPlotFit:
    """Least-squares fit of the FN plot; recovers (A, B, phi_B, m_ratio).

    Raises
    ------
    ConfigurationError
        If fewer than three samples are supplied or the fitted slope is
        non-negative (data not in the FN regime).
    """
    x, y = fn_plot_coordinates(field_v_per_m, current_a_m2)
    if x.size < 3:
        raise ConfigurationError("need at least three samples to fit")
    slope, intercept = np.polyfit(x, y, 1)
    if slope >= 0.0:
        raise ConfigurationError(
            "FN plot slope is non-negative; data are not in the FN regime"
        )
    prediction = slope * x + intercept
    ss_res = float(np.sum((y - prediction) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot

    coefficient_a = math.exp(intercept)
    coefficient_b = -slope

    # Invert A for phi_B, then B for the mass.
    phi_j = ELEMENTARY_CHARGE**3 / (
        16.0 * math.pi**2 * HBAR * coefficient_a
    )
    phi_b_ev = j_to_ev(phi_j)
    mass = (
        coefficient_b * 3.0 * ELEMENTARY_CHARGE * HBAR / (4.0 * phi_j**1.5)
    ) ** 2 / 2.0
    return FnPlotFit(
        coefficient_a=coefficient_a,
        coefficient_b=coefficient_b,
        r_squared=r_squared,
        barrier_height_ev=phi_b_ev,
        mass_ratio=mass / ELECTRON_MASS,
    )
