"""Image-force (Schottky) barrier lowering.

A tunneling electron near a conducting emitter polarises it; the
resulting image potential lowers and rounds the barrier peak. The
first-order effect on Fowler-Nordheim analysis is the Schottky lowering

.. math::

    \\Delta\\phi = \\sqrt{\\frac{q E}{4 \\pi \\varepsilon_{ox}}}

which is how high-field measurements see an effectively smaller
``phi_B``. Provided both as a scalar correction and as a full corrected
profile for the numerical (WKB/TMM) reference models.
"""

from __future__ import annotations

import math
from typing import Callable

from ..constants import ELEMENTARY_CHARGE, VACUUM_PERMITTIVITY
from ..errors import ConfigurationError
from .barriers import TunnelBarrier


def schottky_lowering_ev(
    field_v_per_m: float, relative_permittivity: float
) -> float:
    """Barrier lowering ``sqrt(q E / (4 pi eps))`` in eV."""
    if field_v_per_m < 0.0:
        raise ConfigurationError("field magnitude must be non-negative")
    if relative_permittivity <= 0.0:
        raise ConfigurationError("permittivity must be positive")
    eps = relative_permittivity * VACUUM_PERMITTIVITY
    lowering_j = math.sqrt(
        ELEMENTARY_CHARGE**3 * field_v_per_m / (4.0 * math.pi * eps)
    )
    return lowering_j / ELEMENTARY_CHARGE


def effective_barrier_ev(barrier: TunnelBarrier, field_v_per_m: float) -> float:
    """Barrier height after image-force lowering [eV].

    Raises if the lowering exceeds the barrier itself -- at that point
    the interface stops limiting emission and the FN picture is invalid.
    """
    lowering = schottky_lowering_ev(
        field_v_per_m, barrier.relative_permittivity
    )
    effective = barrier.barrier_height_ev - lowering
    if effective <= 0.0:
        raise ConfigurationError(
            f"image force ({lowering:.2f} eV) exceeds the barrier "
            f"({barrier.barrier_height_ev:.2f} eV); FN analysis invalid"
        )
    return effective


def image_rounded_profile(
    barrier: TunnelBarrier, field_v_per_m: float
) -> Callable[[float], float]:
    """Conduction-band profile with the image potential included [J].

    ``V(x) = phi_B - q E x - q^2 / (16 pi eps x)``, clipped on a small
    core region near the interface where the classical image expression
    diverges.
    """
    if field_v_per_m < 0.0:
        raise ConfigurationError("field magnitude must be non-negative")
    eps = barrier.relative_permittivity * VACUUM_PERMITTIVITY
    phi_j = barrier.barrier_height_j
    slope = ELEMENTARY_CHARGE * field_v_per_m
    image_strength = ELEMENTARY_CHARGE**2 / (16.0 * math.pi * eps)
    x_core = 0.02e-9  # clip below 0.2 Angstrom to avoid the divergence

    def profile(x_m: float) -> float:
        x = max(x_m, x_core)
        return phi_j - slope * x_m - image_strength / x

    return profile
