"""Channel-hot-electron (CHE) injection (paper Section II, NOR flash).

The paper reviews CHE as the alternative programming mechanism:
"applying a relatively high voltage (4~6 V ...) at the drain and a
higher voltage (8~11 V ...) at the control gate while source and body
are grounded. With this biasing condition a fairly large current (0.3
to 1 mA ...) flows in the cell and the hot electrons generated in the
channel acquire sufficient energy to jump the gate oxide barrier".

Implemented here with the classic *lucky-electron model* (Tam, Ko & Hu,
IEEE TED 31, 1116 (1984)): the probability that a channel electron
gains the barrier energy from the lateral field and is redirected into
the gate is

.. math::

    P_{inj} \\approx C \\exp\\!\\left(
        -\\frac{\\phi_B}{q \\lambda E_{lat}} \\right)

with the energy-relaxation mean free path ``lambda`` (~9 nm in silicon
at 300 K) and the peak lateral channel field ``E_lat``. The gate
current is ``I_g = P_inj * I_d``. This quantifies the paper's implicit
comparison: CHE needs large channel currents (mA) for modest gate
currents, while FN programs with < 1 nA per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import ELEMENTARY_CHARGE
from ..errors import ConfigurationError
from ..units import ev_to_j


@dataclass(frozen=True)
class LuckyElectronModel:
    """Lucky-electron CHE injection model.

    Attributes
    ----------
    barrier_height_ev:
        Channel / tunnel-oxide barrier the hot electron must clear [eV];
        includes any image-force lowering the caller applies.
    mean_free_path_m:
        Hot-electron energy-relaxation mean free path [m].
    injection_prefactor:
        The lumped prefactor ``C`` collecting the redirection and
        oxide-collection probabilities (0.01-0.1 in the literature).
    """

    barrier_height_ev: float
    mean_free_path_m: float = 9.0e-9
    injection_prefactor: float = 0.02

    def __post_init__(self) -> None:
        if self.barrier_height_ev <= 0.0:
            raise ConfigurationError("barrier height must be positive")
        if self.mean_free_path_m <= 0.0:
            raise ConfigurationError("mean free path must be positive")
        if not 0.0 < self.injection_prefactor <= 1.0:
            raise ConfigurationError("prefactor must be in (0, 1]")

    def injection_probability(self, lateral_field_v_per_m: float) -> float:
        """Probability a channel electron is injected into the gate."""
        if lateral_field_v_per_m <= 0.0:
            return 0.0
        phi_j = ev_to_j(self.barrier_height_ev)
        exponent = phi_j / (
            ELEMENTARY_CHARGE
            * self.mean_free_path_m
            * lateral_field_v_per_m
        )
        return self.injection_prefactor * math.exp(-exponent)

    def gate_current_a(
        self, drain_current_a: float, lateral_field_v_per_m: float
    ) -> float:
        """Injected gate current ``I_g = P_inj * I_d`` [A]."""
        if drain_current_a < 0.0:
            raise ConfigurationError("drain current cannot be negative")
        return drain_current_a * self.injection_probability(
            lateral_field_v_per_m
        )

    def required_field_for_probability(self, probability: float) -> float:
        """Invert P_inj for the lateral field that achieves it [V/m]."""
        if not 0.0 < probability < self.injection_prefactor:
            raise ConfigurationError(
                "target probability must be in (0, prefactor)"
            )
        phi_j = ev_to_j(self.barrier_height_ev)
        return phi_j / (
            ELEMENTARY_CHARGE
            * self.mean_free_path_m
            * math.log(self.injection_prefactor / probability)
        )


@dataclass(frozen=True)
class CheOperatingPoint:
    """One CHE programming condition (the paper's NOR numbers).

    Attributes
    ----------
    drain_voltage_v:
        Drain bias (paper: 4-6 V).
    gate_voltage_v:
        Control-gate bias (paper: 8-11 V).
    drain_current_a:
        Channel current during programming (paper: 0.3-1 mA).
    effective_channel_length_m:
        Pinch-off region length setting the peak lateral field.
    """

    drain_voltage_v: float = 5.0
    gate_voltage_v: float = 9.0
    drain_current_a: float = 5e-4
    effective_channel_length_m: float = 40e-9

    def __post_init__(self) -> None:
        if self.drain_voltage_v <= 0.0 or self.gate_voltage_v <= 0.0:
            raise ConfigurationError("bias voltages must be positive")
        if self.drain_current_a <= 0.0:
            raise ConfigurationError("drain current must be positive")
        if self.effective_channel_length_m <= 0.0:
            raise ConfigurationError("channel length must be positive")

    @property
    def lateral_field_v_per_m(self) -> float:
        """Peak lateral field ~ V_DS over the pinch-off length [V/m]."""
        return self.drain_voltage_v / self.effective_channel_length_m


def compare_che_to_fn(
    che_model: LuckyElectronModel,
    operating_point: CheOperatingPoint,
    fn_cell_current_a: float,
) -> "dict[str, float]":
    """Contrast CHE and FN programming efficiency (paper Section II).

    Returns the CHE gate current, the supply current it costs, the
    injection efficiency, and the ratio of supply currents between the
    two mechanisms (FN programs from the gate with essentially no
    channel current, which is why it "allow[s] many cells to be
    programmed at a time").
    """
    if fn_cell_current_a <= 0.0:
        raise ConfigurationError("FN cell current must be positive")
    gate_current = che_model.gate_current_a(
        operating_point.drain_current_a,
        operating_point.lateral_field_v_per_m,
    )
    efficiency = (
        gate_current / operating_point.drain_current_a
        if operating_point.drain_current_a
        else 0.0
    )
    return {
        "che_gate_current_a": gate_current,
        "che_supply_current_a": operating_point.drain_current_a,
        "che_injection_efficiency": efficiency,
        "fn_supply_current_a": fn_cell_current_a,
        "supply_current_ratio": operating_point.drain_current_a
        / fn_cell_current_a,
    }
