"""Trap-assisted tunneling (TAT) through degraded oxides.

After program/erase cycling the tunnel oxide accumulates neutral traps;
electrons can then cross the barrier in two shorter hops via a trap at
depth ``x_t`` and energy ``phi_t`` below the oxide conduction band. The
two-step model here multiplies the WKB transparencies of the two
half-barriers and is rate-limited by the slower step -- the standard
picture behind stress-induced leakage current (SILC), which the
reliability package builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import ELEMENTARY_CHARGE, HBAR
from ..errors import ConfigurationError
from ..solver.wkb import wkb_action_batch
from ..units import ev_to_j
from .barriers import TunnelBarrier


@dataclass(frozen=True)
class TrapAssistedModel:
    """Two-step trap-assisted tunneling current model.

    Attributes
    ----------
    barrier:
        The (stressed) tunnel junction.
    trap_depth_ev:
        Trap energy below the oxide conduction band [eV].
    trap_position_fraction:
        Trap location as a fraction of the oxide thickness from the
        emitter (0.5 = mid-oxide, the most effective position).
    trap_density_m2:
        Areal trap density [1/m^2]; scales the current linearly.
    attempt_rate_hz:
        Capture/emission attempt frequency [1/s].
    """

    barrier: TunnelBarrier
    trap_depth_ev: float = 1.2
    trap_position_fraction: float = 0.5
    trap_density_m2: float = 1e14
    attempt_rate_hz: float = 1e10

    def __post_init__(self) -> None:
        if not 0.0 < self.trap_position_fraction < 1.0:
            raise ConfigurationError("trap position must be inside the oxide")
        if self.trap_depth_ev <= 0.0:
            raise ConfigurationError("trap depth must be positive")
        if self.trap_density_m2 < 0.0:
            raise ConfigurationError("trap density cannot be negative")
        if self.attempt_rate_hz <= 0.0:
            raise ConfigurationError("attempt rate must be positive")

    def _half_barrier_transparency(
        self, x_from: float, x_to: float, field_v_per_m: float
    ) -> float:
        """WKB transparency of the barrier slice between two positions.

        The electron tunnels at the trap energy level; the local barrier
        is ``phi_B - q E x - (E - phi_t)`` relative to the trap state.
        """
        phi_j = self.barrier.barrier_height_j
        trap_j = ev_to_j(self.trap_depth_ev)
        slope = ELEMENTARY_CHARGE * field_v_per_m
        mass = self.barrier.mass_kg
        n = 201
        dx = (x_to - x_from) / (n - 1)
        action = 0.0
        for i in range(n):
            x = x_from + i * dx
            local = phi_j - slope * x - (phi_j - trap_j)
            local = max(local, 0.0)
            kappa = math.sqrt(2.0 * mass * local) / HBAR
            weight = 0.5 if i in (0, n - 1) else 1.0
            action += weight * kappa * dx
        return math.exp(-2.0 * action)

    def current_density(self, field_v_per_m: float) -> float:
        """TAT current density [A/m^2] at a field magnitude [V/m].

        Series combination of the in-hop and out-hop rates:
        ``rate = nu * T_in * T_out / (T_in + T_out)`` per trap.
        """
        if field_v_per_m < 0.0:
            raise ConfigurationError("field magnitude must be non-negative")
        if self.trap_density_m2 == 0.0:
            return 0.0
        x_t = self.trap_position_fraction * self.barrier.thickness_m
        t_in = self._half_barrier_transparency(0.0, x_t, field_v_per_m)
        t_out = self._half_barrier_transparency(
            x_t, self.barrier.thickness_m, field_v_per_m
        )
        if t_in == 0.0 and t_out == 0.0:
            return 0.0
        rate = self.attempt_rate_hz * t_in * t_out / (t_in + t_out)
        return ELEMENTARY_CHARGE * self.trap_density_m2 * rate

    def _half_barrier_transparency_batch(
        self, x_from: float, x_to: float, fields_v_per_m: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`_half_barrier_transparency` over a field array.

        The half-barrier action of every field lane falls out of one
        :func:`~repro.solver.wkb.wkb_action_batch` trapezoid over the
        ``(n_fields, n_points)`` local-barrier grid.
        """
        phi_j = self.barrier.barrier_height_j
        trap_j = ev_to_j(self.trap_depth_ev)
        slopes = ELEMENTARY_CHARGE * fields_v_per_m

        def local_barrier(x_m):
            return phi_j - slopes[:, np.newaxis] * x_m - (phi_j - trap_j)

        action = wkb_action_batch(
            local_barrier,
            0.0,
            self.barrier.mass_kg,
            x_from,
            x_to,
            n_points=201,
        )
        return np.exp(-2.0 * np.asarray(action))

    def current_density_batch(self, fields_v_per_m) -> np.ndarray:
        """Vectorized :meth:`current_density` over an array of fields.

        One pair of batched half-barrier WKB actions replaces the
        per-field Python trapezoid loops; element ``i`` agrees with the
        scalar path at ``fields_v_per_m[i]`` to ~1e-12 relative (the
        scalar loop and ``np.trapezoid`` sum the same samples in a
        different order). Used by the batched retention integrator.
        """
        fields = np.asarray(fields_v_per_m, dtype=float)
        if np.any(fields < 0.0):
            raise ConfigurationError("field magnitude must be non-negative")
        shape = fields.shape
        if self.trap_density_m2 == 0.0:
            return np.zeros(shape)
        flat = fields.reshape(-1)
        x_t = self.trap_position_fraction * self.barrier.thickness_m
        t_in = self._half_barrier_transparency_batch(0.0, x_t, flat)
        t_out = self._half_barrier_transparency_batch(
            x_t, self.barrier.thickness_m, flat
        )
        t_sum = t_in + t_out
        rate = self.attempt_rate_hz * np.divide(
            t_in * t_out,
            t_sum,
            out=np.zeros_like(t_sum),
            where=t_sum > 0.0,
        )
        current = ELEMENTARY_CHARGE * self.trap_density_m2 * rate
        return current.reshape(shape)
