"""repro: MLGNR-CNT floating-gate flash memory simulator.

A from-scratch reproduction of *Hossain, Hossain & Chowdhury,
"Multilayer Layer Graphene Nanoribbon Flash Memory: Analysis of
Programming and Erasing Operation", IEEE SOCC 2014*, extended into a
full device-to-system simulation stack:

* :mod:`repro.solver` -- numerical substrate (Poisson, Schrodinger,
  transfer matrix, WKB, ODE, root finding)
* :mod:`repro.materials` / :mod:`repro.bandstructure` -- graphene, GNR,
  CNT, oxide and silicon models with tight-binding electronic structure
* :mod:`repro.tunneling` -- Fowler-Nordheim (the paper's core model),
  direct, Tsu-Esaki, trap-assisted tunneling, FN-plot extraction
* :mod:`repro.electrostatics` -- the floating-gate capacitive network
  (paper eqs. (2)-(3)), band diagrams, Poisson-Schrodinger channel
* :mod:`repro.device` -- the floating-gate transistor, program/erase
  transients (paper Figures 4-5), thresholds, retention
* :mod:`repro.engine` -- NumPy-vectorized batch evaluation of the hot
  path with memoized barrier/coupling intermediates
* :mod:`repro.reliability` -- oxide stress, breakdown, SILC, endurance
* :mod:`repro.memory` -- NAND array, ISPP, sensing, disturbs, ECC, FTL
* :mod:`repro.optimization` -- the paper's future-work design optimisation
* :mod:`repro.experiments` -- regenerates every figure of the paper
* :mod:`repro.api` -- the public session layer: parameterized scenarios
  and declarative run plans over isolated per-session caches
* :mod:`repro.service` -- the serving layer: a persistent
  content-addressed result store and an async HTTP simulation service
  with single-flight dedupe and per-client rate limiting

Quickstart::

    from repro.api import SimulationSession

    session = SimulationSession(seed=7)
    fig6 = session.run("fig6")                       # paper defaults
    hot = session.run("fig6", temperature_k=400.0)   # parameterized
    print(session.cache_stats().hit_rate)

(The device layer remains importable directly: build a
:class:`~repro.device.floating_gate.FloatingGateTransistor` and call
:func:`~repro.device.transient.simulate_transient` for low-level work.)
"""

__version__ = "1.0.0"

from . import (
    api,
    bandstructure,
    constants,
    device,
    electrostatics,
    engine,
    errors,
    experiments,
    io,
    materials,
    memory,
    optimization,
    reliability,
    reporting,
    service,
    solver,
    tunneling,
    units,
)

__all__ = [
    "__version__",
    "constants",
    "units",
    "errors",
    "io",
    "solver",
    "materials",
    "bandstructure",
    "tunneling",
    "electrostatics",
    "device",
    "engine",
    "reliability",
    "memory",
    "optimization",
    "experiments",
    "reporting",
    "api",
    "service",
]
