"""repro: MLGNR-CNT floating-gate flash memory simulator.

A from-scratch reproduction of *Hossain, Hossain & Chowdhury,
"Multilayer Layer Graphene Nanoribbon Flash Memory: Analysis of
Programming and Erasing Operation", IEEE SOCC 2014*, extended into a
full device-to-system simulation stack:

* :mod:`repro.solver` -- numerical substrate (Poisson, Schrodinger,
  transfer matrix, WKB, ODE, root finding)
* :mod:`repro.materials` / :mod:`repro.bandstructure` -- graphene, GNR,
  CNT, oxide and silicon models with tight-binding electronic structure
* :mod:`repro.tunneling` -- Fowler-Nordheim (the paper's core model),
  direct, Tsu-Esaki, trap-assisted tunneling, FN-plot extraction
* :mod:`repro.electrostatics` -- the floating-gate capacitive network
  (paper eqs. (2)-(3)), band diagrams, Poisson-Schrodinger channel
* :mod:`repro.device` -- the floating-gate transistor, program/erase
  transients (paper Figures 4-5), thresholds, retention
* :mod:`repro.engine` -- NumPy-vectorized batch evaluation of the hot
  path with memoized barrier/coupling intermediates
* :mod:`repro.reliability` -- oxide stress, breakdown, SILC, endurance
* :mod:`repro.memory` -- NAND array, ISPP, sensing, disturbs, ECC, FTL
* :mod:`repro.optimization` -- the paper's future-work design optimisation
* :mod:`repro.experiments` -- regenerates every figure of the paper

Quickstart::

    from repro.device import FloatingGateTransistor, PROGRAM_BIAS
    from repro.device import simulate_transient

    cell = FloatingGateTransistor()           # paper's reference design
    result = simulate_transient(cell, PROGRAM_BIAS, duration_s=1e-2)
    print(result.t_sat_s, result.stored_electrons)
"""

__version__ = "1.0.0"

from . import (
    bandstructure,
    constants,
    device,
    electrostatics,
    engine,
    errors,
    experiments,
    io,
    materials,
    memory,
    optimization,
    reliability,
    reporting,
    solver,
    tunneling,
    units,
)

__all__ = [
    "__version__",
    "constants",
    "units",
    "errors",
    "io",
    "solver",
    "materials",
    "bandstructure",
    "tunneling",
    "electrostatics",
    "device",
    "engine",
    "reliability",
    "memory",
    "optimization",
    "experiments",
    "reporting",
]
