"""Floating-gate potential and gate coupling ratio (paper eq. (3)).

The paper's eq. (3):

    V_FG = GCR * V_GS + Q_FG / C_T

extended here with the drain/source coupling terms that the paper drops
(it grounds source and body and treats the 50 mV drain bias as zero):

    V_FG = (C_FC V_GS + C_FD V_DS + C_FS V_S + C_FB V_B + Q_FG) / C_T

Setting V_DS = V_S = V_B = 0 recovers eq. (3) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .stack import FloatingGateCapacitances


@dataclass(frozen=True)
class TerminalVoltages:
    """Voltages applied to the four device terminals [V].

    ``vgs`` is the control-gate voltage; ``vds`` the drain voltage;
    ``vs`` the source; ``vb`` the body. All referenced to ground.
    """

    vgs: float = 0.0
    vds: float = 0.0
    vs: float = 0.0
    vb: float = 0.0


def floating_gate_voltage(
    capacitances: FloatingGateCapacitances,
    voltages: TerminalVoltages,
    charge_c=0.0,
):
    """Floating-gate potential from the full capacitive divider [V].

    With all non-gate terminals grounded this is exactly paper eq. (3):
    ``V_FG = GCR * V_GS + Q_FG / C_T``. ``charge_c`` may be a scalar or
    an ndarray of stored charges (the batch engine's transient path);
    the result has the same shape.
    """
    numerator = (
        capacitances.cfc * voltages.vgs
        + capacitances.cfd * voltages.vds
        + capacitances.cfs * voltages.vs
        + capacitances.cfb * voltages.vb
        + charge_c
    )
    return numerator / capacitances.total


def floating_gate_voltage_batch(
    gcr,
    vgs,
    charge_over_ct=0.0,
):
    """Vectorized paper eq. (3): ``V_FG = GCR * V_GS + Q_FG / C_T`` [V].

    All three arguments may be scalars or ndarrays and broadcast
    together; ``charge_over_ct`` is the pre-divided ``Q_FG / C_T`` term
    so callers with no stored charge pay nothing for it. This is the
    batch engine's electrostatics kernel.
    """
    g = np.asarray(gcr, dtype=float)
    if np.any(g <= 0.0) or np.any(g >= 1.0):
        raise ConfigurationError("GCR must lie strictly inside (0, 1)")
    vfg = g * np.asarray(vgs, dtype=float) + charge_over_ct
    if np.isscalar(gcr) and np.isscalar(vgs) and np.isscalar(charge_over_ct):
        return float(vfg)
    return vfg


def floating_gate_voltage_simple(
    gcr: float, vgs: float, charge_c: float = 0.0, c_total_f: "float | None" = None
) -> float:
    """Paper eq. (3) in its literal two-term form.

    ``V_FG = GCR * V_GS + Q_FG / C_T``; when no charge is stored the
    ``C_T`` argument may be omitted.
    """
    if not 0.0 < gcr < 1.0:
        raise ConfigurationError("GCR must lie strictly inside (0, 1)")
    if charge_c == 0.0:
        return gcr * vgs
    if c_total_f is None or c_total_f <= 0.0:
        raise ConfigurationError(
            "a positive total capacitance is required when charge is stored"
        )
    return gcr * vgs + charge_c / c_total_f


def charge_for_floating_gate_voltage(
    capacitances: FloatingGateCapacitances,
    voltages: TerminalVoltages,
    target_vfg: float,
) -> float:
    """Invert eq. (3): the stored charge that yields a target V_FG [C]."""
    zero_charge_vfg = floating_gate_voltage(capacitances, voltages, 0.0)
    return (target_vfg - zero_charge_vfg) * capacitances.total


def threshold_shift_v(charge_c: float, cfc_f: float) -> float:
    """Threshold-voltage shift seen from the control gate [V].

    ``Delta V_T = -Q_FG / C_FC``: stored electrons (negative charge)
    raise the threshold, which is the readout mechanism of the cell.
    """
    if cfc_f <= 0.0:
        raise ConfigurationError("C_FC must be positive")
    return -charge_c / cfc_f
