"""Band diagrams of the CG / control-oxide / FG / tunnel-oxide / channel stack.

Reproduces the physics of paper Figure 2 (the triangular FN barrier) for
the full five-layer stack: given the terminal voltages and the stored
charge, the conduction-band edge across both oxides is assembled from
the Poisson solution of the layered dielectric, with the floating gate
pinned at the potential given by eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import ELEMENTARY_CHARGE
from ..errors import ConfigurationError
from ..materials.base import DielectricMaterial
from ..solver.grid import nonuniform_grid
from ..solver.poisson import (
    PoissonProblem1D,
    solve_poisson_1d,
    solve_poisson_1d_batch,
)


@dataclass(frozen=True)
class BandDiagram:
    """Conduction-band profile across the gate stack.

    Positions run from the channel surface (x = 0) through the tunnel
    oxide, the floating gate, and the control oxide to the control gate.

    Attributes
    ----------
    x_m:
        Node positions [m].
    conduction_band_ev:
        Conduction-band edge relative to the channel Fermi level [eV].
    region_labels:
        One label per node: ``"tunnel_oxide"``, ``"floating_gate"`` or
        ``"control_oxide"``.
    """

    x_m: np.ndarray = field(repr=False)
    conduction_band_ev: np.ndarray = field(repr=False)
    region_labels: "tuple[str, ...]" = field(repr=False, default=())

    def barrier_peak_ev(self) -> float:
        """Highest conduction-band energy in the stack [eV]."""
        return float(self.conduction_band_ev.max())

    def tunnel_distance_at_fermi_m(self) -> float:
        """Length of the classically forbidden region at E = 0 [m].

        The 'apparent thinning' of the barrier the paper describes: the
        distance an electron at the channel Fermi level must tunnel.
        """
        forbidden = self.conduction_band_ev > 0.0
        if not forbidden.any():
            return 0.0
        dx = np.diff(self.x_m)
        mid_forbidden = forbidden[:-1] & forbidden[1:]
        return float(np.sum(dx[mid_forbidden]))


def build_band_diagram(
    tunnel_dielectric: DielectricMaterial,
    control_dielectric: DielectricMaterial,
    tunnel_thickness_m: float,
    control_thickness_m: float,
    floating_gate_thickness_m: float,
    channel_barrier_ev: float,
    gate_barrier_ev: float,
    floating_gate_voltage_v: float,
    control_gate_voltage_v: float,
    nodes_per_layer: int = 120,
) -> BandDiagram:
    """Assemble the band diagram of the biased stack.

    Parameters
    ----------
    channel_barrier_ev:
        Barrier height at the channel / tunnel-oxide interface [eV].
    gate_barrier_ev:
        Barrier height at the FG / control-oxide interface [eV].
    floating_gate_voltage_v:
        Electrostatic potential of the floating gate (paper eq. (3)).
    control_gate_voltage_v:
        Applied control-gate voltage V_GS.

    Notes
    -----
    Each oxide is solved as a charge-free Poisson problem with Dirichlet
    potentials at its two faces, so the band edge is exactly linear in
    each oxide (Figure 2's triangular barrier when biased), and the
    floating-gate region is flat at ``-q V_FG`` (a conductor).
    """
    if tunnel_thickness_m <= 0 or control_thickness_m <= 0:
        raise ConfigurationError("oxide thicknesses must be positive")
    if floating_gate_thickness_m <= 0:
        raise ConfigurationError("floating-gate thickness must be positive")

    # Region boundaries.
    x0 = 0.0
    x1 = tunnel_thickness_m
    x2 = x1 + floating_gate_thickness_m
    x3 = x2 + control_thickness_m

    # Tunnel oxide potential: channel (0 V) -> floating gate (V_FG).
    grid_to = nonuniform_grid([x0, x1], [nodes_per_layer])
    eps_to = np.full(
        grid_to.n - 1, tunnel_dielectric.permittivity_f_per_m
    )
    sol_to = solve_poisson_1d(
        PoissonProblem1D(
            grid_to, eps_to, np.zeros(grid_to.n), 0.0, floating_gate_voltage_v
        )
    )
    # Control oxide: floating gate (V_FG) -> control gate (V_GS).
    grid_co = nonuniform_grid([x2, x3], [nodes_per_layer])
    eps_co = np.full(grid_co.n - 1, control_dielectric.permittivity_f_per_m)
    sol_co = solve_poisson_1d(
        PoissonProblem1D(
            grid_co,
            eps_co,
            np.zeros(grid_co.n),
            floating_gate_voltage_v,
            control_gate_voltage_v,
        )
    )

    # Conduction band edge: barrier offset minus local potential.
    band_to = channel_barrier_ev - sol_to.potential
    n_fg = max(nodes_per_layer // 4, 8)
    x_fg = np.linspace(x1, x2, n_fg)
    band_fg = np.full(n_fg, -floating_gate_voltage_v)
    band_co = gate_barrier_ev - floating_gate_voltage_v + (
        sol_co.potential[0] - sol_co.potential
    )

    x_all = np.concatenate([grid_to.points, x_fg, grid_co.points])
    band_all = np.concatenate([band_to, band_fg, band_co])
    labels = (
        ("tunnel_oxide",) * grid_to.n
        + ("floating_gate",) * n_fg
        + ("control_oxide",) * grid_co.n
    )
    return BandDiagram(
        x_m=x_all, conduction_band_ev=band_all, region_labels=labels
    )


@dataclass(frozen=True)
class BandDiagramBatch:
    """Band diagrams of one stack under a batch of bias lanes.

    Attributes
    ----------
    x_m:
        Node positions shared by every lane [m].
    conduction_band_ev:
        Conduction-band profiles, shape ``(n_lanes, n_nodes)`` [eV].
    region_labels:
        One label per node (shared across lanes).
    """

    x_m: np.ndarray = field(repr=False)
    conduction_band_ev: np.ndarray = field(repr=False)
    region_labels: "tuple[str, ...]" = field(repr=False, default=())

    @property
    def n_lanes(self) -> int:
        """Number of bias lanes."""
        return int(self.conduction_band_ev.shape[0])

    def lane(self, index: int) -> BandDiagram:
        """One lane's diagram in the scalar result form."""
        return BandDiagram(
            x_m=self.x_m,
            conduction_band_ev=self.conduction_band_ev[index],
            region_labels=self.region_labels,
        )

    def barrier_peak_ev(self) -> np.ndarray:
        """Per-lane highest conduction-band energy [eV]."""
        return np.max(self.conduction_band_ev, axis=1)

    def tunnel_distance_at_fermi_m(self) -> np.ndarray:
        """Per-lane classically forbidden length at E = 0 [m]."""
        forbidden = self.conduction_band_ev > 0.0
        dx = np.diff(self.x_m)
        mid_forbidden = forbidden[:, :-1] & forbidden[:, 1:]
        return np.sum(dx[np.newaxis, :] * mid_forbidden, axis=1)


def build_band_diagram_batch(
    tunnel_dielectric: DielectricMaterial,
    control_dielectric: DielectricMaterial,
    tunnel_thickness_m: float,
    control_thickness_m: float,
    floating_gate_thickness_m: float,
    channel_barrier_ev: float,
    gate_barrier_ev: float,
    floating_gate_voltages_v,
    control_gate_voltages_v,
    nodes_per_layer: int = 120,
) -> BandDiagramBatch:
    """Assemble band diagrams for a batch of bias lanes in one pass.

    The geometry and barrier parameters are as
    :func:`build_band_diagram` and shared by every lane;
    ``floating_gate_voltages_v`` / ``control_gate_voltages_v`` are
    broadcast together into the lane axis. Each oxide's charge-free
    Poisson problem is solved for every lane at once through
    :func:`~repro.solver.poisson.solve_poisson_1d_batch` (one stacked-
    RHS banded solve per oxide instead of two tridiagonal solves per
    bias point), so lane ``i`` matches the scalar build at ``1e-9``.
    """
    if tunnel_thickness_m <= 0 or control_thickness_m <= 0:
        raise ConfigurationError("oxide thicknesses must be positive")
    if floating_gate_thickness_m <= 0:
        raise ConfigurationError("floating-gate thickness must be positive")
    vfg, vcg = np.broadcast_arrays(
        np.asarray(floating_gate_voltages_v, dtype=float),
        np.asarray(control_gate_voltages_v, dtype=float),
    )
    vfg = vfg.reshape(-1)
    vcg = vcg.reshape(-1)
    if vfg.size == 0:
        raise ConfigurationError("need at least one bias lane")
    n_lanes = vfg.size

    x0 = 0.0
    x1 = tunnel_thickness_m
    x2 = x1 + floating_gate_thickness_m
    x3 = x2 + control_thickness_m

    grid_to = nonuniform_grid([x0, x1], [nodes_per_layer])
    eps_to = np.full(grid_to.n - 1, tunnel_dielectric.permittivity_f_per_m)
    sol_to = solve_poisson_1d_batch(
        grid_to,
        eps_to,
        np.zeros((n_lanes, grid_to.n)),
        0.0,
        vfg,
    )
    grid_co = nonuniform_grid([x2, x3], [nodes_per_layer])
    eps_co = np.full(grid_co.n - 1, control_dielectric.permittivity_f_per_m)
    sol_co = solve_poisson_1d_batch(
        grid_co,
        eps_co,
        np.zeros((n_lanes, grid_co.n)),
        vfg,
        vcg,
    )

    band_to = channel_barrier_ev - sol_to.potential
    n_fg = max(nodes_per_layer // 4, 8)
    x_fg = np.linspace(x1, x2, n_fg)
    band_fg = np.broadcast_to(-vfg[:, np.newaxis], (n_lanes, n_fg))
    band_co = (
        gate_barrier_ev
        - vfg[:, np.newaxis]
        + (sol_co.potential[:, :1] - sol_co.potential)
    )

    x_all = np.concatenate([grid_to.points, x_fg, grid_co.points])
    band_all = np.concatenate([band_to, band_fg, band_co], axis=1)
    labels = (
        ("tunnel_oxide",) * grid_to.n
        + ("floating_gate",) * n_fg
        + ("control_oxide",) * grid_co.n
    )
    return BandDiagramBatch(
        x_m=x_all, conduction_band_ev=band_all, region_labels=labels
    )


def oxide_fields_v_per_m(
    tunnel_thickness_m: float,
    control_thickness_m: float,
    floating_gate_voltage_v: float,
    control_gate_voltage_v: float,
    source_voltage_v: float = 0.0,
) -> "tuple[float, float]":
    """Fields across the two oxides (paper eq. (5) applied twice) [V/m].

    Returns ``(E_tunnel, E_control)`` with signs: positive tunnel field
    pushes channel electrons toward the floating gate; positive control
    field pushes floating-gate electrons toward the control gate.
    """
    e_to = (floating_gate_voltage_v - source_voltage_v) / tunnel_thickness_m
    e_co = (
        control_gate_voltage_v - floating_gate_voltage_v
    ) / control_thickness_m
    return e_to, e_co


def stored_charge_sheet_density(
    charge_c: float, area_m2: float
) -> float:
    """Convert a stored charge to electrons per cm^2 (reporting helper)."""
    if area_m2 <= 0.0:
        raise ConfigurationError("area must be positive")
    electrons_per_m2 = abs(charge_c) / (ELEMENTARY_CHARGE * area_m2)
    return electrons_per_m2 * 1e-4
