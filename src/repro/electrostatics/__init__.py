"""Floating-gate electrostatics (paper eqs. (2)-(3) and Figure 3).

The capacitive network of the floating gate, the gate coupling ratio,
the floating-gate potential, band diagrams of the biased stack, and the
self-consistent Poisson-Schrodinger channel model.
"""

from .band_diagram import (
    BandDiagram,
    build_band_diagram,
    oxide_fields_v_per_m,
    stored_charge_sheet_density,
)
from .capacitance import (
    capacitance_per_area,
    fringe_factor,
    parallel,
    parallel_plate_capacitance,
    series,
)
from .gcr import (
    TerminalVoltages,
    charge_for_floating_gate_voltage,
    floating_gate_voltage,
    floating_gate_voltage_batch,
    floating_gate_voltage_simple,
    threshold_shift_v,
)
from .poisson_schrodinger import (
    ChannelWellSolution,
    solve_channel_well,
    triangular_well_levels_ev,
)
from .stack import (
    FloatingGateCapacitances,
    build_capacitances,
    build_capacitances_layered,
)

__all__ = [
    "parallel_plate_capacitance",
    "capacitance_per_area",
    "series",
    "parallel",
    "fringe_factor",
    "FloatingGateCapacitances",
    "build_capacitances",
    "build_capacitances_layered",
    "TerminalVoltages",
    "floating_gate_voltage",
    "floating_gate_voltage_batch",
    "floating_gate_voltage_simple",
    "charge_for_floating_gate_voltage",
    "threshold_shift_v",
    "BandDiagram",
    "build_band_diagram",
    "oxide_fields_v_per_m",
    "stored_charge_sheet_density",
    "ChannelWellSolution",
    "solve_channel_well",
    "triangular_well_levels_ev",
]
