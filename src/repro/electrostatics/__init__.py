"""Floating-gate electrostatics (paper eqs. (2)-(3) and Figure 3).

The capacitive network of the floating gate, the gate coupling ratio,
the floating-gate potential, band diagrams of the biased stack, and the
self-consistent Poisson-Schrodinger channel model.
"""

from .band_diagram import (
    BandDiagram,
    BandDiagramBatch,
    build_band_diagram,
    build_band_diagram_batch,
    oxide_fields_v_per_m,
    stored_charge_sheet_density,
)
from .capacitance import (
    capacitance_per_area,
    fringe_factor,
    parallel,
    parallel_plate_capacitance,
    series,
)
from .gcr import (
    TerminalVoltages,
    charge_for_floating_gate_voltage,
    floating_gate_voltage,
    floating_gate_voltage_batch,
    floating_gate_voltage_simple,
    threshold_shift_v,
)
from .poisson_schrodinger import (
    ChannelWellBatchSolution,
    ChannelWellSolution,
    solve_channel_well,
    solve_channel_well_batch,
    triangular_well_levels_ev,
)
from .stack import (
    FloatingGateCapacitanceBatch,
    FloatingGateCapacitances,
    build_capacitances,
    build_capacitances_batch,
    build_capacitances_layered,
)

__all__ = [
    "parallel_plate_capacitance",
    "capacitance_per_area",
    "series",
    "parallel",
    "fringe_factor",
    "FloatingGateCapacitances",
    "FloatingGateCapacitanceBatch",
    "build_capacitances",
    "build_capacitances_batch",
    "build_capacitances_layered",
    "TerminalVoltages",
    "floating_gate_voltage",
    "floating_gate_voltage_batch",
    "floating_gate_voltage_simple",
    "charge_for_floating_gate_voltage",
    "threshold_shift_v",
    "BandDiagram",
    "BandDiagramBatch",
    "build_band_diagram",
    "build_band_diagram_batch",
    "oxide_fields_v_per_m",
    "stored_charge_sheet_density",
    "ChannelWellSolution",
    "ChannelWellBatchSolution",
    "solve_channel_well",
    "solve_channel_well_batch",
    "triangular_well_levels_ev",
]
