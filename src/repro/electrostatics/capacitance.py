"""Elementary capacitance formulas for the lumped device network.

Every formula accepts scalars or ndarrays (broadcast together): the
batch engine (:mod:`repro.engine`) evaluates whole geometry sweeps
through these same functions, so the scalar experiment path and the
vectorized path share one implementation.
"""

from __future__ import annotations

import numpy as np

from ..constants import VACUUM_PERMITTIVITY
from ..errors import ConfigurationError


def _as_scalar_or_array(value, *inputs):
    """Return ``value`` as float when every input was a scalar."""
    if all(np.isscalar(x) for x in inputs):
        return float(value)
    return value


def parallel_plate_capacitance(relative_permittivity, area_m2, thickness_m):
    """Parallel-plate capacitance ``C = eps A / d`` [F].

    Scalars or ndarrays; array inputs broadcast to an array result.
    """
    eps = np.asarray(relative_permittivity, dtype=float)
    area = np.asarray(area_m2, dtype=float)
    thickness = np.asarray(thickness_m, dtype=float)
    if np.any(eps <= 0.0):
        raise ConfigurationError("permittivity must be positive")
    if np.any(area <= 0.0):
        raise ConfigurationError("area must be positive")
    if np.any(thickness <= 0.0):
        raise ConfigurationError("thickness must be positive")
    c = eps * VACUUM_PERMITTIVITY * area / thickness
    return _as_scalar_or_array(
        c, relative_permittivity, area_m2, thickness_m
    )


def capacitance_per_area(relative_permittivity, thickness_m):
    """Capacitance per unit area ``eps / d`` [F/m^2] (scalar or ndarray)."""
    eps = np.asarray(relative_permittivity, dtype=float)
    thickness = np.asarray(thickness_m, dtype=float)
    if np.any(eps <= 0.0):
        raise ConfigurationError("permittivity must be positive")
    if np.any(thickness <= 0.0):
        raise ConfigurationError("thickness must be positive")
    c = eps * VACUUM_PERMITTIVITY / thickness
    return _as_scalar_or_array(c, relative_permittivity, thickness_m)


def series(*capacitances_f):
    """Series combination of capacitances [F].

    Each argument may be a scalar or an ndarray; arrays combine
    element-wise (one series stack per batch lane).
    """
    if not capacitances_f:
        raise ConfigurationError("need at least one capacitance")
    inverse = 0.0
    for c in capacitances_f:
        arr = np.asarray(c, dtype=float)
        if np.any(arr <= 0.0):
            raise ConfigurationError("capacitances must be positive")
        inverse = inverse + 1.0 / arr
    return _as_scalar_or_array(1.0 / inverse, *capacitances_f)


def parallel(*capacitances_f):
    """Parallel combination (sum) of capacitances [F] (scalar or ndarray)."""
    if not capacitances_f:
        raise ConfigurationError("need at least one capacitance")
    total = 0.0
    for c in capacitances_f:
        arr = np.asarray(c, dtype=float)
        if np.any(arr < 0.0):
            raise ConfigurationError("capacitances cannot be negative")
        total = total + arr
    return _as_scalar_or_array(total, *capacitances_f)


def fringe_factor(thickness_m, lateral_extent_m):
    """First-order fringing-field enhancement for a finite plate.

    A thin-plate empirical correction ``1 + (d / (pi L)) * ln(2 pi L / d)``
    (Palmer's formula, leading term); tends to 1 for plates much wider
    than the dielectric is thick. Scalars or ndarrays.
    """
    thickness = np.asarray(thickness_m, dtype=float)
    extent = np.asarray(lateral_extent_m, dtype=float)
    if np.any(thickness <= 0.0) or np.any(extent <= 0.0):
        raise ConfigurationError("dimensions must be positive")
    ratio = thickness / (np.pi * extent)
    factor = 1.0 + ratio * np.log(2.0 * np.pi * extent / thickness)
    return _as_scalar_or_array(factor, thickness_m, lateral_extent_m)
