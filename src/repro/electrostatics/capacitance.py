"""Elementary capacitance formulas for the lumped device network."""

from __future__ import annotations

from ..constants import VACUUM_PERMITTIVITY
from ..errors import ConfigurationError


def parallel_plate_capacitance(
    relative_permittivity: float, area_m2: float, thickness_m: float
) -> float:
    """Parallel-plate capacitance ``C = eps A / d`` [F]."""
    if relative_permittivity <= 0.0:
        raise ConfigurationError("permittivity must be positive")
    if area_m2 <= 0.0:
        raise ConfigurationError("area must be positive")
    if thickness_m <= 0.0:
        raise ConfigurationError("thickness must be positive")
    return relative_permittivity * VACUUM_PERMITTIVITY * area_m2 / thickness_m


def capacitance_per_area(
    relative_permittivity: float, thickness_m: float
) -> float:
    """Capacitance per unit area ``eps / d`` [F/m^2]."""
    if relative_permittivity <= 0.0:
        raise ConfigurationError("permittivity must be positive")
    if thickness_m <= 0.0:
        raise ConfigurationError("thickness must be positive")
    return relative_permittivity * VACUUM_PERMITTIVITY / thickness_m


def series(*capacitances_f: float) -> float:
    """Series combination of capacitances [F]."""
    if not capacitances_f:
        raise ConfigurationError("need at least one capacitance")
    inverse = 0.0
    for c in capacitances_f:
        if c <= 0.0:
            raise ConfigurationError("capacitances must be positive")
        inverse += 1.0 / c
    return 1.0 / inverse


def parallel(*capacitances_f: float) -> float:
    """Parallel combination (sum) of capacitances [F]."""
    if not capacitances_f:
        raise ConfigurationError("need at least one capacitance")
    total = 0.0
    for c in capacitances_f:
        if c < 0.0:
            raise ConfigurationError("capacitances cannot be negative")
        total += c
    return total


def fringe_factor(thickness_m: float, lateral_extent_m: float) -> float:
    """First-order fringing-field enhancement for a finite plate.

    A thin-plate empirical correction ``1 + (d / (pi L)) * ln(2 pi L / d)``
    (Palmer's formula, leading term); tends to 1 for plates much wider
    than the dielectric is thick.
    """
    if thickness_m <= 0.0 or lateral_extent_m <= 0.0:
        raise ConfigurationError("dimensions must be positive")
    import math

    ratio = thickness_m / (math.pi * lateral_extent_m)
    return 1.0 + ratio * math.log(2.0 * math.pi * lateral_extent_m / thickness_m)
