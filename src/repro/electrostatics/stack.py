"""The floating-gate capacitive network (paper eq. (2) and Figure 3).

The floating gate couples to four terminals: the control gate (C_FC,
through the control oxide), the source (C_FS), the body/channel (C_FB,
through the tunnel oxide) and the drain (C_FD). The total

    C_T = C_FC + C_FS + C_FB + C_FD

together with the stored charge determines the floating-gate potential
(eq. (3), implemented in :mod:`repro.electrostatics.gcr`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..materials.base import DielectricMaterial
from ..materials.stacks import LayeredDielectric
from .capacitance import parallel_plate_capacitance


@dataclass(frozen=True)
class FloatingGateCapacitances:
    """The four lumped capacitances of the floating-gate network [F]."""

    cfc: float
    cfs: float
    cfb: float
    cfd: float

    def __post_init__(self) -> None:
        for name, value in (
            ("cfc", self.cfc),
            ("cfs", self.cfs),
            ("cfb", self.cfb),
            ("cfd", self.cfd),
        ):
            if value <= 0.0:
                raise ConfigurationError(f"{name} must be positive, got {value}")

    @property
    def total(self) -> float:
        """``C_T = C_FC + C_FS + C_FB + C_FD`` (paper eq. (2)) [F]."""
        return self.cfc + self.cfs + self.cfb + self.cfd

    @property
    def gate_coupling_ratio(self) -> float:
        """``GCR = C_FC / C_T``; the paper's central coupling parameter."""
        return self.cfc / self.total

    @property
    def drain_coupling_ratio(self) -> float:
        """``DCR = C_FD / C_T`` (used when V_DS is not negligible)."""
        return self.cfd / self.total

    @property
    def source_coupling_ratio(self) -> float:
        """``C_FS / C_T``."""
        return self.cfs / self.total

    def scaled_to_gcr(self, target_gcr: float) -> "FloatingGateCapacitances":
        """Return a network with C_FC rescaled to hit a target GCR.

        Keeps C_FS, C_FB, C_FD fixed and solves
        ``C_FC = GCR * (C_FS + C_FB + C_FD) / (1 - GCR)``. This is how
        the paper's GCR sweeps (Figures 6 and 8) are realised physically:
        by resizing the control-gate wrap area.
        """
        if not 0.0 < target_gcr < 1.0:
            raise ConfigurationError("GCR must lie strictly inside (0, 1)")
        rest = self.cfs + self.cfb + self.cfd
        cfc = target_gcr * rest / (1.0 - target_gcr)
        return FloatingGateCapacitances(
            cfc=cfc, cfs=self.cfs, cfb=self.cfb, cfd=self.cfd
        )


def build_capacitances(
    control_dielectric: DielectricMaterial,
    tunnel_dielectric: DielectricMaterial,
    control_oxide_thickness_m: float,
    tunnel_oxide_thickness_m: float,
    channel_area_m2: float,
    control_gate_area_multiplier: float = 3.0,
    source_overlap_fraction: float = 0.125,
    drain_overlap_fraction: float = 0.125,
) -> FloatingGateCapacitances:
    """Build the network from stack geometry.

    Parameters
    ----------
    control_dielectric, tunnel_dielectric:
        Materials of the two oxides.
    control_oxide_thickness_m, tunnel_oxide_thickness_m:
        Layer thicknesses [m]; the control oxide is conventionally the
        thicker of the two (the paper relies on this for Jin >> Jout).
    channel_area_m2:
        Floating-gate-to-channel facing area [m^2].
    control_gate_area_multiplier:
        Ratio of control-gate wrap area to channel area. Flash cells wrap
        the control gate around the floating gate to raise the GCR; the
        default of 3.0 yields GCR = 0.6 with the paper's 5 nm / 8 nm
        SiO2 stack.
    source_overlap_fraction, drain_overlap_fraction:
        FG-to-source/drain overlap areas as fractions of the channel
        area (tunnel-oxide spacing is used for these parasitics).
    """
    if control_gate_area_multiplier <= 0.0:
        raise ConfigurationError("area multiplier must be positive")
    if source_overlap_fraction < 0.0 or drain_overlap_fraction < 0.0:
        raise ConfigurationError("overlap fractions cannot be negative")
    if control_oxide_thickness_m <= tunnel_oxide_thickness_m:
        raise ConfigurationError(
            "the control oxide must be thicker than the tunnel oxide "
            "(paper Section III: X_CO > X_TO keeps Jout << Jin)"
        )
    cfc = parallel_plate_capacitance(
        control_dielectric.relative_permittivity,
        channel_area_m2 * control_gate_area_multiplier,
        control_oxide_thickness_m,
    )
    cfb = parallel_plate_capacitance(
        tunnel_dielectric.relative_permittivity,
        channel_area_m2,
        tunnel_oxide_thickness_m,
    )
    eps_t = tunnel_dielectric.relative_permittivity
    cfs = parallel_plate_capacitance(
        eps_t,
        max(channel_area_m2 * source_overlap_fraction, 1e-30),
        tunnel_oxide_thickness_m,
    )
    cfd = parallel_plate_capacitance(
        eps_t,
        max(channel_area_m2 * drain_overlap_fraction, 1e-30),
        tunnel_oxide_thickness_m,
    )
    return FloatingGateCapacitances(cfc=cfc, cfs=cfs, cfb=cfb, cfd=cfd)


@dataclass(frozen=True)
class FloatingGateCapacitanceBatch:
    """Stacked eq. (2) networks, one lane per geometry point.

    The batch mirror of :class:`FloatingGateCapacitances`: each
    attribute is an array with one entry per lane, and the derived
    ratios are computed with exactly the scalar formulas, elementwise.
    """

    cfc: np.ndarray = field(repr=False)
    cfs: np.ndarray = field(repr=False)
    cfb: np.ndarray = field(repr=False)
    cfd: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arrays = [
            np.asarray(getattr(self, name), dtype=float).reshape(-1)
            for name in ("cfc", "cfs", "cfb", "cfd")
        ]
        shape = np.broadcast_shapes(*(a.shape for a in arrays))
        for name, arr in zip(("cfc", "cfs", "cfb", "cfd"), arrays):
            if np.any(arr <= 0.0):
                raise ConfigurationError(f"{name} must be positive everywhere")
            object.__setattr__(self, name, np.broadcast_to(arr, shape))

    @property
    def n_lanes(self) -> int:
        """Number of stacked networks."""
        return int(self.cfc.size)

    @property
    def total(self) -> np.ndarray:
        """Per-lane ``C_T`` (paper eq. (2)) [F]."""
        return self.cfc + self.cfs + self.cfb + self.cfd

    @property
    def gate_coupling_ratio(self) -> np.ndarray:
        """Per-lane ``GCR = C_FC / C_T``."""
        return self.cfc / self.total

    @property
    def drain_coupling_ratio(self) -> np.ndarray:
        """Per-lane ``DCR = C_FD / C_T``."""
        return self.cfd / self.total

    def lane(self, index: int) -> FloatingGateCapacitances:
        """One lane's network in the scalar result form."""
        return FloatingGateCapacitances(
            cfc=float(self.cfc[index]),
            cfs=float(self.cfs[index]),
            cfb=float(self.cfb[index]),
            cfd=float(self.cfd[index]),
        )


def build_capacitances_batch(
    control_dielectric: DielectricMaterial,
    tunnel_dielectric: DielectricMaterial,
    control_oxide_thicknesses_m,
    tunnel_oxide_thicknesses_m,
    channel_areas_m2,
    control_gate_area_multiplier: float = 3.0,
    source_overlap_fraction: float = 0.125,
    drain_overlap_fraction: float = 0.125,
) -> FloatingGateCapacitanceBatch:
    """Build eq. (2) networks for a whole geometry sweep at once.

    The array mirror of :func:`build_capacitances`: the three geometry
    arguments broadcast together into the lane axis, every lane is
    validated with the scalar rules (including the X_CO > X_TO
    constraint), and each lane's capacitances equal the scalar builder's
    to round-off -- the formulas already evaluate elementwise through
    :func:`~repro.electrostatics.capacitance.parallel_plate_capacitance`.
    """
    if control_gate_area_multiplier <= 0.0:
        raise ConfigurationError("area multiplier must be positive")
    if source_overlap_fraction < 0.0 or drain_overlap_fraction < 0.0:
        raise ConfigurationError("overlap fractions cannot be negative")
    xco, xto, area = np.broadcast_arrays(
        np.asarray(control_oxide_thicknesses_m, dtype=float),
        np.asarray(tunnel_oxide_thicknesses_m, dtype=float),
        np.asarray(channel_areas_m2, dtype=float),
    )
    xco = xco.reshape(-1)
    xto = xto.reshape(-1)
    area = area.reshape(-1)
    if xco.size == 0:
        raise ConfigurationError("need at least one geometry lane")
    if np.any(xco <= xto):
        raise ConfigurationError(
            "the control oxide must be thicker than the tunnel oxide "
            "(paper Section III: X_CO > X_TO keeps Jout << Jin)"
        )
    cfc = parallel_plate_capacitance(
        control_dielectric.relative_permittivity,
        area * control_gate_area_multiplier,
        xco,
    )
    cfb = parallel_plate_capacitance(
        tunnel_dielectric.relative_permittivity, area, xto
    )
    eps_t = tunnel_dielectric.relative_permittivity
    cfs = parallel_plate_capacitance(
        eps_t, np.maximum(area * source_overlap_fraction, 1e-30), xto
    )
    cfd = parallel_plate_capacitance(
        eps_t, np.maximum(area * drain_overlap_fraction, 1e-30), xto
    )
    return FloatingGateCapacitanceBatch(cfc=cfc, cfs=cfs, cfb=cfb, cfd=cfd)


def build_capacitances_layered(
    control_stack: LayeredDielectric,
    tunnel_dielectric: DielectricMaterial,
    tunnel_oxide_thickness_m: float,
    channel_area_m2: float,
    control_gate_area_multiplier: float = 3.0,
    source_overlap_fraction: float = 0.125,
    drain_overlap_fraction: float = 0.125,
) -> FloatingGateCapacitances:
    """Eq. (2) network with a layered (e.g. ONO) control dielectric.

    The inter-poly ONO sandwich is how real flash raises the GCR without
    thinning the control dielectric: the stack's series capacitance
    replaces the single-oxide C_FC while the tunnel side is unchanged.
    """
    if control_stack.total_thickness_m <= tunnel_oxide_thickness_m:
        raise ConfigurationError(
            "the control stack must be physically thicker than the "
            "tunnel oxide (paper Section III)"
        )
    if control_gate_area_multiplier <= 0.0:
        raise ConfigurationError("area multiplier must be positive")
    cfc = (
        control_stack.capacitance_per_area
        * channel_area_m2
        * control_gate_area_multiplier
    )
    cfb = parallel_plate_capacitance(
        tunnel_dielectric.relative_permittivity,
        channel_area_m2,
        tunnel_oxide_thickness_m,
    )
    eps_t = tunnel_dielectric.relative_permittivity
    cfs = parallel_plate_capacitance(
        eps_t,
        max(channel_area_m2 * source_overlap_fraction, 1e-30),
        tunnel_oxide_thickness_m,
    )
    cfd = parallel_plate_capacitance(
        eps_t,
        max(channel_area_m2 * drain_overlap_fraction, 1e-30),
        tunnel_oxide_thickness_m,
    )
    return FloatingGateCapacitances(cfc=cfc, cfs=cfs, cfb=cfb, cfd=cfd)
