"""Self-consistent 1-D Poisson-Schrodinger solver for the channel well.

During programming the vertical field confines channel electrons in a
narrow potential well against the tunnel oxide. The subband structure of
that well sets the energy from which electrons attack the barrier -- the
quantum-mechanical refinement behind the emitter Fermi level used by the
Tsu-Esaki model. The solver iterates:

1. Schrodinger: bound states of the current potential well,
2. populate subbands with a 2-D density of states at fixed sheet density,
3. Poisson: recompute the electrostatic potential from the charge,
4. mix and repeat until the potential stops moving.

This is the standard MOS inversion-layer treatment (Stern's method)
specialised to an effective-mass channel; it doubles as an independently
testable substrate (triangular-well Airy levels, charge neutrality).

Two routes through the same self-consistency:

* :func:`solve_channel_well` -- one bias point at a time (the seed
  path, retained as the parity reference of the batch);
* :func:`solve_channel_well_batch` -- a whole bias sweep advanced as
  stacked lanes: one batched eigenlevel solve (cold on the first
  iteration, Rayleigh-quotient tracking afterwards), one vectorized
  Fermi-level bisection replacing the per-lane 80-iteration scalar
  loop, one stacked-RHS Poisson solve, and per-lane convergence masks
  that retire lanes as they settle. Each lane replays the scalar
  damped-iteration trajectory exactly, so the sweep matches a scalar
  loop at <= 1e-9 while paying the Python-level iteration cost once
  for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    BOLTZMANN,
    ELECTRON_MASS,
    ELEMENTARY_CHARGE,
    HBAR,
)
from ..errors import ConfigurationError, ConvergenceError
from ..solver.grid import Grid1D, uniform_grid
from ..solver.poisson import (
    PoissonProblem1D,
    solve_poisson_1d,
    solve_poisson_1d_batch,
)
from ..solver.schrodinger import (
    BoundStatesBatch,
    refine_bound_states_batch,
    solve_schrodinger_1d,
    solve_schrodinger_1d_batch,
)
from ..units import ev_to_j, j_to_ev


@dataclass(frozen=True)
class ChannelWellSolution:
    """Converged state of the channel quantum well.

    Attributes
    ----------
    grid:
        Spatial grid through the channel depth [m].
    potential_ev:
        Conduction-band profile [eV] (0 at the oxide interface field
        reference).
    subband_energies_ev:
        Bound-state energies [eV].
    subband_densities_m2:
        Sheet density in each subband [1/m^2].
    iterations:
        Self-consistency iterations used.
    """

    grid: Grid1D
    potential_ev: np.ndarray = field(repr=False)
    subband_energies_ev: np.ndarray = field(repr=False)
    subband_densities_m2: np.ndarray = field(repr=False)
    iterations: int = 0

    @property
    def total_sheet_density_m2(self) -> float:
        return float(np.sum(self.subband_densities_m2))

    @property
    def ground_state_ev(self) -> float:
        return float(self.subband_energies_ev[0])


def _subband_density_2d(
    fermi_j: float, level_j: float, mass_kg: float, temperature_k: float
) -> float:
    """Sheet density of one 2-D subband [1/m^2] (closed-form integral)."""
    kt = BOLTZMANN * temperature_k
    dos_2d = mass_kg / (np.pi * HBAR**2)
    x = (fermi_j - level_j) / kt
    return float(dos_2d * kt * np.logaddexp(0.0, x))


def solve_channel_well(
    surface_field_v_per_m: float,
    sheet_density_m2: float,
    effective_mass_ratio: float = 0.26,
    relative_permittivity: float = 11.7,
    depth_m: float = 15e-9,
    n_nodes: int = 301,
    n_subbands: int = 4,
    temperature_k: float = 300.0,
    max_iterations: int = 120,
    mixing: float = 0.25,
    tolerance_ev: float = 1e-5,
) -> ChannelWellSolution:
    """Solve the self-consistent quantum well under a surface field.

    Parameters
    ----------
    surface_field_v_per_m:
        Vertical confining field at the oxide interface [V/m].
    sheet_density_m2:
        Total electron sheet density to accommodate [1/m^2]; the Fermi
        level is adjusted each iteration to hold this density.
    effective_mass_ratio, relative_permittivity:
        Channel material parameters (silicon defaults).
    depth_m:
        Simulated depth into the channel body [m].

    Raises
    ------
    ConvergenceError
        If the potential has not settled within ``max_iterations``.
    """
    if surface_field_v_per_m <= 0.0:
        raise ConfigurationError("surface field must be positive")
    if sheet_density_m2 <= 0.0:
        raise ConfigurationError("sheet density must be positive")

    grid = uniform_grid(0.0, depth_m, n_nodes)
    mass = effective_mass_ratio * ELECTRON_MASS
    eps = relative_permittivity * 8.8541878128e-12
    x = grid.points

    # Initial guess: bare triangular well from the surface field.
    potential_ev = surface_field_v_per_m * x
    kt_j = BOLTZMANN * temperature_k

    last_levels = None
    for iteration in range(1, max_iterations + 1):
        states = solve_schrodinger_1d(
            grid, ev_to_j(potential_ev), mass, n_states=n_subbands
        )
        levels_j = states.energies

        # Fermi level that places sheet_density_m2 electrons in the well:
        # bisection on the monotonic total-density function.
        lo = float(levels_j[0] - 40.0 * kt_j)
        hi = float(levels_j[0] + 40.0 * kt_j)

        def total_density(fermi_j: float) -> float:
            return sum(
                _subband_density_2d(fermi_j, float(lj), mass, temperature_k)
                for lj in levels_j
            )

        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if total_density(mid) < sheet_density_m2:
                lo = mid
            else:
                hi = mid
        fermi_j = 0.5 * (lo + hi)
        densities = np.array(
            [
                _subband_density_2d(fermi_j, float(lj), mass, temperature_k)
                for lj in levels_j
            ]
        )

        # Volume charge density from the wavefunctions (electrons).
        occupancy = states.density(densities)  # 1/m^2 per node weight
        rho = np.zeros(grid.n)
        rho[1:-1] = -ELEMENTARY_CHARGE * occupancy
        poisson = solve_poisson_1d(
            PoissonProblem1D(
                grid,
                np.full(grid.n - 1, eps),
                rho,
                phi_left=0.0,
                phi_right=-surface_field_v_per_m * depth_m,
            )
        )
        # Hartree potential energy for electrons is -q * phi.
        new_potential_ev = -poisson.potential
        new_potential_ev -= new_potential_ev[0]

        mixed = (1.0 - mixing) * potential_ev + mixing * new_potential_ev
        if last_levels is not None:
            shift = float(
                np.max(np.abs(j_to_ev(levels_j - last_levels[: len(levels_j)])))
            )
            if shift < tolerance_ev:
                return ChannelWellSolution(
                    grid=grid,
                    potential_ev=mixed,
                    subband_energies_ev=j_to_ev(1.0) * levels_j,
                    subband_densities_m2=densities,
                    iterations=iteration,
                )
        last_levels = levels_j
        potential_ev = mixed

    raise ConvergenceError(
        f"Poisson-Schrodinger loop did not settle in {max_iterations} iterations"
    )


@dataclass(frozen=True)
class ChannelWellBatchSolution:
    """Converged channel-well states for a whole bias sweep.

    Attributes
    ----------
    grid:
        Spatial grid shared by every lane [m].
    surface_fields_v_per_m:
        The swept confining fields, shape ``(n_lanes,)`` [V/m].
    sheet_densities_m2:
        Target sheet density per lane, shape ``(n_lanes,)`` [1/m^2].
    potential_ev:
        Conduction-band profiles, shape ``(n_lanes, n_nodes)`` [eV].
    subband_energies_ev:
        Bound-state energies, shape ``(n_lanes, n_subbands)`` [eV].
    subband_densities_m2:
        Subband sheet densities, shape ``(n_lanes, n_subbands)``.
    iterations:
        Self-consistency iterations each lane used, shape ``(n_lanes,)``.
    """

    grid: Grid1D
    surface_fields_v_per_m: np.ndarray = field(repr=False)
    sheet_densities_m2: np.ndarray = field(repr=False)
    potential_ev: np.ndarray = field(repr=False)
    subband_energies_ev: np.ndarray = field(repr=False)
    subband_densities_m2: np.ndarray = field(repr=False)
    iterations: np.ndarray = field(repr=False)

    @property
    def n_lanes(self) -> int:
        """Number of swept bias points."""
        return int(self.potential_ev.shape[0])

    @property
    def total_sheet_density_m2(self) -> np.ndarray:
        """Per-lane total sheet density [1/m^2], shape ``(n_lanes,)``."""
        return np.sum(self.subband_densities_m2, axis=1)

    @property
    def ground_state_ev(self) -> np.ndarray:
        """Per-lane ground-subband energy [eV], shape ``(n_lanes,)``."""
        return self.subband_energies_ev[:, 0]

    def lane(self, index: int) -> ChannelWellSolution:
        """One lane's converged state in the scalar result form."""
        return ChannelWellSolution(
            grid=self.grid,
            potential_ev=self.potential_ev[index],
            subband_energies_ev=self.subband_energies_ev[index],
            subband_densities_m2=self.subband_densities_m2[index],
            iterations=int(self.iterations[index]),
        )


def _subband_densities_batch(
    fermi_j: np.ndarray,
    levels_j: np.ndarray,
    mass_kg: float,
    temperature_k: float,
) -> np.ndarray:
    """Vectorized :func:`_subband_density_2d` over (lane, level) pairs.

    ``fermi_j`` has shape ``(n_lanes,)`` and ``levels_j`` shape
    ``(n_lanes, n_levels)``; the result matches the scalar expression
    element by element (same formula, same operations).
    """
    kt = BOLTZMANN * temperature_k
    dos_2d = mass_kg / (np.pi * HBAR**2)
    x = (fermi_j[:, np.newaxis] - levels_j) / kt
    return dos_2d * kt * np.logaddexp(0.0, x)


def _fermi_bisection_batch(
    levels_j: np.ndarray,
    targets_m2: np.ndarray,
    mass_kg: float,
    temperature_k: float,
) -> np.ndarray:
    """Per-lane Fermi levels holding the target sheet densities [J].

    The batched form of the scalar solver's 80-step bisection: every
    lane's bracket is updated with the same arithmetic and the same
    fixed iteration count, just across the whole stack at once. Lane
    ``i`` reproduces the scalar bisection for ``levels_j[i]`` to the
    bracket's terminal width (~2^-80 of the search window; the only
    possible divergence is the summation order of the per-subband
    densities, which perturbs the bracket comparisons at the last ulp).
    """
    kt = BOLTZMANN * temperature_k
    lo = levels_j[:, 0] - 40.0 * kt
    hi = levels_j[:, 0] + 40.0 * kt
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        total = np.sum(
            _subband_densities_batch(mid, levels_j, mass_kg, temperature_k),
            axis=1,
        )
        below = total < targets_m2
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    return 0.5 * (lo + hi)


def solve_channel_well_batch(
    surface_fields_v_per_m,
    sheet_densities_m2,
    effective_mass_ratio: float = 0.26,
    relative_permittivity: float = 11.7,
    depth_m: float = 15e-9,
    n_nodes: int = 301,
    n_subbands: int = 4,
    temperature_k: float = 300.0,
    max_iterations: int = 120,
    mixing: float = 0.25,
    tolerance_ev: float = 1e-5,
) -> ChannelWellBatchSolution:
    """Solve the self-consistent quantum well for a whole bias sweep.

    Parameters
    ----------
    surface_fields_v_per_m:
        Swept confining fields, shape ``(n_lanes,)`` [V/m].
    sheet_densities_m2:
        Target sheet density; scalar (shared) or ``(n_lanes,)``.
    effective_mass_ratio, relative_permittivity, depth_m, n_nodes,
    n_subbands, temperature_k, max_iterations, mixing, tolerance_ev:
        As :func:`solve_channel_well`, shared by every lane.

    Notes
    -----
    Lane ``i`` replays exactly the damped-iteration trajectory of
    ``solve_channel_well(surface_fields_v_per_m[i], ...)``: the same
    Schrodinger levels (cold LAPACK solve on the first iteration,
    machine-precision Rayleigh-quotient tracking afterwards), the same
    80-step Fermi bisection, the same finite-volume Poisson update and
    the same mixing/stopping rule -- evaluated for every still-active
    lane at once. Converged lanes are retired from the batch by the
    per-lane convergence mask and their state is frozen at the
    iteration where the scalar path would have returned.

    Raises
    ------
    ConvergenceError
        If any lane has not settled within ``max_iterations``; the
        message names the offending fields.
    """
    fields = np.asarray(surface_fields_v_per_m, dtype=float).reshape(-1)
    if fields.size == 0:
        raise ConfigurationError("need at least one surface field lane")
    if np.any(fields <= 0.0):
        raise ConfigurationError("surface field must be positive")
    sheets = np.broadcast_to(
        np.asarray(sheet_densities_m2, dtype=float), fields.shape
    ).astype(float)
    if np.any(sheets <= 0.0):
        raise ConfigurationError("sheet density must be positive")

    grid = uniform_grid(0.0, depth_m, n_nodes)
    mass = effective_mass_ratio * ELECTRON_MASS
    eps = relative_permittivity * 8.8541878128e-12
    x = grid.points
    n_lanes = fields.size

    potential_ev = fields[:, np.newaxis] * x[np.newaxis, :]
    eps_cells = np.full(grid.n - 1, eps)
    phi_right = -fields * depth_m

    out_potential = np.empty((n_lanes, grid.n))
    out_levels = np.empty((n_lanes, min(n_subbands, grid.n - 2)))
    out_densities = np.empty_like(out_levels)
    out_iterations = np.zeros(n_lanes, dtype=int)

    active = np.arange(n_lanes)
    last_levels = None
    states = None
    for iteration in range(1, max_iterations + 1):
        potentials_j = ev_to_j(potential_ev[active])
        if states is None:
            states = solve_schrodinger_1d_batch(
                grid, potentials_j, mass, n_states=n_subbands
            )
        else:
            states = refine_bound_states_batch(
                grid, potentials_j, mass, states
            )
        levels_j = states.energies

        fermi_j = _fermi_bisection_batch(
            levels_j, sheets[active], mass, temperature_k
        )
        densities = _subband_densities_batch(
            fermi_j, levels_j, mass, temperature_k
        )

        occupancy = states.density_batch(densities)
        rho = np.zeros((active.size, grid.n))
        rho[:, 1:-1] = -ELEMENTARY_CHARGE * occupancy
        poisson = solve_poisson_1d_batch(
            grid, eps_cells, rho, 0.0, phi_right[active]
        )
        new_potential_ev = -poisson.potential
        new_potential_ev -= new_potential_ev[:, :1]

        mixed = (1.0 - mixing) * potential_ev[active] + (
            mixing * new_potential_ev
        )
        if last_levels is not None:
            shift = np.max(
                np.abs(j_to_ev(levels_j - last_levels)), axis=1
            )
            done = shift < tolerance_ev
            if np.any(done):
                lanes_done = active[done]
                out_potential[lanes_done] = mixed[done]
                out_levels[lanes_done] = j_to_ev(1.0) * levels_j[done]
                out_densities[lanes_done] = densities[done]
                out_iterations[lanes_done] = iteration
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    return ChannelWellBatchSolution(
                        grid=grid,
                        surface_fields_v_per_m=fields,
                        sheet_densities_m2=sheets,
                        potential_ev=out_potential,
                        subband_energies_ev=out_levels,
                        subband_densities_m2=out_densities,
                        iterations=out_iterations,
                    )
                mixed = mixed[keep]
                levels_j = levels_j[keep]
                states = BoundStatesBatch(
                    energies=states.energies[keep],
                    wavefunctions=states.wavefunctions[keep],
                    grid=grid,
                )
        last_levels = levels_j
        potential_ev[active] = mixed

    raise ConvergenceError(
        f"Poisson-Schrodinger sweep: {active.size} of {n_lanes} lanes "
        f"did not settle in {max_iterations} iterations "
        f"(fields {fields[active][:4]} ... V/m)"
    )


def triangular_well_levels_ev(
    field_v_per_m: float, effective_mass_ratio: float, n_levels: int = 4
) -> np.ndarray:
    """Airy-function energy levels of an ideal triangular well [eV].

    ``E_n = a_n * (hbar^2 / 2m)^{1/3} * (q E)^{2/3}`` with the Airy zeros
    ``a_n``; the standard analytic benchmark for the numeric solver.
    """
    if field_v_per_m <= 0.0:
        raise ConfigurationError("field must be positive")
    airy_zeros = np.array([2.33811, 4.08795, 5.52056, 6.78671, 7.94413])
    if n_levels > airy_zeros.size:
        raise ConfigurationError(f"at most {airy_zeros.size} levels supported")
    mass = effective_mass_ratio * ELECTRON_MASS
    scale_j = (HBAR**2 / (2.0 * mass)) ** (1.0 / 3.0) * (
        ELEMENTARY_CHARGE * field_v_per_m
    ) ** (2.0 / 3.0)
    return j_to_ev(1.0) * scale_j * airy_zeros[:n_levels]
