"""Self-consistent 1-D Poisson-Schrodinger solver for the channel well.

During programming the vertical field confines channel electrons in a
narrow potential well against the tunnel oxide. The subband structure of
that well sets the energy from which electrons attack the barrier -- the
quantum-mechanical refinement behind the emitter Fermi level used by the
Tsu-Esaki model. The solver iterates:

1. Schrodinger: bound states of the current potential well,
2. populate subbands with a 2-D density of states at fixed sheet density,
3. Poisson: recompute the electrostatic potential from the charge,
4. mix and repeat until the potential stops moving.

This is the standard MOS inversion-layer treatment (Stern's method)
specialised to an effective-mass channel; it doubles as an independently
testable substrate (triangular-well Airy levels, charge neutrality).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    BOLTZMANN,
    ELECTRON_MASS,
    ELEMENTARY_CHARGE,
    HBAR,
)
from ..errors import ConfigurationError, ConvergenceError
from ..solver.grid import Grid1D, uniform_grid
from ..solver.poisson import PoissonProblem1D, solve_poisson_1d
from ..solver.schrodinger import solve_schrodinger_1d
from ..units import ev_to_j, j_to_ev


@dataclass(frozen=True)
class ChannelWellSolution:
    """Converged state of the channel quantum well.

    Attributes
    ----------
    grid:
        Spatial grid through the channel depth [m].
    potential_ev:
        Conduction-band profile [eV] (0 at the oxide interface field
        reference).
    subband_energies_ev:
        Bound-state energies [eV].
    subband_densities_m2:
        Sheet density in each subband [1/m^2].
    iterations:
        Self-consistency iterations used.
    """

    grid: Grid1D
    potential_ev: np.ndarray = field(repr=False)
    subband_energies_ev: np.ndarray = field(repr=False)
    subband_densities_m2: np.ndarray = field(repr=False)
    iterations: int = 0

    @property
    def total_sheet_density_m2(self) -> float:
        return float(np.sum(self.subband_densities_m2))

    @property
    def ground_state_ev(self) -> float:
        return float(self.subband_energies_ev[0])


def _subband_density_2d(
    fermi_j: float, level_j: float, mass_kg: float, temperature_k: float
) -> float:
    """Sheet density of one 2-D subband [1/m^2] (closed-form integral)."""
    kt = BOLTZMANN * temperature_k
    dos_2d = mass_kg / (np.pi * HBAR**2)
    x = (fermi_j - level_j) / kt
    return float(dos_2d * kt * np.logaddexp(0.0, x))


def solve_channel_well(
    surface_field_v_per_m: float,
    sheet_density_m2: float,
    effective_mass_ratio: float = 0.26,
    relative_permittivity: float = 11.7,
    depth_m: float = 15e-9,
    n_nodes: int = 301,
    n_subbands: int = 4,
    temperature_k: float = 300.0,
    max_iterations: int = 120,
    mixing: float = 0.25,
    tolerance_ev: float = 1e-5,
) -> ChannelWellSolution:
    """Solve the self-consistent quantum well under a surface field.

    Parameters
    ----------
    surface_field_v_per_m:
        Vertical confining field at the oxide interface [V/m].
    sheet_density_m2:
        Total electron sheet density to accommodate [1/m^2]; the Fermi
        level is adjusted each iteration to hold this density.
    effective_mass_ratio, relative_permittivity:
        Channel material parameters (silicon defaults).
    depth_m:
        Simulated depth into the channel body [m].

    Raises
    ------
    ConvergenceError
        If the potential has not settled within ``max_iterations``.
    """
    if surface_field_v_per_m <= 0.0:
        raise ConfigurationError("surface field must be positive")
    if sheet_density_m2 <= 0.0:
        raise ConfigurationError("sheet density must be positive")

    grid = uniform_grid(0.0, depth_m, n_nodes)
    mass = effective_mass_ratio * ELECTRON_MASS
    eps = relative_permittivity * 8.8541878128e-12
    x = grid.points

    # Initial guess: bare triangular well from the surface field.
    potential_ev = surface_field_v_per_m * x
    kt_j = BOLTZMANN * temperature_k

    last_levels = None
    for iteration in range(1, max_iterations + 1):
        states = solve_schrodinger_1d(
            grid, ev_to_j(potential_ev), mass, n_states=n_subbands
        )
        levels_j = states.energies

        # Fermi level that places sheet_density_m2 electrons in the well:
        # bisection on the monotonic total-density function.
        lo = float(levels_j[0] - 40.0 * kt_j)
        hi = float(levels_j[0] + 40.0 * kt_j)

        def total_density(fermi_j: float) -> float:
            return sum(
                _subband_density_2d(fermi_j, float(lj), mass, temperature_k)
                for lj in levels_j
            )

        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if total_density(mid) < sheet_density_m2:
                lo = mid
            else:
                hi = mid
        fermi_j = 0.5 * (lo + hi)
        densities = np.array(
            [
                _subband_density_2d(fermi_j, float(lj), mass, temperature_k)
                for lj in levels_j
            ]
        )

        # Volume charge density from the wavefunctions (electrons).
        occupancy = states.density(densities)  # 1/m^2 per node weight
        rho = np.zeros(grid.n)
        rho[1:-1] = -ELEMENTARY_CHARGE * occupancy
        poisson = solve_poisson_1d(
            PoissonProblem1D(
                grid,
                np.full(grid.n - 1, eps),
                rho,
                phi_left=0.0,
                phi_right=-surface_field_v_per_m * depth_m,
            )
        )
        # Hartree potential energy for electrons is -q * phi.
        new_potential_ev = -poisson.potential
        new_potential_ev -= new_potential_ev[0]

        mixed = (1.0 - mixing) * potential_ev + mixing * new_potential_ev
        if last_levels is not None:
            shift = float(
                np.max(np.abs(j_to_ev(levels_j - last_levels[: len(levels_j)])))
            )
            if shift < tolerance_ev:
                return ChannelWellSolution(
                    grid=grid,
                    potential_ev=mixed,
                    subband_energies_ev=j_to_ev(1.0) * levels_j,
                    subband_densities_m2=densities,
                    iterations=iteration,
                )
        last_levels = levels_j
        potential_ev = mixed

    raise ConvergenceError(
        f"Poisson-Schrodinger loop did not settle in {max_iterations} iterations"
    )


def triangular_well_levels_ev(
    field_v_per_m: float, effective_mass_ratio: float, n_levels: int = 4
) -> np.ndarray:
    """Airy-function energy levels of an ideal triangular well [eV].

    ``E_n = a_n * (hbar^2 / 2m)^{1/3} * (q E)^{2/3}`` with the Airy zeros
    ``a_n``; the standard analytic benchmark for the numeric solver.
    """
    if field_v_per_m <= 0.0:
        raise ConfigurationError("field must be positive")
    airy_zeros = np.array([2.33811, 4.08795, 5.52056, 6.78671, 7.94413])
    if n_levels > airy_zeros.size:
        raise ConfigurationError(f"at most {airy_zeros.size} levels supported")
    mass = effective_mass_ratio * ELECTRON_MASS
    scale_j = (HBAR**2 / (2.0 * mass)) ** (1.0 / 3.0) * (
        ELEMENTARY_CHARGE * field_v_per_m
    ) ** (2.0 / 3.0)
    return j_to_ev(1.0) * scale_j * airy_zeros[:n_levels]
