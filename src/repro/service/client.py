"""Typed synchronous client for the simulation service.

:class:`SimulationServiceClient` speaks the small JSON/HTTP API of
:mod:`repro.service.app` with ``urllib`` alone, returning the same
typed records the server works with (:class:`~repro.service.jobs.JobRecord`,
:class:`~repro.service.store.StoreRecord`) by round-tripping through
the :mod:`repro.io` converters -- so a fetched result is bit-identical
to what the server computed.

Transient failures are retried the way a well-behaved client of a
rate-limited service must: HTTP 429/503 honour the server's
``Retry-After`` when present, everything retryable backs off
exponentially with jitter, and a bounded retry budget turns into a
:class:`ServiceError` carrying the last status. Connection errors
(server not yet up, restarting) retry the same way, which is what lets
a client ride through a service restart without special casing. On
top of the per-attempt budget, ``total_timeout_s`` bounds one
request's *wall clock* across all its retries: every sleep is capped
to the remaining budget, so stacked ``Retry-After`` hints can never
hold a caller past its deadline.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Any, Mapping

from ..errors import ReproError
from ..io import (
    job_record_from_dict,
    run_plan_to_dict,
    store_record_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.plan import RunPlan, ScenarioResult
    from .jobs import JobRecord
    from .store import StoreRecord

#: HTTP statuses worth retrying: rate limit and transient unavailability.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(ReproError):
    """A service request failed after exhausting its retry budget.

    Attributes
    ----------
    status:
        The last HTTP status observed (0 for connection-level failures).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        """Record the failure message and the last HTTP status."""
        super().__init__(message)
        self.status = status


class JobLostError(ServiceError):
    """A job the service accepted answered 404 while being waited on.

    Pre-durability this meant a service restart dropped the job table;
    with the journal it should only happen when the journal itself was
    removed or the id was evicted past the bounded ``expired`` memory.
    Either way the accepted work is gone, and retrying the poll until
    the wait deadline would just burn it -- so :meth:`
    SimulationServiceClient.wait` raises this typed error instead,
    carrying the ``plan_hash`` from the acceptance record so the caller
    can resubmit the same plan (the store makes the resubmission cheap:
    everything already computed is a hit).
    """

    def __init__(self, job_id: str, plan_hash: str = "") -> None:
        """Name the lost job and the plan hash to resubmit."""
        super().__init__(
            f"job {job_id} was accepted but the service no longer knows "
            f"it (HTTP 404); resubmit the plan"
            + (f" (plan hash {plan_hash})" if plan_hash else ""),
            404,
        )
        self.job_id = job_id
        self.plan_hash = plan_hash


class SimulationServiceClient:
    """A retrying, typed HTTP client for one simulation service.

    Parameters
    ----------
    base_url:
        The service root, e.g. ``"http://127.0.0.1:8787"``.
    timeout_s:
        Per-request socket timeout.
    retries:
        Attempts per request beyond the first, spent on
        :data:`RETRYABLE_STATUSES` and connection errors.
    backoff_s, max_backoff_s:
        Exponential backoff base and cap between retries; the actual
        sleep adds uniform jitter so synchronised clients spread out.
    total_timeout_s:
        Overall wall-clock budget for one request including every
        retry sleep, or ``None`` for no deadline. Backoff sleeps
        (even server-mandated ``Retry-After`` floors) are capped to
        the remaining budget; once it is spent the request fails with
        a :class:`ServiceError` naming the attempts used.
    client_id:
        Sent as ``X-Client-Id`` -- the server's rate-limit key.
    rng:
        Jitter source (seedable for deterministic tests).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 30.0,
        retries: int = 5,
        backoff_s: float = 0.2,
        max_backoff_s: float = 5.0,
        total_timeout_s: "float | None" = None,
        client_id: str = "repro-client",
        rng: "random.Random | None" = None,
        sleep: "Any" = time.sleep,
        clock: "Any" = time.monotonic,
    ) -> None:
        """Configure the endpoint and the retry/backoff policy."""
        if total_timeout_s is not None and total_timeout_s <= 0:
            raise ReproError(
                f"total_timeout_s must be > 0 or None, got {total_timeout_s}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.total_timeout_s = (
            None if total_timeout_s is None else float(total_timeout_s)
        )
        self.client_id = client_id
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock

    # ----- endpoints ------------------------------------------------------

    def health(self) -> "dict[str, Any]":
        """GET /healthz -- liveness."""
        return self._request("GET", "/healthz")

    def stats(self) -> "dict[str, Any]":
        """GET /stats -- job, store and rate-limit counters."""
        return self._request("GET", "/stats")

    def submit(
        self,
        plan: "RunPlan",
        *,
        priority: "int | str | None" = None,
        timeout_s: "float | None" = None,
    ) -> "JobRecord":
        """POST /plans -- submit a plan; returns the accepted job record.

        ``priority`` is a class name (``"high"``/``"normal"``/
        ``"low"``) or an integer rank (lower dispatches first); omitted
        means normal. ``timeout_s`` is the *job's* server-side deadline
        (seconds from acceptance): an unfinished job is moved to the
        typed ``timeout`` state by the server's watchdog when it
        expires. Omitted means no deadline.
        """
        body = run_plan_to_dict(plan)
        if priority is not None:
            body["priority"] = priority
        if timeout_s is not None:
            body["timeout_s"] = float(timeout_s)
        payload = self._request("POST", "/plans", body=body)
        return job_record_from_dict(payload)

    def job(self, job_id: str) -> "JobRecord":
        """GET /jobs/{id} -- the job's current status record.

        An evicted job answers with a typed ``expired`` record rather
        than a 404 -- the id was real, its state has been garbage
        collected.
        """
        return job_record_from_dict(self._request("GET", f"/jobs/{job_id}"))

    def cancel(self, job_id: str) -> "JobRecord":
        """DELETE /jobs/{id} -- cancel a job; returns its final record.

        Idempotent: cancelling a job that already finished returns the
        terminal record unchanged (``done`` stays ``done``); a
        genuinely cancelled job reports ``cancelled``. Retries follow
        the same policy as every other request.
        """
        return job_record_from_dict(
            self._request("DELETE", f"/jobs/{job_id}")
        )

    def prune(
        self,
        *,
        max_entries: "int | None" = None,
        max_age_s: "float | None" = None,
    ) -> "dict[str, Any]":
        """POST /admin/prune -- GC the server's store within budgets.

        Returns the server's report: ``pruned`` (count), ``hashes``
        (what went), ``protected`` (pinned by live jobs) and
        ``entries`` (what remains). Hashes referenced by retained jobs
        are never pruned, whatever the budgets.
        """
        budgets: "dict[str, Any]" = {}
        if max_entries is not None:
            budgets["max_entries"] = int(max_entries)
        if max_age_s is not None:
            budgets["max_age_s"] = float(max_age_s)
        return self._request("POST", "/admin/prune", body=budgets)

    def result(self, scenario_hash: str) -> "StoreRecord":
        """GET /results/{hash} -- the stored record under one hash."""
        return store_record_from_dict(
            self._request("GET", f"/results/{scenario_hash}")
        )

    def verify(self, *, repair: bool = False) -> "dict[str, Any]":
        """POST /admin/verify -- integrity-scan the server's store.

        Returns the server's verify report (``scanned`` / ``intact`` /
        ``legacy`` / ``corrupt`` / ``quarantined`` / ``ok``); with
        ``repair`` true, corrupt objects are quarantined server-side
        and the index rebuilt.
        """
        return self._request(
            "POST", "/admin/verify", body={"repair": bool(repair)}
        )

    def wait(
        self,
        job_id: str,
        *,
        poll_s: float = 0.05,
        timeout_s: float = 600.0,
        plan_hash: str = "",
    ) -> "JobRecord":
        """Poll a job until it reaches a terminal state.

        Returns the final record (``done``, ``failed``, ``cancelled``,
        ``timeout`` or ``expired`` -- callers decide what non-success
        means to them); raises :class:`ServiceError` if the deadline
        passes first. A 404 on a job this client is *waiting* on --
        one the service accepted -- raises the typed
        :class:`JobLostError` immediately rather than polling a dead
        id until the deadline; pass ``plan_hash`` (from the acceptance
        record) so the error tells the caller what to resubmit.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                record = self.job(job_id)
            except ServiceError as exc:
                if exc.status == 404:
                    raise JobLostError(job_id, plan_hash) from exc
                raise
            if record.status in (
                "done",
                "failed",
                "cancelled",
                "timeout",
                "expired",
            ):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.status!r} after "
                    f"{timeout_s:.0f}s"
                )
            self._sleep(poll_s)

    def run_plan(
        self,
        plan: "RunPlan",
        *,
        poll_s: float = 0.05,
        timeout_s: float = 600.0,
        job_timeout_s: "float | None" = None,
    ) -> "tuple[tuple[ScenarioResult, ...], JobRecord]":
        """Submit a plan, wait for it, fetch every result, in plan order.

        The one-call client workflow: returns the
        :class:`~repro.api.plan.ScenarioResult` list aligned with
        ``plan.expanded()`` plus the final job record (whose
        ``sources`` say which results came from the store, an
        in-flight dedupe, or fresh compute). ``timeout_s`` bounds the
        client-side wait; ``job_timeout_s`` is forwarded to the server
        as the job's own deadline. Raises :class:`ServiceError` if the
        job failed (or timed out server-side).
        """
        accepted = self.submit(plan, timeout_s=job_timeout_s)
        final = self.wait(
            accepted.id,
            poll_s=poll_s,
            timeout_s=timeout_s,
            plan_hash=accepted.plan_hash,
        )
        if final.status != "done":
            raise ServiceError(
                f"job {final.id} {final.status}: "
                f"{final.error or 'unknown error'}"
            )
        results = tuple(
            self.result(h).scenario_result for h in final.scenario_hashes
        )
        return results, final

    # ----- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: "Mapping[str, Any] | None" = None,
    ) -> "dict[str, Any]":
        """One JSON request with the retry/backoff policy applied.

        Retries are bounded twice over: by count (``retries``) and --
        when ``total_timeout_s`` is set -- by wall clock. Each backoff
        sleep is capped to the remaining budget, so a server's stacked
        ``Retry-After`` hints cannot stretch the call past the
        caller's deadline; an exhausted budget raises a
        :class:`ServiceError` naming how many attempts were made.
        """
        url = f"{self.base_url}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        deadline = (
            None
            if self.total_timeout_s is None
            else self._clock() + self.total_timeout_s
        )
        last_status = 0
        last_error = "no attempts made"
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url,
                data=data,
                method=method,
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": self.client_id,
                },
            )
            retry_after: "float | None" = None
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                last_status = exc.code
                detail = _error_detail(exc)
                last_error = f"HTTP {exc.code}: {detail}"
                if exc.code not in RETRYABLE_STATUSES:
                    raise ServiceError(
                        f"{method} {path} failed ({last_error})", exc.code
                    ) from exc
                header = exc.headers.get("Retry-After") if exc.headers else None
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last_status = 0
                last_error = f"connection error: {exc}"
            if attempt < self.retries:
                pause = self._backoff(attempt, retry_after)
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        raise ServiceError(
                            f"{method} {path} failed after {attempt + 1} "
                            f"attempt(s): total_timeout_s="
                            f"{self.total_timeout_s}s budget exhausted "
                            f"({last_error})",
                            last_status,
                        )
                    pause = min(pause, remaining)
                self._sleep(pause)
        raise ServiceError(
            f"{method} {path} failed after {self.retries + 1} attempts "
            f"({last_error})",
            last_status,
        )

    def _backoff(
        self, attempt: int, retry_after: "float | None" = None
    ) -> float:
        """Exponential backoff with jitter, floored at ``Retry-After``."""
        base = min(self.max_backoff_s, self.backoff_s * (2.0**attempt))
        jittered = base * (0.5 + self._rng.random())
        if retry_after is not None:
            return max(retry_after, jittered)
        return jittered


def _error_detail(exc: urllib.error.HTTPError) -> str:
    """Extract the server's JSON error message from an HTTP failure."""
    try:
        payload = json.loads(exc.read().decode("utf-8"))
        return str(payload.get("error", payload))
    except Exception:
        return exc.reason if isinstance(exc.reason, str) else "unknown"
