"""Write-ahead job journal: durable service state over one JSONL file.

The simulation service keeps its job table, queue entries and
single-flight claims in memory; without a journal, a crash or deploy
restart silently forgets every accepted job and clients polling
``GET /jobs/{id}`` get a 404 for work they were promised. The
:class:`JobJournal` closes that hole: every job lifecycle transition is
appended to an append-only JSONL file *before* the service acts on it
(write-ahead), so a restarted service replays the journal and

* answers ``GET /jobs/{id}`` for every previously accepted job
  (terminal jobs come back as full records, evicted ids as ``expired``);
* re-queues jobs that were accepted but not terminal -- the re-run
  resolves through the :class:`~repro.service.store.ResultStore`, so
  only scenarios missing from the store are recomputed (the PR 9
  salvage path persisted everything that did complete);
* distinguishes a clean shutdown (the last entry is a ``shutdown``
  marker written by the drain path) from a crash.

Durability model: the ``accepted`` entry -- the promise to the client
-- is fsynced before ``POST /plans`` returns 202; later transitions
are flushed but not fsynced (they survive a process kill, and losing
one to a power cut merely re-queues a job that already has store
entries). The file is compacted in place every ``compact_every``
appends: live jobs, the bounded evicted-id memory, and unexpired
leases are rewritten as a minimal prefix (temp file + ``os.replace``,
atomic on POSIX).

Leases make one store directory safe to share between replicas: a
replica must hold the :class:`LeaseRecord` for a plan hash before
computing it, and renews it on a TTL heartbeat while the compute runs.
Claims are appended to the same journal, so the log order arbitrates
races -- the first claim appended while no live lease exists wins --
and an expired lease (crashed owner) lets a surviving replica adopt
the orphaned work. :meth:`JobJournal.refresh` tail-reads entries other
processes appended since our last read, which is what makes the fold
a shared view rather than a private one.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..errors import ConfigurationError

#: Entry kinds the journal understands (anything else is preserved
#: verbatim through compaction but ignored by the fold).
JOURNAL_KINDS = (
    "accepted",
    "running",
    "terminal",
    "evicted",
    "lease-claim",
    "lease-renew",
    "lease-release",
    "boot",
    "shutdown",
)

#: Job statuses the fold treats as final (mirrors ``jobs.TERMINAL_STATUSES``
#: without importing it -- the journal layer stands below the manager).
_TERMINAL = ("done", "failed", "cancelled", "timeout")

_JOB_SEQ = re.compile(r"^job-(\d+)$")


@dataclass(frozen=True)
class JournalEntry:
    """One journal line: a kind, a timestamp, and its payload.

    Attributes
    ----------
    kind:
        One of :data:`JOURNAL_KINDS`.
    at:
        POSIX timestamp the entry was appended.
    job_id:
        The job the entry belongs to (empty for lease/marker entries).
    data:
        Kind-specific payload (plan record, status, lease fields, ...).
    """

    kind: str
    at: float
    job_id: str = ""
    data: "Mapping[str, Any]" = field(default_factory=dict)


@dataclass(frozen=True)
class LeaseRecord:
    """A plan-level compute claim: who may run a plan hash, until when.

    Attributes
    ----------
    plan_hash:
        The :func:`~repro.api.hashing.plan_hash` the lease covers.
    owner_id:
        The claiming service instance (one id per process lifetime).
    job_id:
        The job the owner acquired the lease for.
    acquired_at, expires_at:
        POSIX acquisition time and expiry; a lease past ``expires_at``
        is dead and may be adopted by any other owner.
    """

    plan_hash: str
    owner_id: str
    job_id: str
    acquired_at: float
    expires_at: float

    def expired(self, now: "float | None" = None) -> bool:
        """Whether the lease is past its expiry (adoptable)."""
        return (time.time() if now is None else now) >= self.expires_at


@dataclass
class JournalJobState:
    """The folded state of one journaled job."""

    job_id: str
    plan_record: "dict[str, Any]"
    plan_hash: str
    priority: int
    timeout_s: "float | None"
    created_at: float
    status: str = "queued"
    error: "str | None" = None
    finished_at: "float | None" = None
    elapsed_s: float = 0.0
    scenario_hashes: "tuple[str, ...]" = ()
    sources: "tuple[str, ...]" = ()

    @property
    def terminal(self) -> bool:
        """Whether the job reached a final status before the fold ended."""
        return self.status in _TERMINAL


@dataclass
class JournalState:
    """Everything a replayed journal knows, folded in log order."""

    jobs: "dict[str, JournalJobState]" = field(default_factory=dict)
    leases: "dict[str, LeaseRecord]" = field(default_factory=dict)
    expired: "dict[str, str]" = field(default_factory=dict)
    clean_shutdown: bool = False
    corrupt_lines: int = 0
    entries: int = 0
    max_job_seq: int = 0


class JobJournal:
    """An append-only JSONL write-ahead log of service state.

    One instance per service process; the *file* may be shared by
    several processes (replicas over one store directory): appends are
    single ``write()`` calls on an ``O_APPEND`` descriptor, so lines
    from concurrent writers never interleave, and :meth:`refresh`
    folds in whatever other writers appended since our last read.
    All methods must be called from one thread (the event loop).
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        fsync_on_accept: bool = True,
        compact_every: int = 512,
        expired_cap: int = 4096,
    ) -> None:
        """Open (creating if needed) the journal at ``path`` and replay it."""
        if compact_every < 1:
            raise ConfigurationError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.path = Path(path)
        self.fsync_on_accept = bool(fsync_on_accept)
        self.compact_every = int(compact_every)
        self.expired_cap = int(expired_cap)
        self.compactions = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._offset = 0
        self._since_compact = 0
        self.state = JournalState()
        self.replay()

    # ----- reading --------------------------------------------------------

    def replay(self) -> JournalState:
        """Fold the whole journal from the top into a fresh state.

        A truncated final line (a crash mid-append) is tolerated and
        skipped; corrupt lines elsewhere are counted in
        ``state.corrupt_lines`` and skipped rather than aborting the
        boot -- a damaged journal recovers what it can.
        """
        self.state = JournalState()
        self._offset = 0
        return self.refresh()

    def refresh(self) -> JournalState:
        """Fold entries appended (by anyone) since the last read.

        Detects a compacted-by-another-process file (shrunk beneath our
        read offset) and refolds from the top; folding is deterministic
        from file content, so the rebuild is idempotent.
        """
        if not self.path.exists():
            return self.state
        size = self.path.stat().st_size
        if size < self._offset:
            # Another process compacted (os.replace) under us.
            self.state = JournalState()
            self._offset = 0
        if size == self._offset:
            return self.state
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        # A crash mid-append can leave a partial trailing line; leave
        # it unread (the offset stays before it) so a later append by
        # its writer -- impossible after a crash -- or our own next
        # refresh never misparses it.
        lines = chunk.split(b"\n")
        tail = lines.pop()
        consumed = len(chunk) - len(tail)
        self._offset += consumed
        for raw in lines:
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal line is not an object")
            except (ValueError, UnicodeDecodeError):
                self.state.corrupt_lines += 1
                continue
            self._fold(record)
        return self.state

    def _fold(self, record: "Mapping[str, Any]") -> None:
        """Apply one parsed journal line to the running state."""
        state = self.state
        state.entries += 1
        kind = record.get("kind")
        job_id = str(record.get("job_id", ""))
        at = float(record.get("at", 0.0))
        data = record.get("data") or {}
        if not isinstance(data, Mapping):
            data = {}
        state.clean_shutdown = kind == "shutdown"
        match = _JOB_SEQ.match(job_id)
        if match:
            state.max_job_seq = max(state.max_job_seq, int(match.group(1)))
        if kind == "accepted":
            timeout_s = data.get("timeout_s")
            state.jobs[job_id] = JournalJobState(
                job_id=job_id,
                plan_record=dict(data.get("plan", {})),
                plan_hash=str(data.get("plan_hash", "")),
                priority=int(data.get("priority", 1)),
                timeout_s=None if timeout_s is None else float(timeout_s),
                created_at=at,
            )
            state.expired.pop(job_id, None)
        elif kind == "running":
            job = state.jobs.get(job_id)
            if job is not None and not job.terminal:
                job.status = "running"
        elif kind == "terminal":
            job = state.jobs.get(job_id)
            if job is not None:
                job.status = str(data.get("status", "failed"))
                error = data.get("error")
                job.error = None if error is None else str(error)
                job.finished_at = at
                job.elapsed_s = float(data.get("elapsed_s", 0.0))
                job.scenario_hashes = tuple(
                    str(h) for h in data.get("scenario_hashes", ())
                )
                job.sources = tuple(
                    str(s) for s in data.get("sources", ())
                )
        elif kind == "evicted":
            state.jobs.pop(job_id, None)
            state.expired[job_id] = str(data.get("status", "done"))
            while len(state.expired) > self.expired_cap:
                state.expired.pop(next(iter(state.expired)))
        elif kind == "lease-claim":
            lease = LeaseRecord(
                plan_hash=str(data.get("plan_hash", "")),
                owner_id=str(data.get("owner_id", "")),
                job_id=job_id,
                acquired_at=at,
                expires_at=float(data.get("expires_at", 0.0)),
            )
            holder = state.leases.get(lease.plan_hash)
            if (
                holder is None
                or holder.owner_id == lease.owner_id
                or holder.expired(at)
            ):
                state.leases[lease.plan_hash] = lease
        elif kind == "lease-renew":
            holder = state.leases.get(str(data.get("plan_hash", "")))
            if holder is not None and holder.owner_id == str(
                data.get("owner_id", "")
            ):
                state.leases[holder.plan_hash] = LeaseRecord(
                    plan_hash=holder.plan_hash,
                    owner_id=holder.owner_id,
                    job_id=holder.job_id,
                    acquired_at=holder.acquired_at,
                    expires_at=float(data.get("expires_at", 0.0)),
                )
        elif kind == "lease-release":
            holder = state.leases.get(str(data.get("plan_hash", "")))
            if holder is not None and holder.owner_id == str(
                data.get("owner_id", "")
            ):
                del state.leases[holder.plan_hash]

    # ----- writing --------------------------------------------------------

    def append(
        self,
        kind: str,
        *,
        job_id: str = "",
        data: "Mapping[str, Any] | None" = None,
        sync: bool = False,
        at: "float | None" = None,
    ) -> JournalEntry:
        """Append one entry; ``sync=True`` fsyncs before returning.

        The write-ahead contract: callers append *before* mutating
        their in-memory state, and fsync the entries that carry a
        promise to a client (``accepted``, lease claims). The append
        is followed by a :meth:`refresh`, so our own entry -- and any
        lines other writers slipped in before it -- fold into the live
        state in true log order before we return.
        """
        entry = JournalEntry(
            kind=kind,
            at=time.time() if at is None else float(at),
            job_id=job_id,
            data=dict(data or {}),
        )
        from ..io import journal_entry_to_dict

        record = journal_entry_to_dict(entry)
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
            if sync and self.fsync_on_accept:
                os.fsync(fd)
        finally:
            os.close(fd)
        # Do NOT just bump the offset by our own line length: other
        # writers may have appended unread lines before ours, and a
        # blind bump would park the offset mid-line, shredding a
        # foreign entry (e.g. a rival's lease claim) on the next read.
        # Refreshing folds everything -- theirs and ours -- in log order.
        self.refresh()
        self._since_compact += 1
        if self._since_compact >= self.compact_every:
            self.compact()
        return entry

    def mark_clean_shutdown(self) -> None:
        """Append the fsynced ``shutdown`` marker the drain path writes.

        A journal whose *last* entry is this marker replays as a clean
        shutdown; any entry appended afterwards (the next boot's
        ``boot`` marker, a new submission) clears the flag, so the
        distinction is per-session by construction.
        """
        self.append("shutdown", sync=True)

    def compact(self) -> int:
        """Rewrite the journal as a minimal equivalent prefix.

        Keeps: one ``accepted`` (plus ``running``/``terminal``) entry
        per live job, the bounded ``evicted`` memory, and unexpired
        leases. History -- superseded transitions, released leases,
        old shutdown markers -- is dropped. Atomic via a temp file and
        :func:`os.replace`; returns the number of entries written.
        """
        self.refresh()
        state = self.state
        from ..io import journal_entry_to_dict

        entries: "list[JournalEntry]" = []
        for job in state.jobs.values():
            entries.append(
                JournalEntry(
                    kind="accepted",
                    at=job.created_at,
                    job_id=job.job_id,
                    data={
                        "plan": job.plan_record,
                        "plan_hash": job.plan_hash,
                        "priority": job.priority,
                        "timeout_s": job.timeout_s,
                    },
                )
            )
            if job.terminal:
                entries.append(
                    JournalEntry(
                        kind="terminal",
                        at=job.finished_at or job.created_at,
                        job_id=job.job_id,
                        data={
                            "status": job.status,
                            "error": job.error,
                            "elapsed_s": job.elapsed_s,
                            "scenario_hashes": list(job.scenario_hashes),
                            "sources": list(job.sources),
                        },
                    )
                )
            elif job.status == "running":
                entries.append(
                    JournalEntry(
                        kind="running", at=job.created_at, job_id=job.job_id
                    )
                )
        for job_id, status in state.expired.items():
            entries.append(
                JournalEntry(
                    kind="evicted",
                    at=0.0,
                    job_id=job_id,
                    data={"status": status},
                )
            )
        now = time.time()
        for lease in state.leases.values():
            if not lease.expired(now):
                entries.append(
                    JournalEntry(
                        kind="lease-claim",
                        at=lease.acquired_at,
                        job_id=lease.job_id,
                        data={
                            "plan_hash": lease.plan_hash,
                            "owner_id": lease.owner_id,
                            "expires_at": lease.expires_at,
                        },
                    )
                )
        payload = "".join(
            json.dumps(journal_entry_to_dict(e), sort_keys=True) + "\n"
            for e in entries
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._offset = len(payload.encode("utf-8"))
        self._since_compact = 0
        self.compactions += 1
        # Replayed corrupt lines are gone from the file now, and the
        # entry count is exactly what compaction wrote.
        self.state.corrupt_lines = 0
        self.state.entries = len(entries)
        return len(entries)

    # ----- leases ---------------------------------------------------------

    def acquire_lease(
        self,
        plan_hash: str,
        owner_id: str,
        job_id: str,
        ttl_s: float,
        now: "float | None" = None,
    ) -> LeaseRecord:
        """Try to claim a plan hash; returns the *current* holder.

        Refreshes first (so foreign claims are visible), appends our
        claim only when the table says we may (no holder, expired
        holder, or ourselves), then refreshes again and returns
        whoever the log says holds the lease -- the caller checks
        ``holder.owner_id`` to learn whether it won. Log order
        arbitrates ties between racing claimants.
        """
        if ttl_s <= 0:
            raise ConfigurationError(f"ttl_s must be > 0, got {ttl_s}")
        now = time.time() if now is None else now
        self.refresh()
        holder = self.state.leases.get(plan_hash)
        if (
            holder is not None
            and holder.owner_id != owner_id
            and not holder.expired(now)
        ):
            return holder
        self.append(
            "lease-claim",
            job_id=job_id,
            data={
                "plan_hash": plan_hash,
                "owner_id": owner_id,
                "expires_at": now + float(ttl_s),
            },
            sync=True,
            at=now,
        )
        self.refresh()
        return self.state.leases[plan_hash]

    def renew_lease(
        self,
        plan_hash: str,
        owner_id: str,
        ttl_s: float,
        now: "float | None" = None,
    ) -> "LeaseRecord | None":
        """Heartbeat: extend a lease we hold; ``None`` if we lost it."""
        now = time.time() if now is None else now
        self.refresh()
        holder = self.state.leases.get(plan_hash)
        if holder is None or holder.owner_id != owner_id:
            return None
        self.append(
            "lease-renew",
            job_id=holder.job_id,
            data={
                "plan_hash": plan_hash,
                "owner_id": owner_id,
                "expires_at": now + float(ttl_s),
            },
            at=now,
        )
        return self.state.leases.get(plan_hash)

    def release_lease(self, plan_hash: str, owner_id: str) -> None:
        """Release a lease we hold (a no-op if we do not)."""
        self.refresh()
        holder = self.state.leases.get(plan_hash)
        if holder is None or holder.owner_id != owner_id:
            return
        self.append(
            "lease-release",
            job_id=holder.job_id,
            data={"plan_hash": plan_hash, "owner_id": owner_id},
        )

    def current_lease(self, plan_hash: str) -> "LeaseRecord | None":
        """The live holder of a plan hash after a refresh, if any."""
        self.refresh()
        return self.state.leases.get(plan_hash)

    # ----- reporting ------------------------------------------------------

    def stats(self) -> "dict[str, Any]":
        """Journal health counters for ``/stats``."""
        return {
            "path": str(self.path),
            "entries": self.state.entries,
            "jobs": len(self.state.jobs),
            "leases": len(self.state.leases),
            "expired_ids": len(self.state.expired),
            "corrupt_lines": self.state.corrupt_lines,
            "compactions": self.compactions,
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }
