"""Command-line entry point for the simulation service.

Installed as ``repro-service``::

    repro-service serve --store results/ --port 8787 --workers 4
    repro-service serve --store results/ --shard-timeout 120 --shard-retries 2
    repro-service submit plan.json --url http://127.0.0.1:8787 --wait
    repro-service submit plan.json --priority high --job-timeout 300 --wait
    repro-service status job-1 --url http://127.0.0.1:8787
    repro-service cancel job-1 --url http://127.0.0.1:8787
    repro-service fetch <scenario-hash> --url ... --out result.json
    repro-service prune --url ... --max-entries 1000 --max-age 86400
    repro-service verify --store results/ --repair
    repro-service verify --url http://127.0.0.1:8787

``serve`` runs the asyncio HTTP service in the foreground until
interrupted: SIGTERM (and Ctrl-C) triggers a graceful shutdown that
drains running jobs for up to ``--drain-timeout`` seconds and journals
a clean-shutdown marker, so the next boot on the same ``--journal``
(default: ``journal.jsonl`` inside the store) recovers every accepted
job instead of forgetting it (``--prune-interval`` adds periodic store
GC). ``submit``/``status``/``cancel``/``fetch``/``prune`` are thin
wrappers over :class:`~repro.service.client.SimulationServiceClient`
that print JSON, so they compose with ``jq``-style tooling. ``prune``
garbage collects the server's result store within the given budgets --
hashes referenced by live jobs are pinned server-side and never
deleted. ``verify`` integrity-scans a store -- locally via ``--store``
or through a running service via ``--url`` -- and exits non-zero when
corruption was found (``--repair`` quarantines it).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from typing import Sequence

from ..api.plan import RunPlan
from ..errors import ReproError
from ..io import job_record_to_dict, store_record_to_dict
from .app import ServiceApp
from .client import SimulationServiceClient
from .store import ResultStore


def _build_parser() -> argparse.ArgumentParser:
    """The ``repro-service`` argument tree (seven subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Serve and query the persistent simulation service.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the HTTP service in the foreground"
    )
    serve.add_argument(
        "--store", required=True, help="result store directory (created)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="0 binds an ephemeral port"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard each job across N executor workers",
    )
    serve.add_argument(
        "--shard-by",
        choices=["round-robin", "by-experiment", "by-cost"],
        default="round-robin",
    )
    serve.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="worker pool kind for job compute",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        help="bounded job queue size (503 beyond it)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=2,
        help="jobs resolved concurrently",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=10.0,
        help="per-client submissions per second (token refill)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=20.0,
        help="per-client burst budget (token bucket capacity)",
    )
    serve.add_argument(
        "--aging",
        type=float,
        default=30.0,
        help="seconds a waiting job ages one priority class",
    )
    serve.add_argument(
        "--job-ttl",
        type=float,
        default=3600.0,
        help="seconds finished job records are retained (0 disables)",
    )
    serve.add_argument(
        "--max-job-records",
        type=int,
        default=1024,
        help="finished job records retained beyond TTL (0 disables)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard compute deadline in seconds (off by default)",
    )
    serve.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="retries per failed/crashed/timed-out shard",
    )
    serve.add_argument(
        "--prune-interval",
        type=float,
        default=None,
        help="seconds between background store prunes (off by default)",
    )
    serve.add_argument(
        "--prune-max-entries",
        type=int,
        default=None,
        help="store entry target for the background prune",
    )
    serve.add_argument(
        "--prune-max-age",
        type=float,
        default=None,
        help="store entry age budget (seconds) for the background prune",
    )
    serve.add_argument(
        "--journal",
        default="auto",
        help="write-ahead job journal path; 'auto' keeps it inside the "
        "store, 'none' disables durability",
    )
    serve.add_argument(
        "--owner-id",
        default="",
        help="lease owner identity (defaults to a per-process id)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a plan lease lives between heartbeat renewals",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds SIGTERM waits for running jobs before cancelling "
        "them (cancelled stragglers re-queue on the next boot)",
    )

    verify = commands.add_parser(
        "verify",
        help="integrity-scan a result store (local dir or via a service)",
    )
    verify.add_argument(
        "--store",
        default=None,
        help="scan this store directory directly (no service needed)",
    )
    verify.add_argument(
        "--url",
        default=None,
        help="scan through a running service's POST /admin/verify",
    )
    verify.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt objects and rebuild the index",
    )

    for name, help_text in (
        ("submit", "submit a plan JSON file as a job"),
        ("status", "print one job's status record"),
        ("cancel", "cancel a job; prints its final record"),
        ("fetch", "print (or save) one stored result by scenario hash"),
        ("prune", "garbage collect the server's result store"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--url",
            default="http://127.0.0.1:8787",
            help="service base URL",
        )
        if name == "submit":
            sub.add_argument("plan", help="path to a RunPlan JSON file")
            sub.add_argument(
                "--priority",
                default=None,
                help='"high"/"normal"/"low" or an integer rank '
                "(lower dispatches first)",
            )
            sub.add_argument(
                "--wait",
                action="store_true",
                help="poll until the job finishes and report its sources",
            )
            sub.add_argument(
                "--timeout", type=float, default=600.0, help="--wait deadline"
            )
            sub.add_argument(
                "--job-timeout",
                type=float,
                default=None,
                help="server-side job deadline in seconds (the job "
                "finishes in the typed 'timeout' state when it expires)",
            )
        elif name in ("status", "cancel"):
            sub.add_argument("job_id", help="job id (e.g. job-1)")
        elif name == "fetch":
            sub.add_argument("hash", help="canonical scenario hash")
            sub.add_argument(
                "--out", default=None, help="write the record to this file"
            )
        else:  # prune
            sub.add_argument(
                "--max-entries",
                type=int,
                default=None,
                help="keep at most this many store entries",
            )
            sub.add_argument(
                "--max-age",
                type=float,
                default=None,
                help="drop entries older than this many seconds",
            )
    return parser


def _parse_priority(raw: "str | None") -> "int | str | None":
    """CLI priority: pass class names through, convert digits to ints."""
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return raw


async def _serve(args: argparse.Namespace) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and stop."""
    journal = None if args.journal == "none" else args.journal
    app = ServiceApp(
        args.store,
        host=args.host,
        port=args.port,
        seed=args.seed,
        workers=args.workers,
        shard_by=args.shard_by,
        executor=args.executor,
        max_pending=args.max_pending,
        max_concurrent=args.max_concurrent,
        rate_per_s=args.rate,
        burst=args.burst,
        aging_s=args.aging,
        job_ttl_s=args.job_ttl if args.job_ttl > 0 else None,
        max_records=(
            args.max_job_records if args.max_job_records > 0 else None
        ),
        shard_timeout_s=args.shard_timeout,
        max_shard_retries=args.shard_retries,
        prune_interval_s=args.prune_interval,
        prune_max_entries=args.prune_max_entries,
        prune_max_age_s=args.prune_max_age,
        journal=journal,
        owner_id=args.owner_id,
        lease_ttl_s=args.lease_ttl,
        drain_timeout_s=args.drain_timeout,
    )
    host, port = await app.start()
    print(f"repro-service listening on http://{host}:{port}")
    print(f"store: {app.store.root} ({len(app.store)} results)")
    if app.recovery is not None:
        print(f"recovery: {json.dumps(app.recovery)}")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
        drained = await app.drain()
        if not drained:
            print(
                "drain timeout: cancelling stragglers "
                "(they re-queue on the next boot)",
                file=sys.stderr,
            )
    except asyncio.CancelledError:
        pass
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.remove_signal_handler(sig)
        await app.stop()
    return 0


def _verify(args: argparse.Namespace) -> int:
    """``repro-service verify``: scan a store, exit 1 on corruption."""
    if (args.store is None) == (args.url is None):
        print(
            "error: verify needs exactly one of --store or --url",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        report = ResultStore(args.store).verify(repair=args.repair).as_dict()
    else:
        report = SimulationServiceClient(args.url).verify(
            repair=args.repair
        )
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


def main(argv: "Sequence[str] | None" = None) -> int:
    """Parse arguments and run one subcommand; returns an exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            try:
                return asyncio.run(_serve(args))
            except KeyboardInterrupt:
                return 0
        if args.command == "verify":
            return _verify(args)
        client = SimulationServiceClient(args.url)
        if args.command == "submit":
            plan = RunPlan.load(args.plan)
            record = client.submit(
                plan,
                priority=_parse_priority(args.priority),
                timeout_s=args.job_timeout,
            )
            if args.wait:
                record = client.wait(record.id, timeout_s=args.timeout)
            print(json.dumps(job_record_to_dict(record), indent=2))
            return 0 if record.status in ("queued", "running", "done") else 1
        if args.command == "status":
            print(
                json.dumps(
                    job_record_to_dict(client.job(args.job_id)), indent=2
                )
            )
            return 0
        if args.command == "cancel":
            record = client.cancel(args.job_id)
            print(json.dumps(job_record_to_dict(record), indent=2))
            return 0 if record.status == "cancelled" else 1
        if args.command == "prune":
            report = client.prune(
                max_entries=args.max_entries, max_age_s=args.max_age
            )
            print(json.dumps(report, indent=2))
            return 0
        # fetch
        record = store_record_to_dict(client.result(args.hash))
        text = json.dumps(record, indent=2)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
