"""Command-line entry point for the simulation service.

Installed as ``repro-service``::

    repro-service serve --store results/ --port 8787 --workers 4
    repro-service submit plan.json --url http://127.0.0.1:8787 --wait
    repro-service status job-1 --url http://127.0.0.1:8787
    repro-service fetch <scenario-hash> --url ... --out result.json

``serve`` runs the asyncio HTTP service in the foreground until
interrupted; ``submit``/``status``/``fetch`` are thin wrappers over
:class:`~repro.service.client.SimulationServiceClient` that print
JSON, so they compose with ``jq``-style tooling.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Sequence

from ..api.plan import RunPlan
from ..errors import ReproError
from ..io import job_record_to_dict, store_record_to_dict
from .app import ServiceApp
from .client import SimulationServiceClient


def _build_parser() -> argparse.ArgumentParser:
    """The ``repro-service`` argument tree (four subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Serve and query the persistent simulation service.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="run the HTTP service in the foreground"
    )
    serve.add_argument(
        "--store", required=True, help="result store directory (created)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="0 binds an ephemeral port"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard each job across N executor workers",
    )
    serve.add_argument(
        "--shard-by",
        choices=["round-robin", "by-experiment", "by-cost"],
        default="round-robin",
    )
    serve.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="worker pool kind for job compute",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        help="bounded job queue size (503 beyond it)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=2,
        help="jobs resolved concurrently",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=10.0,
        help="per-client submissions per second (token refill)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=20.0,
        help="per-client burst budget (token bucket capacity)",
    )

    for name, help_text in (
        ("submit", "submit a plan JSON file as a job"),
        ("status", "print one job's status record"),
        ("fetch", "print (or save) one stored result by scenario hash"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--url",
            default="http://127.0.0.1:8787",
            help="service base URL",
        )
        if name == "submit":
            sub.add_argument("plan", help="path to a RunPlan JSON file")
            sub.add_argument(
                "--wait",
                action="store_true",
                help="poll until the job finishes and report its sources",
            )
            sub.add_argument(
                "--timeout", type=float, default=600.0, help="--wait deadline"
            )
        elif name == "status":
            sub.add_argument("job_id", help="job id (e.g. job-1)")
        else:
            sub.add_argument("hash", help="canonical scenario hash")
            sub.add_argument(
                "--out", default=None, help="write the record to this file"
            )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    """Run the service until cancelled (Ctrl-C)."""
    app = ServiceApp(
        args.store,
        host=args.host,
        port=args.port,
        seed=args.seed,
        workers=args.workers,
        shard_by=args.shard_by,
        executor=args.executor,
        max_pending=args.max_pending,
        max_concurrent=args.max_concurrent,
        rate_per_s=args.rate,
        burst=args.burst,
    )
    host, port = await app.start()
    print(f"repro-service listening on http://{host}:{port}")
    print(f"store: {app.store.root} ({len(app.store)} results)")
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await app.stop()
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Parse arguments and run one subcommand; returns an exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            try:
                return asyncio.run(_serve(args))
            except KeyboardInterrupt:
                return 0
        client = SimulationServiceClient(args.url)
        if args.command == "submit":
            plan = RunPlan.load(args.plan)
            record = client.submit(plan)
            if args.wait:
                record = client.wait(record.id, timeout_s=args.timeout)
            print(json.dumps(job_record_to_dict(record), indent=2))
            return 0 if record.status in ("queued", "running", "done") else 1
        if args.command == "status":
            print(
                json.dumps(
                    job_record_to_dict(client.job(args.job_id)), indent=2
                )
            )
            return 0
        # fetch
        record = store_record_to_dict(client.result(args.hash))
        text = json.dumps(record, indent=2)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
