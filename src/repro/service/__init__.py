"""`repro.service`: the persistent result store and simulation service.

The serving layer over :mod:`repro.api` -- the piece that makes warm
caches survive restarts and lets many clients share one simulation
backend:

* :class:`ResultStore` (:mod:`repro.service.store`) -- a
  content-addressed on-disk store of
  :class:`~repro.api.plan.ScenarioResult` records keyed by the
  canonical scenario hash (:func:`repro.api.scenario_hash`), with
  atomic writes and bit-exact JSON round-trips via :mod:`repro.io`.
* :class:`JobManager` (:mod:`repro.service.jobs`) -- an asyncio job
  queue over the sharded parallel executor with single-flight dedupe
  (identical in-flight scenarios are computed once), priority-aware
  dispatch (:class:`PriorityGate`: ``high``/``normal``/``low`` classes
  with aging, so nothing starves), safe cancellation, finished-job
  eviction (TTL + cap) and per-client token-bucket rate limiting.
* :class:`JobJournal` (:mod:`repro.service.journal`) -- the
  write-ahead job journal behind crash-safe restarts: lifecycle
  transitions land in an append-only JSONL file (``accepted`` fsynced
  before the 202), boot replays it to restore and re-queue jobs, and
  plan-level :class:`LeaseRecord` claims (owner + TTL heartbeat,
  arbitrated by log order) keep replicas sharing one store from
  double-running a plan.
* :class:`ServiceApp` (:mod:`repro.service.app`) -- the stdlib-only
  HTTP service: ``POST /plans``, ``GET /jobs/{id}``,
  ``DELETE /jobs/{id}``, ``GET /results/{hash}``, ``GET /healthz``,
  ``GET /stats``, ``POST /admin/prune`` (store GC that pins hashes
  referenced by live jobs), ``POST /admin/verify`` (store integrity
  scan; corrupt objects are quarantined, never served).
* :class:`SimulationServiceClient` (:mod:`repro.service.client`) -- a
  typed synchronous client with retry/backoff on 429/503 and a typed
  :class:`JobLostError` for accepted-then-404 jobs, plus the
  ``repro-service`` CLI (:mod:`repro.service.cli`).

Quickstart (in-process, as the tests and example embed it)::

    from repro.api import RunPlan, Scenario
    from repro.service import ServiceApp, ServiceThread
    from repro.service import SimulationServiceClient

    app = ServiceApp("results/", workers=2, executor="thread")
    with ServiceThread(app) as service:
        client = SimulationServiceClient(service.url)
        plan = RunPlan(name="demo", scenarios=(Scenario("fig6"),))
        results, job = client.run_plan(plan)   # computed, stored
        results2, job2 = client.run_plan(plan) # 100% store hits

See ``docs/API.md`` ("Simulation service & result store") for the hash
contract and the endpoint semantics.
"""

from .app import ServiceApp, ServiceThread
from .client import JobLostError, ServiceError, SimulationServiceClient
from .jobs import (
    PRIORITY_CLASSES,
    Job,
    JobManager,
    JobQueueFull,
    JobRecord,
    PartialComputeError,
    PriorityGate,
    RateLimiter,
    TokenBucket,
    compute_scenario_results,
    expired_job_record,
    normalize_priority,
)
from .journal import JobJournal, JournalEntry, JournalState, LeaseRecord
from .store import (
    CorruptObject,
    ResultStore,
    StoreIntegrityError,
    StoreRecord,
    StoreReport,
    VerifyReport,
    result_checksum,
    run_plan_with_store,
)

__all__ = [
    "ResultStore",
    "StoreIntegrityError",
    "StoreRecord",
    "StoreReport",
    "CorruptObject",
    "VerifyReport",
    "result_checksum",
    "run_plan_with_store",
    "Job",
    "JobManager",
    "JobQueueFull",
    "JobRecord",
    "JobJournal",
    "JournalEntry",
    "JournalState",
    "LeaseRecord",
    "PartialComputeError",
    "PriorityGate",
    "PRIORITY_CLASSES",
    "RateLimiter",
    "TokenBucket",
    "compute_scenario_results",
    "expired_job_record",
    "normalize_priority",
    "ServiceApp",
    "ServiceThread",
    "ServiceError",
    "JobLostError",
    "SimulationServiceClient",
]
