"""Content-addressed on-disk result store for scenario results.

A :class:`ResultStore` persists :class:`~repro.api.plan.ScenarioResult`
records keyed by their canonical scenario hash
(:func:`~repro.api.hashing.scenario_hash`), so warm caches survive
process restarts and can be shared between machines over a plain
directory. Layout::

    <root>/
      objects/<hh>/<hash>.json    # one StoreRecord per result
      index.json                  # acceleration/metadata index

Object files are the source of truth: their path is derivable from the
hash alone, every write goes through a temp file + :func:`os.replace`
(atomic on POSIX), and the store is **first-writer-wins** -- a second
``put`` under an existing hash is a no-op, which is safe because
content addressing makes all writers' payloads equal by construction.
The index is a rebuildable acceleration layer (:meth:`ResultStore.reindex`
recovers it by scanning ``objects/``), so a crash between an object
write and an index write never loses or corrupts a result.

:func:`run_plan_with_store` is the runner-side integration: execute a
plan serving hits from a store, computing only misses, and optionally
writing the computed results back (the ``--from-store`` /
``--update-store`` flags of ``repro-experiments``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..api.hashing import code_version, scenario_hash
from ..engine.cache import CacheStats
from ..errors import ConfigurationError


class StoreIntegrityError(ConfigurationError):
    """A stored object failed an integrity check and was quarantined.

    Raised by :meth:`ResultStore.get_record` when the object under a
    hash is unreadable, claims a different hash than it is filed
    under, or fails its sha256 content checksum. The offending file
    has already been moved to ``quarantine/`` when this propagates --
    a corrupt object is *never* served, and the hash reads as a miss
    afterwards so the result is simply recomputed.
    """


def result_checksum(scenario_result_record: "Mapping[str, Any]") -> str:
    """The sha256 content checksum of one serialised scenario result.

    Computed over the compact, key-sorted JSON of the
    :func:`~repro.io.scenario_result_to_dict` record -- deterministic
    across processes and stable through a JSON round trip, so
    :meth:`ResultStore.verify` can recompute it from the file alone.
    """
    canonical = json.dumps(
        dict(scenario_result_record),
        sort_keys=True,
        separators=(",", ":"),
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.plan import PlanResult, RunPlan, ScenarioResult
    from ..api.session import SimulationSession


@dataclass(frozen=True)
class StoreRecord:
    """One stored result: the hash it is filed under plus provenance.

    Attributes
    ----------
    hash:
        The canonical scenario hash (the content address).
    code_version:
        The :func:`~repro.api.hashing.code_version` salt the result was
        computed under.
    created_at:
        POSIX timestamp of the write (used by :meth:`ResultStore.prune`).
    scenario_result:
        The full :class:`~repro.api.plan.ScenarioResult`, round-tripped
        bit-exactly through :mod:`repro.io`.
    checksum:
        The :func:`result_checksum` of the serialised result payload
        (``"sha256:..."``); empty on legacy objects written before
        checksums existed -- those are served but flagged by
        :meth:`ResultStore.verify`.
    """

    hash: str
    code_version: str
    created_at: float
    scenario_result: "ScenarioResult"
    checksum: str = ""


class ResultStore:
    """A content-addressed directory of scenario results.

    Thread-safe within a process (one lock serialises index updates)
    and safe across processes by construction: object writes are
    atomic renames at paths derived from the content hash, so
    concurrent writers of the same hash converge on one valid file.
    """

    def __init__(self, root: "str | Path") -> None:
        """Open (creating if needed) a store rooted at ``root``."""
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.index_path = self.root / "index.json"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.corrupt_detected = 0

    # ----- paths ---------------------------------------------------------

    def object_path(self, hash_: str) -> Path:
        """Where the record of one hash lives (exists or not)."""
        if len(hash_) < 3 or not all(c in "0123456789abcdef" for c in hash_):
            raise ConfigurationError(f"not a scenario hash: {hash_!r}")
        return self.objects_dir / hash_[:2] / f"{hash_}.json"

    # ----- core API ------------------------------------------------------

    def __contains__(self, hash_: str) -> bool:
        """Whether a result is stored under ``hash_``."""
        return self.object_path(hash_).is_file()

    def __len__(self) -> int:
        """Number of stored results (by scanning objects, not the index)."""
        return sum(1 for _ in self.objects_dir.glob("*/*.json"))

    def hashes(self) -> "tuple[str, ...]":
        """Every stored hash, sorted (a stable listing for tooling)."""
        return tuple(
            sorted(p.stem for p in self.objects_dir.glob("*/*.json"))
        )

    def get_record(self, hash_: str) -> "StoreRecord | None":
        """The full stored record under ``hash_``, or ``None`` on a miss.

        Every read is integrity-checked: the object must parse, must
        claim the hash it is filed under, and (when it carries a
        :func:`result_checksum`) the payload must match it. A failing
        object is moved to ``quarantine/`` and
        :class:`StoreIntegrityError` raised -- corruption is never
        silently served, and because the file is gone the hash reads
        as a plain miss (recompute) from then on.
        """
        from .. import io

        path = self.object_path(hash_)
        if not path.is_file():
            return None
        try:
            data = io.load_json(path)
            record = io.store_record_from_dict(data)
        except ConfigurationError as exc:
            moved = self._quarantine(path)
            raise StoreIntegrityError(
                f"store object {path} is unreadable ({exc}); "
                f"quarantined to {moved}"
            ) from exc
        if record.hash != hash_:
            moved = self._quarantine(path)
            raise StoreIntegrityError(
                f"store object {path} claims hash {record.hash[:12]}..., "
                f"filed under {hash_[:12]}...; quarantined to {moved}"
            )
        if record.checksum:
            recomputed = result_checksum(data["scenario_result"])
            if recomputed != record.checksum:
                moved = self._quarantine(path)
                raise StoreIntegrityError(
                    f"store object {path} fails its content checksum "
                    f"({record.checksum} recorded, {recomputed} actual); "
                    f"quarantined to {moved}"
                )
        return record

    def get(self, hash_: str) -> "ScenarioResult | None":
        """The stored scenario result under ``hash_``, or ``None``.

        The forgiving read: a corrupt object is quarantined (by
        :meth:`get_record`) and reported as a miss, so store-backed
        runs transparently recompute what corruption destroyed.
        """
        try:
            record = self.get_record(hash_)
        except StoreIntegrityError:
            return None
        return None if record is None else record.scenario_result

    def put(
        self, hash_: str, scenario_result: "ScenarioResult"
    ) -> StoreRecord:
        """Store one result under its hash; atomic and idempotent.

        Writes the record to a temp file in the final directory and
        :func:`os.replace`-renames it into place, so readers never see
        a partial object. If the hash is already stored the existing
        record is returned untouched (first-writer-wins -- equal
        content by construction), which also makes concurrent same-hash
        ``put`` races harmless.
        """
        from .. import io

        try:
            existing = self.get_record(hash_)
        except StoreIntegrityError:
            # The previous object was corrupt and is quarantined now;
            # fall through and write a fresh, valid one in its place.
            existing = None
        if existing is not None:
            return existing
        result_record = io.scenario_result_to_dict(scenario_result)
        record = StoreRecord(
            hash=hash_,
            code_version=code_version(),
            created_at=time.time(),
            scenario_result=scenario_result,
            checksum=result_checksum(result_record),
        )
        path = self.object_path(hash_)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            io.store_record_to_dict(record), indent=2, sort_keys=True
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{hash_[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._index_add(record)
        return record

    def prune(
        self,
        *,
        max_entries: "int | None" = None,
        max_age_s: "float | None" = None,
        keep: "Iterable[str]" = (),
        now: "float | None" = None,
    ) -> "tuple[str, ...]":
        """Remove old results; returns the pruned hashes (oldest first).

        ``max_age_s`` drops every record older than the horizon;
        ``max_entries`` then drops the oldest records until at most
        that many remain. Hashes in ``keep`` are **pinned**: never
        deleted whatever the budgets say (the service passes the
        hashes its retained jobs reference, so GC cannot 404 a result
        a live job already classified as a store hit) -- which means
        ``max_entries`` is a target, not a guarantee, when pins exceed
        it. Emptied ``objects/<hh>/`` shard directories are removed.
        With neither bound this is a no-op.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        pinned = frozenset(keep)
        now = time.time() if now is None else now
        with self._lock:
            aged = sorted(
                (
                    (self._created_at(path), path.stem)
                    for path in self.objects_dir.glob("*/*.json")
                ),
            )
            doomed: "list[str]" = []
            if max_age_s is not None:
                doomed.extend(
                    h
                    for created, h in aged
                    if now - created > max_age_s and h not in pinned
                )
            if max_entries is not None:
                doomed_set = set(doomed)
                survivors = [h for _, h in aged if h not in doomed_set]
                excess = len(survivors) - max_entries
                if excess > 0:
                    removable = [h for h in survivors if h not in pinned]
                    doomed.extend(removable[:excess])
            for hash_ in doomed:
                try:
                    self.object_path(hash_).unlink()
                except FileNotFoundError:
                    pass
            if doomed:
                self._remove_empty_shards()
                self._index_write(self._scan_index())
            return tuple(doomed)

    def _remove_empty_shards(self) -> None:
        """Drop ``objects/<hh>/`` directories pruning emptied."""
        for shard in self.objects_dir.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # not empty (or racing a writer): keep it

    def stats(self) -> "dict[str, Any]":
        """Entry count, byte size, and integrity counters of the store."""
        paths = list(self.objects_dir.glob("*/*.json"))
        quarantined = (
            sum(1 for _ in self.quarantine_dir.glob("*.json"))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "entries": len(paths),
            "bytes": sum(p.stat().st_size for p in paths),
            "root": str(self.root),
            "corrupt_objects": self.corrupt_detected,
            "quarantined": quarantined,
        }

    # ----- integrity (checksums, verify, quarantine) ----------------------

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt object out of ``objects/`` so it cannot serve."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        n = 1
        while dest.exists():
            dest = self.quarantine_dir / f"{path.stem}.{n}{path.suffix}"
            n += 1
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            pass  # racing reader already moved it
        self.corrupt_detected += 1
        return dest

    def verify(self, *, repair: bool = False) -> "VerifyReport":
        """Scan every object for truncation, mismatch, bad checksums.

        The integrity sweep behind ``repro-service verify`` and
        ``POST /admin/verify``: each ``objects/<hh>/<hash>.json`` must
        parse, claim the hash its filename carries, and match its
        recorded :func:`result_checksum`. With ``repair=True`` every
        failing object is moved to ``quarantine/`` (and the index
        rewritten); with the default ``repair=False`` the scan only
        reports. Objects written before checksums existed are counted
        as ``legacy`` -- readable and served, but unverifiable.
        """
        from .. import io

        corrupt: "list[CorruptObject]" = []
        quarantined: "list[str]" = []
        scanned = 0
        legacy = 0
        for path in sorted(self.objects_dir.glob("*/*.json")):
            scanned += 1
            reason: "str | None" = None
            try:
                data = io.load_json(path)
                record = io.store_record_from_dict(data)
            except ConfigurationError as exc:
                reason = f"unreadable: {exc}"
            else:
                if record.hash != path.stem:
                    reason = (
                        f"hash mismatch: object claims "
                        f"{record.hash[:12]}..., filed as {path.stem[:12]}..."
                    )
                elif not record.checksum:
                    legacy += 1
                elif result_checksum(data["scenario_result"]) != (
                    record.checksum
                ):
                    reason = "content checksum mismatch"
            if reason is None:
                continue
            corrupt.append(
                CorruptObject(name=path.stem, path=str(path), reason=reason)
            )
            if repair:
                quarantined.append(str(self._quarantine(path)))
        if quarantined:
            with self._lock:
                self._remove_empty_shards()
                self._index_write(self._scan_index())
        return VerifyReport(
            scanned=scanned,
            intact=scanned - len(corrupt),
            legacy=legacy,
            corrupt=tuple(corrupt),
            quarantined=tuple(quarantined),
        )

    # ----- the index (rebuildable acceleration layer) --------------------

    def index(self) -> "dict[str, dict[str, Any]]":
        """The metadata index: hash -> summary (experiment id, time).

        Reads ``index.json`` when present and consistent; a missing or
        corrupt index is rebuilt from the objects **and persisted**, so
        one bad write degrades exactly one call to a full scan rather
        than every call thereafter. The index is never load-bearing for
        :meth:`get`/:meth:`put` correctness.
        """
        entries = self._read_index()
        if entries is not None:
            return entries
        return self.reindex()

    def reindex(self) -> "dict[str, dict[str, Any]]":
        """Rebuild ``index.json`` from the object files and return it."""
        with self._lock:
            fresh = self._scan_index()
            self._index_write(fresh)
            return fresh

    def _read_index(self) -> "dict[str, dict[str, Any]] | None":
        """``index.json`` as written, or ``None`` when absent/corrupt."""
        if not self.index_path.is_file():
            return None
        try:
            data = json.loads(self.index_path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        return data if isinstance(data, dict) else None

    def _scan_index(self) -> "dict[str, dict[str, Any]]":
        from .. import io

        entries: "dict[str, dict[str, Any]]" = {}
        for path in sorted(self.objects_dir.glob("*/*.json")):
            try:
                data = io.load_json(path)
            except ConfigurationError:
                continue
            result = data.get("scenario_result", {})
            scenario = result.get("scenario", {})
            entries[path.stem] = {
                "experiment_id": scenario.get("experiment_id", ""),
                "label": scenario.get("label"),
                "code_version": data.get("code_version", ""),
                "created_at": data.get("created_at", 0.0),
            }
        return entries

    def _created_at(self, path: Path) -> float:
        try:
            return float(json.loads(path.read_text()).get("created_at", 0.0))
        except (json.JSONDecodeError, OSError, ValueError):
            return 0.0

    def _index_add(self, record: StoreRecord) -> None:
        with self._lock:
            entries = self._read_index()
            if entries is None:
                # Missing or corrupt index: the freshly written object
                # is already on disk, so a scan self-heals it too.
                entries = self._scan_index()
            else:
                entries[record.hash] = {
                    "experiment_id": (
                        record.scenario_result.scenario.experiment_id
                    ),
                    "label": record.scenario_result.scenario.label,
                    "code_version": record.code_version,
                    "created_at": record.created_at,
                }
            self._index_write(entries)

    def _index_write(self, entries: "Mapping[str, Any]") -> None:
        payload = json.dumps(dict(entries), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".index-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload + "\n")
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


@dataclass(frozen=True)
class CorruptObject:
    """One object :meth:`ResultStore.verify` found damaged.

    Attributes
    ----------
    name:
        The hash the object was filed under (the file stem).
    path:
        Where the object lived when the scan found it.
    reason:
        What failed: unreadable, hash mismatch, or checksum mismatch.
    """

    name: str
    path: str
    reason: str


@dataclass(frozen=True)
class VerifyReport:
    """The outcome of one :meth:`ResultStore.verify` integrity sweep.

    Attributes
    ----------
    scanned, intact:
        Objects examined, and how many passed every check.
    legacy:
        Readable objects without a recorded checksum (pre-checksum
        writes): served, but unverifiable beyond their hash claim.
    corrupt:
        The failing objects, each with the reason it failed.
    quarantined:
        Destination paths of objects moved to ``quarantine/`` (only
        populated when the sweep ran with ``repair=True``).
    """

    scanned: int
    intact: int
    legacy: int
    corrupt: "tuple[CorruptObject, ...]"
    quarantined: "tuple[str, ...]"

    @property
    def ok(self) -> bool:
        """Whether the sweep found nothing wrong."""
        return not self.corrupt

    def as_dict(self) -> "dict[str, Any]":
        """JSON-safe form (what ``POST /admin/verify`` returns)."""
        return {
            "scanned": self.scanned,
            "intact": self.intact,
            "legacy": self.legacy,
            "ok": self.ok,
            "corrupt": [
                {"name": c.name, "path": c.path, "reason": c.reason}
                for c in self.corrupt
            ],
            "quarantined": list(self.quarantined),
        }

    def summary(self) -> str:
        """The one-line report the CLI prints to stderr-minded humans."""
        return (
            f"verify: {self.intact}/{self.scanned} intact, "
            f"{len(self.corrupt)} corrupt, {len(self.quarantined)} "
            f"quarantined, {self.legacy} legacy (no checksum)"
        )


@dataclass(frozen=True)
class StoreReport:
    """How a store-backed plan run split between cache and compute.

    Attributes
    ----------
    hits:
        Scenarios served from the store without recomputation.
    misses:
        Scenarios that had to be computed this run.
    written:
        Results newly written to the update store.
    hashes:
        The canonical hash of every expanded scenario, in plan order.
    """

    hits: int
    misses: int
    written: int
    hashes: "tuple[str, ...]"

    @property
    def total(self) -> int:
        """Expanded scenario count of the plan."""
        return self.hits + self.misses

    def summary(self) -> str:
        """The one-line hit/miss report the runner prints."""
        return (
            f"store: {self.hits} hits / {self.misses} misses "
            f"({self.total} scenarios), {self.written} written"
        )


def run_plan_with_store(
    session: "SimulationSession",
    plan: "RunPlan",
    *,
    from_store: "ResultStore | str | Path | None" = None,
    update_store: "ResultStore | str | Path | None" = None,
    workers: int = 1,
    shard_by: "str | None" = None,
    timeout_s: "float | None" = None,
    max_shard_retries: int = 2,
) -> "tuple[PlanResult, StoreReport]":
    """Run a plan, serving store hits and computing only the misses.

    Every expanded scenario is hashed with the session's defaults in
    effect (:func:`~repro.api.hashing.scenario_hash`); hashes present
    in ``from_store`` are served from disk without recomputation, the
    misses run through the session (serially, or on the sharded
    parallel executor when ``workers > 1``), and -- when
    ``update_store`` is given -- freshly computed results are written
    back. The returned :class:`~repro.api.plan.PlanResult` is in plan
    order with stored and computed results interleaved; its
    ``cache_stats`` cover only the computed portion (stored results
    carry their original attribution). ``timeout_s`` and
    ``max_shard_retries`` are the supervised executor's per-shard
    deadline and retry budget; they only apply to the parallel
    (``workers > 1``) compute path.
    """
    from ..api.plan import PlanResult, RunPlan

    reader = _as_store(from_store)
    writer = _as_store(update_store)
    expanded = plan.expanded()
    hashes = tuple(
        scenario_hash(s, defaults=session.defaults) for s in expanded
    )

    results: "dict[int, ScenarioResult]" = {}
    miss_positions: "list[int]" = []
    for position, hash_ in enumerate(hashes):
        stored = reader.get(hash_) if reader is not None else None
        if stored is not None:
            results[position] = stored
        else:
            miss_positions.append(position)

    cache_total = CacheStats(hits=0, misses=0, currsize=0, per_cache=())
    if miss_positions:
        sub_plan = RunPlan(
            name=plan.name,
            scenarios=tuple(expanded[i] for i in miss_positions),
        )
        if workers > 1:
            computed = session.run_plan_parallel(
                sub_plan,
                workers=workers,
                shard_by=shard_by or "round-robin",
                timeout_s=timeout_s,
                max_shard_retries=max_shard_retries,
            )
        else:
            computed = session.run_plan(sub_plan)
        cache_total = computed.cache_stats
        for position, scenario_result in zip(
            miss_positions, computed.scenario_results
        ):
            results[position] = scenario_result

    written = 0
    if writer is not None:
        for position in miss_positions:
            if hashes[position] not in writer:
                writer.put(hashes[position], results[position])
                written += 1

    outcome = PlanResult(
        plan=plan,
        scenario_results=tuple(
            results[i] for i in range(len(expanded))
        ),
        cache_stats=cache_total,
    )
    report = StoreReport(
        hits=len(expanded) - len(miss_positions),
        misses=len(miss_positions),
        written=written,
        hashes=hashes,
    )
    return outcome, report


def _as_store(
    store: "ResultStore | str | Path | None",
) -> "ResultStore | None":
    """Coerce a path-or-store argument to an open store (or ``None``)."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
