"""Async job management: priority dispatch, cancellation, single-flight.

The :class:`JobManager` is the heart of the simulation service
(:mod:`repro.service.app`): every submitted
:class:`~repro.api.plan.RunPlan` becomes a :class:`Job` whose expanded
scenarios are resolved one of three ways --

* **store** -- the canonical scenario hash is already in the
  :class:`~repro.service.store.ResultStore`: served without compute;
* **inflight** -- another running job is computing the same hash right
  now: this job awaits that computation instead of repeating it
  (single-flight dedupe, keyed by hash across *all* concurrent jobs);
* **computed** -- a genuine miss: the job claims the hash, runs it on
  the existing sharded executor
  (:func:`~repro.api.executor.run_plan_parallel` over
  ``shard_plan``/``run_shard``), stores the result, and wakes every
  job that attached to the claim.

Compute happens on a thread off the event loop, so the service keeps
accepting and deduplicating submissions while simulations run. The
lifecycle layer on top:

* **Priority dispatch** -- jobs carry a :data:`PRIORITY_CLASSES`
  priority; the :class:`PriorityGate` admits the best-ranked waiter
  when a slot frees (FIFO within a class, starvation-free because
  waiting jobs age one class per ``aging_s`` seconds).
* **Cancellation** -- :meth:`JobManager.cancel` moves a queued or
  running job to ``cancelled``; in-flight claims the job owned are
  handed off (their futures cancelled) so attached jobs re-resolve --
  recompute or re-hit the store -- instead of hanging or failing.
* **Finished-job eviction** -- terminal job records are garbage
  collected by TTL and a max-records cap, so the job table and
  :meth:`JobManager.pending` stay O(active); evicted ids resolve to a
  typed ``expired`` record rather than a bare 404.
* **Store pinning** -- :meth:`JobManager.protected_hashes` names every
  hash a retained job references, which the GC surface
  (``POST /admin/prune``) excludes from pruning so a live job's
  classified store hit can never vanish before it is fetched.
* **Deadlines and salvage** -- a job submitted with ``timeout_s`` is
  watched by a ``call_later`` watchdog that cancels a stuck job into
  the typed ``timeout`` terminal state (counted by ``jobs_timeout``);
  and when a plan fails mid-compute, the scenarios that *did* complete
  are persisted to the store before the job fails
  (:class:`PartialComputeError`), so resubmitting the same plan
  resumes from store hits instead of recomputing everything.

* **Durability** -- a manager constructed with a
  :class:`~repro.service.journal.JobJournal` writes every lifecycle
  transition ahead of acting on it (the ``accepted`` entry is fsynced
  before :meth:`JobManager.submit` returns -- the promise to the
  client); :meth:`JobManager.recover` replays the journal on boot,
  restores terminal job records, re-queues jobs that were accepted but
  never finished (their re-run resolves through the store, so only
  scenarios lost with the crash are recomputed), and restores the
  evicted-id ``expired`` memory. A plan-level
  :class:`~repro.service.journal.LeaseRecord` -- ``owner_id`` plus a
  TTL heartbeat, arbitrated by journal log order -- keeps two replicas
  sharing one store directory from double-running a plan; an expired
  lease (crashed owner) is adopted by whoever claims it next.

The queue is bounded (:class:`JobQueueFull` maps to HTTP 503) and
:class:`RateLimiter` implements the per-client token bucket behind
HTTP 429 + ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..api.executor import run_plan_parallel
from ..api.hashing import plan_hash, scenario_hash
from ..api.plan import RunPlan
from ..errors import ConfigurationError, ReproError
from ..io import run_plan_from_dict, run_plan_to_dict
from .journal import JobJournal
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.plan import ScenarioResult


class JobQueueFull(ReproError):
    """Raised when a submission would exceed the bounded job queue."""


#: Lifecycle states a job moves through (strictly forward).
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled", "timeout")

#: States a job cannot leave (eviction only collects these).
TERMINAL_STATUSES = ("done", "failed", "cancelled", "timeout")

#: Pseudo-status of a job record evicted from the table (lookup only).
EXPIRED_STATUS = "expired"

#: Where one scenario's result came from (``pending`` while unresolved).
RESULT_SOURCES = ("pending", "store", "computed", "inflight")

#: Named priority classes (lower rank dispatches first).
PRIORITY_CLASSES = {"high": 0, "normal": 1, "low": 2}

#: Inclusive bounds on raw integer priorities.
MIN_PRIORITY, MAX_PRIORITY = 0, 9

#: The priority a submission gets when it names none.
DEFAULT_PRIORITY = PRIORITY_CLASSES["normal"]


def normalize_priority(priority: "int | str | None") -> int:
    """Coerce a submitted priority (class name or int) to its rank.

    Accepts a :data:`PRIORITY_CLASSES` name (``"high"``/``"normal"``/
    ``"low"``), an integer in ``[MIN_PRIORITY, MAX_PRIORITY]`` (lower
    runs first), or ``None`` for :data:`DEFAULT_PRIORITY`. Anything
    else raises :class:`~repro.errors.ConfigurationError`.
    """
    if priority is None:
        return DEFAULT_PRIORITY
    if isinstance(priority, str):
        try:
            return PRIORITY_CLASSES[priority]
        except KeyError:
            raise ConfigurationError(
                f"unknown priority class {priority!r}; expected one of "
                f"{sorted(PRIORITY_CLASSES)} or an integer in "
                f"[{MIN_PRIORITY}, {MAX_PRIORITY}]"
            ) from None
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ConfigurationError(
            f"priority must be an int or a class name, got {priority!r}"
        )
    if not MIN_PRIORITY <= priority <= MAX_PRIORITY:
        raise ConfigurationError(
            f"priority {priority} outside [{MIN_PRIORITY}, {MAX_PRIORITY}]"
        )
    return int(priority)


@dataclass(frozen=True)
class JobRecord:
    """The immutable wire form of a job's status at one instant.

    Attributes
    ----------
    id:
        Service-unique job id (``"job-<n>"``).
    status:
        One of :data:`JOB_STATUSES`.
    plan_name, plan_hash:
        The submitted plan's name and content hash
        (:func:`~repro.api.hashing.plan_hash`).
    scenario_hashes:
        Canonical hash of every expanded scenario, in plan order.
    sources:
        Per-scenario provenance, aligned with ``scenario_hashes``:
        one of :data:`RESULT_SOURCES`.
    store_hits, computed, deduped:
        Scenario counts by provenance (``deduped`` = served by another
        job's in-flight computation).
    elapsed_s:
        Wall-clock seconds from submission to completion (0 while
        unfinished).
    error:
        The failure message of a ``failed`` job, else ``None``.
    priority:
        The job's dispatch rank (lower runs first; see
        :data:`PRIORITY_CLASSES`).
    timeout_s:
        The deadline the job was submitted with, or ``None``. A job
        that blows it finishes in the ``timeout`` status.
    """

    id: str
    status: str
    plan_name: str
    plan_hash: str
    scenario_hashes: "tuple[str, ...]"
    sources: "tuple[str, ...]"
    store_hits: int
    computed: int
    deduped: int
    elapsed_s: float
    error: "str | None"
    priority: int = DEFAULT_PRIORITY
    timeout_s: "float | None" = None


def expired_job_record(job_id: str) -> JobRecord:
    """The typed record an evicted job id resolves to.

    Eviction drops a finished job's full state; what remains is the id
    and the fact that it once reached a terminal state -- enough for a
    client to distinguish "expired, resubmit if you still need it"
    from "never existed" (a bare 404).
    """
    return JobRecord(
        id=job_id,
        status=EXPIRED_STATUS,
        plan_name="",
        plan_hash="",
        scenario_hashes=(),
        sources=(),
        store_hits=0,
        computed=0,
        deduped=0,
        elapsed_s=0.0,
        error=None,
    )


class Job:
    """Mutable runtime state of one submitted plan.

    Owned by the :class:`JobManager`; external consumers read the
    frozen :meth:`record` snapshot.
    """

    def __init__(
        self,
        job_id: str,
        plan: "RunPlan | None",
        plan_digest: str,
        priority: int = DEFAULT_PRIORITY,
        timeout_s: "float | None" = None,
        plan_name: str = "",
    ) -> None:
        """Create a queued job for one submitted plan.

        ``plan`` may be ``None`` only for journal-restored records
        whose plan payload could not be rebuilt -- such a job is never
        scheduled, it just answers status lookups (``plan_name`` then
        labels the record).
        """
        self.id = job_id
        self.plan = plan
        self.plan_name = plan.name if plan is not None else plan_name
        self.plan_hash = plan_digest
        self.priority = int(priority)
        self.timeout_s = None if timeout_s is None else float(timeout_s)
        self.timed_out = False
        self.status = "queued"
        self.scenario_hashes: "tuple[str, ...]" = ()
        self.sources: "list[str]" = []
        self.error: "str | None" = None
        self.created_at = time.time()
        self.finished_at: "float | None" = None
        self.elapsed_s = 0.0
        self._start = time.perf_counter()
        self._watchdog: "asyncio.TimerHandle | None" = None

    def finish(self, status: str, error: "str | None" = None) -> None:
        """Move the job to a terminal state and stamp its elapsed time."""
        self.status = status
        self.error = error
        self.finished_at = time.time()
        self.elapsed_s = time.perf_counter() - self._start

    def record(self) -> JobRecord:
        """A frozen :class:`JobRecord` snapshot of the current state."""
        sources = tuple(self.sources)
        return JobRecord(
            id=self.id,
            status=self.status,
            plan_name=self.plan_name,
            plan_hash=self.plan_hash,
            scenario_hashes=self.scenario_hashes,
            sources=sources,
            store_hits=sources.count("store"),
            computed=sources.count("computed"),
            deduped=sources.count("inflight"),
            elapsed_s=self.elapsed_s,
            error=self.error,
            priority=self.priority,
            timeout_s=self.timeout_s,
        )


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s up to ``capacity``.

    :meth:`acquire` never blocks -- it either takes a token and returns
    ``0.0``, or returns the seconds until one will be available (the
    ``Retry-After`` the HTTP layer reports).
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        """Create a full bucket refilling at ``rate`` tokens per second."""
        if rate <= 0 or capacity <= 0:
            raise ConfigurationError(
                f"rate and capacity must be > 0, got {rate}/{capacity}"
            )
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; else the wait in seconds."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets (client id -> :class:`TokenBucket`).

    Unknown clients get a fresh full bucket on first sight; the HTTP
    layer keys clients by ``X-Client-Id`` header falling back to the
    peer address.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        """Create a limiter handing each client ``rate``/``capacity``."""
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}

    def check(self, client_id: str) -> float:
        """0.0 if the client may proceed, else its retry-after seconds."""
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.capacity, self._clock)
            self._buckets[client_id] = bucket
        return bucket.acquire()


@dataclass
class _Waiter:
    """One job waiting for a dispatch slot (internal to the gate)."""

    priority: int
    seq: int
    since: float
    future: "asyncio.Future"


class PriorityGate:
    """A concurrency gate that admits waiters by aged priority.

    Replaces the bare semaphore in :class:`JobManager`: up to ``slots``
    holders run at once, and when a slot frees the best-ranked waiter
    is admitted. Rank is ``(effective_priority, arrival_seq)`` --
    strict FIFO within a priority class -- where the effective priority
    of a waiter improves by one class for every ``aging_s`` seconds it
    has waited. Aging makes the gate starvation-free: any low-priority
    job's effective priority eventually beats every possible fresh
    submission, because priorities are bounded below.

    Single-event-loop use only (like the manager state it guards); the
    clock is injectable so aging is testable without sleeping.
    """

    def __init__(
        self,
        slots: int,
        *,
        aging_s: float = 30.0,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        """Create a gate with ``slots`` concurrent holders."""
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        if aging_s <= 0:
            raise ConfigurationError(f"aging_s must be > 0, got {aging_s}")
        self.slots = int(slots)
        self.aging_s = float(aging_s)
        self._clock = clock
        self._active = 0
        self._seq = itertools.count()
        self._waiting: "list[_Waiter]" = []

    @property
    def active(self) -> int:
        """Slots currently held."""
        return self._active

    @property
    def waiting(self) -> int:
        """Waiters not yet admitted."""
        return len(self._waiting)

    def effective_priority(self, waiter: _Waiter, now: float) -> int:
        """A waiter's rank after aging (one class per ``aging_s``)."""
        return waiter.priority - int((now - waiter.since) / self.aging_s)

    def _dispatch(self) -> None:
        now = self._clock()
        while self._active < self.slots and self._waiting:
            best = min(
                self._waiting,
                key=lambda w: (self.effective_priority(w, now), w.seq),
            )
            self._waiting.remove(best)
            self._active += 1
            best.future.set_result(None)

    async def acquire(self, priority: int = DEFAULT_PRIORITY) -> None:
        """Wait for a slot at ``priority``; cancellation-safe.

        If the awaiting task is cancelled the waiter is withdrawn (or,
        when the slot was already granted, released) before the
        :class:`asyncio.CancelledError` propagates -- no slot leaks.
        """
        waiter = _Waiter(
            priority=int(priority),
            seq=next(self._seq),
            since=self._clock(),
            future=asyncio.get_running_loop().create_future(),
        )
        self._waiting.append(waiter)
        self._dispatch()
        try:
            await waiter.future
        except asyncio.CancelledError:
            if waiter in self._waiting:
                self._waiting.remove(waiter)
            elif waiter.future.done() and not waiter.future.cancelled():
                # Granted but abandoned before use: hand the slot on.
                self.release()
            raise

    def release(self) -> None:
        """Free one held slot and admit the best waiter, if any."""
        if self._active < 1:
            raise ConfigurationError("release() without a held slot")
        self._active -= 1
        self._dispatch()


class PartialComputeError(ReproError):
    """A plan's compute failed, but some scenarios did complete.

    Raised by :func:`compute_scenario_results` when the supervised
    executor exhausts its retries on part of the plan. ``completed``
    maps the *input position* of each scenario that did finish to its
    :class:`~repro.api.plan.ScenarioResult` -- the salvage the manager
    persists to the store before failing the job -- and ``failures``
    carries the typed :class:`~repro.api.plan.ShardFailure` records
    naming what was lost.
    """

    def __init__(
        self,
        message: str,
        completed: "Mapping[int, ScenarioResult]",
        failures: "tuple[Any, ...]",
    ) -> None:
        super().__init__(message)
        self.completed = dict(completed)
        self.failures = tuple(failures)


def compute_scenario_results(
    scenarios: "tuple[Any, ...]",
    *,
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
    workers: int = 1,
    shard_by: str = "round-robin",
    executor: str = "process",
    timeout_s: "float | None" = None,
    max_shard_retries: int = 2,
) -> "tuple[ScenarioResult, ...]":
    """Compute concrete scenarios on the sharded executor, in order.

    The blocking compute kernel the job manager runs off-loop: wraps
    the scenarios in a throwaway plan and dispatches it through
    :func:`~repro.api.executor.run_plan_parallel` (process pool by
    default; a single shard runs inline), returning the
    :class:`~repro.api.plan.ScenarioResult` list aligned with the
    input order.

    Runs under supervision (``raise_on_failure=False``): failed or
    crashed shards are retried up to ``max_shard_retries`` times and
    bounded by the per-shard ``timeout_s``. On full success the result
    tuple is returned as before; when retries are exhausted on part of
    the plan, :class:`PartialComputeError` carries the completed
    results (for salvage) alongside the failure records.
    """
    plan = RunPlan(name="service-job", scenarios=tuple(scenarios))
    outcome = run_plan_parallel(
        plan,
        workers=max(1, int(workers)),
        shard_by=shard_by,
        seed=seed,
        defaults=defaults,
        executor=executor,
        timeout_s=timeout_s,
        max_shard_retries=max_shard_retries,
        raise_on_failure=False,
    )
    if outcome.failures:
        lost = [
            scenario_id
            for failure in outcome.failures
            for scenario_id in failure.scenario_ids
        ]
        causes = sorted({failure.cause for failure in outcome.failures})
        raise PartialComputeError(
            f"{len(lost)} of {len(scenarios)} scenarios failed "
            f"({'/'.join(causes)}) after shard retries: {lost}",
            completed=outcome.results_by_position(),
            failures=outcome.failures,
        )
    return outcome.scenario_results


class JobManager:
    """Owns jobs, the single-flight map, and the compute off-load pool.

    One manager per service process. All coordination state
    (``_inflight``, job table, counters) is touched only from the
    event loop thread; the blocking simulation work runs on
    ``_compute_pool`` threads via :func:`compute_scenario_results`.
    """

    #: Retained terminal ids after eviction still answer ``expired``;
    #: the memory of *evicted* ids is itself bounded by this cap.
    EXPIRED_IDS_CAP = 4096

    def __init__(
        self,
        store: ResultStore,
        *,
        seed: int = 0,
        defaults: "Mapping[str, Any] | None" = None,
        workers: int = 1,
        shard_by: str = "round-robin",
        executor: str = "process",
        max_pending: int = 16,
        max_concurrent: int = 2,
        aging_s: float = 30.0,
        job_ttl_s: "float | None" = 3600.0,
        max_records: "int | None" = 1024,
        shard_timeout_s: "float | None" = None,
        max_shard_retries: int = 2,
        journal: "JobJournal | None" = None,
        owner_id: str = "",
        lease_ttl_s: float = 30.0,
    ) -> None:
        """Wire the manager to its store and executor configuration.

        ``journal`` enables the durability layer: lifecycle transitions
        are written ahead to it and plan-level leases (held as
        ``owner_id``, renewed every ``lease_ttl_s / 3`` seconds) guard
        compute against a second replica on the same store directory.
        ``owner_id`` defaults to a per-process identity.
        """
        if lease_ttl_s <= 0:
            raise ConfigurationError(
                f"lease_ttl_s must be > 0, got {lease_ttl_s}"
            )
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be > 0 or None, got {shard_timeout_s}"
            )
        if max_shard_retries < 0:
            raise ConfigurationError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if job_ttl_s is not None and job_ttl_s <= 0:
            raise ConfigurationError(
                f"job_ttl_s must be > 0 or None, got {job_ttl_s}"
            )
        if max_records is not None and max_records < 1:
            raise ConfigurationError(
                f"max_records must be >= 1 or None, got {max_records}"
            )
        self.store = store
        self.journal = journal
        self.owner_id = owner_id or f"owner-{os.getpid()}"
        self.lease_ttl_s = float(lease_ttl_s)
        self.last_recovery: "dict[str, Any] | None" = None
        self._draining = False
        self.seed = int(seed)
        self.defaults = dict(defaults or {})
        self.workers = int(workers)
        self.shard_by = shard_by
        self.executor = executor
        self.shard_timeout_s = (
            None if shard_timeout_s is None else float(shard_timeout_s)
        )
        self.max_shard_retries = int(max_shard_retries)
        self.max_pending = int(max_pending)
        self.job_ttl_s = None if job_ttl_s is None else float(job_ttl_s)
        self.max_records = None if max_records is None else int(max_records)
        self._jobs: "dict[str, Job]" = {}
        self._active: "set[str]" = set()
        self._expired: "dict[str, str]" = {}
        self._ids = itertools.count(1)
        self._inflight: "dict[str, asyncio.Future]" = {}
        self._gate = PriorityGate(int(max_concurrent), aging_s=aging_s)
        self._compute_pool = ThreadPoolExecutor(
            max_workers=int(max_concurrent),
            thread_name_prefix="repro-service-compute",
        )
        self._tasks: "set[asyncio.Task]" = set()
        self._job_tasks: "dict[str, asyncio.Task]" = {}
        self.counters = {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_timeout": 0,
            "jobs_evicted": 0,
            "jobs_recovered": 0,
            "jobs_restored": 0,
            "lease_waits": 0,
            "store_hits": 0,
            "computed": 0,
            "deduped": 0,
        }

    # ----- submission and lookup -----------------------------------------

    def pending(self) -> int:
        """Jobs currently queued or running (O(1), not O(all-time))."""
        return len(self._active)

    def submit(
        self,
        plan: RunPlan,
        *,
        priority: "int | str | None" = None,
        timeout_s: "float | None" = None,
    ) -> Job:
        """Accept a plan as a new job and schedule its execution.

        ``priority`` is a :data:`PRIORITY_CLASSES` name or an integer
        rank (lower dispatches first; default ``"normal"``).
        ``timeout_s`` is an optional whole-job deadline, measured from
        submission (queue time included): a watchdog cancels the job
        into the typed ``timeout`` terminal state when it expires.
        Raises :class:`JobQueueFull` when ``max_pending`` jobs are
        already queued or running (the HTTP layer maps this to 503 +
        ``Retry-After``). Must be called from the event loop thread.
        """
        rank = normalize_priority(priority)
        if timeout_s is not None and float(timeout_s) <= 0:
            raise ConfigurationError(
                f"timeout_s must be > 0, got {timeout_s}"
            )
        self._evict_finished()
        if self.pending() >= self.max_pending:
            raise JobQueueFull(
                f"job queue full ({self.max_pending} pending); retry later"
            )
        job = Job(
            f"job-{next(self._ids)}",
            plan,
            plan_hash(plan, defaults=self.defaults),
            priority=rank,
            timeout_s=timeout_s,
        )
        if self.journal is not None:
            # Write-ahead, fsynced: the acceptance survives any crash
            # that happens after the 202 reaches the client.
            self.journal.append(
                "accepted",
                job_id=job.id,
                data={
                    "plan": run_plan_to_dict(plan),
                    "plan_hash": job.plan_hash,
                    "priority": job.priority,
                    "timeout_s": job.timeout_s,
                },
                sync=True,
            )
        self._jobs[job.id] = job
        self._active.add(job.id)
        self.counters["jobs_submitted"] += 1
        self._schedule(job)
        return job

    def _schedule(self, job: Job) -> None:
        """Create the job's task and watchdog (submit + recovery path)."""
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._run_job(job))
        self._tasks.add(task)
        self._job_tasks[job.id] = task
        task.add_done_callback(self._tasks.discard)
        task.add_done_callback(
            lambda _t, job_id=job.id: self._job_tasks.pop(job_id, None)
        )
        if job.timeout_s is not None:
            job._watchdog = loop.call_later(
                job.timeout_s, self._expire_job, job.id
            )

    def _expire_job(self, job_id: str) -> None:
        """Watchdog callback: deadline a still-unfinished job.

        Marks the job timed out and cancels its task; the
        :meth:`_run_job` cancellation path translates the flag into the
        ``timeout`` terminal state. A job already terminal (or evicted)
        is left alone -- the watchdog lost the race.
        """
        job = self._jobs.get(job_id)
        if job is None or job.status in TERMINAL_STATUSES:
            return
        job.timed_out = True
        task = self._job_tasks.get(job_id)
        if task is not None:
            task.cancel()

    def job(self, job_id: str) -> "Job | None":
        """Look a job up by id (``None`` when unknown or evicted)."""
        return self._jobs.get(job_id)

    def record_of(self, job_id: str) -> "JobRecord | None":
        """The job's record; typed ``expired`` after eviction.

        ``None`` only for ids the manager has never seen -- an evicted
        job answers with :func:`expired_job_record` so clients can tell
        "expired, resubmit if needed" from "no such job".
        """
        job = self._jobs.get(job_id)
        if job is not None:
            return job.record()
        if job_id in self._expired:
            return expired_job_record(job_id)
        return None

    async def cancel(self, job_id: str) -> "JobRecord | None":
        """Cancel a queued or running job; returns its final record.

        Idempotent and race-tolerant: a job already terminal returns
        its record unchanged (a ``done`` job stays ``done`` -- the
        cancel lost the race), an evicted id returns the ``expired``
        record, and an unknown id returns ``None``. A genuinely
        cancelled job unwinds its single-flight claims: futures it
        owned are cancelled so attached jobs re-resolve (store hit or
        recompute) instead of hanging.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return self.record_of(job_id)
        task = self._job_tasks.get(job_id)
        if job.status in TERMINAL_STATUSES or task is None:
            return job.record()
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)
        return job.record()

    def protected_hashes(self) -> "set[str]":
        """Every scenario hash a retained job or in-flight claim pins.

        The GC contract: pruning the store must never delete a result
        some retained job record references, because clients fetch
        ``GET /results/{hash}`` *after* polling the job -- a prune in
        that window would 404 a result the job already classified as a
        store hit (the TOCTOU this pinning closes). Eviction of the
        job record is what unpins its hashes.
        """
        pinned: "set[str]" = set(self._inflight)
        for job in self._jobs.values():
            pinned.update(job.scenario_hashes)
        return pinned

    def _evict_finished(self, now: "float | None" = None) -> int:
        """Drop finished jobs beyond the TTL / max-records budgets.

        Only terminal jobs are candidates (active jobs are never
        evicted, whatever the cap); oldest-finished go first. Evicted
        ids keep answering :meth:`record_of` as ``expired`` through a
        bounded memory of :data:`EXPIRED_IDS_CAP` ids.
        """
        if self.job_ttl_s is None and self.max_records is None:
            return 0
        now = time.time() if now is None else now
        finished = sorted(
            (j for j in self._jobs.values() if j.status in TERMINAL_STATUSES),
            key=lambda j: j.finished_at or 0.0,
        )
        doomed: "list[Job]" = []
        if self.job_ttl_s is not None:
            doomed.extend(
                j
                for j in finished
                if now - (j.finished_at or now) > self.job_ttl_s
            )
        if self.max_records is not None:
            doomed_ids = {j.id for j in doomed}
            excess = (len(self._jobs) - len(doomed_ids)) - self.max_records
            if excess > 0:
                survivors = [j for j in finished if j.id not in doomed_ids]
                doomed.extend(survivors[:excess])
        for job in doomed:
            del self._jobs[job.id]
            self._expired[job.id] = job.status
            self.counters["jobs_evicted"] += 1
            if self.journal is not None:
                self.journal.append(
                    "evicted", job_id=job.id, data={"status": job.status}
                )
        while len(self._expired) > self.EXPIRED_IDS_CAP:
            self._expired.pop(next(iter(self._expired)))
        return len(doomed)

    def stats(self) -> "dict[str, Any]":
        """Aggregate counters: jobs by state, dedupe/hit totals, config.

        Counter reconciliation contract (per process life): ``jobs_done
        + jobs_failed + jobs_cancelled + jobs_timeout + jobs_restored``
        equals the terminal total of ``jobs_by_status`` plus
        ``jobs_evicted`` (eviction removes records from the table,
        never from the cumulative counters). Journal-restored terminal
        jobs finished in an *earlier* life, so they appear in
        ``jobs_by_status`` via ``jobs_restored``, not via this life's
        lifecycle counters.
        """
        by_status = {status: 0 for status in JOB_STATUSES}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            **self.counters,
            "jobs_by_status": by_status,
            "inflight_scenarios": len(self._inflight),
            "queued_for_slot": self._gate.waiting,
            "max_pending": self.max_pending,
            "workers": self.workers,
            "shard_by": self.shard_by,
            "executor": self.executor,
            "job_ttl_s": self.job_ttl_s,
            "max_records": self.max_records,
            "owner_id": self.owner_id,
            "lease_ttl_s": self.lease_ttl_s,
        }

    # ----- durability: recovery, drain, shutdown --------------------------

    async def recover(self) -> "dict[str, Any]":
        """Replay the journal: restore terminal records, re-queue the rest.

        Call once at service start, before accepting submissions. The
        report distinguishes a ``fresh`` journal (no prior entries)
        from a ``clean`` restart (last entry was the drain path's
        shutdown marker) and a ``crash``. Re-queued jobs run through
        the normal resolve cycle, so every scenario already persisted
        to the store -- including PR 9's partial salvage -- is a store
        hit and only genuinely lost work is recomputed. Job ids
        continue from the highest journaled sequence number, and a
        re-queued job's deadline restarts at recovery (the original
        submission clock died with the old process).
        """
        report: "dict[str, Any]" = {
            "mode": "fresh",
            "restored": 0,
            "requeued": 0,
            "expired": 0,
            "corrupt_lines": 0,
        }
        if self.journal is None:
            self.last_recovery = report
            return report
        state = self.journal.refresh()
        if state.entries:
            report["mode"] = "clean" if state.clean_shutdown else "crash"
        report["corrupt_lines"] = state.corrupt_lines
        # Any entry after the shutdown marker clears the clean flag;
        # the boot marker is that entry, making clean-vs-crash a
        # per-session distinction by construction.
        self.journal.append("boot", data={"owner_id": self.owner_id})
        if state.max_job_seq:
            self._ids = itertools.count(state.max_job_seq + 1)
        self._expired.update(state.expired)
        report["expired"] = len(state.expired)
        requeue: "list[Job]" = []
        for jstate in state.jobs.values():
            try:
                plan: "RunPlan | None" = run_plan_from_dict(
                    jstate.plan_record
                )
            except Exception:
                plan = None
            job = Job(
                jstate.job_id,
                plan,
                jstate.plan_hash,
                priority=jstate.priority,
                timeout_s=jstate.timeout_s,
                plan_name=str(jstate.plan_record.get("name", "")),
            )
            job.created_at = jstate.created_at
            if jstate.terminal:
                job.status = jstate.status
                job.error = jstate.error
                job.finished_at = jstate.finished_at or jstate.created_at
                job.scenario_hashes = jstate.scenario_hashes
                job.sources = list(jstate.sources)
                job.elapsed_s = jstate.elapsed_s
                self._jobs[job.id] = job
                self.counters["jobs_restored"] += 1
                report["restored"] += 1
            elif plan is None:
                # Accepted but its plan payload is unrecoverable:
                # fail it honestly rather than dropping it to a 404.
                job.finish(
                    "failed",
                    "plan record unrecoverable after restart",
                )
                self._jobs[job.id] = job
                self.counters["jobs_failed"] += 1
                self._journal_terminal(job)
                report["restored"] += 1
            else:
                requeue.append(job)
        for job in requeue:
            self._jobs[job.id] = job
            self._active.add(job.id)
            self.counters["jobs_recovered"] += 1
            self._schedule(job)
            report["requeued"] += 1
        self.last_recovery = report
        return report

    async def drain(self, timeout_s: "float | None" = None) -> bool:
        """Wait up to ``timeout_s`` for running jobs to finish.

        The graceful half of shutdown: new terminal transitions are
        still journaled, but jobs that do *not* make it before the
        deadline are cancelled by :meth:`close` without a terminal
        entry -- so the next boot re-queues them instead of trusting a
        ``cancelled`` the client never asked for. Returns ``True`` when
        everything drained in time.
        """
        self._draining = True
        tasks = {t for t in self._tasks if not t.done()}
        if not tasks:
            return True
        done, pending = await asyncio.wait(tasks, timeout=timeout_s)
        return not pending

    async def close(self) -> None:
        """Cancel outstanding jobs and release the compute pool.

        Always part of shutdown, so jobs cancelled here are treated as
        drain casualties: their ``cancelled`` state is *not* journaled
        as terminal, which is what re-queues them on the next boot.
        """
        self._draining = True
        for task in tuple(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._compute_pool.shutdown(wait=False, cancel_futures=True)

    # ----- execution ------------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        """Resolve every scenario of one job (store / inflight / compute).

        Lifecycle accounting happens here and only here: exactly one of
        ``jobs_done`` / ``jobs_failed`` / ``jobs_cancelled`` /
        ``jobs_timeout`` is incremented per job, so ``/stats`` counters
        always reconcile with ``jobs_by_status``. A cancellation
        arriving from the deadline watchdog (``job.timed_out``) lands
        in ``timeout`` rather than ``cancelled``. With a journal
        attached, the plan lease is held across the resolve (heartbeat
        renewals keep it alive past its TTL) and the terminal
        transition is journaled -- unless the service is draining and
        the job was cancelled by shutdown, in which case the journal
        keeps it non-terminal so the next boot re-queues it.
        """
        acquired = False
        leased = False
        heartbeat: "asyncio.Task | None" = None
        try:
            await self._gate.acquire(job.priority)
            acquired = True
            job.status = "running"
            if self.journal is not None:
                self.journal.append("running", job_id=job.id)
                leased = await self._acquire_plan_lease(job)
                if leased:
                    heartbeat = asyncio.get_running_loop().create_task(
                        self._lease_heartbeat(job)
                    )
            await self._resolve(job)
        except asyncio.CancelledError:
            if job.timed_out:
                job.finish(
                    "timeout",
                    f"job exceeded its {job.timeout_s}s deadline",
                )
                self.counters["jobs_timeout"] += 1
            else:
                job.finish("cancelled")
                self.counters["jobs_cancelled"] += 1
            raise
        except Exception as exc:
            job.finish("failed", str(exc))
            self.counters["jobs_failed"] += 1
        else:
            job.finish("done")
            self.counters["jobs_done"] += 1
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
            if leased and self.journal is not None:
                self.journal.release_lease(job.plan_hash, self.owner_id)
            self._journal_terminal(job)
            if job._watchdog is not None:
                job._watchdog.cancel()
            self._active.discard(job.id)
            if acquired:
                self._gate.release()

    async def _acquire_plan_lease(self, job: Job) -> bool:
        """Block until this owner holds the job's plan lease.

        Polls :meth:`~repro.service.journal.JobJournal.acquire_lease`
        -- log order arbitrates races -- sleeping until the foreign
        holder's expiry when we lose. A crashed replica's lease is
        adopted as soon as it expires; a live one keeps renewing and
        keeps us waiting, which is exactly the double-run prevention.
        """
        assert self.journal is not None
        while True:
            holder = self.journal.acquire_lease(
                job.plan_hash, self.owner_id, job.id, self.lease_ttl_s
            )
            if holder.owner_id == self.owner_id:
                return True
            self.counters["lease_waits"] += 1
            wait = min(
                self.lease_ttl_s,
                max(0.05, holder.expires_at - time.time()),
            )
            await asyncio.sleep(wait)

    async def _lease_heartbeat(self, job: Job) -> None:
        """Renew the job's plan lease every third of its TTL."""
        assert self.journal is not None
        interval = max(0.05, self.lease_ttl_s / 3.0)
        while True:
            await asyncio.sleep(interval)
            self.journal.renew_lease(
                job.plan_hash, self.owner_id, self.lease_ttl_s
            )

    def _journal_terminal(self, job: Job) -> None:
        """Journal a terminal transition (drain-cancels stay pending)."""
        if self.journal is None or job.status not in TERMINAL_STATUSES:
            return
        if (
            self._draining
            and job.status == "cancelled"
            and not job.timed_out
        ):
            # Shutdown cancelled this job, not a client: leave it
            # non-terminal in the journal so the next boot re-queues it.
            return
        self.journal.append(
            "terminal",
            job_id=job.id,
            data={
                "status": job.status,
                "error": job.error,
                "elapsed_s": job.elapsed_s,
                "scenario_hashes": list(job.scenario_hashes),
                "sources": list(job.sources),
            },
        )

    async def _resolve(self, job: Job) -> None:
        """Resolve all positions, re-classifying ones handed off to us.

        Runs the classify/compute/await cycle until every position has
        a source. A position attached to another job's in-flight future
        normally resolves with it; if that owner is *cancelled*, its
        futures are cancelled (the hand-off) and the positions come
        back for another round -- where they hit the store (if the
        abandoned compute still landed) or get claimed and computed by
        this job. Attached jobs therefore recompute rather than hang or
        spuriously fail when an owner is cancelled.
        """
        expanded = job.plan.expanded()
        hashes = tuple(
            scenario_hash(s, defaults=self.defaults) for s in expanded
        )
        job.scenario_hashes = hashes
        job.sources = ["pending"] * len(expanded)

        loop = asyncio.get_running_loop()
        unresolved = list(range(len(expanded)))
        while unresolved:
            owned: "list[int]" = []
            attached: "dict[int, asyncio.Future]" = {}
            claimed: "set[str]" = set()
            for position in unresolved:
                hash_ = hashes[position]
                if hash_ in claimed:
                    # The same scenario twice in one plan: the first
                    # occurrence owns the compute, later ones attach.
                    attached[position] = self._inflight[hash_]
                elif hash_ in self._inflight:
                    attached[position] = self._inflight[hash_]
                elif hash_ in self.store:
                    job.sources[position] = "store"
                    self.counters["store_hits"] += 1
                else:
                    self._inflight[hash_] = loop.create_future()
                    claimed.add(hash_)
                    owned.append(position)

            try:
                if owned:
                    scenarios = tuple(expanded[i] for i in owned)
                    try:
                        results = await loop.run_in_executor(
                            self._compute_pool,
                            lambda: compute_scenario_results(
                                scenarios,
                                seed=self.seed,
                                defaults=self.defaults,
                                workers=self.workers,
                                shard_by=self.shard_by,
                                executor=self.executor,
                                timeout_s=self.shard_timeout_s,
                                max_shard_retries=self.max_shard_retries,
                            ),
                        )
                    except PartialComputeError as partial:
                        # Salvage before failing: persist what did
                        # complete and resolve its claims, so attached
                        # jobs -- and a resubmission of this very plan
                        # -- resume from store hits instead of
                        # recomputing the survivors.
                        for sub_index in sorted(partial.completed):
                            position = owned[sub_index]
                            hash_ = hashes[position]
                            self.store.put(
                                hash_, partial.completed[sub_index]
                            )
                            job.sources[position] = "computed"
                            self.counters["computed"] += 1
                            future = self._inflight.pop(hash_, None)
                            if future is not None and not future.done():
                                future.set_result(hash_)
                        raise
                    for position, scenario_result in zip(owned, results):
                        hash_ = hashes[position]
                        self.store.put(hash_, scenario_result)
                        job.sources[position] = "computed"
                        self.counters["computed"] += 1
                        future = self._inflight.pop(hash_, None)
                        if future is not None and not future.done():
                            future.set_result(hash_)
            except Exception as exc:
                # Wake every attached job with the failure before this
                # one propagates it; a claimed-but-unresolved hash must
                # never leave a dangling future behind.
                for hash_ in claimed:
                    future = self._inflight.pop(hash_, None)
                    if future is not None and not future.done():
                        failure = ConfigurationError(
                            f"in-flight computation failed: {exc}"
                        )
                        future.set_exception(failure)
                        # Attached jobs consume it; an unobserved
                        # future (everyone already gave up) must not
                        # warn at GC.
                        future.exception()
                raise
            finally:
                # Cancellation (job cancel or service shutdown) can
                # leave claimed hashes unresolved; never strand a
                # future other jobs await -- cancelling it is the
                # hand-off that sends attached jobs back to reclassify.
                for hash_ in claimed:
                    future = self._inflight.pop(hash_, None)
                    if future is not None and not future.done():
                        future.cancel()

            retry: "list[int]" = []
            if attached:
                waited = await asyncio.gather(
                    *attached.values(), return_exceptions=True
                )
                for (position, _future), outcome in zip(
                    attached.items(), waited
                ):
                    if isinstance(outcome, asyncio.CancelledError):
                        # Owner cancelled: take this position back.
                        retry.append(position)
                    elif isinstance(outcome, BaseException):
                        raise outcome
                    else:
                        job.sources[position] = "inflight"
                        self.counters["deduped"] += 1
            unresolved = retry


def retry_after_seconds(wait: float) -> int:
    """Round a wait up to the integer seconds ``Retry-After`` carries."""
    return max(1, int(math.ceil(wait)))
