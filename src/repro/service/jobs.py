"""Async job management: bounded queue, single-flight dedupe, rate limits.

The :class:`JobManager` is the heart of the simulation service
(:mod:`repro.service.app`): every submitted
:class:`~repro.api.plan.RunPlan` becomes a :class:`Job` whose expanded
scenarios are resolved one of three ways --

* **store** -- the canonical scenario hash is already in the
  :class:`~repro.service.store.ResultStore`: served without compute;
* **inflight** -- another running job is computing the same hash right
  now: this job awaits that computation instead of repeating it
  (single-flight dedupe, keyed by hash across *all* concurrent jobs);
* **computed** -- a genuine miss: the job claims the hash, runs it on
  the existing sharded executor
  (:func:`~repro.api.executor.run_plan_parallel` over
  ``shard_plan``/``run_shard``), stores the result, and wakes every
  job that attached to the claim.

Compute happens on a thread off the event loop, so the service keeps
accepting and deduplicating submissions while simulations run. The
queue is bounded (:class:`JobQueueFull` maps to HTTP 503) and
:class:`RateLimiter` implements the per-client token bucket behind
HTTP 429 + ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..api.executor import run_plan_parallel
from ..api.hashing import plan_hash, scenario_hash
from ..api.plan import RunPlan
from ..errors import ConfigurationError, ReproError
from .store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..api.plan import ScenarioResult


class JobQueueFull(ReproError):
    """Raised when a submission would exceed the bounded job queue."""


#: Lifecycle states a job moves through (strictly forward).
JOB_STATUSES = ("queued", "running", "done", "failed")

#: Where one scenario's result came from (``pending`` while unresolved).
RESULT_SOURCES = ("pending", "store", "computed", "inflight")


@dataclass(frozen=True)
class JobRecord:
    """The immutable wire form of a job's status at one instant.

    Attributes
    ----------
    id:
        Service-unique job id (``"job-<n>"``).
    status:
        One of :data:`JOB_STATUSES`.
    plan_name, plan_hash:
        The submitted plan's name and content hash
        (:func:`~repro.api.hashing.plan_hash`).
    scenario_hashes:
        Canonical hash of every expanded scenario, in plan order.
    sources:
        Per-scenario provenance, aligned with ``scenario_hashes``:
        one of :data:`RESULT_SOURCES`.
    store_hits, computed, deduped:
        Scenario counts by provenance (``deduped`` = served by another
        job's in-flight computation).
    elapsed_s:
        Wall-clock seconds from submission to completion (0 while
        unfinished).
    error:
        The failure message of a ``failed`` job, else ``None``.
    """

    id: str
    status: str
    plan_name: str
    plan_hash: str
    scenario_hashes: "tuple[str, ...]"
    sources: "tuple[str, ...]"
    store_hits: int
    computed: int
    deduped: int
    elapsed_s: float
    error: "str | None"


class Job:
    """Mutable runtime state of one submitted plan.

    Owned by the :class:`JobManager`; external consumers read the
    frozen :meth:`record` snapshot.
    """

    def __init__(self, job_id: str, plan: RunPlan, plan_digest: str) -> None:
        """Create a queued job for one submitted plan."""
        self.id = job_id
        self.plan = plan
        self.plan_hash = plan_digest
        self.status = "queued"
        self.scenario_hashes: "tuple[str, ...]" = ()
        self.sources: "list[str]" = []
        self.error: "str | None" = None
        self.created_at = time.time()
        self.elapsed_s = 0.0
        self._start = time.perf_counter()

    def finish(self, status: str, error: "str | None" = None) -> None:
        """Move the job to a terminal state and stamp its elapsed time."""
        self.status = status
        self.error = error
        self.elapsed_s = time.perf_counter() - self._start

    def record(self) -> JobRecord:
        """A frozen :class:`JobRecord` snapshot of the current state."""
        sources = tuple(self.sources)
        return JobRecord(
            id=self.id,
            status=self.status,
            plan_name=self.plan.name,
            plan_hash=self.plan_hash,
            scenario_hashes=self.scenario_hashes,
            sources=sources,
            store_hits=sources.count("store"),
            computed=sources.count("computed"),
            deduped=sources.count("inflight"),
            elapsed_s=self.elapsed_s,
            error=self.error,
        )


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s up to ``capacity``.

    :meth:`acquire` never blocks -- it either takes a token and returns
    ``0.0``, or returns the seconds until one will be available (the
    ``Retry-After`` the HTTP layer reports).
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        """Create a full bucket refilling at ``rate`` tokens per second."""
        if rate <= 0 or capacity <= 0:
            raise ConfigurationError(
                f"rate and capacity must be > 0, got {rate}/{capacity}"
            )
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; else the wait in seconds."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets (client id -> :class:`TokenBucket`).

    Unknown clients get a fresh full bucket on first sight; the HTTP
    layer keys clients by ``X-Client-Id`` header falling back to the
    peer address.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        """Create a limiter handing each client ``rate``/``capacity``."""
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}

    def check(self, client_id: str) -> float:
        """0.0 if the client may proceed, else its retry-after seconds."""
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.capacity, self._clock)
            self._buckets[client_id] = bucket
        return bucket.acquire()


def compute_scenario_results(
    scenarios: "tuple[Any, ...]",
    *,
    seed: int = 0,
    defaults: "Mapping[str, Any] | None" = None,
    workers: int = 1,
    shard_by: str = "round-robin",
    executor: str = "process",
) -> "tuple[ScenarioResult, ...]":
    """Compute concrete scenarios on the sharded executor, in order.

    The blocking compute kernel the job manager runs off-loop: wraps
    the scenarios in a throwaway plan and dispatches it through
    :func:`~repro.api.executor.run_plan_parallel` (process pool by
    default; a single shard runs inline), returning the
    :class:`~repro.api.plan.ScenarioResult` list aligned with the
    input order.
    """
    plan = RunPlan(name="service-job", scenarios=tuple(scenarios))
    outcome = run_plan_parallel(
        plan,
        workers=max(1, int(workers)),
        shard_by=shard_by,
        seed=seed,
        defaults=defaults,
        executor=executor,
    )
    return outcome.scenario_results


class JobManager:
    """Owns jobs, the single-flight map, and the compute off-load pool.

    One manager per service process. All coordination state
    (``_inflight``, job table, counters) is touched only from the
    event loop thread; the blocking simulation work runs on
    ``_compute_pool`` threads via :func:`compute_scenario_results`.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        seed: int = 0,
        defaults: "Mapping[str, Any] | None" = None,
        workers: int = 1,
        shard_by: str = "round-robin",
        executor: str = "process",
        max_pending: int = 16,
        max_concurrent: int = 2,
    ) -> None:
        """Wire the manager to its store and executor configuration."""
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.store = store
        self.seed = int(seed)
        self.defaults = dict(defaults or {})
        self.workers = int(workers)
        self.shard_by = shard_by
        self.executor = executor
        self.max_pending = int(max_pending)
        self._jobs: "dict[str, Job]" = {}
        self._ids = itertools.count(1)
        self._inflight: "dict[str, asyncio.Future]" = {}
        self._gate = asyncio.Semaphore(int(max_concurrent))
        self._compute_pool = ThreadPoolExecutor(
            max_workers=int(max_concurrent),
            thread_name_prefix="repro-service-compute",
        )
        self._tasks: "set[asyncio.Task]" = set()
        self.counters = {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "store_hits": 0,
            "computed": 0,
            "deduped": 0,
        }

    # ----- submission and lookup -----------------------------------------

    def pending(self) -> int:
        """Jobs currently queued or running."""
        return sum(
            1 for j in self._jobs.values() if j.status in ("queued", "running")
        )

    def submit(self, plan: RunPlan) -> Job:
        """Accept a plan as a new job and schedule its execution.

        Raises :class:`JobQueueFull` when ``max_pending`` jobs are
        already queued or running (the HTTP layer maps this to 503 +
        ``Retry-After``). Must be called from the event loop thread.
        """
        if self.pending() >= self.max_pending:
            raise JobQueueFull(
                f"job queue full ({self.max_pending} pending); retry later"
            )
        job = Job(
            f"job-{next(self._ids)}",
            plan,
            plan_hash(plan, defaults=self.defaults),
        )
        self._jobs[job.id] = job
        self.counters["jobs_submitted"] += 1
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    def job(self, job_id: str) -> "Job | None":
        """Look a job up by id (``None`` when unknown)."""
        return self._jobs.get(job_id)

    def stats(self) -> "dict[str, Any]":
        """Aggregate counters: jobs by state, dedupe/hit totals, config."""
        by_status = {status: 0 for status in JOB_STATUSES}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            **self.counters,
            "jobs_by_status": by_status,
            "inflight_scenarios": len(self._inflight),
            "max_pending": self.max_pending,
            "workers": self.workers,
            "shard_by": self.shard_by,
            "executor": self.executor,
        }

    async def close(self) -> None:
        """Cancel outstanding jobs and release the compute pool."""
        for task in tuple(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._compute_pool.shutdown(wait=False, cancel_futures=True)

    # ----- execution ------------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        """Resolve every scenario of one job (store / inflight / compute)."""
        async with self._gate:
            job.status = "running"
            try:
                await self._resolve(job)
            except asyncio.CancelledError:
                job.finish("failed", "cancelled on shutdown")
                raise
            except Exception as exc:
                job.finish("failed", str(exc))
                self.counters["jobs_failed"] += 1
            else:
                job.finish("done")
                self.counters["jobs_done"] += 1

    async def _resolve(self, job: Job) -> None:
        expanded = job.plan.expanded()
        hashes = tuple(
            scenario_hash(s, defaults=self.defaults) for s in expanded
        )
        job.scenario_hashes = hashes
        job.sources = ["pending"] * len(expanded)

        loop = asyncio.get_running_loop()
        owned: "list[int]" = []
        attached: "dict[int, asyncio.Future]" = {}
        claimed: "set[str]" = set()
        for position, hash_ in enumerate(hashes):
            if hash_ in claimed:
                # The same scenario twice in one plan: the first
                # occurrence owns the compute, later ones attach.
                attached[position] = self._inflight[hash_]
                job.sources[position] = "inflight"
                self.counters["deduped"] += 1
            elif hash_ in self._inflight:
                attached[position] = self._inflight[hash_]
                job.sources[position] = "inflight"
                self.counters["deduped"] += 1
            elif hash_ in self.store:
                job.sources[position] = "store"
                self.counters["store_hits"] += 1
            else:
                self._inflight[hash_] = loop.create_future()
                claimed.add(hash_)
                owned.append(position)

        try:
            if owned:
                scenarios = tuple(expanded[i] for i in owned)
                results = await loop.run_in_executor(
                    self._compute_pool,
                    lambda: compute_scenario_results(
                        scenarios,
                        seed=self.seed,
                        defaults=self.defaults,
                        workers=self.workers,
                        shard_by=self.shard_by,
                        executor=self.executor,
                    ),
                )
                for position, scenario_result in zip(owned, results):
                    hash_ = hashes[position]
                    self.store.put(hash_, scenario_result)
                    job.sources[position] = "computed"
                    self.counters["computed"] += 1
                    future = self._inflight.pop(hash_, None)
                    if future is not None and not future.done():
                        future.set_result(hash_)
        except Exception as exc:
            # Wake every attached job with the failure before this one
            # propagates it; a claimed-but-unresolved hash must never
            # leave a dangling future behind.
            for hash_ in claimed:
                future = self._inflight.pop(hash_, None)
                if future is not None and not future.done():
                    failure = ConfigurationError(
                        f"in-flight computation failed: {exc}"
                    )
                    future.set_exception(failure)
                    # Attached jobs consume it; an unobserved future
                    # (everyone already gave up) must not warn at GC.
                    future.exception()
            raise
        finally:
            # Cancellation (service shutdown) can leave claimed hashes
            # unresolved; never strand a future other jobs await.
            for hash_ in claimed:
                future = self._inflight.pop(hash_, None)
                if future is not None and not future.done():
                    future.cancel()

        if attached:
            waited = await asyncio.gather(
                *attached.values(), return_exceptions=True
            )
            failures = [w for w in waited if isinstance(w, BaseException)]
            if failures:
                raise failures[0]


def retry_after_seconds(wait: float) -> int:
    """Round a wait up to the integer seconds ``Retry-After`` carries."""
    return max(1, int(math.ceil(wait)))
