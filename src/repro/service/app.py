"""The asyncio HTTP simulation service: plans in, cached results out.

A :class:`ServiceApp` binds the job manager
(:mod:`repro.service.jobs`) and the persistent result store
(:mod:`repro.service.store`) behind a small HTTP/1.1 API built on
:func:`asyncio.start_server` alone -- no web framework, zero runtime
dependencies beyond the standard library:

========  =================  ==============================================
method    path               meaning
========  =================  ==============================================
POST      ``/plans``         submit a :class:`~repro.api.plan.RunPlan`
                             record (optional ``priority`` key:
                             high/normal/low or 0-9; optional
                             ``timeout_s`` job deadline); 202 + job
                             record (rate limited, 429 +
                             ``Retry-After`` when over budget, 503 +
                             ``Retry-After`` when the queue is full)
GET       ``/jobs/{id}``     job status as a JSON job record (evicted
                             jobs answer a typed ``expired`` record)
DELETE    ``/jobs/{id}``     cancel a queued/running job; returns its
                             final record (idempotent on terminal jobs)
GET       ``/results/{h}``   the stored result record under scenario
                             hash ``h`` (404 on a miss; a corrupt
                             object is quarantined and 404s rather
                             than being served)
POST      ``/admin/prune``   garbage-collect the store within age/count
                             budgets, pinning hashes live jobs reference
POST      ``/admin/verify``  integrity-scan the store (body
                             ``{"repair": true}`` quarantines corrupt
                             objects); returns the verify report
GET       ``/healthz``       liveness probe (never rate limited)
GET       ``/stats``         job/store/dedupe counters, journal health,
                             and the last recovery report
========  =================  ==============================================

Responses are JSON; requests are independent (``Connection: close``),
which keeps the protocol layer small enough to audit at a glance.
:class:`ServiceThread` runs an app on a background event-loop thread --
the embedding used by the tests, the example and the CI smoke job; the
app can also run a periodic background prune (``prune_interval_s``) so
a long-lived service garbage-collects itself.

Durability: unless constructed with ``journal=None``, the app keeps a
write-ahead :class:`~repro.service.journal.JobJournal` (default
``<store root>/journal.jsonl``) of every job lifecycle transition.
:meth:`ServiceApp.start` replays it before serving -- restoring
terminal job records, re-queueing accepted-but-unfinished jobs (only
scenarios missing from the store are recomputed), and restoring the
evicted-id memory -- and :meth:`ServiceApp.stop` appends a clean
shutdown marker so the next boot can tell a deploy restart from a
crash. :meth:`ServiceApp.drain` is the graceful half the CLI's
SIGTERM handler runs before ``stop()``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..io import job_record_to_dict, run_plan_from_dict, store_record_to_dict
from .jobs import JobManager, JobQueueFull, RateLimiter, retry_after_seconds
from .journal import JobJournal
from .store import ResultStore, StoreIntegrityError

#: Largest request body the service accepts (a plan record), in bytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceApp:
    """One simulation service: store + job manager + HTTP front end.

    Construction wires the pieces; :meth:`start` binds the socket.
    The app is restartable in the sense that matters operationally:
    a new app pointed at the same store directory serves everything
    its predecessors computed.
    """

    def __init__(
        self,
        store: "ResultStore | str",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        defaults: "Mapping[str, Any] | None" = None,
        workers: int = 1,
        shard_by: str = "round-robin",
        executor: str = "process",
        max_pending: int = 16,
        max_concurrent: int = 2,
        rate_per_s: float = 10.0,
        burst: float = 20.0,
        aging_s: float = 30.0,
        job_ttl_s: "float | None" = 3600.0,
        max_records: "int | None" = 1024,
        shard_timeout_s: "float | None" = None,
        max_shard_retries: int = 2,
        prune_interval_s: "float | None" = None,
        prune_max_entries: "int | None" = None,
        prune_max_age_s: "float | None" = None,
        journal: "JobJournal | str | None" = "auto",
        owner_id: str = "",
        lease_ttl_s: float = 30.0,
        drain_timeout_s: float = 10.0,
    ) -> None:
        """Configure the service; nothing binds until :meth:`start`.

        ``journal`` selects the durability layer: the default
        ``"auto"`` keeps ``journal.jsonl`` inside the store root (so
        replicas sharing a store directory share the journal), a path
        puts it elsewhere, and ``None`` disables journaling entirely
        (the pre-durability in-memory behaviour).
        """
        if prune_interval_s is not None and prune_interval_s <= 0:
            raise ConfigurationError(
                f"prune_interval_s must be > 0 or None, got {prune_interval_s}"
            )
        if drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {drain_timeout_s}"
            )
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        if journal == "auto":
            self.journal: "JobJournal | None" = JobJournal(
                self.store.root / "journal.jsonl"
            )
        elif journal is None or isinstance(journal, JobJournal):
            self.journal = journal
        else:
            self.journal = JobJournal(journal)
        self.drain_timeout_s = float(drain_timeout_s)
        self.host = host
        self.port = int(port)
        self.manager = JobManager(
            self.store,
            seed=seed,
            defaults=defaults,
            workers=workers,
            shard_by=shard_by,
            executor=executor,
            max_pending=max_pending,
            max_concurrent=max_concurrent,
            aging_s=aging_s,
            job_ttl_s=job_ttl_s,
            max_records=max_records,
            shard_timeout_s=shard_timeout_s,
            max_shard_retries=max_shard_retries,
            journal=self.journal,
            owner_id=owner_id,
            lease_ttl_s=lease_ttl_s,
        )
        self.limiter = RateLimiter(rate_per_s, burst)
        self.prune_interval_s = prune_interval_s
        self.prune_max_entries = prune_max_entries
        self.prune_max_age_s = prune_max_age_s
        self._server: "asyncio.base_events.Server | None" = None
        self._prune_task: "asyncio.Task | None" = None
        self.recovery: "dict[str, Any] | None" = None

    # ----- lifecycle ------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port=0`` (the default) binds an ephemeral port -- the return
        value is how callers learn it. When ``prune_interval_s`` is
        set, a background task prunes the store on that period with the
        configured budgets (live-job hashes always pinned). With a
        journal attached the manager recovers *before* the socket
        binds: every previously accepted job answers ``GET /jobs/{id}``
        from the first request served.
        """
        if self._server is not None:
            raise ConfigurationError("service already started")
        self.recovery = await self.manager.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        if self.prune_interval_s is not None:
            self._prune_task = asyncio.get_running_loop().create_task(
                self._prune_loop()
            )
        return sockname[0], self.port

    async def drain(self, timeout_s: "float | None" = None) -> bool:
        """Graceful pre-stop: wait for running jobs, journal what lands.

        The SIGTERM half of shutdown (``timeout_s`` defaults to the
        configured ``drain_timeout_s``): jobs finishing inside the
        window reach the journal as terminal; stragglers are cancelled
        by :meth:`stop` *without* a terminal entry, so the next boot
        re-queues them. Returns ``True`` when everything drained.
        """
        timeout = self.drain_timeout_s if timeout_s is None else timeout_s
        return await self.manager.drain(timeout)

    async def stop(self) -> None:
        """Stop accepting, cancel outstanding jobs, release the pool.

        With a journal attached, a clean-shutdown marker is the last
        entry appended -- the next boot reports ``mode: "clean"``
        instead of ``"crash"``.
        """
        if self._prune_task is not None:
            self._prune_task.cancel()
            await asyncio.gather(self._prune_task, return_exceptions=True)
            self._prune_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()
        if self.journal is not None:
            self.journal.mark_clean_shutdown()

    # ----- store GC -------------------------------------------------------

    async def prune(
        self,
        *,
        max_entries: "int | None" = None,
        max_age_s: "float | None" = None,
    ) -> "dict[str, Any]":
        """Prune the store within budgets, pinning live jobs' hashes.

        The operational GC entry point behind ``POST /admin/prune`` and
        the background prune loop. Hashes referenced by retained jobs
        or in-flight claims (:meth:`JobManager.protected_hashes`) are
        never deleted, closing the classify-then-fetch TOCTOU. File IO
        runs off the event loop so serving never stalls.
        """
        pinned = self.manager.protected_hashes()
        loop = asyncio.get_running_loop()
        pruned = await loop.run_in_executor(
            None,
            lambda: self.store.prune(
                max_entries=max_entries, max_age_s=max_age_s, keep=pinned
            ),
        )
        return {
            "pruned": len(pruned),
            "hashes": list(pruned),
            "protected": len(pinned),
            "entries": len(self.store),
        }

    async def _prune_loop(self) -> None:
        """Periodic background GC; one failure never kills the loop."""
        while True:
            await asyncio.sleep(self.prune_interval_s)
            try:
                await self.prune(
                    max_entries=self.prune_max_entries,
                    max_age_s=self.prune_max_age_s,
                )
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception:  # pragma: no cover - defensive edge
                pass

    @property
    def url(self) -> str:
        """The service base URL once started (http, host:port)."""
        return f"http://{self.host}:{self.port}"

    # ----- HTTP plumbing --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Parse one request, route it, write one response, close."""
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            status, payload, extra = await self._route(
                method, path, headers, body, writer
            )
        except ConfigurationError as exc:
            status, payload, extra = 400, {"error": str(exc)}, {}
        except Exception as exc:  # pragma: no cover - defensive edge
            status, payload, extra = 500, {"error": str(exc)}, {}
        try:
            await _write_response(writer, status, payload, extra)
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(
        self,
        method: str,
        path: str,
        headers: "Mapping[str, str]",
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """Dispatch one parsed request to its endpoint handler."""
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}, {}
        if method == "GET" and path == "/stats":
            return (
                200,
                {
                    "jobs": self.manager.stats(),
                    "store": self.store.stats(),
                    "rate_limit": {
                        "rate_per_s": self.limiter.rate,
                        "burst": self.limiter.capacity,
                    },
                    "journal": (
                        None
                        if self.journal is None
                        else self.journal.stats()
                    ),
                    "recovery": self.recovery,
                },
                {},
            )
        if method == "GET" and path.startswith("/jobs/"):
            record = self.manager.record_of(path[len("/jobs/"):])
            if record is None:
                return 404, {"error": "no such job"}, {}
            return 200, job_record_to_dict(record), {}
        if method == "DELETE" and path.startswith("/jobs/"):
            record = await self.manager.cancel(path[len("/jobs/"):])
            if record is None:
                return 404, {"error": "no such job"}, {}
            return 200, job_record_to_dict(record), {}
        if method == "GET" and path.startswith("/results/"):
            hash_ = path[len("/results/"):]
            try:
                record = self.store.get_record(hash_)
            except StoreIntegrityError as exc:
                # Quarantined, never served: to the client the object
                # is gone (resubmit the plan to recompute it).
                return 404, {"error": f"result quarantined: {exc}"}, {}
            except ConfigurationError as exc:
                return 400, {"error": str(exc)}, {}
            if record is None:
                return 404, {"error": "no such result"}, {}
            return 200, store_record_to_dict(record), {}
        if method == "POST" and path == "/plans":
            return self._submit(headers, body, writer)
        if method == "POST" and path == "/admin/prune":
            return await self._admin_prune(body)
        if method == "POST" and path == "/admin/verify":
            return await self._admin_verify(body)
        if path in (
            "/plans",
            "/healthz",
            "/stats",
            "/admin/prune",
            "/admin/verify",
        ) or path.startswith(("/jobs/", "/results/")):
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no such endpoint: {path}"}, {}

    async def _admin_prune(
        self, body: bytes
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """POST /admin/prune: GC within the request's age/count budgets."""
        budgets: "dict[str, Any]" = {}
        if body.strip():
            try:
                budgets = json.loads(body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"error": f"body is not JSON: {exc}"}, {}
            if not isinstance(budgets, dict):
                return 400, {"error": "body must be a budgets object"}, {}
        unknown = set(budgets) - {"max_entries", "max_age_s"}
        if unknown:
            return (
                400,
                {"error": f"unknown prune budgets: {sorted(unknown)}"},
                {},
            )
        max_entries = budgets.get("max_entries")
        max_age_s = budgets.get("max_age_s")
        try:
            report = await self.prune(
                max_entries=None if max_entries is None else int(max_entries),
                max_age_s=None if max_age_s is None else float(max_age_s),
            )
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"bad prune budgets: {exc}"}, {}
        return 200, report, {}

    async def _admin_verify(
        self, body: bytes
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """POST /admin/verify: integrity-scan the store, report corruption.

        Body is an optional ``{"repair": bool}`` object; with
        ``repair`` true, corrupt objects are moved to ``quarantine/``
        and the index is rebuilt. The scan walks every object file, so
        it runs off the event loop; serving continues meanwhile.
        """
        options: "dict[str, Any]" = {}
        if body.strip():
            try:
                options = json.loads(body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"error": f"body is not JSON: {exc}"}, {}
            if not isinstance(options, dict):
                return 400, {"error": "body must be an options object"}, {}
        unknown = set(options) - {"repair"}
        if unknown:
            return (
                400,
                {"error": f"unknown verify options: {sorted(unknown)}"},
                {},
            )
        repair = bool(options.get("repair", False))
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: self.store.verify(repair=repair)
        )
        return 200, report.as_dict(), {}

    def _submit(
        self,
        headers: "Mapping[str, str]",
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> "tuple[int, dict[str, Any], dict[str, str]]":
        """POST /plans: rate limit, parse, enqueue; 202 + job record.

        The body is a run-plan record, optionally carrying a
        ``priority`` key (a class name or integer rank) that dispatches
        the job ahead of or behind its queue peers, and/or a
        ``timeout_s`` key (a positive number) that deadlines the job:
        the manager's watchdog moves it to the typed ``timeout``
        terminal state if it is still unfinished then.
        """
        client = headers.get("x-client-id") or _peer_of(writer)
        wait = self.limiter.check(client)
        if wait > 0:
            seconds = retry_after_seconds(wait)
            return (
                429,
                {"error": "rate limit exceeded", "retry_after_s": seconds},
                {"Retry-After": str(seconds)},
            )
        try:
            record = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}, {}
        if not isinstance(record, dict):
            return 400, {"error": "body must be a run-plan record"}, {}
        priority = record.pop("priority", None)
        timeout_raw = record.pop("timeout_s", None)
        timeout_s: "float | None" = None
        if timeout_raw is not None:
            try:
                timeout_s = float(timeout_raw)
            except (TypeError, ValueError):
                return (
                    400,
                    {"error": f"timeout_s must be a number, got {timeout_raw!r}"},
                    {},
                )
        plan = run_plan_from_dict(record)
        try:
            options: "dict[str, Any]" = {}
            if priority is not None:
                options["priority"] = priority
            if timeout_s is not None:
                options["timeout_s"] = timeout_s
            job = self.manager.submit(plan, **options)
        except JobQueueFull as exc:
            return (
                503,
                {"error": str(exc), "retry_after_s": 1},
                {"Retry-After": "1"},
            )
        return 202, job_record_to_dict(job.record()), {}


async def _read_request(
    reader: asyncio.StreamReader,
) -> "tuple[str, str, dict[str, str], bytes] | None":
    """Parse one HTTP/1.1 request; ``None`` on an empty connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ConfigurationError(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: "dict[str, str]" = {}
    while True:
        line = await reader.readline()
        if not line.strip():
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ConfigurationError(
            f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
        )
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: "Mapping[str, Any]",
    extra_headers: "Mapping[str, str]",
) -> None:
    """Serialise one JSON response and flush it."""
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


def _peer_of(writer: asyncio.StreamWriter) -> str:
    """The client key when no ``X-Client-Id`` header is sent."""
    peer = writer.get_extra_info("peername")
    return str(peer[0]) if peer else "unknown"


class ServiceThread:
    """Run a :class:`ServiceApp` on a dedicated event-loop thread.

    The embedding for synchronous callers (tests, the example script,
    the CI smoke job): ``start()`` blocks until the port is bound and
    returns ``(host, port)``; ``stop()`` shuts the loop down cleanly.
    Usable as a context manager.
    """

    def __init__(self, app: ServiceApp) -> None:
        """Wrap an unstarted app; nothing runs until :meth:`start`."""
        self.app = app
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._address: "tuple[str, int] | None" = None
        self._error: "BaseException | None" = None

    def start(self, timeout_s: float = 30.0) -> "tuple[str, int]":
        """Boot the loop thread and block until the socket is bound."""
        if self._thread is not None:
            raise ConfigurationError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise ConfigurationError("service thread failed to start in time")
        if self._error is not None:
            raise ConfigurationError(
                f"service failed to start: {self._error}"
            )
        assert self._address is not None
        return self._address

    def stop(self, timeout_s: float = 30.0) -> None:
        """Stop the app and join the loop thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout_s)
        self._thread = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._address = await self.app.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.app.stop()

    def __enter__(self) -> "ServiceThread":
        """Start on entry; the bound address is in :attr:`address`."""
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Stop on exit, swallowing nothing."""
        self.stop()

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` of the running service."""
        if self._address is None:
            raise ConfigurationError("service thread not started")
        return self._address

    @property
    def url(self) -> str:
        """The service base URL of the running service."""
        host, port = self.address
        return f"http://{host}:{port}"
