"""Scalar-or-array return convention shared by the reliability laws.

Every empirical law in this package evaluates elementwise, so the
vectorized entry points follow the house convention of
:mod:`repro.electrostatics.capacitance`: array inputs broadcast to an
array result, while all-scalar inputs keep returning a plain float so
existing scalar callers (and their ``float`` expectations) are
untouched.
"""

from __future__ import annotations

import numpy as np


def as_scalar_or_array(value, *inputs):
    """Return ``value`` as a float when every input was a scalar."""
    if all(np.isscalar(x) for x in inputs):
        return float(value)
    return value
