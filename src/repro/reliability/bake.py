"""Temperature-accelerated retention (bake testing).

Retention qualification never waits ten years: parts are baked at
125-250 C and the loss is extrapolated to operating temperature with an
Arrhenius acceleration factor

.. math::

    AF = \\exp\\!\\left[\\frac{E_a}{k_B}
         \\left(\\frac{1}{T_{use}} - \\frac{1}{T_{bake}}\\right)\\right]

with activation energies around 1.1 eV for charge-loss mechanisms in
floating-gate flash (JEDEC JESD22-A117 tradition). The module converts
between bake time and equivalent use time and derives pass/fail bake
durations for a ten-year retention target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import BOLTZMANN, ELEMENTARY_CHARGE
from ..errors import ConfigurationError

#: Ten years in seconds (retention qualification target).
TEN_YEARS_S = 10.0 * 365.25 * 24.0 * 3600.0


@dataclass(frozen=True)
class ArrheniusAcceleration:
    """Arrhenius time-acceleration model for retention loss.

    Attributes
    ----------
    activation_energy_ev:
        Activation energy of the dominant charge-loss mechanism [eV].
    use_temperature_k:
        Operating temperature the extrapolation targets [K].
    """

    activation_energy_ev: float = 1.1
    use_temperature_k: float = 328.15  # 55 C, the JEDEC use condition

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0.0:
            raise ConfigurationError("activation energy must be positive")
        if self.use_temperature_k <= 0.0:
            raise ConfigurationError("use temperature must be positive")

    def acceleration_factor(self, bake_temperature_k: float) -> float:
        """AF between the bake and use temperatures (> 1 for hot bakes)."""
        if bake_temperature_k <= 0.0:
            raise ConfigurationError("bake temperature must be positive")
        ea_j = self.activation_energy_ev * ELEMENTARY_CHARGE
        return math.exp(
            ea_j
            / BOLTZMANN
            * (1.0 / self.use_temperature_k - 1.0 / bake_temperature_k)
        )

    def equivalent_use_time_s(
        self, bake_time_s: float, bake_temperature_k: float
    ) -> float:
        """Use-condition time simulated by a bake [s]."""
        if bake_time_s < 0.0:
            raise ConfigurationError("bake time cannot be negative")
        return bake_time_s * self.acceleration_factor(bake_temperature_k)

    def bake_time_for_target_s(
        self, target_use_time_s: float, bake_temperature_k: float
    ) -> float:
        """Bake duration that emulates a target use time [s]."""
        if target_use_time_s <= 0.0:
            raise ConfigurationError("target time must be positive")
        return target_use_time_s / self.acceleration_factor(
            bake_temperature_k
        )

    def ten_year_bake_hours(self, bake_temperature_k: float) -> float:
        """Hours of bake equivalent to ten years at use temperature."""
        return (
            self.bake_time_for_target_s(TEN_YEARS_S, bake_temperature_k)
            / 3600.0
        )
