"""Temperature-accelerated retention (bake testing).

Retention qualification never waits ten years: parts are baked at
125-250 C and the loss is extrapolated to operating temperature with an
Arrhenius acceleration factor

.. math::

    AF = \\exp\\!\\left[\\frac{E_a}{k_B}
         \\left(\\frac{1}{T_{use}} - \\frac{1}{T_{bake}}\\right)\\right]

with activation energies around 1.1 eV for charge-loss mechanisms in
floating-gate flash (JEDEC JESD22-A117 tradition). The module converts
between bake time and equivalent use time and derives pass/fail bake
durations for a ten-year retention target.

All conversions evaluate elementwise: a bake-temperature (or bake-time)
grid returns the whole acceleration table in one call, while all-scalar
calls keep returning floats -- the batched reliability backend's shared
convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import BOLTZMANN, ELEMENTARY_CHARGE
from ..errors import ConfigurationError
from ._vectorize import as_scalar_or_array

#: Ten years in seconds (retention qualification target).
TEN_YEARS_S = 10.0 * 365.25 * 24.0 * 3600.0


@dataclass(frozen=True)
class ArrheniusAcceleration:
    """Arrhenius time-acceleration model for retention loss.

    Attributes
    ----------
    activation_energy_ev:
        Activation energy of the dominant charge-loss mechanism [eV].
    use_temperature_k:
        Operating temperature the extrapolation targets [K].
    """

    activation_energy_ev: float = 1.1
    use_temperature_k: float = 328.15  # 55 C, the JEDEC use condition

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0.0:
            raise ConfigurationError("activation energy must be positive")
        if self.use_temperature_k <= 0.0:
            raise ConfigurationError("use temperature must be positive")

    def acceleration_factor(self, bake_temperature_k):
        """AF between the bake and use temperatures (> 1 for hot bakes).

        Scalar or ndarray bake temperature; a temperature grid returns
        the whole AF curve in one vectorized evaluation.
        """
        temp = np.asarray(bake_temperature_k, dtype=float)
        if np.any(temp <= 0.0):
            raise ConfigurationError("bake temperature must be positive")
        ea_j = self.activation_energy_ev * ELEMENTARY_CHARGE
        af = np.exp(
            ea_j / BOLTZMANN * (1.0 / self.use_temperature_k - 1.0 / temp)
        )
        return as_scalar_or_array(af, bake_temperature_k)

    def equivalent_use_time_s(self, bake_time_s, bake_temperature_k):
        """Use-condition time simulated by a bake [s].

        Scalars or ndarrays; time and temperature broadcast together
        (a time column against a temperature row yields the full
        equivalence grid).
        """
        time = np.asarray(bake_time_s, dtype=float)
        if np.any(time < 0.0):
            raise ConfigurationError("bake time cannot be negative")
        result = time * self.acceleration_factor(bake_temperature_k)
        return as_scalar_or_array(result, bake_time_s, bake_temperature_k)

    def bake_time_for_target_s(self, target_use_time_s, bake_temperature_k):
        """Bake duration that emulates a target use time [s].

        Scalars or ndarrays, broadcast together.
        """
        target = np.asarray(target_use_time_s, dtype=float)
        if np.any(target <= 0.0):
            raise ConfigurationError("target time must be positive")
        result = target / self.acceleration_factor(bake_temperature_k)
        return as_scalar_or_array(
            result, target_use_time_s, bake_temperature_k
        )

    def ten_year_bake_hours(self, bake_temperature_k):
        """Hours of bake equivalent to ten years at use temperature.

        Scalar or ndarray bake temperature (the qualification curve in
        one call).
        """
        result = (
            self.bake_time_for_target_s(TEN_YEARS_S, bake_temperature_k)
            / 3600.0
        )
        return as_scalar_or_array(result, bake_temperature_k)
