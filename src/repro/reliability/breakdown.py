"""Oxide breakdown models: charge-to-breakdown and time-to-breakdown.

Two classic empirical laws:

* **Charge to breakdown** ``Q_BD(E)``: the fluence an oxide sustains
  before destructive breakdown falls roughly exponentially with the
  stress field (thin-oxide wear-out; paper ref [2], Olivio et al.).
* **1/E time-to-breakdown**: ``t_BD = tau_0 * exp(G / E)`` -- the
  anode-hole-injection model, appropriate in the FN regime where the
  paper's device operates.

Both are calibrated to the conventional SiO2 numbers (Q_BD ~ 10^3-10^4
C/cm^2 at low field, G ~ 350 MV/cm) and exposed with explicit
parameters so other dielectrics can be fitted.

Every law evaluates elementwise: pass a field / fluence grid (any
broadcastable shapes) and the result comes back as an array, while
all-scalar calls keep returning floats -- the convention the batched
reliability backend shares with
:mod:`repro.electrostatics.capacitance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import mv_per_cm_to_v_per_m
from ._vectorize import as_scalar_or_array


@dataclass(frozen=True)
class BreakdownModel:
    """Empirical oxide-breakdown law.

    Attributes
    ----------
    qbd_reference_c_per_m2:
        Charge-to-breakdown at the reference field [C/m^2].
    qbd_reference_field_v_per_m:
        Field at which the reference Q_BD was measured [V/m].
    qbd_field_slope_decades_per_v_per_m:
        Decades of Q_BD lost per V/m of added field.
    g_v_per_m:
        The 1/E-model acceleration constant G [V/m].
    tau0_s:
        The 1/E-model prefactor [s].
    """

    qbd_reference_c_per_m2: float = 5.0e7  # 5e3 C/cm^2
    qbd_reference_field_v_per_m: float = 8.0e8
    qbd_field_slope_decades_per_v_per_m: float = 2.0e-9
    g_v_per_m: float = mv_per_cm_to_v_per_m(350.0)
    tau0_s: float = 1.0e-11

    def __post_init__(self) -> None:
        if self.qbd_reference_c_per_m2 <= 0.0:
            raise ConfigurationError("reference Q_BD must be positive")
        if self.qbd_reference_field_v_per_m <= 0.0:
            raise ConfigurationError("reference field must be positive")
        if self.tau0_s <= 0.0:
            raise ConfigurationError("tau0 must be positive")

    def charge_to_breakdown_c_per_m2(self, field_v_per_m):
        """Q_BD at a stress field [C/m^2] (exponential field acceleration).

        Scalar or ndarray field; array inputs return the Q_BD grid.
        """
        field = np.asarray(field_v_per_m, dtype=float)
        if np.any(field <= 0.0):
            raise ConfigurationError("field must be positive")
        decades = self.qbd_field_slope_decades_per_v_per_m * (
            field - self.qbd_reference_field_v_per_m
        )
        return as_scalar_or_array(
            self.qbd_reference_c_per_m2 * 10.0 ** (-decades), field_v_per_m
        )

    def time_to_breakdown_s(self, field_v_per_m):
        """1/E-model DC time to breakdown [s] (scalar or ndarray field)."""
        field = np.asarray(field_v_per_m, dtype=float)
        if np.any(field <= 0.0):
            raise ConfigurationError("field must be positive")
        return as_scalar_or_array(
            self.tau0_s * np.exp(self.g_v_per_m / field), field_v_per_m
        )

    def life_consumed_fraction(self, fluence_c_per_m2, field_v_per_m):
        """Fraction of the Q_BD budget consumed by a fluence at a field.

        Scalars or ndarrays; fluence and field broadcast together, so a
        ``(n_fluence, 1)`` column against a ``(n_field,)`` row yields
        the full wear grid in one call.
        """
        fluence = np.asarray(fluence_c_per_m2, dtype=float)
        if np.any(fluence < 0.0):
            raise ConfigurationError("fluence cannot be negative")
        qbd = self.charge_to_breakdown_c_per_m2(field_v_per_m)
        return as_scalar_or_array(
            fluence / qbd, fluence_c_per_m2, field_v_per_m
        )

    def cycles_to_breakdown(
        self, fluence_per_cycle_c_per_m2, field_v_per_m
    ):
        """Program/erase cycles until the Q_BD budget is exhausted.

        Scalars or ndarrays (broadcast together, one lane per stress
        condition).
        """
        per_cycle = np.asarray(fluence_per_cycle_c_per_m2, dtype=float)
        if np.any(per_cycle <= 0.0):
            raise ConfigurationError("per-cycle fluence must be positive")
        qbd = self.charge_to_breakdown_c_per_m2(field_v_per_m)
        return as_scalar_or_array(
            qbd / per_cycle, fluence_per_cycle_c_per_m2, field_v_per_m
        )
