"""Oxide reliability: stress, breakdown, SILC and endurance.

Quantifies the paper's concluding warning -- "higher tunneling current
will severely damage the oxide's reliability" -- with the standard
empirical wear-out models of the flash literature. Every law evaluates
elementwise over temperature / fluence / field grids, and the wear
trajectories of whole endurance corner sweeps come out of one
closed-form batch kernel (the seed's per-cycle loop is retained as
the ``simulate_scalar_reference`` parity path).
"""

from .bake import ArrheniusAcceleration
from .breakdown import BreakdownModel
from .endurance import (
    EnduranceBatchResult,
    EnduranceModel,
    EnduranceResult,
    sampled_cycle_counts,
)
from .silc import (
    TrapGenerationModel,
    silc_current_density,
    silc_current_density_batch,
)
from .stress import (
    StressAccumulator,
    StressBatch,
    StressRecord,
    stress_of_pulse,
    stress_of_pulse_batch,
)

__all__ = [
    "StressRecord",
    "StressBatch",
    "StressAccumulator",
    "stress_of_pulse",
    "stress_of_pulse_batch",
    "BreakdownModel",
    "ArrheniusAcceleration",
    "TrapGenerationModel",
    "silc_current_density",
    "silc_current_density_batch",
    "EnduranceModel",
    "EnduranceResult",
    "EnduranceBatchResult",
    "sampled_cycle_counts",
]
