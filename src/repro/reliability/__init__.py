"""Oxide reliability: stress, breakdown, SILC and endurance.

Quantifies the paper's concluding warning -- "higher tunneling current
will severely damage the oxide's reliability" -- with the standard
empirical wear-out models of the flash literature.
"""

from .bake import ArrheniusAcceleration
from .breakdown import BreakdownModel
from .endurance import EnduranceModel, EnduranceResult
from .silc import TrapGenerationModel, silc_current_density
from .stress import StressAccumulator, StressRecord, stress_of_pulse

__all__ = [
    "StressRecord",
    "StressAccumulator",
    "stress_of_pulse",
    "BreakdownModel",
    "ArrheniusAcceleration",
    "TrapGenerationModel",
    "silc_current_density",
    "EnduranceModel",
    "EnduranceResult",
]
