"""Stress-induced leakage current (SILC).

FN stress generates neutral electron traps in the tunnel oxide; the
resulting trap-assisted leakage at *retention* fields (far below the
programming field) is what actually kills flash data retention long
before hard breakdown. Trap generation follows the usual power law in
injected fluence, ``N_t = g * Q_inj^alpha`` with ``alpha ~ 0.6-0.8``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.trap_assisted import TrapAssistedModel


@dataclass(frozen=True)
class TrapGenerationModel:
    """Power-law trap generation from injected fluence.

    Attributes
    ----------
    generation_coefficient:
        ``g`` in ``N_t = g * (Q_inj / 1 C/m^2)^alpha`` [traps/m^2].
    exponent_alpha:
        Fluence exponent (0.6-0.8 for SiO2).
    pre_existing_density_m2:
        As-fabricated trap density [1/m^2].
    """

    generation_coefficient: float = 2.0e13
    exponent_alpha: float = 0.7
    pre_existing_density_m2: float = 1.0e12

    def __post_init__(self) -> None:
        if self.generation_coefficient < 0.0:
            raise ConfigurationError("generation coefficient cannot be negative")
        if not 0.0 < self.exponent_alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if self.pre_existing_density_m2 < 0.0:
            raise ConfigurationError("pre-existing density cannot be negative")

    def trap_density_m2(self, fluence_c_per_m2: float) -> float:
        """Total trap density after a given injected fluence [1/m^2]."""
        if fluence_c_per_m2 < 0.0:
            raise ConfigurationError("fluence cannot be negative")
        generated = self.generation_coefficient * fluence_c_per_m2**(
            self.exponent_alpha
        )
        return self.pre_existing_density_m2 + generated


def silc_current_density(
    barrier: TunnelBarrier,
    field_v_per_m: float,
    fluence_c_per_m2: float,
    generation: "TrapGenerationModel | None" = None,
) -> float:
    """SILC density [A/m^2] at a retention field after a stress fluence.

    Combines the trap-generation law with the two-step TAT conduction
    model; grows sub-linearly with fluence (through ``alpha``) and
    steeply with field.
    """
    model = generation or TrapGenerationModel()
    density = model.trap_density_m2(fluence_c_per_m2)
    tat = TrapAssistedModel(barrier, trap_density_m2=density)
    return tat.current_density(field_v_per_m)
