"""Stress-induced leakage current (SILC).

FN stress generates neutral electron traps in the tunnel oxide; the
resulting trap-assisted leakage at *retention* fields (far below the
programming field) is what actually kills flash data retention long
before hard breakdown. Trap generation follows the usual power law in
injected fluence, ``N_t = g * Q_inj^alpha`` with ``alpha ~ 0.6-0.8``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..tunneling.barriers import TunnelBarrier
from ..tunneling.trap_assisted import TrapAssistedModel
from ._vectorize import as_scalar_or_array


@dataclass(frozen=True)
class TrapGenerationModel:
    """Power-law trap generation from injected fluence.

    Attributes
    ----------
    generation_coefficient:
        ``g`` in ``N_t = g * (Q_inj / 1 C/m^2)^alpha`` [traps/m^2].
    exponent_alpha:
        Fluence exponent (0.6-0.8 for SiO2).
    pre_existing_density_m2:
        As-fabricated trap density [1/m^2].
    """

    generation_coefficient: float = 2.0e13
    exponent_alpha: float = 0.7
    pre_existing_density_m2: float = 1.0e12

    def __post_init__(self) -> None:
        if self.generation_coefficient < 0.0:
            raise ConfigurationError("generation coefficient cannot be negative")
        if not 0.0 < self.exponent_alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if self.pre_existing_density_m2 < 0.0:
            raise ConfigurationError("pre-existing density cannot be negative")

    def trap_density_m2(self, fluence_c_per_m2):
        """Total trap density after a given injected fluence [1/m^2].

        Scalar or ndarray fluence; a fluence grid returns the whole
        trap-generation curve elementwise (same power law per entry).
        """
        fluence = np.asarray(fluence_c_per_m2, dtype=float)
        if np.any(fluence < 0.0):
            raise ConfigurationError("fluence cannot be negative")
        generated = self.generation_coefficient * fluence**(
            self.exponent_alpha
        )
        return as_scalar_or_array(
            self.pre_existing_density_m2 + generated, fluence_c_per_m2
        )


def silc_current_density(
    barrier: TunnelBarrier,
    field_v_per_m: float,
    fluence_c_per_m2: float,
    generation: "TrapGenerationModel | None" = None,
) -> float:
    """SILC density [A/m^2] at a retention field after a stress fluence.

    Combines the trap-generation law with the two-step TAT conduction
    model; grows sub-linearly with fluence (through ``alpha``) and
    steeply with field.
    """
    model = generation or TrapGenerationModel()
    density = model.trap_density_m2(fluence_c_per_m2)
    tat = TrapAssistedModel(barrier, trap_density_m2=density)
    return tat.current_density(field_v_per_m)


def silc_current_density_batch(
    barrier: TunnelBarrier,
    fields_v_per_m,
    fluences_c_per_m2,
    generation: "TrapGenerationModel | None" = None,
) -> np.ndarray:
    """SILC density grid [A/m^2] over field and fluence arrays at once.

    The batched form of :func:`silc_current_density`: TAT conduction is
    linear in trap density, so the whole (field x fluence) response
    factorizes into one batched TAT evaluation at unit trap density
    (through :meth:`~repro.tunneling.trap_assisted.TrapAssistedModel.\
current_density_batch`) scaled by the vectorized trap-generation law.
    ``fields_v_per_m`` and ``fluences_c_per_m2`` broadcast together --
    pass a fluence column against a field row for the full retention
    map. Each element matches the scalar path at <= 1e-9 (the batched
    WKB trapezoid sums in a different order).
    """
    model = generation or TrapGenerationModel()
    fields = np.asarray(fields_v_per_m, dtype=float)
    fluences = np.asarray(fluences_c_per_m2, dtype=float)
    densities = model.trap_density_m2(fluences)
    # The expensive WKB integrals run once per *field* entry; the
    # fluence axis only scales the trap density, so the grid closes by
    # broadcasting rather than by re-evaluating TAT per cell.
    tat_unit = TrapAssistedModel(barrier, trap_density_m2=1.0)
    per_trap = tat_unit.current_density_batch(fields)
    return np.asarray(densities) * per_trap
