"""Program/erase endurance simulation.

Cycles the cell and tracks the three wear-out observables:

* consumed fraction of the charge-to-breakdown budget,
* tunnel-oxide trap density (hence SILC and retention loss),
* memory-window closure from trapped charge shifting both states.

This implements, quantitatively, the tradeoff the paper's conclusion
states qualitatively: raising the programming voltage speeds up the
cell but burns through the oxide's fluence budget faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..errors import ConfigurationError
from .breakdown import BreakdownModel
from .silc import TrapGenerationModel
from .stress import StressAccumulator, stress_of_pulse


@dataclass(frozen=True)
class EnduranceResult:
    """Wear trajectory over cycling.

    Attributes
    ----------
    cycle_counts:
        Cycle numbers at which the observables were sampled.
    trap_density_m2:
        Tunnel-oxide trap density at those cycles.
    life_consumed:
        Fraction of the Q_BD budget consumed.
    window_closure_v:
        Memory-window shrinkage caused by oxide trapped charge [V].
    cycles_to_breakdown:
        Extrapolated cycles until Q_BD exhaustion.
    """

    cycle_counts: np.ndarray = field(repr=False)
    trap_density_m2: np.ndarray = field(repr=False)
    life_consumed: np.ndarray = field(repr=False)
    window_closure_v: np.ndarray = field(repr=False)
    cycles_to_breakdown: float = 0.0

    def cycles_until(self, max_window_closure_v: float) -> "float | None":
        """First cycle count at which window closure exceeds a budget."""
        over = np.nonzero(self.window_closure_v >= max_window_closure_v)[0]
        if over.size == 0:
            return None
        return float(self.cycle_counts[over[0]])


@dataclass(frozen=True)
class EnduranceModel:
    """Cycling wear model for one cell.

    Attributes
    ----------
    device:
        The cell.
    breakdown:
        Field-accelerated breakdown law.
    trap_generation:
        Fluence-to-trap-density law.
    trapped_charge_fraction:
        Fraction of generated traps that hold charge at read time,
        shifting the threshold (window closure).
    pulse_duration_s:
        Program/erase pulse length used for each cycle.
    """

    device: FloatingGateTransistor
    breakdown: BreakdownModel = field(default_factory=BreakdownModel)
    trap_generation: TrapGenerationModel = field(
        default_factory=TrapGenerationModel
    )
    trapped_charge_fraction: float = 0.05
    pulse_duration_s: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.trapped_charge_fraction <= 1.0:
            raise ConfigurationError("trapped fraction must be in [0, 1]")
        if self.pulse_duration_s <= 0.0:
            raise ConfigurationError("pulse duration must be positive")

    def simulate(
        self,
        n_cycles: int,
        program_bias: BiasCondition = PROGRAM_BIAS,
        erase_bias: BiasCondition = ERASE_BIAS,
        n_samples: int = 60,
    ) -> EnduranceResult:
        """Cycle the cell ``n_cycles`` times and sample the wear curve.

        One representative program pulse and one erase pulse are
        simulated exactly; their fluences are then replayed analytically
        per cycle (FN stress is history-independent to first order, so
        every cycle injects the same fluence).
        """
        if n_cycles < 1:
            raise ConfigurationError("need at least one cycle")

        program_stress = stress_of_pulse(
            self.device, program_bias, self.pulse_duration_s
        )
        # Erase starts from the programmed charge.
        from ..device.transient import simulate_transient

        programmed = simulate_transient(
            self.device, program_bias, duration_s=self.pulse_duration_s
        ).final_charge_c
        erase_stress = stress_of_pulse(
            self.device,
            erase_bias,
            self.pulse_duration_s,
            initial_charge_c=programmed,
        )

        fluence_per_cycle = (
            program_stress.injected_charge_c_per_m2
            + erase_stress.injected_charge_c_per_m2
        )
        peak_field = max(
            program_stress.peak_field_v_per_m, erase_stress.peak_field_v_per_m
        )

        counts = np.unique(
            np.geomspace(1, n_cycles, n_samples).astype(int)
        )
        accumulator = StressAccumulator()
        trap_density = np.empty(counts.size)
        life = np.empty(counts.size)
        closure = np.empty(counts.size)

        from ..constants import ELEMENTARY_CHARGE

        cfc = self.device.capacitances.cfc
        area = self.device.geometry.channel_area_m2
        for i, cycle in enumerate(counts):
            fluence = fluence_per_cycle * float(cycle)
            accumulator.total_fluence_c_per_m2 = fluence
            trap_density[i] = self.trap_generation.trap_density_m2(fluence)
            life[i] = self.breakdown.life_consumed_fraction(
                fluence, peak_field
            )
            trapped = (
                self.trapped_charge_fraction
                * (trap_density[i] - self.trap_generation.pre_existing_density_m2)
            )
            closure[i] = trapped * ELEMENTARY_CHARGE * area / cfc

        cycles_bd = self.breakdown.cycles_to_breakdown(
            fluence_per_cycle, peak_field
        )
        return EnduranceResult(
            cycle_counts=counts.astype(float),
            trap_density_m2=trap_density,
            life_consumed=life,
            window_closure_v=closure,
            cycles_to_breakdown=cycles_bd,
        )
