"""Program/erase endurance simulation.

Cycles the cell and tracks the three wear-out observables:

* consumed fraction of the charge-to-breakdown budget,
* tunnel-oxide trap density (hence SILC and retention loss),
* memory-window closure from trapped charge shifting both states.

This implements, quantitatively, the tradeoff the paper's conclusion
states qualitatively: raising the programming voltage speeds up the
cell but burns through the oxide's fluence budget faster.

The wear laws are history-independent to first order (every cycle
injects the same fluence), so the whole trajectory collapses to a
closed form in the accumulated fluence ``F_k = f_cycle * k`` -- the
recurrence ``N_{t,k} = N_pre + (N_{t,k-1} - N_pre) * (k / (k-1))^alpha``
telescopes to the power law evaluated directly. :meth:`EnduranceModel.
simulate` therefore evaluates every sampled cycle count in one
vectorized kernel; the seed's per-cycle Python loop is retained as
:meth:`EnduranceModel.simulate_scalar_reference`, the 1e-9 parity
reference. :meth:`EnduranceModel.simulate_batch` stacks whole corner
sweeps (wear-law and stress lanes) over the same kernel, amortizing
the two stress transients every scalar call must pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import ELEMENTARY_CHARGE
from ..device.bias import BiasCondition, ERASE_BIAS, PROGRAM_BIAS
from ..device.floating_gate import FloatingGateTransistor
from ..errors import ConfigurationError
from .breakdown import BreakdownModel
from .silc import TrapGenerationModel
from .stress import StressAccumulator, stress_of_pulse


@dataclass(frozen=True)
class EnduranceResult:
    """Wear trajectory over cycling.

    Attributes
    ----------
    cycle_counts:
        Cycle numbers at which the observables were sampled.
    trap_density_m2:
        Tunnel-oxide trap density at those cycles.
    life_consumed:
        Fraction of the Q_BD budget consumed.
    window_closure_v:
        Memory-window shrinkage caused by oxide trapped charge [V].
    cycles_to_breakdown:
        Extrapolated cycles until Q_BD exhaustion.
    """

    cycle_counts: np.ndarray = field(repr=False)
    trap_density_m2: np.ndarray = field(repr=False)
    life_consumed: np.ndarray = field(repr=False)
    window_closure_v: np.ndarray = field(repr=False)
    cycles_to_breakdown: float = 0.0

    def cycles_until(self, max_window_closure_v: float) -> "float | None":
        """First cycle count at which window closure exceeds a budget."""
        over = np.nonzero(self.window_closure_v >= max_window_closure_v)[0]
        if over.size == 0:
            return None
        return float(self.cycle_counts[over[0]])


@dataclass(frozen=True)
class EnduranceBatchResult:
    """Stacked wear trajectories, one lane per endurance condition.

    Attributes
    ----------
    cycle_counts:
        Sampled cycle numbers, shape ``(n_samples,)``, shared by every
        lane.
    trap_density_m2, life_consumed, window_closure_v:
        Per-lane wear observables, shape ``(n_lanes, n_samples)``.
    cycles_to_breakdown:
        Per-lane extrapolated cycles to Q_BD exhaustion,
        shape ``(n_lanes,)``.
    """

    cycle_counts: np.ndarray = field(repr=False)
    trap_density_m2: np.ndarray = field(repr=False)
    life_consumed: np.ndarray = field(repr=False)
    window_closure_v: np.ndarray = field(repr=False)
    cycles_to_breakdown: np.ndarray = field(repr=False)

    @property
    def n_lanes(self) -> int:
        """Number of stacked endurance conditions."""
        return int(self.trap_density_m2.shape[0])

    def lane(self, index: int) -> EnduranceResult:
        """One lane's trajectory in the scalar result form."""
        return EnduranceResult(
            cycle_counts=self.cycle_counts,
            trap_density_m2=self.trap_density_m2[index],
            life_consumed=self.life_consumed[index],
            window_closure_v=self.window_closure_v[index],
            cycles_to_breakdown=float(self.cycles_to_breakdown[index]),
        )

    def cycles_until(self, max_window_closure_v: float) -> np.ndarray:
        """Per-lane first sampled cycle exceeding a closure budget.

        Lanes that never exceed the budget report NaN.
        """
        over = self.window_closure_v >= max_window_closure_v
        first = np.argmax(over, axis=1)
        hit = np.any(over, axis=1)
        return np.where(hit, self.cycle_counts[first], np.nan)


def sampled_cycle_counts(n_cycles: int, n_samples: int) -> np.ndarray:
    """The geometric cycle-count sampling shared by every wear path.

    ``n_samples`` points geometrically spaced over ``1..n_cycles``,
    uniqued after integer truncation -- exactly the sampling the seed
    loop used, factored out so the scalar reference, the vectorized
    kernel and the batch API all agree on where the wear curve is
    evaluated.
    """
    if n_cycles < 1:
        raise ConfigurationError("need at least one cycle")
    return np.unique(np.geomspace(1, n_cycles, n_samples).astype(int))


@dataclass(frozen=True)
class EnduranceModel:
    """Cycling wear model for one cell.

    Attributes
    ----------
    device:
        The cell.
    breakdown:
        Field-accelerated breakdown law.
    trap_generation:
        Fluence-to-trap-density law.
    trapped_charge_fraction:
        Fraction of generated traps that hold charge at read time,
        shifting the threshold (window closure).
    pulse_duration_s:
        Program/erase pulse length used for each cycle.
    """

    device: FloatingGateTransistor
    breakdown: BreakdownModel = field(default_factory=BreakdownModel)
    trap_generation: TrapGenerationModel = field(
        default_factory=TrapGenerationModel
    )
    trapped_charge_fraction: float = 0.05
    pulse_duration_s: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.trapped_charge_fraction <= 1.0:
            raise ConfigurationError("trapped fraction must be in [0, 1]")
        if self.pulse_duration_s <= 0.0:
            raise ConfigurationError("pulse duration must be positive")

    def cycle_stress(
        self,
        program_bias: BiasCondition = PROGRAM_BIAS,
        erase_bias: BiasCondition = ERASE_BIAS,
    ) -> "tuple[float, float]":
        """``(fluence_per_cycle, peak_field)`` of one program/erase cycle.

        One representative program pulse and one erase pulse (starting
        from the programmed charge) are simulated exactly; FN stress is
        history-independent to first order, so every cycle replays the
        same fluence. This is the expensive, transient-integrating part
        of an endurance run, shared by every wear lane of a batch.
        """
        program_stress = stress_of_pulse(
            self.device, program_bias, self.pulse_duration_s
        )
        # Erase starts from the programmed charge.
        from ..device.transient import simulate_transient

        programmed = simulate_transient(
            self.device, program_bias, duration_s=self.pulse_duration_s
        ).final_charge_c
        erase_stress = stress_of_pulse(
            self.device,
            erase_bias,
            self.pulse_duration_s,
            initial_charge_c=programmed,
        )
        fluence_per_cycle = (
            program_stress.injected_charge_c_per_m2
            + erase_stress.injected_charge_c_per_m2
        )
        peak_field = max(
            program_stress.peak_field_v_per_m, erase_stress.peak_field_v_per_m
        )
        return fluence_per_cycle, peak_field

    def _wear_trajectories(
        self,
        counts: np.ndarray,
        fluence_per_cycle,
        peak_field,
        trapped_charge_fraction,
        generation_coefficient,
        exponent_alpha,
        pre_existing_density_m2,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The closed-form wear kernel over (lane, cycle-count) grids.

        All wear parameters broadcast against the trailing cycle-count
        axis; every element evaluates exactly the per-sample arithmetic
        of the seed loop (same power law, same Q_BD division, same
        closure conversion), so the kernel is bit-compatible with the
        scalar reference lane by lane.
        """
        fluence = fluence_per_cycle * counts.astype(float)
        trap = pre_existing_density_m2 + (
            generation_coefficient * fluence**exponent_alpha
        )
        qbd = self.breakdown.charge_to_breakdown_c_per_m2(peak_field)
        life = fluence / qbd
        cfc = self.device.capacitances.cfc
        area = self.device.geometry.channel_area_m2
        trapped = trapped_charge_fraction * (trap - pre_existing_density_m2)
        closure = trapped * ELEMENTARY_CHARGE * area / cfc
        return trap, life, closure

    def simulate(
        self,
        n_cycles: int,
        program_bias: BiasCondition = PROGRAM_BIAS,
        erase_bias: BiasCondition = ERASE_BIAS,
        n_samples: int = 60,
    ) -> EnduranceResult:
        """Cycle the cell ``n_cycles`` times and sample the wear curve.

        One representative program pulse and one erase pulse are
        simulated exactly; their fluences are then replayed analytically
        per cycle through the closed-form wear kernel (the seed's
        per-cycle Python loop survives as
        :meth:`simulate_scalar_reference`, which this path matches
        bit for bit).
        """
        counts = sampled_cycle_counts(n_cycles, n_samples)
        fluence_per_cycle, peak_field = self.cycle_stress(
            program_bias, erase_bias
        )
        trap, life, closure = self._wear_trajectories(
            counts,
            fluence_per_cycle,
            peak_field,
            self.trapped_charge_fraction,
            self.trap_generation.generation_coefficient,
            self.trap_generation.exponent_alpha,
            self.trap_generation.pre_existing_density_m2,
        )
        cycles_bd = self.breakdown.cycles_to_breakdown(
            fluence_per_cycle, peak_field
        )
        return EnduranceResult(
            cycle_counts=counts.astype(float),
            trap_density_m2=trap,
            life_consumed=life,
            window_closure_v=closure,
            cycles_to_breakdown=cycles_bd,
        )

    def simulate_scalar_reference(
        self,
        n_cycles: int,
        program_bias: BiasCondition = PROGRAM_BIAS,
        erase_bias: BiasCondition = ERASE_BIAS,
        n_samples: int = 60,
    ) -> EnduranceResult:
        """The seed per-cycle Python loop, retained as parity reference.

        Walks the sampled cycle counts one at a time through the scalar
        wear laws exactly as the original implementation did;
        :meth:`simulate` and :meth:`simulate_batch` are pinned against
        this path at <= 1e-9 by the randomized parity suite.
        """
        counts = sampled_cycle_counts(n_cycles, n_samples)
        fluence_per_cycle, peak_field = self.cycle_stress(
            program_bias, erase_bias
        )
        accumulator = StressAccumulator()
        trap_density = np.empty(counts.size)
        life = np.empty(counts.size)
        closure = np.empty(counts.size)
        cfc = self.device.capacitances.cfc
        area = self.device.geometry.channel_area_m2
        for i, cycle in enumerate(counts):
            fluence = fluence_per_cycle * float(cycle)
            accumulator.total_fluence_c_per_m2 = fluence
            trap_density[i] = self.trap_generation.trap_density_m2(fluence)
            life[i] = self.breakdown.life_consumed_fraction(
                fluence, peak_field
            )
            trapped = (
                self.trapped_charge_fraction
                * (trap_density[i] - self.trap_generation.pre_existing_density_m2)
            )
            closure[i] = trapped * ELEMENTARY_CHARGE * area / cfc
        cycles_bd = self.breakdown.cycles_to_breakdown(
            fluence_per_cycle, peak_field
        )
        return EnduranceResult(
            cycle_counts=counts.astype(float),
            trap_density_m2=trap_density,
            life_consumed=life,
            window_closure_v=closure,
            cycles_to_breakdown=cycles_bd,
        )

    def simulate_batch(
        self,
        n_cycles: int,
        program_bias: BiasCondition = PROGRAM_BIAS,
        erase_bias: BiasCondition = ERASE_BIAS,
        n_samples: int = 60,
        trapped_charge_fractions=None,
        generation_coefficients=None,
        exponents_alpha=None,
        pre_existing_densities_m2=None,
        fluences_per_cycle_c_per_m2=None,
        peak_fields_v_per_m=None,
    ) -> EnduranceBatchResult:
        """Sample whole endurance corner sweeps in one kernel call.

        Each per-lane argument (wear-law corners and/or precomputed
        stress conditions) is a scalar or an array; arrays broadcast
        together into the lane axis, and omitted ones fall back to this
        model's configuration. When no stress override is given the two
        representative pulse transients run **once** and are shared by
        every lane -- the amortization a scalar corner sweep cannot
        express, since each :meth:`simulate` call must re-integrate
        them. The wear trajectories of all (lane, cycle-count) pairs
        then come out of the closed-form kernel in one vectorized
        evaluation; lane ``i`` matches :meth:`simulate_scalar_reference`
        run at that lane's parameters to <= 1e-9.

        Use ``fluences_per_cycle_c_per_m2`` / ``peak_fields_v_per_m``
        (e.g. from :func:`~repro.reliability.stress.stress_of_pulse_batch`
        lanes) to sweep stress conditions instead of, or together with,
        the wear-law corners.
        """
        counts = sampled_cycle_counts(n_cycles, n_samples)
        if fluences_per_cycle_c_per_m2 is None or peak_fields_v_per_m is None:
            shared_fluence, shared_field = self.cycle_stress(
                program_bias, erase_bias
            )
            if fluences_per_cycle_c_per_m2 is None:
                fluences_per_cycle_c_per_m2 = shared_fluence
            if peak_fields_v_per_m is None:
                peak_fields_v_per_m = shared_field

        lanes = np.broadcast_arrays(
            np.asarray(fluences_per_cycle_c_per_m2, dtype=float),
            np.asarray(peak_fields_v_per_m, dtype=float),
            np.asarray(
                self.trapped_charge_fraction
                if trapped_charge_fractions is None
                else trapped_charge_fractions,
                dtype=float,
            ),
            np.asarray(
                self.trap_generation.generation_coefficient
                if generation_coefficients is None
                else generation_coefficients,
                dtype=float,
            ),
            np.asarray(
                self.trap_generation.exponent_alpha
                if exponents_alpha is None
                else exponents_alpha,
                dtype=float,
            ),
            np.asarray(
                self.trap_generation.pre_existing_density_m2
                if pre_existing_densities_m2 is None
                else pre_existing_densities_m2,
                dtype=float,
            ),
        )
        fluence_pc, fields, fractions, coeffs, alphas, pre = (
            lane.reshape(-1, 1) for lane in lanes
        )
        if np.any(fluence_pc <= 0.0):
            raise ConfigurationError("per-cycle fluence must be positive")
        if np.any(fields <= 0.0):
            raise ConfigurationError("peak field must be positive")
        if np.any((fractions < 0.0) | (fractions > 1.0)):
            raise ConfigurationError("trapped fractions must be in [0, 1]")
        if np.any(coeffs < 0.0):
            raise ConfigurationError("generation coefficients cannot be negative")
        if np.any((alphas <= 0.0) | (alphas > 1.0)):
            raise ConfigurationError("alpha must be in (0, 1]")
        if np.any(pre < 0.0):
            raise ConfigurationError("pre-existing density cannot be negative")

        trap, life, closure = self._wear_trajectories(
            counts, fluence_pc, fields, fractions, coeffs, alphas, pre
        )
        cycles_bd = self.breakdown.cycles_to_breakdown(
            fluence_pc[:, 0], fields[:, 0]
        )
        return EnduranceBatchResult(
            cycle_counts=counts.astype(float),
            trap_density_m2=trap,
            life_consumed=life,
            window_closure_v=closure,
            cycles_to_breakdown=np.atleast_1d(np.asarray(cycles_bd)),
        )
