"""Oxide stress bookkeeping.

The paper's conclusion warns that the high tunneling currents that make
programming fast "severely damage the oxide's reliability". The damage
currency is the *injected charge per unit area* (fluence): every
program/erase pulse drives FN current through the tunnel oxide, and the
accumulated fluence generates traps and eventually breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..device.bias import BiasCondition
from ..device.floating_gate import FloatingGateTransistor
from ..device.transient import simulate_transient, simulate_transient_batch
from ..errors import ConfigurationError


@dataclass(frozen=True)
class StressRecord:
    """Stress delivered to the tunnel oxide by one operation.

    Attributes
    ----------
    injected_charge_c_per_m2:
        Fluence through the tunnel oxide [C/m^2].
    peak_field_v_per_m:
        Highest field seen during the pulse [V/m].
    duration_s:
        Pulse duration [s].
    """

    injected_charge_c_per_m2: float
    peak_field_v_per_m: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.injected_charge_c_per_m2 < 0.0:
            raise ConfigurationError("fluence cannot be negative")
        if self.duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")


def stress_of_pulse(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    duration_s: float,
    initial_charge_c: float = 0.0,
) -> StressRecord:
    """Integrate the tunnel-oxide fluence of one program/erase pulse."""
    result = simulate_transient(
        device,
        bias,
        initial_charge_c=initial_charge_c,
        duration_s=duration_s,
        n_samples=120,
    )
    j_abs = np.abs(result.jin_a_m2)
    fluence = float(np.trapezoid(j_abs, result.t_s))
    x_to = device.geometry.tunnel_oxide_thickness_m
    vs = bias.effective_voltages.vs
    peak_field = float(np.max(np.abs(result.vfg_v - vs)) / x_to)
    return StressRecord(
        injected_charge_c_per_m2=fluence,
        peak_field_v_per_m=peak_field,
        duration_s=duration_s,
    )


@dataclass(frozen=True)
class StressBatch:
    """Stress delivered to the tunnel oxide by a batch of pulse lanes.

    Attributes
    ----------
    injected_charge_c_per_m2:
        Per-lane fluence through the tunnel oxide [C/m^2],
        shape ``(n_lanes,)``.
    peak_field_v_per_m:
        Per-lane highest field during the pulse [V/m].
    final_charges_c:
        Stored charge at the end of each pulse [C] (the erase pulse of
        a cycle starts from the program pulse's final charge).
    duration_s:
        Pulse duration shared by every lane [s].
    """

    injected_charge_c_per_m2: np.ndarray = field(repr=False)
    peak_field_v_per_m: np.ndarray = field(repr=False)
    final_charges_c: np.ndarray = field(repr=False)
    duration_s: float = 0.0

    @property
    def n_lanes(self) -> int:
        """Number of stress lanes."""
        return int(self.injected_charge_c_per_m2.size)

    def lane(self, index: int) -> StressRecord:
        """One lane's stress in the scalar record form."""
        return StressRecord(
            injected_charge_c_per_m2=float(
                self.injected_charge_c_per_m2[index]
            ),
            peak_field_v_per_m=float(self.peak_field_v_per_m[index]),
            duration_s=self.duration_s,
        )


def stress_of_pulse_batch(
    device: FloatingGateTransistor,
    biases: "Sequence[BiasCondition]",
    duration_s: float,
    initial_charges_c=0.0,
    method: str = "lsoda",
) -> StressBatch:
    """Integrate the tunnel-oxide fluence of a batch of pulse lanes.

    One :func:`~repro.device.transient.simulate_transient_batch` call
    advances every (bias, initial charge) lane together, then the
    fluence trapezoids and peak-field reductions run vectorized over
    the stacked trajectories. A single lane reproduces
    :func:`stress_of_pulse` exactly (the batch integrator's
    golden-parity path); with ``method="rk4"`` multi-lane results are
    bit-stable against batch composition, the property the parity
    suite pins.
    """
    biases = tuple(biases)
    result = simulate_transient_batch(
        device,
        biases,
        initial_charges_c=initial_charges_c,
        duration_s=duration_s,
        n_samples=120,
        method=method,
    )
    j_abs = np.abs(result.jin_a_m2)
    fluence = np.trapezoid(j_abs, result.t_s, axis=1)
    x_to = device.geometry.tunnel_oxide_thickness_m
    vs = np.array([bias.effective_voltages.vs for bias in biases])
    peak_field = (
        np.max(np.abs(result.vfg_v - vs[:, np.newaxis]), axis=1) / x_to
    )
    return StressBatch(
        injected_charge_c_per_m2=fluence,
        peak_field_v_per_m=peak_field,
        final_charges_c=result.charge_c[:, -1].copy(),
        duration_s=duration_s,
    )


@dataclass
class StressAccumulator:
    """Running total of oxide stress over the device lifetime."""

    total_fluence_c_per_m2: float = 0.0
    worst_field_v_per_m: float = 0.0
    n_pulses: int = 0

    def add(self, record: StressRecord) -> None:
        """Accumulate one pulse's stress."""
        self.total_fluence_c_per_m2 += record.injected_charge_c_per_m2
        self.worst_field_v_per_m = max(
            self.worst_field_v_per_m, record.peak_field_v_per_m
        )
        self.n_pulses += 1

    def add_analytic_cycle(
        self, current_density_a_m2: float, pulse_duration_s: float
    ) -> None:
        """Fast path: fluence = J * t without re-running the transient.

        Used by the endurance model, which needs millions of cycles; the
        constant-J approximation overestimates slightly (J decays during
        the pulse), which is conservative for reliability.
        """
        if current_density_a_m2 < 0.0 or pulse_duration_s <= 0.0:
            raise ConfigurationError("need non-negative J and positive t")
        self.total_fluence_c_per_m2 += current_density_a_m2 * pulse_duration_s
        self.n_pulses += 1
