"""Oxide stress bookkeeping.

The paper's conclusion warns that the high tunneling currents that make
programming fast "severely damage the oxide's reliability". The damage
currency is the *injected charge per unit area* (fluence): every
program/erase pulse drives FN current through the tunnel oxide, and the
accumulated fluence generates traps and eventually breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.bias import BiasCondition
from ..device.floating_gate import FloatingGateTransistor
from ..device.transient import simulate_transient
from ..errors import ConfigurationError


@dataclass(frozen=True)
class StressRecord:
    """Stress delivered to the tunnel oxide by one operation.

    Attributes
    ----------
    injected_charge_c_per_m2:
        Fluence through the tunnel oxide [C/m^2].
    peak_field_v_per_m:
        Highest field seen during the pulse [V/m].
    duration_s:
        Pulse duration [s].
    """

    injected_charge_c_per_m2: float
    peak_field_v_per_m: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.injected_charge_c_per_m2 < 0.0:
            raise ConfigurationError("fluence cannot be negative")
        if self.duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")


def stress_of_pulse(
    device: FloatingGateTransistor,
    bias: BiasCondition,
    duration_s: float,
    initial_charge_c: float = 0.0,
) -> StressRecord:
    """Integrate the tunnel-oxide fluence of one program/erase pulse."""
    result = simulate_transient(
        device,
        bias,
        initial_charge_c=initial_charge_c,
        duration_s=duration_s,
        n_samples=120,
    )
    j_abs = np.abs(result.jin_a_m2)
    fluence = float(np.trapezoid(j_abs, result.t_s))
    x_to = device.geometry.tunnel_oxide_thickness_m
    vs = bias.effective_voltages.vs
    peak_field = float(np.max(np.abs(result.vfg_v - vs)) / x_to)
    return StressRecord(
        injected_charge_c_per_m2=fluence,
        peak_field_v_per_m=peak_field,
        duration_s=duration_s,
    )


@dataclass
class StressAccumulator:
    """Running total of oxide stress over the device lifetime."""

    total_fluence_c_per_m2: float = 0.0
    worst_field_v_per_m: float = 0.0
    n_pulses: int = 0

    def add(self, record: StressRecord) -> None:
        """Accumulate one pulse's stress."""
        self.total_fluence_c_per_m2 += record.injected_charge_c_per_m2
        self.worst_field_v_per_m = max(
            self.worst_field_v_per_m, record.peak_field_v_per_m
        )
        self.n_pulses += 1

    def add_analytic_cycle(
        self, current_density_a_m2: float, pulse_duration_s: float
    ) -> None:
        """Fast path: fluence = J * t without re-running the transient.

        Used by the endurance model, which needs millions of cycles; the
        constant-J approximation overestimates slightly (J decays during
        the pulse), which is conservative for reliability.
        """
        if current_density_a_m2 < 0.0 or pulse_duration_s <= 0.0:
            raise ConfigurationError("need non-negative J and positive t")
        self.total_fluence_c_per_m2 += current_density_a_m2 * pulse_duration_s
        self.n_pulses += 1
