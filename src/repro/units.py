"""Unit conversion helpers.

The simulator works internally in SI units (metres, volts, amperes,
joules). The flash-memory literature mixes units freely -- oxide
thicknesses in nanometres, fields in MV/cm, current densities in A/cm^2,
energies in eV. These helpers make every conversion explicit and named, so
call sites read like the paper's equations.
"""

from __future__ import annotations

from .constants import ELECTRON_VOLT

# Length ---------------------------------------------------------------

NM = 1e-9
UM = 1e-6
CM = 1e-2
ANGSTROM = 1e-10


def nm_to_m(value_nm: float) -> float:
    """Convert nanometres to metres."""
    return value_nm * NM


def m_to_nm(value_m: float) -> float:
    """Convert metres to nanometres."""
    return value_m / NM


def um_to_m(value_um: float) -> float:
    """Convert micrometres to metres."""
    return value_um * UM


# Energy ---------------------------------------------------------------


def ev_to_j(value_ev: float) -> float:
    """Convert electron-volts to joules."""
    return value_ev * ELECTRON_VOLT


def j_to_ev(value_j: float) -> float:
    """Convert joules to electron-volts."""
    return value_j / ELECTRON_VOLT


# Electric field -------------------------------------------------------


def mv_per_cm_to_v_per_m(value_mv_cm: float) -> float:
    """Convert MV/cm to V/m (1 MV/cm = 1e8 V/m)."""
    return value_mv_cm * 1e8


def v_per_m_to_mv_per_cm(value_v_m: float) -> float:
    """Convert V/m to MV/cm."""
    return value_v_m / 1e8


# Current density ------------------------------------------------------


def a_per_cm2_to_a_per_m2(value_a_cm2: float) -> float:
    """Convert A/cm^2 to A/m^2 (1 A/cm^2 = 1e4 A/m^2)."""
    return value_a_cm2 * 1e4


def a_per_m2_to_a_per_cm2(value_a_m2: float) -> float:
    """Convert A/m^2 to A/cm^2."""
    return value_a_m2 / 1e4


# Capacitance per area -------------------------------------------------


def f_per_cm2_to_f_per_m2(value_f_cm2: float) -> float:
    """Convert F/cm^2 to F/m^2."""
    return value_f_cm2 * 1e4


def f_per_m2_to_f_per_cm2(value_f_m2: float) -> float:
    """Convert F/m^2 to F/cm^2."""
    return value_f_m2 / 1e4
