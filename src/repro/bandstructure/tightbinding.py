"""Nearest-neighbour tight-binding model of graphene nanoribbons.

The ribbon unit cell is constructed geometrically from the honeycomb
lattice and the Bloch Hamiltonian ``H(k) = H0 + H1 e^{ika} + H1^T e^{-ika}``
is assembled by nearest-neighbour distance matching. This avoids
hard-coding edge-specific hopping tables and works identically for
armchair and zigzag ribbons; the construction is validated in the tests
against the known family behaviour (armchair ribbons are metallic iff
``N = 3m + 2``; zigzag ribbons carry zero-energy edge bands).

Coordinate convention: carbon-carbon distance ``a_cc``; honeycomb lattice
vectors ``a1 = (sqrt(3), 0) a_cc`` and ``a2 = (sqrt(3)/2, 3/2) a_cc`` with
basis atoms at ``(0, 0)`` and ``(sqrt(3)/2, 1/2) a_cc``. With this choice
the x axis is the zigzag direction (period ``sqrt(3) a_cc``) and the
y axis is the armchair direction (period ``3 a_cc``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..constants import CARBON_CC_DISTANCE, GRAPHENE_HOPPING_EV
from ..errors import ConfigurationError

EdgeType = Literal["armchair", "zigzag"]

_SQRT3 = math.sqrt(3.0)


@dataclass(frozen=True)
class RibbonUnitCell:
    """Geometry of one translational unit cell of a GNR.

    Attributes
    ----------
    edge:
        ``"armchair"`` or ``"zigzag"``.
    n_lines:
        Number of dimer lines (armchair) or zigzag chains (zigzag)
        across the ribbon width.
    positions:
        Atom coordinates in units of ``a_cc``, shape ``(n_atoms, 2)``;
        the ribbon axis is the first coordinate.
    period_acc:
        Translation period along the axis, in units of ``a_cc``.
    """

    edge: EdgeType
    n_lines: int
    positions: np.ndarray = field(repr=False)
    period_acc: float

    @property
    def n_atoms(self) -> int:
        return int(self.positions.shape[0])

    @property
    def width_m(self) -> float:
        """Ribbon width (transverse extent of the atom positions) [m]."""
        transverse = self.positions[:, 1]
        return float((transverse.max() - transverse.min()) * CARBON_CC_DISTANCE)

    @property
    def period_m(self) -> float:
        """Axis period [m]."""
        return self.period_acc * CARBON_CC_DISTANCE


def build_unit_cell(edge: EdgeType, n_lines: int) -> RibbonUnitCell:
    """Construct the unit cell of an ``n_lines``-wide GNR.

    Armchair ribbons are indexed by the number of dimer lines ``N`` (the
    ``N``-aGNR convention); zigzag ribbons by the number of zigzag chains.
    """
    if n_lines < 2:
        raise ConfigurationError("a ribbon needs at least two lines")
    if edge == "armchair":
        # Axis along y (armchair direction, period 3 a_cc). Columns
        # (dimer lines) at x_d = d * sqrt(3)/2; atoms per column at
        # y in {0, 2} (even d) or {1.5, 0.5} (odd d).
        atoms = []
        for d in range(n_lines):
            x = 0.5 * _SQRT3 * d
            if d % 2 == 0:
                atoms.append((0.0, x))
                atoms.append((2.0, x))
            else:
                atoms.append((1.5, x))
                atoms.append((0.5, x))
        return RibbonUnitCell(
            edge="armchair",
            n_lines=n_lines,
            positions=np.array(atoms, dtype=float),
            period_acc=3.0,
        )
    if edge == "zigzag":
        # Axis along x (zigzag direction, period sqrt(3) a_cc). Chain c
        # holds an A atom at (offset_c, 1.5 c) and a B atom at
        # (offset_{c+1}, 1.5 c + 0.5) with alternating offsets.
        atoms = []
        for c in range(n_lines):
            offset_a = 0.5 * _SQRT3 * (c % 2)
            offset_b = 0.5 * _SQRT3 * ((c + 1) % 2)
            atoms.append((offset_a, 1.5 * c))
            atoms.append((offset_b, 1.5 * c + 0.5))
        return RibbonUnitCell(
            edge="zigzag",
            n_lines=n_lines,
            positions=np.array(atoms, dtype=float),
            period_acc=_SQRT3,
        )
    raise ConfigurationError(f"unknown edge type: {edge!r}")


@dataclass(frozen=True)
class TightBindingModel:
    """Bloch Hamiltonian of a GNR in the nearest-neighbour approximation.

    Attributes
    ----------
    cell:
        Ribbon unit cell geometry.
    hopping_ev:
        Nearest-neighbour hopping energy ``t`` [eV].
    h0, h1:
        Intra-cell Hamiltonian and the coupling to the +1 neighbouring
        cell, both in eV. ``H(k) = h0 + h1 e^{ika} + h1^T e^{-ika}``.
    """

    cell: RibbonUnitCell
    hopping_ev: float
    h0: np.ndarray = field(repr=False)
    h1: np.ndarray = field(repr=False)

    def hamiltonian(self, k_per_m: float) -> np.ndarray:
        """Hermitian Bloch Hamiltonian at wavevector ``k`` [1/m], in eV."""
        phase = np.exp(1j * k_per_m * self.cell.period_m)
        return self.h0 + self.h1 * phase + self.h1.T.conj() * np.conj(phase)

    def bands_ev(self, k_per_m: np.ndarray) -> np.ndarray:
        """Band energies on a k-grid; shape ``(len(k), n_atoms)``, eV."""
        k_per_m = np.asarray(k_per_m, dtype=float)
        energies = np.empty((k_per_m.size, self.cell.n_atoms))
        for i, k in enumerate(k_per_m):
            energies[i] = np.linalg.eigvalsh(self.hamiltonian(float(k)))
        return energies


def build_tight_binding(
    edge: EdgeType,
    n_lines: int,
    hopping_ev: float = GRAPHENE_HOPPING_EV,
) -> TightBindingModel:
    """Assemble the nearest-neighbour TB model for a GNR.

    Bonds are detected by distance matching ``|r_i - r_j| == a_cc`` within
    a 1% tolerance, both inside the cell (``h0``) and across the +1 cell
    boundary (``h1``).
    """
    if hopping_ev <= 0.0:
        raise ConfigurationError("hopping energy must be positive")
    cell = build_unit_cell(edge, n_lines)
    pos = cell.positions
    n = cell.n_atoms
    h0 = np.zeros((n, n))
    h1 = np.zeros((n, n))
    shift = np.array([cell.period_acc, 0.0])
    tol = 0.01
    for i in range(n):
        for j in range(n):
            if i != j:
                d_intra = np.linalg.norm(pos[i] - pos[j])
                if abs(d_intra - 1.0) < tol:
                    h0[i, j] = -hopping_ev
            d_inter = np.linalg.norm(pos[i] - (pos[j] + shift))
            if abs(d_inter - 1.0) < tol:
                # atom j in cell +1 couples to atom i in cell 0
                h1[j, i] = -hopping_ev
    # Sanity: every carbon must have between 2 and 3 neighbours.
    coordination = (h0 != 0).sum(axis=1) + (h1 != 0).sum(axis=1) + (
        h1 != 0
    ).sum(axis=0)
    if coordination.min() < 2 or coordination.max() > 3:
        raise ConfigurationError(
            f"ribbon construction produced bad coordination numbers: "
            f"{sorted(set(int(c) for c in coordination))}"
        )
    return TightBindingModel(cell=cell, hopping_ev=hopping_ev, h0=h0, h1=h1)
