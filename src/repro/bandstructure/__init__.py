"""Electronic structure of graphene nanoribbons and related materials.

Provides the tight-binding band structures, densities of states and
quantum capacitances that feed the device-level electrostatics. The
paper's lumped model treats the MLGNR electrodes as ideal; this package
supplies the physics needed to quantify (and, in the ablations, relax)
that idealisation.
"""

from .dispersion import BandStructure, compute_band_structure
from .dos import DensityOfStates, histogram_dos
from .kpoints import brillouin_zone_1d
from .quantum_capacitance import (
    fermi_derivative_per_ev,
    quantum_capacitance_per_area,
    quantum_capacitance_per_length,
    series_with_quantum,
)
from .tightbinding import (
    RibbonUnitCell,
    TightBindingModel,
    build_tight_binding,
    build_unit_cell,
)

__all__ = [
    "BandStructure",
    "compute_band_structure",
    "DensityOfStates",
    "histogram_dos",
    "brillouin_zone_1d",
    "RibbonUnitCell",
    "TightBindingModel",
    "build_unit_cell",
    "build_tight_binding",
    "fermi_derivative_per_ev",
    "quantum_capacitance_per_length",
    "quantum_capacitance_per_area",
    "series_with_quantum",
]
