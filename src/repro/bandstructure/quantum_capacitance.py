"""Quantum capacitance of nanoribbon and graphene electrodes.

A floating gate made of a low-DOS material cannot be treated as a
perfect metal: adding charge moves its Fermi level, which acts as a
capacitance ``C_Q = q^2 * DOS`` in series with the geometric oxide
capacitances and therefore reduces the gate coupling ratio (paper
eq. (3)) below its purely geometric value. The ablation benchmark
``abl-cq`` quantifies this correction as a function of MLGNR layer count.
"""

from __future__ import annotations

import numpy as np

from ..constants import BOLTZMANN, ELEMENTARY_CHARGE
from ..errors import ConfigurationError
from .dos import DensityOfStates


def fermi_derivative_per_ev(
    energies_ev: np.ndarray, fermi_ev: float, temperature_k: float
) -> np.ndarray:
    """Thermal broadening kernel ``-df/dE`` in 1/eV."""
    if temperature_k <= 0.0:
        raise ConfigurationError("temperature must be positive")
    kt_ev = BOLTZMANN * temperature_k / ELEMENTARY_CHARGE
    x = (np.asarray(energies_ev) - fermi_ev) / kt_ev
    # sech^2 form, computed stably.
    return 0.25 / (kt_ev * np.cosh(np.clip(x / 2.0, -350.0, 350.0)) ** 2)


def quantum_capacitance_per_length(
    dos: DensityOfStates, fermi_ev: float, temperature_k: float = 300.0
) -> float:
    """Quantum capacitance per unit ribbon length [F/m].

    ``C_Q = q^2 * integral DOS(E) (-df/dE) dE``; the DOS table is per eV
    per metre, so a factor of q converts the energy unit back to joules.
    """
    kernel = fermi_derivative_per_ev(dos.energies_ev, fermi_ev, temperature_k)
    integral_per_ev_m = np.trapezoid(dos.dos_per_ev_m * kernel, dos.energies_ev)
    return float(ELEMENTARY_CHARGE**2 * integral_per_ev_m / ELEMENTARY_CHARGE)


def quantum_capacitance_per_area(
    dos: DensityOfStates,
    ribbon_width_m: float,
    fermi_ev: float,
    temperature_k: float = 300.0,
) -> float:
    """Quantum capacitance per unit *area* [F/m^2] of a ribbon array.

    Divides the per-length value by the ribbon width, i.e. assumes a
    dense parallel array of ribbons (the MLGNR floating-gate layout).
    """
    if ribbon_width_m <= 0.0:
        raise ConfigurationError("ribbon width must be positive")
    per_length = quantum_capacitance_per_length(dos, fermi_ev, temperature_k)
    return per_length / ribbon_width_m


def series_with_quantum(
    geometric_f_per_m2: float, quantum_f_per_m2: float
) -> float:
    """Series combination of a geometric and a quantum capacitance.

    Returns the effective capacitance per area; as ``C_Q -> inf`` (metal
    gate) the geometric value is recovered.
    """
    if geometric_f_per_m2 <= 0.0 or quantum_f_per_m2 <= 0.0:
        raise ConfigurationError("capacitances must be positive")
    return (
        geometric_f_per_m2
        * quantum_f_per_m2
        / (geometric_f_per_m2 + quantum_f_per_m2)
    )
