"""Density of states from sampled 1-D band structures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .dispersion import BandStructure


@dataclass(frozen=True)
class DensityOfStates:
    """Tabulated density of states per unit length of ribbon.

    Attributes
    ----------
    energies_ev:
        Bin-centre energies [eV].
    dos_per_ev_m:
        States per eV per metre of ribbon length (spin included).
    """

    energies_ev: np.ndarray = field(repr=False)
    dos_per_ev_m: np.ndarray = field(repr=False)

    def at(self, energy_ev: float) -> float:
        """DOS interpolated at one energy [states / (eV m)]."""
        return float(
            np.interp(energy_ev, self.energies_ev, self.dos_per_ev_m)
        )

    def states_between(self, e_lo_ev: float, e_hi_ev: float) -> float:
        """Integrated states per metre between two energies."""
        if e_hi_ev <= e_lo_ev:
            raise ConfigurationError("e_hi must exceed e_lo")
        mask = (self.energies_ev >= e_lo_ev) & (self.energies_ev <= e_hi_ev)
        if mask.sum() < 2:
            return 0.0
        return float(
            np.trapezoid(self.dos_per_ev_m[mask], self.energies_ev[mask])
        )


def histogram_dos(
    band_structure: BandStructure,
    period_m: float,
    n_bins: int = 400,
    e_min_ev: "float | None" = None,
    e_max_ev: "float | None" = None,
) -> DensityOfStates:
    """Histogram estimator of the ribbon DOS per unit length.

    Each of the ``n_k`` uniformly spaced k-samples of each band carries
    weight ``2 (spin) / (n_k * period)`` states per metre; binning in
    energy and dividing by the bin width yields states/(eV m).
    """
    if period_m <= 0.0:
        raise ConfigurationError("period must be positive")
    bands = band_structure.bands_ev
    n_k = bands.shape[0]
    e_min = bands.min() if e_min_ev is None else e_min_ev
    e_max = bands.max() if e_max_ev is None else e_max_ev
    if e_max <= e_min:
        raise ConfigurationError("energy window is empty")

    counts, edges = np.histogram(
        bands.ravel(), bins=n_bins, range=(e_min, e_max)
    )
    bin_width = edges[1] - edges[0]
    weight = 2.0 / (n_k * period_m)
    dos = counts * weight / bin_width
    centres = 0.5 * (edges[:-1] + edges[1:])
    return DensityOfStates(energies_ev=centres, dos_per_ev_m=dos)
