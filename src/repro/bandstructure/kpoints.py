"""k-point sampling helpers for 1-D band structures."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def brillouin_zone_1d(period_m: float, n_k: int, full: bool = True) -> np.ndarray:
    """Sample the 1-D Brillouin zone of a crystal with period ``period_m``.

    Parameters
    ----------
    period_m:
        Real-space translation period along the ribbon axis [m].
    n_k:
        Number of k samples.
    full:
        When True, sample ``[-pi/a, pi/a]``; when False, use the
        irreducible half ``[0, pi/a]`` (sufficient for ribbons with
        time-reversal symmetry).

    Returns
    -------
    numpy.ndarray
        Wavevectors [1/m].
    """
    if period_m <= 0.0:
        raise ConfigurationError("period must be positive")
    if n_k < 2:
        raise ConfigurationError("need at least two k-points")
    k_max = np.pi / period_m
    if full:
        return np.linspace(-k_max, k_max, n_k)
    return np.linspace(0.0, k_max, n_k)
