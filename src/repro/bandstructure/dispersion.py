"""Band-structure post-processing: gaps, edges and conduction modes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .kpoints import brillouin_zone_1d
from .tightbinding import TightBindingModel


@dataclass(frozen=True)
class BandStructure:
    """Band energies sampled over the 1-D Brillouin zone.

    Attributes
    ----------
    k_per_m:
        Wavevector samples [1/m].
    bands_ev:
        Energies, shape ``(len(k), n_bands)``, in eV, sorted per k-point.
    """

    k_per_m: np.ndarray = field(repr=False)
    bands_ev: np.ndarray = field(repr=False)

    @property
    def n_bands(self) -> int:
        return int(self.bands_ev.shape[1])

    def band_gap_ev(self, fermi_ev: float = 0.0) -> float:
        """Gap between the lowest band above and highest band below E_F.

        Half-filled nearest-neighbour GNRs are particle-hole symmetric,
        so ``fermi_ev = 0`` is the charge-neutral default.
        """
        above = self.bands_ev[self.bands_ev > fermi_ev]
        below = self.bands_ev[self.bands_ev <= fermi_ev]
        if above.size == 0 or below.size == 0:
            raise ConfigurationError("Fermi level outside the band range")
        return float(above.min() - below.max())

    def conduction_band_edge_ev(self, fermi_ev: float = 0.0) -> float:
        """Lowest band energy above the Fermi level [eV]."""
        above = self.bands_ev[self.bands_ev > fermi_ev]
        if above.size == 0:
            raise ConfigurationError("no states above the Fermi level")
        return float(above.min())

    def mode_count(self, energy_ev: float) -> int:
        """Number of conduction modes M(E): bands whose range covers E.

        This is the Landauer channel count used by the ballistic-current
        model of the GNR channel.
        """
        band_min = self.bands_ev.min(axis=0)
        band_max = self.bands_ev.max(axis=0)
        return int(np.sum((band_min <= energy_ev) & (energy_ev <= band_max)))

    def is_metallic(self, tolerance_ev: float = 1e-3) -> bool:
        """True when the gap at charge neutrality is below ``tolerance_ev``."""
        return self.band_gap_ev() < tolerance_ev


def compute_band_structure(
    model: TightBindingModel, n_k: int = 201
) -> BandStructure:
    """Sample a TB model over its full Brillouin zone."""
    k = brillouin_zone_1d(model.cell.period_m, n_k, full=True)
    return BandStructure(k_per_m=k, bands_ev=model.bands_ev(k))
