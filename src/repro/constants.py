"""Physical constants used throughout the simulator.

All values are CODATA-2018 exact or recommended values, in SI units.
Keeping them in one module (rather than importing ``scipy.constants``
everywhere) makes the numerical provenance of every equation explicit and
keeps the core physics importable without scipy.
"""

from __future__ import annotations

import math

#: Elementary charge [C] (exact, SI 2019 redefinition).
ELEMENTARY_CHARGE = 1.602176634e-19

#: Planck constant [J*s] (exact).
PLANCK = 6.62607015e-34

#: Reduced Planck constant [J*s].
HBAR = PLANCK / (2.0 * math.pi)

#: Electron rest mass [kg].
ELECTRON_MASS = 9.1093837015e-31

#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY = 8.8541878128e-12

#: Boltzmann constant [J/K] (exact).
BOLTZMANN = 1.380649e-23

#: Speed of light in vacuum [m/s] (exact).
SPEED_OF_LIGHT = 299792458.0

#: One electron-volt [J].
ELECTRON_VOLT = ELEMENTARY_CHARGE

#: Thermal voltage k_B*T/q at 300 K [V].
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / ELEMENTARY_CHARGE

#: Graphene nearest-neighbour carbon-carbon distance [m].
CARBON_CC_DISTANCE = 0.142e-9

#: Graphene lattice constant a = sqrt(3) * a_cc [m].
GRAPHENE_LATTICE_CONSTANT = math.sqrt(3.0) * CARBON_CC_DISTANCE

#: Graphene nearest-neighbour hopping energy [eV] (commonly used TB value).
GRAPHENE_HOPPING_EV = 2.7

#: Graphene Fermi velocity [m/s], v_F = 3*t*a_cc / (2*hbar).
GRAPHENE_FERMI_VELOCITY = (
    3.0 * GRAPHENE_HOPPING_EV * ELECTRON_VOLT * CARBON_CC_DISTANCE / (2.0 * HBAR)
)

#: Interlayer spacing of multilayer graphene / graphite [m].
GRAPHENE_INTERLAYER_SPACING = 0.335e-9


def thermal_voltage(temperature_k: float) -> float:
    """Return the thermal voltage ``k_B * T / q`` in volts.

    Parameters
    ----------
    temperature_k:
        Absolute temperature in kelvin. Must be positive.
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def thermal_energy_j(temperature_k: float) -> float:
    """Return the thermal energy ``k_B * T`` in joules."""
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return BOLTZMANN * temperature_k
