"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class. Narrow subclasses exist for the major failure
modes (bad configuration, solver non-convergence, out-of-range physics).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A model or device was constructed with physically invalid parameters."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class RegimeError(ReproError, ValueError):
    """A model was evaluated outside its domain of validity.

    Example: asking the Fowler-Nordheim closed form for the current of a
    barrier that the applied field does not tilt into the triangular regime.
    """


class MaterialNotFoundError(ReproError, KeyError):
    """A material name was not present in the material registry."""


class MemoryOperationError(ReproError, RuntimeError):
    """An array-level memory operation (program/erase/read) failed."""
