"""Test-support utilities shipped with the package.

Currently home to :mod:`repro.testing.faults`, the deterministic fault
injector the chaos suite (and any downstream integration test) uses to
make executor failure paths reproducible. Production code never *sets*
faults; the executor merely consults the injector, which is inert
unless the ``REPRO_FAULTS`` environment variable is populated.
"""

from .faults import (
    FAULT_KINDS,
    FAULTS_ENV,
    FaultSpec,
    InjectedFault,
    active_faults,
    decode_faults,
    encode_faults,
    faults_installed,
    maybe_inject,
)

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultSpec",
    "InjectedFault",
    "active_faults",
    "decode_faults",
    "encode_faults",
    "faults_installed",
    "maybe_inject",
]
