"""Deterministic, addressable fault injection for the executor.

Chaos tests need to kill, hang, or fail *exactly one* shard attempt --
"shard 2, attempt 1" -- and have every other part of the run behave
normally. This module provides that: a :class:`FaultSpec` names a fault
kind plus the coordinates it applies to, a set of specs is serialized
into the ``REPRO_FAULTS`` environment variable (JSON), and the shard
worker entry point calls :func:`maybe_inject` before each scenario.
Environment plumbing is what makes this work across process pools:
workers forked (or spawned) by ``ProcessPoolExecutor`` inherit the
parent's environment at pool creation, so a spec installed with
:func:`faults_installed` around ``run_plan_parallel`` reaches every
worker without touching the plan payload.

Fault kinds (:data:`FAULT_KINDS`):

* ``"crash"`` -- die via ``os._exit`` (no cleanup, no exception), the
  closest stand-in for an OOM kill or segfault. Only honoured when the
  caller passes ``allow_crash=True`` (process-pool workers); in thread
  or inline execution it is downgraded to a ``raise`` so a test cannot
  take the host interpreter down.
* ``"raise"`` -- raise :class:`InjectedFault`, a retryable error.
* ``"hang"`` -- sleep ``seconds`` (bounded, default 60), then raise
  :class:`InjectedFault`; simulates a stuck solver for deadline tests
  while guaranteeing the worker eventually terminates.
* ``"slow"`` -- sleep ``seconds``, then continue normally; simulates a
  straggler without failing it.

Selectors (``shard``, ``attempt``, ``position``) are matched exactly
when set and wildcard when ``None``; the first matching spec wins.
Because the injector keeps no state, a wildcard ``slow`` spec fires
before every scenario it matches -- target ``position`` when one delay
per shard is wanted.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..errors import ReproError

#: Environment variable the executor's workers read fault specs from.
FAULTS_ENV = "REPRO_FAULTS"

#: The fault kinds :func:`maybe_inject` understands.
FAULT_KINDS = ("crash", "raise", "hang", "slow")

#: Exit status an injected ``crash`` dies with (distinctive on purpose,
#: so a test can tell an injected kill from an accidental one).
CRASH_EXIT_CODE = 23


class InjectedFault(ReproError, RuntimeError):
    """A deliberately injected worker failure.

    Deliberately *not* a :class:`~repro.errors.ConfigurationError`: the
    supervisor classifies configuration errors as non-retryable, while
    injected faults must exercise the retry path.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One addressable fault: what to do, and exactly where.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    shard:
        Shard index the fault targets, or ``None`` for any shard.
    attempt:
        Attempt number (0-based) the fault targets, or ``None`` for
        every attempt -- a persistent fault.
    position:
        Expanded-plan position the fault fires *before*, or ``None``
        for the shard's first scenario. Targeting a later position
        makes the shard fail mid-run, after completing earlier work.
    seconds:
        Sleep duration for ``hang``/``slow`` [s]. Bounded by the spec
        (default 60) so an abandoned worker always terminates.
    message:
        Carried into the :class:`InjectedFault` text.
    """

    kind: str
    shard: "int | None" = None
    attempt: "int | None" = None
    position: "int | None" = None
    seconds: float = 60.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ReproError(
                f"unknown fault kind {self.kind!r}; available: {known}"
            )
        if self.seconds < 0:
            raise ReproError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )

    def matches(self, shard: int, attempt: int, position: int,
                first_position: bool) -> bool:
        """Whether this spec fires at the given worker coordinates."""
        if self.shard is not None and self.shard != shard:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.position is None:
            return first_position
        return self.position == position

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe record; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "shard": self.shard,
            "attempt": self.attempt,
            "position": self.position,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "FaultSpec":
        """Rebuild a spec from its JSON record."""
        if "kind" not in data:
            raise ReproError(f"fault spec needs a 'kind': {dict(data)!r}")
        return cls(
            kind=str(data["kind"]),
            shard=(None if data.get("shard") is None
                   else int(data["shard"])),
            attempt=(None if data.get("attempt") is None
                     else int(data["attempt"])),
            position=(None if data.get("position") is None
                      else int(data["position"])),
            seconds=float(data.get("seconds", 60.0)),
            message=str(data.get("message", "injected fault")),
        )


def encode_faults(specs: "tuple[FaultSpec, ...] | list[FaultSpec]") -> str:
    """Serialize specs to the JSON form :data:`FAULTS_ENV` carries."""
    return json.dumps([spec.to_dict() for spec in specs])


def decode_faults(text: str) -> "tuple[FaultSpec, ...]":
    """Parse the :data:`FAULTS_ENV` JSON back into specs."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"unparseable {FAULTS_ENV} value: {exc}") from exc
    if not isinstance(raw, list):
        raise ReproError(f"{FAULTS_ENV} must hold a JSON list of specs")
    return tuple(FaultSpec.from_dict(item) for item in raw)


def active_faults(
    environ: "Mapping[str, str] | None" = None,
) -> "tuple[FaultSpec, ...]":
    """The specs currently installed in the environment (usually none)."""
    env = os.environ if environ is None else environ
    text = env.get(FAULTS_ENV, "")
    if not text:
        return ()
    return decode_faults(text)


def maybe_inject(
    shard: int,
    attempt: int,
    position: int,
    *,
    first_position: bool = False,
    allow_crash: bool = False,
    environ: "Mapping[str, str] | None" = None,
) -> None:
    """Fire the first installed fault matching these coordinates, if any.

    Called by the shard worker before each scenario. With no faults
    installed this is a single dict lookup -- the production-path cost
    of the harness. ``allow_crash=True`` (process-pool workers only)
    lets a ``crash`` spec actually ``os._exit``; otherwise it degrades
    to raising :class:`InjectedFault` so the host interpreter survives.
    """
    env = os.environ if environ is None else environ
    if not env.get(FAULTS_ENV):
        return
    for spec in active_faults(env):
        if not spec.matches(shard, attempt, position, first_position):
            continue
        where = (
            f"{spec.kind} fault at shard {shard}, attempt {attempt}, "
            f"position {position}: {spec.message}"
        )
        if spec.kind == "crash":
            if allow_crash:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(f"(crash downgraded to raise) {where}")
        if spec.kind == "raise":
            raise InjectedFault(where)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            raise InjectedFault(f"(hang of {spec.seconds}s elapsed) {where}")
        # "slow": delay, then run normally.
        time.sleep(spec.seconds)
        return


@contextmanager
def faults_installed(*specs: FaultSpec) -> Iterator[None]:
    """Install fault specs in ``os.environ`` for the enclosed block.

    The previous :data:`FAULTS_ENV` value is restored on exit, even on
    error. Process pools created *inside* the block inherit the specs;
    pools created before it do not (their workers already forked).
    """
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = encode_faults(list(specs))
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
