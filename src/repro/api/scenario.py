"""Scenarios: declarative, serializable experiment parameterisations.

A :class:`Scenario` names a registered experiment, a set of parameter
overrides, and optional sweep axes that expand into families of
concrete scenarios (the cartesian product of the axes). Scenarios are
plain data -- they serialise to JSON through :mod:`repro.io` -- so a
run plan can be written by hand, published next to results, and
re-executed exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Scenario:
    """One experiment id plus its parameterisation.

    Attributes
    ----------
    experiment_id:
        A registered experiment id (``"fig6"``, ``"abl-temp"``, ...).
    overrides:
        Parameter overrides passed to the experiment's ``run``.
    sweep:
        Sweep axes: parameter name -> sequence of values. A scenario
        with sweep axes is a *family*; :meth:`expand` produces one
        concrete scenario per point of the cartesian product.
    label:
        Optional human-readable tag carried into results and exports.
    """

    experiment_id: str
    overrides: "Mapping[str, Any]" = field(default_factory=dict)
    sweep: "Mapping[str, Sequence[Any]]" = field(default_factory=dict)
    label: "str | None" = None

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("scenario needs an experiment id")
        # Normalise list-valued overrides (the JSON form) to tuples so a
        # scenario equals its save/load round trip.
        object.__setattr__(
            self,
            "overrides",
            {
                k: tuple(v) if isinstance(v, list) else v
                for k, v in dict(self.overrides).items()
            },
        )
        object.__setattr__(
            self, "sweep", {k: tuple(v) for k, v in dict(self.sweep).items()}
        )
        for axis, values in self.sweep.items():
            if len(values) == 0:
                raise ConfigurationError(f"sweep axis {axis!r} is empty")
            if axis in self.overrides:
                raise ConfigurationError(
                    f"parameter {axis!r} appears in both overrides and sweep"
                )

    @property
    def name(self) -> str:
        """Display name: the label, or an id + overrides summary."""
        if self.label:
            return self.label
        if not self.overrides:
            return self.experiment_id
        summary = ",".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))
        return f"{self.experiment_id}[{summary}]"

    def expand(self) -> "tuple[Scenario, ...]":
        """Concrete scenarios: one per cartesian-product sweep point.

        A scenario without sweep axes expands to itself. Expanded
        scenarios fold each sweep point into ``overrides`` and suffix
        the label with the swept values.
        """
        if not self.sweep:
            return (self,)
        axes = sorted(self.sweep)
        expanded = []
        for values in itertools.product(*(self.sweep[a] for a in axes)):
            point = dict(zip(axes, values))
            tag = ",".join(f"{k}={v}" for k, v in point.items())
            base = self.label or self.experiment_id
            expanded.append(
                Scenario(
                    experiment_id=self.experiment_id,
                    overrides={**self.overrides, **point},
                    label=f"{base}({tag})",
                )
            )
        return tuple(expanded)

    # ----- JSON round trip (via repro.io) --------------------------------

    def to_dict(self) -> "dict[str, Any]":
        """JSON-safe record; inverse of :meth:`from_dict`."""
        from .. import io

        return io.scenario_to_dict(self)

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "Scenario":
        """Rebuild a scenario from its JSON record."""
        from .. import io

        return io.scenario_from_dict(data)

    def save(self, path: "str | Path") -> Path:
        """Write the scenario as a JSON file; returns the path."""
        from .. import io

        return io.save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: "str | Path") -> "Scenario":
        """Read a scenario back from a JSON file."""
        from .. import io

        return io.scenario_from_dict(io.load_json(path))
